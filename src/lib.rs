//! # ca-symm-eig — umbrella crate
//!
//! Re-exports the workspace members and hosts the integration tests,
//! examples, and the `eigensolve` CLI. Start at [`paper`] for the
//! paper-to-implementation map, or at [`eigen::symm_eigen_25d`] for the
//! headline algorithm.
// Index-heavy numerical code: range loops over several arrays at once
// are the clearer idiom here.
#![allow(clippy::needless_range_loop)]

pub use ca_bsp as bsp;
pub use ca_dla as dla;
pub use ca_eigen as eigen;
pub use ca_obs as obs;
pub use ca_pla as pla;
pub mod paper;
