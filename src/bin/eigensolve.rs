#![allow(clippy::needless_range_loop)]
//! `eigensolve` — command-line front end to the communication-avoiding
//! symmetric eigensolver.
//!
//! ```text
//! USAGE:
//!   eigensolve [OPTIONS]
//!
//! OPTIONS:
//!   --n <N>            matrix dimension (any n ≥ 2; default 128)
//!   --p <P>            virtual processors (default 16)
//!   --c <C>            replication factor (default 1; p/c must be square)
//!   --input <FILE>     read a dense symmetric matrix (CSV rows) instead
//!                      of generating one
//!   --kind <KIND>      generator when no input: spectrum | random |
//!                      tightbinding | laplacian (default spectrum)
//!   --seed <SEED>      generator seed (default 42)
//!   --vectors          also compute eigenvectors (reports residual)
//!   --json             emit results as JSON on stdout
//!   --algorithm <A>    2.5d | scalapack | elpa (default 2.5d)
//! ```
//!
//! Prints the eigenvalues and the machine's F/W/Q/S cost record.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::{gen, Matrix};
use ca_symm_eig::eigen::baselines::{elpa_two_stage, scalapack::scalapack_eigenvalues};
use ca_symm_eig::eigen::{try_symm_eigen_25d, try_symm_eigen_25d_vectors, EigenParams};
use ca_symm_eig::pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let n: usize = arg("--n").map(|v| v.parse().expect("--n")).unwrap_or(128);
    let p: usize = arg("--p").map(|v| v.parse().expect("--p")).unwrap_or(16);
    let c: usize = arg("--c").map(|v| v.parse().expect("--c")).unwrap_or(1);
    let seed: u64 = arg("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(42);
    let kind = arg("--kind").unwrap_or_else(|| "spectrum".into());
    let algorithm = arg("--algorithm").unwrap_or_else(|| "2.5d".into());
    let want_vectors = flag("--vectors");
    let json = flag("--json");

    // Build or load the matrix.
    let a: Matrix = if let Some(path) = arg("--input") {
        load_csv(&path)
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        match kind.as_str() {
            "spectrum" => {
                gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -5.0, 5.0))
            }
            "random" => gen::random_symmetric(&mut rng, n),
            "tightbinding" => gen::tight_binding_ring(&mut rng, n, 1.0, 2.0),
            "laplacian" => {
                let side = (n as f64).sqrt().round() as usize;
                gen::laplacian_2d(side, n / side.max(1))
            }
            other => {
                eprintln!("unknown --kind {other}");
                std::process::exit(2);
            }
        }
    };
    let n = a.rows();

    let machine = Machine::new(MachineParams::new(p));
    let mut residual = None;
    let eigenvalues = match algorithm.as_str() {
        "2.5d" => {
            // The typed-error entry points: a bad grid or input prints
            // a one-line diagnostic instead of a panic backtrace.
            let params = EigenParams::try_new(p, c).unwrap_or_else(|e| {
                eprintln!("eigensolve: {e}");
                std::process::exit(2);
            });
            let reject = |e: ca_symm_eig::eigen::EigenError| -> ! {
                eprintln!("eigensolve: {e}");
                std::process::exit(2)
            };
            if want_vectors {
                let (ev, v, _) = try_symm_eigen_25d_vectors(&machine, &params, &a)
                    .unwrap_or_else(|e| reject(e));
                // Residual ‖A·V − V·Λ‖_max.
                let av = matmul(&a, Trans::N, &v, Trans::N);
                let mut vl = v.clone();
                for i in 0..n {
                    for j in 0..n {
                        vl.set(i, j, v.get(i, j) * ev[j]);
                    }
                }
                residual = Some(av.max_diff(&vl));
                ev
            } else {
                try_symm_eigen_25d(&machine, &params, &a)
                    .unwrap_or_else(|e| reject(e))
                    .0
            }
        }
        "scalapack" => scalapack_eigenvalues(&machine, &Grid::all(p).squarest_2d(), &a),
        "elpa" => elpa_two_stage(&machine, p, &a),
        other => {
            eprintln!("unknown --algorithm {other}");
            std::process::exit(2);
        }
    };

    let costs = machine.report();
    if json {
        let evs: Vec<String> = eigenvalues.iter().map(|v| format!("{v}")).collect();
        println!(
            "{{\"n\":{n},\"p\":{p},\"c\":{c},\"algorithm\":\"{algorithm}\",\"eigenvalues\":[{}],\
             \"flops\":{},\"horizontal_words\":{},\"vertical_words\":{},\"supersteps\":{}{}}}",
            evs.join(","),
            costs.flops,
            costs.horizontal_words,
            costs.vertical_words,
            costs.supersteps,
            residual.map(|r| format!(",\"residual\":{r}")).unwrap_or_default()
        );
    } else {
        println!("eigensolve: n = {n}, p = {p}, c = {c}, algorithm = {algorithm}");
        println!(
            "costs: F = {}, W = {}, Q = {}, S = {}, peak M = {}",
            costs.flops,
            costs.horizontal_words,
            costs.vertical_words,
            costs.supersteps,
            costs.peak_memory_words
        );
        if let Some(r) = residual {
            println!("eigenvector residual ‖A·V − V·Λ‖_max = {r:.3e}");
        }
        println!("eigenvalues (ascending):");
        for chunk in eigenvalues.chunks(8) {
            let line: Vec<String> = chunk.iter().map(|v| format!("{v:>12.6}")).collect();
            println!("  {}", line.join(" "));
        }
    }
}

fn load_csv(path: &str) -> Matrix {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let rows: Vec<Vec<f64>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.split(',')
                .map(|tok| tok.trim().parse::<f64>().expect("CSV entry"))
                .collect()
        })
        .collect();
    let n = rows.len();
    assert!(n > 0, "empty matrix");
    assert!(rows.iter().all(|r| r.len() == n), "matrix must be square");
    let mut a = Matrix::zeros(n, n);
    for (i, r) in rows.iter().enumerate() {
        for (j, v) in r.iter().enumerate() {
            a.set(i, j, *v);
        }
    }
    assert!(
        a.asymmetry() < 1e-8 * a.norm_max().max(1.0),
        "input matrix must be symmetric"
    );
    a
}
