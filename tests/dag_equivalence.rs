//! The task-graph executor must be invisible in the output bits.
//!
//! `CA_LOOKAHEAD=on` (the default) runs the two-sided reduction drivers
//! on the dependency-driven DAG executor (`ca_pla::dag`) with zero-copy
//! task bodies; `off` restores the seed's barrier path. These tests pin
//! the PR's headline invariant: for every problem shape — including
//! ragged ones where the halving target does not divide the band-width —
//! the two paths agree **bitwise** on
//!
//! * the reduced band (every stored word),
//! * the recorded Householder transforms (`row0`, `U`, `T`),
//! * the eigenvalues and eigenvectors of the full solver, and
//! * the metered ledger: `F`/`W`/`Q`/`S` totals *and* the per-processor
//!   flop/word/superstep breakdowns.
//!
//! The knob is process-global (`ca_obs::knobs::set_lookahead_enabled`),
//! so every test here serializes through one lock while it holds the
//! knob away from its default.

use ca_symm_eig::bsp::{Costs, Machine, MachineParams};
use ca_symm_eig::dla::{gen, BandedSym};
use ca_symm_eig::eigen::band_to_band::band_to_band_to_logged;
use ca_symm_eig::eigen::full_to_band::full_to_band_logged;
use ca_symm_eig::eigen::transforms::Reflectors;
use ca_symm_eig::eigen::{symm_eigen_25d_vectors, EigenParams};
use ca_symm_eig::obs::knobs;
use ca_symm_eig::pla::Grid;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes knob toggling across this binary's tests (and proptest
/// cases); restores the default on drop even if the closure panics.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn with_lookahead<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            knobs::reset_lookahead();
        }
    }
    let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    knobs::set_lookahead_enabled(enabled);
    f()
}

/// FNV-1a over the exact bit patterns of a stream of `f64`s.
fn bit_hash(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

/// Every stored word of the band plus every recorded transform, folded
/// into one hash. `row0` rides along as a float so a transform applied
/// at the wrong offset changes the fingerprint even if `U`/`T` agree.
fn band_fingerprint(band: &BandedSym, rec: &[Reflectors]) -> u64 {
    let mut bits: Vec<f64> = band.bands().to_vec();
    bits.push(band.bandwidth() as f64);
    for r in rec {
        bits.push(r.row0 as f64);
        bits.extend_from_slice(r.u.data());
        bits.extend_from_slice(r.t.data());
    }
    bit_hash(bits)
}

/// Full ledger state: the folded `Costs` plus the per-processor
/// flop/word/superstep breakdowns (the folded maxima could agree by
/// accident; the raw per-processor tallies cannot).
type Ledger = (Costs, Vec<u64>, Vec<u64>, Vec<u64>);

fn ledger(machine: &Machine) -> Ledger {
    (
        machine.report(),
        machine.flops_per_proc(),
        machine.comm_per_proc(),
        machine.steps_per_proc(),
    )
}

fn full_to_band_run(n: usize, b: usize, p: usize, seed: u64) -> (u64, Ledger) {
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -3.0, 3.0));
    let mut rec = Vec::new();
    let (band, _) = full_to_band_logged(&machine, &params, &a, b, &mut rec);
    (band_fingerprint(&band, &rec), ledger(&machine))
}

fn band_to_band_run(
    n: usize,
    b: usize,
    h: usize,
    p: usize,
    seed: u64,
) -> (u64, Ledger) {
    let machine = Machine::new(MachineParams::new(p));
    let grid = Grid::all(p);
    let mut rng = StdRng::seed_from_u64(seed);
    let dense = gen::random_banded(&mut rng, n, b);
    let bm = BandedSym::from_dense(&dense, b, b);
    let mut rec = Vec::new();
    let (out, _) = band_to_band_to_logged(&machine, &grid, &bm, h, 1, &mut rec);
    (band_fingerprint(&out, &rec), ledger(&machine))
}

fn solve_run(n: usize, p: usize, seed: u64) -> (u64, Ledger) {
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -2.0, 2.0));
    let (ev, v, _) = symm_eigen_25d_vectors(&machine, &params, &a);
    let mut bits = ev;
    bits.extend_from_slice(v.data());
    (bit_hash(bits), ledger(&machine))
}

/// Run `case` under both knob settings and demand bitwise + ledger
/// equality. Returns the shared hash so callers can add cross-checks.
fn assert_paths_agree<F>(label: &str, case: F) -> u64
where
    F: Fn() -> (u64, Ledger),
{
    let (dag_hash, dag_ledger) = with_lookahead(true, &case);
    let (bar_hash, bar_ledger) = with_lookahead(false, &case);
    assert_eq!(
        format!("{dag_hash:016x}"),
        format!("{bar_hash:016x}"),
        "{label}: DAG output bits diverged from the barrier path"
    );
    assert_eq!(
        dag_ledger.0, bar_ledger.0,
        "{label}: folded F/W/Q/S ledger diverged"
    );
    assert_eq!(dag_ledger.1, bar_ledger.1, "{label}: per-proc flops diverged");
    assert_eq!(dag_ledger.2, bar_ledger.2, "{label}: per-proc words diverged");
    assert_eq!(
        dag_ledger.3, bar_ledger.3,
        "{label}: per-proc supersteps diverged"
    );
    dag_hash
}

/// The issue's sweep sizes: one in-regime power-of-two-ish size, one
/// odd, one `2^k + 1` pair that makes every panel and window ragged.
const SWEEP_N: [usize; 4] = [48, 65, 129, 257];

#[test]
fn full_to_band_dag_matches_barrier_bitwise() {
    // Ragged b (n % b != 0) so the last panel is short on every size the
    // dense stage can afford in a debug-profile test run.
    for (n, b) in [(48, 7), (48, 16), (65, 9), (65, 12)] {
        assert_paths_agree(&format!("full_to_band n={n} b={b}"), || {
            full_to_band_run(n, b, 4, 1000 + n as u64)
        });
    }
}

#[test]
fn band_to_band_dag_matches_barrier_bitwise_ragged_sweep() {
    // h ∤ b everywhere: the clamped final halving of the arbitrary-n
    // schedule produces exactly these shapes.
    for n in SWEEP_N {
        for (b, h) in [(9, 4), (7, 3), (12, 5)] {
            for p in [1, 4] {
                assert_paths_agree(&format!("band_to_band n={n} b={b} h={h} p={p}"), || {
                    band_to_band_run(n, b, h, p, 2000 + n as u64)
                });
            }
        }
    }
}

#[test]
fn full_solve_dag_matches_barrier_bitwise() {
    for n in [48, 65] {
        assert_paths_agree(&format!("symm_eigen_25d_vectors n={n}"), || {
            solve_run(n, 4, 3000 + n as u64)
        });
    }
}

#[test]
fn dag_path_is_deterministic_run_to_run() {
    // Same problem, two independent DAG executions: the executor may
    // schedule tasks in any order, but the charging replay and the
    // output must not depend on it.
    let first = with_lookahead(true, || band_to_band_run(129, 10, 3, 4, 42));
    let second = with_lookahead(true, || band_to_band_run(129, 10, 3, 4, 42));
    assert_eq!(first.0, second.0, "DAG output bits varied between runs");
    assert_eq!(first.1, second.1, "DAG ledger varied between runs");
}

proptest! {
    // Each case runs two reductions; keep the count modest so the suite
    // stays inside the tier-1 budget in the debug profile.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized ragged shapes over the issue's size sweep: any
    /// `(n, b, h)` with `h ∤ b` must be bit-identical between the DAG
    /// and barrier paths, band words and transforms and ledger alike.
    #[test]
    fn band_to_band_paths_agree_on_random_ragged_shapes(
        n_idx in 0usize..SWEEP_N.len(),
        b in 5usize..=12,
        h in 2usize..=4,
        p_idx in 0usize..3,
        seed in 0u64..1 << 16,
    ) {
        let n = SWEEP_N[n_idx];
        let p = [1usize, 2, 4][p_idx];
        prop_assume!(!b.is_multiple_of(h)); // ragged by construction
        assert_paths_agree(
            &format!("proptest band_to_band n={n} b={b} h={h} p={p} seed={seed}"),
            || band_to_band_run(n, b, h, p, seed),
        );
    }
}
