//! Concurrency stress suite for the eigensolver service: 8 client
//! threads × mixed sizes under a seeded scheduler-interleaving shuffle.
//!
//! What it pins:
//! * **no deadlock, no lost jobs** — every admitted ticket is
//!   fulfilled, every client joins, the whole run is bounded;
//! * **typed error paths** — queue-full rejections and expired
//!   deadlines surface as `EigenError::QueueFull` / `::Deadline`, never
//!   as panics or hangs;
//! * **interleaving independence** — the seeded shuffle perturbs
//!   submission order and pause/resume churn perturbs dispatch, yet
//!   every result stays bit-identical to its solo reference.
//!
//! Runtime is bounded (sizes ≤ 64, values-only in the hot loop) so the
//! suite stays CI-fast; the soak binary (`ca-bench --bin soak`) covers
//! sustained load.

use ca_service::{Engine, EigenService, KnobSnapshot, ServiceConfig, SymmEigenJob};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::EigenError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Seeded Fisher–Yates (the vendored `rand` shim has no `seq` module).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 6;

/// Deterministic mixed-size job list (sizes 8..64, both engines, a few
/// vector jobs) shared by every test, identified by index.
fn job_pool() -> Vec<SymmEigenJob> {
    let sizes = [8usize, 13, 16, 24, 32, 48, 64];
    (0..CLIENTS * JOBS_PER_CLIENT)
        .map(|i| {
            let n = sizes[i % sizes.len()];
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
            let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -2.0, 2.0));
            let job = if i % 5 == 0 {
                SymmEigenJob::with_vectors(a, 4, 1)
            } else {
                SymmEigenJob::values(a, 4, 1)
            };
            job.engine(if i % 2 == 0 { Engine::Dnc } else { Engine::Ql })
        })
        .collect()
}

/// FNV-1a over a result's exact output bits.
fn result_hash(r: &ca_service::JobResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    r.eigenvalues.iter().copied().for_each(&mut eat);
    if let Some(v) = &r.vectors {
        v.data().iter().copied().for_each(&mut eat);
    }
    h
}

#[test]
fn eight_clients_mixed_sizes_no_lost_jobs_bit_identical() {
    let pool = job_pool();
    let knobs = KnobSnapshot::capture();
    // Solo references, one per pool entry.
    let solo: Vec<u64> = pool
        .iter()
        .map(|j| result_hash(&ca_service::solve_job(j, knobs).expect("solo")))
        .collect();

    // Three interleaving seeds: per-client submission order is a seeded
    // shuffle of that client's slice, and a chaos thread pulses
    // pause/resume to force requeue-style dispatch patterns.
    for seed in [1u64, 7, 42] {
        let service = Arc::new(EigenService::with_knobs(
            ServiceConfig {
                workers: 4,
                queue_capacity: 256,
                batch_floor: 32,
                ..ServiceConfig::default()
            },
            knobs,
        ));

        let chaos = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    service.pause();
                    std::thread::sleep(Duration::from_millis(1));
                    service.resume();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = Arc::clone(&service);
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut order: Vec<usize> =
                        (c * JOBS_PER_CLIENT..(c + 1) * JOBS_PER_CLIENT).collect();
                    let mut rng = StdRng::seed_from_u64(seed * 1000 + c as u64);
                    shuffle(&mut order, &mut rng);
                    let mut results = Vec::new();
                    for i in order {
                        let ticket = service.submit(pool[i].clone()).expect("capacity 256 holds all");
                        results.push((i, result_hash(&ticket.wait().expect("solve"))));
                    }
                    results
                })
            })
            .collect();

        let mut seen = 0usize;
        for client in clients {
            for (i, hash) in client.join().expect("client thread") {
                assert_eq!(
                    solo[i], hash,
                    "seed {seed}: job {i} diverged from its solo reference"
                );
                seen += 1;
            }
        }
        assert_eq!(seen, pool.len(), "seed {seed}: lost jobs");
        chaos.join().expect("chaos thread");

        let stats = service.stats();
        assert_eq!(stats.submitted, pool.len() as u64);
        assert_eq!(stats.completed, pool.len() as u64);
        assert_eq!((stats.failed, stats.deadline_missed, stats.rejected), (0, 0, 0));
    }
}

#[test]
fn queue_full_under_flood_is_typed_and_nothing_is_lost() {
    // Paused scheduler + tiny queue: floods deterministically overflow.
    let service = Arc::new(EigenService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        paused: true,
        ..ServiceConfig::default()
    }));
    let pool = job_pool();

    let floods: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let job = pool[c].clone();
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut rejected = 0usize;
                for _ in 0..4 {
                    match service.submit(job.clone()) {
                        Ok(t) => admitted.push(t),
                        Err(EigenError::QueueFull { capacity: 4 }) => rejected += 1,
                        Err(other) => panic!("unexpected admission error: {other}"),
                    }
                }
                (admitted, rejected)
            })
        })
        .collect();

    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for f in floods {
        let (a, r) = f.join().expect("flood thread");
        admitted.extend(a);
        rejected += r;
    }
    // 32 attempted, at most 4 fit: the rest must be typed rejections.
    assert_eq!(admitted.len(), 4);
    assert_eq!(rejected, CLIENTS * 4 - 4);
    assert_eq!(service.stats().rejected, rejected as u64);

    // The admitted jobs drain to completion once resumed — not lost.
    service.resume();
    for t in admitted {
        assert!(t.wait().is_ok());
    }
}

#[test]
fn expired_deadlines_are_typed_and_late_jobs_still_run() {
    let service = EigenService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        paused: true,
        ..ServiceConfig::default()
    });
    let pool = job_pool();

    // Half the jobs carry an already-hopeless deadline, half none.
    let tickets: Vec<(bool, _)> = (0..16)
        .map(|i| {
            let job = pool[i].clone();
            let doomed = i % 2 == 0;
            let job = if doomed { job.timeout(Duration::ZERO) } else { job };
            (doomed, service.submit(job).expect("admit"))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(2));
    service.resume();

    for (doomed, t) in tickets {
        match (doomed, t.wait()) {
            (true, Err(EigenError::Deadline { timeout_ms: 0, waited_ms })) => {
                assert!(waited_ms < 60_000, "bounded wait expected, got {waited_ms} ms");
            }
            (true, other) => panic!("doomed job: expected Deadline, got {:?}", other.map(|_| ())),
            (false, Ok(_)) => {}
            (false, other) => panic!("live job failed: {:?}", other.map(|_| ())),
        }
    }
    let stats = service.stats();
    assert_eq!(stats.deadline_missed, 8);
    assert_eq!(stats.completed, 8);
}
