#![allow(clippy::needless_range_loop)]
//! Failure injection: the guard rails must fire on misuse — wrong
//! shapes, out-of-regime parameters, asymmetric inputs, capacity
//! violations — rather than silently producing wrong costs or numbers.
//!
//! Everything with a `try_*` entry point asserts the *typed*
//! [`EigenError`] (the contract a serving layer programs against);
//! `should_panic` remains only for the low-level invariants that have
//! no typed path (capacity checks, kernel shape asserts).

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::{BandedSym, Matrix};
use ca_symm_eig::eigen::{
    try_band_to_band, try_full_to_band, try_singular_values, try_svd, try_symm_eigen_25d,
    EigenError, EigenParams,
};
use ca_symm_eig::pla::dist::DistMatrix;
use ca_symm_eig::pla::grid::Grid;

fn machine(p: usize) -> Machine {
    Machine::new(MachineParams::new(p))
}

#[test]
fn full_to_band_rejects_asymmetric_input() {
    let m = machine(4);
    let a = Matrix::from_fn(16, 16, |i, j| (i * 16 + j) as f64);
    assert!(matches!(
        try_full_to_band(&m, &EigenParams::new(4, 1), &a, 4),
        Err(EigenError::AsymmetricInput { .. })
    ));
    assert_eq!(m.report().horizontal_words, 0, "rejected request charged the ledger");
}

#[test]
fn full_to_band_rejects_overwide_bandwidth() {
    // Non-dividing band-widths are legal now (arbitrary n); b ≥ n is
    // still nonsense.
    let m = machine(4);
    let mut a = Matrix::from_fn(16, 16, |i, j| ((i + j) as f64).sin());
    a.symmetrize();
    assert!(matches!(
        try_full_to_band(&m, &EigenParams::new(4, 1), &a, 16),
        Err(EigenError::InvalidBandwidth { n: 16, b: 16 })
    ));
    assert!(matches!(
        try_full_to_band(&m, &EigenParams::new(4, 1), &a, 0),
        Err(EigenError::InvalidBandwidth { n: 16, b: 0 })
    ));
    // The panicking shim reports the same condition.
    let err = std::panic::catch_unwind(|| {
        ca_symm_eig::eigen::full_to_band(&m, &EigenParams::new(4, 1), &a, 16)
    })
    .expect_err("b = n must panic");
    let msg = err.downcast_ref::<String>().expect("panic message");
    assert!(msg.contains("1 ≤ b < n"), "unexpected message: {msg}");
}

#[test]
fn band_to_band_rejects_bad_k() {
    // k need not divide b any more (targets round up), but k > b is
    // still rejected.
    let m = machine(2);
    let b = BandedSym::zeros(16, 6, 6);
    assert!(matches!(
        try_band_to_band(&m, &Grid::all(2), &b, 7, 1),
        Err(EigenError::InvalidReductionFactor { b: 6, k: 7 })
    ));
    assert!(matches!(
        try_band_to_band(&m, &Grid::all(2), &b, 0, 1),
        Err(EigenError::InvalidReductionFactor { b: 6, k: 0 })
    ));
    assert_eq!(m.report().horizontal_words, 0);
}

#[test]
fn params_reject_excess_replication() {
    assert_eq!(
        EigenParams::try_new(16, 4), // 4³ = 64 > 16
        Err(EigenError::ReplicationOutOfRegime { p: 16, c: 4 })
    );
}

#[test]
fn params_reject_non_square_layer() {
    assert_eq!(
        EigenParams::try_new(24, 2),
        Err(EigenError::NonSquareGrid { p: 24, c: 2 })
    );
}

#[test]
fn solver_rejects_degenerate_sizes() {
    // Arbitrary n ≥ 2 is supported now (n = 24 solves fine); n < 2 is
    // still rejected.
    let m = machine(4);
    let a = Matrix::from_fn(1, 1, |_, _| 3.0);
    assert!(matches!(
        try_symm_eigen_25d(&m, &EigenParams::new(4, 1), &a),
        Err(EigenError::TooSmall { n: 1 })
    ));
}

#[test]
fn svd_surfaces_embedded_solver_errors() {
    // try_svd / try_singular_values route through the embedded
    // eigensolve, so grid errors surface typed, before any charge.
    let m = machine(4);
    let a = Matrix::from_fn(6, 4, |i, j| ((i * 4 + j) as f64).cos());
    let mut bad = EigenParams::new(4, 1);
    bad.q = 3;
    assert!(matches!(
        try_svd(&m, &bad, &a),
        Err(EigenError::NonSquareGrid { .. })
    ));
    assert!(matches!(
        try_singular_values(&m, &bad, &a),
        Err(EigenError::NonSquareGrid { .. })
    ));
    // Degenerate 0×0 input: the m+n = 0 embedding is below the solver's
    // minimum dimension.
    let empty = Matrix::zeros(0, 0);
    assert!(matches!(
        try_svd(&m, &EigenParams::new(4, 1), &empty),
        Err(EigenError::TooSmall { n: 0 })
    ));
    assert!(matches!(
        try_singular_values(&m, &EigenParams::new(4, 1), &empty),
        Err(EigenError::TooSmall { n: 0 })
    ));
    assert_eq!(m.report().horizontal_words, 0);
    assert_eq!(m.report().supersteps, 0);
}

#[test]
fn solver_surfaces_invalid_inputs_as_typed_errors() {
    use ca_symm_eig::eigen::{try_symm_eigen_25d, EigenError};
    let m = machine(4);
    let params = EigenParams::new(4, 1);
    // Non-square input.
    let rect = Matrix::zeros(4, 6);
    assert!(matches!(
        try_symm_eigen_25d(&m, &params, &rect),
        Err(EigenError::NonSquareInput { rows: 4, cols: 6 })
    ));
    // Asymmetric input.
    let askew = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as f64);
    assert!(matches!(
        try_symm_eigen_25d(&m, &params, &askew),
        Err(EigenError::AsymmetricInput { .. })
    ));
    // Inconsistent hand-rolled grid parameters.
    let mut bad = EigenParams::new(4, 1);
    bad.q = 3;
    let mut a = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64).sin());
    a.symmetrize();
    assert!(matches!(
        try_symm_eigen_25d(&m, &bad, &a),
        Err(EigenError::NonSquareGrid { .. })
    ));
    // Nothing was charged to the ledger by a rejected request.
    assert_eq!(m.report().horizontal_words, 0);
    assert_eq!(m.report().supersteps, 0);
}

#[test]
fn solver_rejects_non_finite_input_up_front() {
    // NaN compares false against every tolerance, so without an
    // explicit gate a NaN matrix sails through the symmetry check and
    // defeats every convergence test deep in the reduction. The solver
    // now rejects non-finite entries at validation, naming the first
    // offending coordinate, before anything is charged to the ledger.
    let m = machine(4);
    let params = EigenParams::new(4, 1);
    let mut a = Matrix::from_fn(16, 16, |i, j| ((i + j) as f64).sin());
    a.symmetrize();
    a.set(3, 7, f64::NAN);
    assert!(matches!(
        try_symm_eigen_25d(&m, &params, &a),
        Err(EigenError::NonFiniteInput { row: 3, col: 7 })
    ));
    // Same gate on the eigenvector path, and for infinities.
    a.set(3, 7, f64::NEG_INFINITY);
    assert!(matches!(
        ca_symm_eig::eigen::try_symm_eigen_25d_vectors(&m, &params, &a),
        Err(EigenError::NonFiniteInput { row: 3, col: 7 })
    ));
    // An all-NaN matrix is caught at (0, 0) rather than reaching the
    // sequential finale's iteration budget.
    let nan = Matrix::from_fn(16, 16, |_, _| f64::NAN);
    assert!(matches!(
        try_symm_eigen_25d(&m, &params, &nan),
        Err(EigenError::NonFiniteInput { row: 0, col: 0 })
    ));
    assert_eq!(m.report().horizontal_words, 0, "rejected request charged the ledger");
    assert_eq!(m.report().supersteps, 0);
}

#[test]
#[should_panic(expected = "inner dimensions")]
fn carma_rejects_shape_mismatch() {
    let m = machine(2);
    let a = Matrix::zeros(4, 5);
    let b = Matrix::zeros(4, 4);
    let _ = ca_symm_eig::pla::carma::carma(&m, &Grid::all(2), &a, &b, 1);
}

#[test]
#[should_panic(expected = "block out of range")]
fn dist_matrix_rejects_out_of_range_reads() {
    let m = machine(4);
    let g = Grid::new_2d((0..4).collect(), 2, 2);
    let d = DistMatrix::zeros(&m, &g, 8, 8);
    let _ = d.read_block(&m, 0, 6, 6, 4, 4);
}

#[test]
#[should_panic(expected = "fill analysis violated")]
fn banded_capacity_violation_is_caught() {
    let mut b = BandedSym::zeros(10, 2, 3);
    b.set(9, 0, 1.0);
}

#[test]
#[should_panic(expected = "capacity")]
fn reduce_band_requires_bulge_capacity() {
    let mut b = BandedSym::zeros(16, 4, 4); // capacity == bandwidth: no bulge room
    ca_symm_eig::dla::bulge::reduce_band(&mut b, 2);
}

#[test]
#[should_panic(expected = "requires m ≥ n")]
fn rect_qr_rejects_wide_input() {
    let m = machine(2);
    let g = Grid::new_2d(vec![0, 1], 2, 1);
    let a = Matrix::zeros(4, 8);
    let d = DistMatrix::from_dense(&m, &g, &a);
    let _ = ca_symm_eig::pla::rect_qr::rect_qr(&m, &d);
}

#[test]
fn machine_free_does_not_underflow_in_release() {
    // Memory tracking saturates rather than wrapping.
    let m = machine(1);
    m.alloc(0, 10);
    m.free(0, 10);
    assert_eq!(m.report().peak_memory_words, 10);
}

#[test]
#[should_panic(expected = "zero pivot")]
fn lu_rejects_singular_leading_minor() {
    let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 1.0]);
    let _ = ca_symm_eig::dla::lu::lu_nopivot(&a);
}
