//! Span-tree pin tests for the `ca_obs` tracing layer.
//!
//! One test (the global ring and trace level are process-wide, so the
//! phases share one `#[test]` instead of racing each other):
//!
//! * level 1: the solver emits exactly one stage span per
//!   [`StageCosts`] record, under the same name, and the spans'
//!   metered F/W/Q/S deltas sum to the machine ledger's totals;
//! * level 2: kernel-detail spans appear, and per thread every pair of
//!   spans is properly nested or disjoint (the guards are scoped, so
//!   intervals on one thread must form a tree).

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::solver::StageCosts;
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use ca_symm_eig::obs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn solve(n: usize, p: usize, seed: u64) -> (Machine, StageCosts) {
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::random_symmetric(&mut rng, n);
    let (_, stages) = symm_eigen_25d(&machine, &params, &a);
    (machine, stages)
}

/// Per-thread nesting check: sweep the spans in start order and verify
/// each fits inside whatever span encloses it.
fn assert_intervals_nest(tid: u32, events: &[obs::Event]) {
    let mut spans: Vec<&obs::Event> = events.iter().collect();
    spans.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns)));
    let mut enclosing_ends: Vec<u64> = Vec::new();
    for e in spans {
        while enclosing_ends.last().is_some_and(|&end| e.start_ns >= end) {
            enclosing_ends.pop();
        }
        if let Some(&end) = enclosing_ends.last() {
            assert!(
                e.end_ns <= end,
                "tid {tid}: span {:?} [{}, {}] straddles the end ({end}) of its enclosing span",
                e.name(),
                e.start_ns,
                e.end_ns
            );
        }
        enclosing_ends.push(e.end_ns);
    }
}

#[test]
fn stage_spans_pin_names_costs_and_nesting() {
    // Phase 1 — level 1: stage spans only, 1:1 with StageCosts.
    obs::set_level(1);
    let _ = obs::drain();
    let _ = obs::take_dropped();
    let (machine, stages) = solve(64, 4, 42);
    obs::set_level(0);
    let events = obs::drain();
    assert_eq!(obs::take_dropped(), 0, "stage-level trace must not overflow the ring");

    let span_names: Vec<&str> = events.iter().map(|e| e.name()).collect();
    let stage_names: Vec<&str> = stages.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        span_names, stage_names,
        "level 1 must emit exactly the StageCosts stages, in order, under the same names"
    );
    assert!(
        !events.iter().any(|e| {
            let n = e.name();
            n.starts_with("exec.") || n.starts_with("gemm.") || n.starts_with("qr.")
                || n.starts_with("driver.")
        }),
        "kernel-detail spans must stay inert at level 1"
    );

    // The spans' metered deltas must sum to the machine ledger —
    // tracing reads the same Costs the StageRecords carry.
    let ledger = machine.report();
    let sum = |f: fn(&obs::Event) -> u64| events.iter().map(f).sum::<u64>();
    assert_eq!(sum(|e| e.flops), stages.total().flops);
    assert_eq!(sum(|e| e.horizontal_words), ledger.horizontal_words);
    assert_eq!(sum(|e| e.vertical_words), ledger.vertical_words);
    assert_eq!(sum(|e| e.supersteps), ledger.supersteps);
    for ev in &events {
        assert!(ev.end_ns >= ev.start_ns, "span {:?} ends before it starts", ev.name());
    }

    // Phase 2 — level 2: kernel spans appear and nest per thread.
    obs::set_level(2);
    let _ = obs::drain();
    let _ = obs::take_dropped();
    let (_, stages2) = solve(64, 4, 42);
    obs::set_level(0);
    let events2 = obs::drain();

    assert!(
        events2.iter().any(|e| e.name().starts_with("driver.")),
        "level 2 must record stage-driver spans"
    );
    assert!(
        events2.len() > stages2.stages.len(),
        "level 2 must record more than the stage spans"
    );
    assert!(
        events2.iter().any(|e| e.depth > 0),
        "kernel spans under a stage span must carry depth > 0"
    );

    let mut by_tid: BTreeMap<u32, Vec<obs::Event>> = BTreeMap::new();
    for ev in events2 {
        by_tid.entry(ev.tid).or_default().push(ev);
    }
    for (tid, evs) in &by_tid {
        assert_intervals_nest(*tid, evs);
    }
}
