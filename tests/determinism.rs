#![allow(clippy::needless_range_loop)]
//! Determinism: the virtual machine is single-threaded by design, so a
//! run is a pure function of (matrix, machine configuration) — same
//! inputs must give bitwise-identical eigenvalues *and* identical cost
//! ledgers. This is what makes the experiment harness's numbers
//! reproducible and the cost-regression tests meaningful.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::{symm_eigen_25d, symm_eigen_25d_vectors, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_once(n: usize, p: usize, c: usize, seed: u64) -> (Vec<f64>, ca_symm_eig::bsp::Costs) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::random_symmetric(&mut rng, n);
    let m = Machine::new(MachineParams::new(p));
    let (ev, _) = symm_eigen_25d(&m, &EigenParams::new(p, c), &a);
    (ev, m.report())
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let (ev1, c1) = run_once(64, 16, 1, 42);
    let (ev2, c2) = run_once(64, 16, 1, 42);
    assert_eq!(ev1, ev2, "eigenvalues must be bitwise identical");
    assert_eq!(c1, c2, "cost ledgers must be identical");
}

#[test]
fn generator_is_seed_deterministic() {
    let mut r1 = StdRng::seed_from_u64(7);
    let mut r2 = StdRng::seed_from_u64(7);
    let a1 = gen::symmetric_with_spectrum(&mut r1, &gen::linspace_spectrum(16, -1.0, 1.0));
    let a2 = gen::symmetric_with_spectrum(&mut r2, &gen::linspace_spectrum(16, -1.0, 1.0));
    assert_eq!(a1, a2);
}

#[test]
fn vectors_path_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(43);
    let a = gen::random_symmetric(&mut rng, 32);
    let run = |a: &ca_symm_eig::dla::Matrix| {
        let m = Machine::new(MachineParams::new(4));
        let (ev, v, _) = symm_eigen_25d_vectors(&m, &EigenParams::new(4, 1), a);
        (ev, v)
    };
    let (ev1, v1) = run(&a);
    let (ev2, v2) = run(&a);
    assert_eq!(ev1, ev2);
    assert_eq!(v1, v2);
}

#[test]
fn cost_ledger_independent_of_matrix_values() {
    // Costs depend only on structure (sizes, configuration) — two
    // different matrices of the same shape must produce the same ledger.
    let (_, c1) = run_once(64, 16, 1, 1);
    let (_, c2) = run_once(64, 16, 1, 2);
    assert_eq!(
        c1.horizontal_words, c2.horizontal_words,
        "W must be data-independent"
    );
    assert_eq!(c1.supersteps, c2.supersteps);
    assert_eq!(c1.flops, c2.flops);
}
