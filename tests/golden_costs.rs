#![allow(clippy::needless_range_loop)]
//! Golden cost pins: the exact ledger values of a few fixed
//! configurations. The simulator is deterministic and costs are
//! data-independent, so these numbers are stable; any accounting change
//! (a collective's charge formula, a stage's structure) shows up here
//! as an exact diff and must be reviewed deliberately rather than
//! slipping into the experiment tables unnoticed.
//!
//! When an intentional accounting change lands, re-run with
//! `UPDATE_GOLDEN=1 cargo test --test golden_costs -- --nocapture`
//! to print the new values, then update the constants.

use ca_symm_eig::bsp::{Costs, Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(n: usize, p: usize, c: usize) -> Costs {
    let mut rng = StdRng::seed_from_u64(12345);
    let a = gen::random_symmetric(&mut rng, n);
    let m = Machine::new(MachineParams::new(p));
    let _ = symm_eigen_25d(&m, &EigenParams::new(p, c), &a);
    m.report()
}

fn check(name: &str, got: Costs, want_w: u64, want_s: u64, want_f: u64) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        println!(
            "{name}: W = {}, S = {}, F = {}",
            got.horizontal_words, got.supersteps, got.flops
        );
        return;
    }
    assert_eq!(got.horizontal_words, want_w, "{name}: W drifted");
    assert_eq!(got.supersteps, want_s, "{name}: S drifted");
    assert_eq!(got.flops, want_f, "{name}: F drifted");
}

#[test]
fn golden_small_2d() {
    check("n=64 p=4 c=1", run(64, 4, 1), 22480, 50, 1136044);
}

#[test]
fn golden_medium_2d() {
    check("n=64 p=16 c=1", run(64, 16, 1), 26924, 333, 655068);
}

#[test]
fn golden_replicated() {
    // Re-pinned again for the divide-and-conquer finale: the sequential
    // eigensolve charge dropped from 6nb² + 30n² (QL rotations) to
    // 6nb² + 16n² (secular solves + row-carrier merge GEMMs), so F
    // fell by exactly 14n² on every configuration.
    // Earlier re-pin, when power-of-two band-width snapping was removed: the
    // initial band-width for p = 64 is now the paper's exact
    // ⌊64/log₂ 64⌋ = 10 rather than 8, which reshapes the reduction
    // chain (fewer, larger chases: S down, F up).
    check("n=64 p=64 c=4", run(64, 64, 4), 17882, 1304, 297004);
}
