#![allow(clippy::needless_range_loop)]
//! Arbitrary problem sizes: the solver pipeline accepts any `n ≥ 2` —
//! odd, prime, `2^k ± 1` — at every supported grid, with no internal
//! padding. These tests pin the acceptance matrix for the
//! power-of-two-removal work plus a randomized sweep over awkward
//! shapes.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::tridiag::spectrum_distance;
use ca_symm_eig::dla::Matrix;
use ca_symm_eig::eigen::{
    symm_eigen_25d, symm_eigen_25d_vectors, try_symm_eigen_25d, EigenError, EigenParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One eigenvalue run against a known spectrum; also checks that the
/// per-stage cost records cover the machine ledger exactly (no phase
/// runs unmetered, none is double-counted).
fn check_eigenvalues(n: usize, p: usize, c: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spectrum = gen::linspace_spectrum(n, -1.0, 1.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let m = Machine::new(MachineParams::new(p));
    let (ev, stages) = symm_eigen_25d(&m, &EigenParams::new(p, c), &a);
    assert_eq!(ev.len(), n);
    let dist = spectrum_distance(&ev, &spectrum);
    assert!(
        dist < 1e-7 * n as f64,
        "n={n} p={p} c={c}: spectrum distance {dist}"
    );
    let total = stages.total();
    let ledger = m.report();
    assert_eq!(
        total.horizontal_words, ledger.horizontal_words,
        "n={n} p={p} c={c}: stage W does not cover the ledger"
    );
    assert_eq!(
        total.supersteps, ledger.supersteps,
        "n={n} p={p} c={c}: stage S does not cover the ledger"
    );
}

#[test]
fn acceptance_matrix_no_power_of_two_requirement() {
    // The issue's acceptance matrix: even-composite, odd, even-ragged,
    // and 2^k + 1 sizes at three grids. No panic, no internal padding.
    for n in [48usize, 65, 100, 129] {
        for (p, c) in [(4usize, 1usize), (16, 1), (8, 2)] {
            check_eigenvalues(n, p, c, 7000 + n as u64);
        }
    }
}

#[test]
fn tiny_sizes_solve() {
    for n in [2usize, 3, 4, 5] {
        for (p, c) in [(1usize, 1usize), (4, 1)] {
            check_eigenvalues(n, p, c, 7100 + n as u64);
        }
    }
}

#[test]
fn invalid_grids_surface_as_typed_errors_not_panics() {
    // (p, c) pairs with no q × q × c grid or outside the replication
    // regime come back as Err from the try_ constructors…
    assert!(matches!(
        EigenParams::try_new(6, 1),
        Err(EigenError::NonSquareGrid { p: 6, c: 1 })
    ));
    assert!(matches!(
        EigenParams::try_new(12, 5),
        Err(EigenError::ReplicationMismatch { p: 12, c: 5 })
    ));
    assert!(matches!(
        EigenParams::try_new(16, 4),
        Err(EigenError::ReplicationOutOfRegime { p: 16, c: 4 })
    ));
    // …and a hand-rolled inconsistent grid is rejected by the solver
    // itself before any cost is charged.
    let m = Machine::new(MachineParams::new(4));
    let mut bad = EigenParams::new(4, 1);
    bad.p = 6;
    let mut rng = StdRng::seed_from_u64(7300);
    let a = gen::random_symmetric(&mut rng, 8);
    assert!(try_symm_eigen_25d(&m, &bad, &a).is_err());
    assert_eq!(m.report().supersteps, 0);
}

/// Awkward dimensions: odd, prime, and `2^k ± 1` shapes around a base
/// size, never power-of-two-friendly by construction.
fn awkward_n() -> impl Strategy<Value = usize> {
    (3usize..=200, 0usize..4).prop_map(|(base, kind)| match kind {
        // Any size in range.
        0 => base,
        // Odd.
        1 => (base | 1).min(199),
        // Next prime at or above base.
        2 => {
            let is_prime =
                |x: usize| x >= 2 && (2..x).take_while(|d| d * d <= x).all(|d| !x.is_multiple_of(d));
            (base..=211).find(|&x| is_prime(x)).unwrap_or(199)
        }
        // Power of two ± 1.
        _ => {
            let pow = base.next_power_of_two().clamp(4, 128);
            if base % 2 == 0 {
                pow - 1
            } else {
                pow + 1
            }
        }
    })
}

fn grid_pair() -> impl Strategy<Value = (usize, usize)> {
    (0usize..5).prop_map(|i| [(1usize, 1usize), (4, 1), (16, 1), (8, 2), (64, 4)][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn eigenvalue_sweep_over_arbitrary_shapes(
        n in awkward_n(),
        (p, c) in grid_pair(),
        seed in 0u64..1000,
    ) {
        check_eigenvalues(n, p, c, seed);
    }

    #[test]
    fn eigenvector_sweep_over_arbitrary_shapes(
        n in (3usize..=56, 0usize..2).prop_map(|(b, k)| if k == 0 { b } else { (b | 1).min(55) }),
        (p, c) in grid_pair(),
        seed in 0u64..1000,
    ) {
        // Smaller sizes: the vectors path is O(n³) per back-transform
        // stage and these run in debug builds.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_symmetric(&mut rng, n);
        let m = Machine::new(MachineParams::new(p));
        let (ev, v, stages) = symm_eigen_25d_vectors(&m, &EigenParams::new(p, c), &a);
        prop_assert_eq!(ev.len(), n);
        // Columns orthonormal, A·V = V·diag(λ).
        let vtv = matmul(&v, Trans::T, &v, Trans::N);
        prop_assert!(vtv.max_diff(&Matrix::identity(n)) < 1e-7 * n as f64);
        let av = matmul(&a, Trans::N, &v, Trans::N);
        let mut vl = v.clone();
        for i in 0..n {
            for j in 0..n {
                vl.set(i, j, v.get(i, j) * ev[j]);
            }
        }
        prop_assert!(av.max_diff(&vl) < 1e-7 * n as f64);
        // Stage records cover the ledger.
        let total = stages.total();
        let ledger = m.report();
        prop_assert_eq!(total.horizontal_words, ledger.horizontal_words);
        prop_assert_eq!(total.supersteps, ledger.supersteps);
    }
}
