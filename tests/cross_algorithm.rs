#![allow(clippy::needless_range_loop)]
//! Cross-crate integration: all four eigensolvers must agree with each
//! other and with the prescribed spectrum on the same input.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::dla::tridiag::spectrum_distance;
use ca_symm_eig::eigen::baselines::{elpa_two_stage, scalapack::scalapack_eigenvalues};
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use ca_symm_eig::pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(n: usize, seed: u64) -> (Vec<f64>, ca_symm_eig::dla::Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spectrum = gen::linspace_spectrum(n, -6.0, 2.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    (spectrum, a)
}

#[test]
fn all_solvers_agree_on_prescribed_spectrum() {
    let n = 64;
    let p = 16;
    let (spectrum, a) = problem(n, 400);
    let tol = 1e-8 * n as f64;

    let m = Machine::new(MachineParams::new(p));
    let (ev_25d, _) = symm_eigen_25d(&m, &EigenParams::new(p, 1), &a);
    assert!(spectrum_distance(&ev_25d, &spectrum) < tol, "2.5d");

    let m = Machine::new(MachineParams::new(p));
    let ev_sca = scalapack_eigenvalues(&m, &Grid::all(p).squarest_2d(), &a);
    assert!(spectrum_distance(&ev_sca, &spectrum) < tol, "scalapack");

    let m = Machine::new(MachineParams::new(p));
    let ev_elpa = elpa_two_stage(&m, p, &a);
    assert!(spectrum_distance(&ev_elpa, &spectrum) < tol, "elpa");

    // Pairwise agreement tighter than against the generator.
    assert!(spectrum_distance(&ev_25d, &ev_sca) < tol);
    assert!(spectrum_distance(&ev_25d, &ev_elpa) < tol);
}

#[test]
fn solver_agrees_across_machine_configurations() {
    // The same matrix solved on different (p, c) machines must give the
    // same spectrum: the virtual machine must not affect numerics beyond
    // roundoff-level reordering.
    let n = 64;
    let (spectrum, a) = problem(n, 401);
    let tol = 1e-8 * n as f64;
    for (p, c) in [(1usize, 1usize), (4, 1), (16, 1), (8, 2), (64, 4)] {
        let m = Machine::new(MachineParams::new(p));
        let (ev, _) = symm_eigen_25d(&m, &EigenParams::new(p, c), &a);
        assert!(
            spectrum_distance(&ev, &spectrum) < tol,
            "p={p} c={c} drifted by {}",
            spectrum_distance(&ev, &spectrum)
        );
    }
}

#[test]
fn degenerate_and_extreme_spectra() {
    let n = 32;
    let p = 4;
    let tol = 1e-8 * n as f64;
    let cases: Vec<Vec<f64>> = vec![
        vec![1.0; n],                                             // fully degenerate
        (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect(), // two clusters
        (0..n).map(|i| 10f64.powi(-(i as i32) / 8)).collect(),    // wide dynamic range
        gen::linspace_spectrum(n, -1e-6, 1e-6),                   // tiny scale
    ];
    for (idx, spectrum) in cases.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(402 + idx as u64);
        let mut sorted = spectrum.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let a = gen::symmetric_with_spectrum(&mut rng, spectrum);
        let m = Machine::new(MachineParams::new(p));
        let (ev, _) = symm_eigen_25d(&m, &EigenParams::new(p, 1), &a);
        let scale = sorted.last().unwrap().abs().max(1e-12);
        assert!(
            spectrum_distance(&ev, &sorted) < tol * scale,
            "case {idx}: drift {}",
            spectrum_distance(&ev, &sorted)
        );
    }
}

#[test]
fn banded_intermediates_verified_by_inertia_counts() {
    // Eigensolver-independent verification: every banded intermediate of
    // the reduction ladder must have the same inertia (count of
    // eigenvalues below any probe) as the prescribed spectrum —
    // checked by banded LDLᵀ, with no further reduction involved.
    use ca_symm_eig::dla::sturm::count_below_banded;
    use ca_symm_eig::eigen::{band_to_band, full_to_band};
    use ca_symm_eig::pla::grid::Grid as PGrid;

    let n = 64;
    let p = 16;
    let (spectrum, a) = problem(n, 410);
    let m = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let (band, _) = full_to_band(&m, &params, &a, 16);
    let probes = [-5.0, -3.0, -1.0, 0.0, 1.5];
    for probe in probes {
        let expected = spectrum.iter().filter(|l| **l < probe).count();
        assert_eq!(count_below_banded(&band, probe), expected, "after full→band");
    }
    let (half, _) = band_to_band(&m, &PGrid::all(p), &band, 2, 1);
    for probe in probes {
        let expected = spectrum.iter().filter(|l| **l < probe).count();
        assert_eq!(count_below_banded(&half, probe), expected, "after band→band");
    }
}

#[test]
fn eigenvector_decomposition_reconstructs_input() {
    use ca_symm_eig::dla::gemm::{matmul, Trans};
    use ca_symm_eig::eigen::symm_eigen_25d_vectors;
    let n = 64;
    let p = 16;
    let (_, a) = problem(n, 411);
    let m = Machine::new(MachineParams::new(p));
    let (ev, v, _) = symm_eigen_25d_vectors(&m, &EigenParams::new(p, 1), &a);
    // V·Λ·Vᵀ = A.
    let mut vl = v.clone();
    for i in 0..n {
        for j in 0..n {
            vl.set(i, j, v.get(i, j) * ev[j]);
        }
    }
    let recon = matmul(&vl, Trans::N, &v, Trans::T);
    assert!(
        recon.max_diff(&a) < 1e-7 * n as f64,
        "V·Λ·Vᵀ deviates from A by {}",
        recon.max_diff(&a)
    );
}

#[test]
fn physical_matrices_laplacian() {
    // 2D Laplacian: eigenvalues are known analytically:
    // 4 − 2cos(iπ/(nx+1)) − 2cos(jπ/(ny+1)).
    let (nx, ny) = (8, 8);
    let n = nx * ny;
    let a = gen::laplacian_2d(nx, ny);
    let mut expected: Vec<f64> = (1..=nx)
        .flat_map(|i| {
            (1..=ny).map(move |j| {
                4.0 - 2.0 * (i as f64 * std::f64::consts::PI / (nx as f64 + 1.0)).cos()
                    - 2.0 * (j as f64 * std::f64::consts::PI / (ny as f64 + 1.0)).cos()
            })
        })
        .collect();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let m = Machine::new(MachineParams::new(16));
    let (ev, _) = symm_eigen_25d(&m, &EigenParams::new(16, 1), &a);
    assert!(spectrum_distance(&ev, &expected) < 1e-9 * n as f64);
}
