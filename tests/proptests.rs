#![allow(clippy::needless_range_loop)]
//! Property-based tests (proptest) on the core invariants:
//! orthogonality and reconstruction of every QR path, eigenvalue
//! preservation of every reduction, Sturm-count verification of whole
//! spectra, and distribution round-trips.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::qr::{explicit_q, qr_factor};
use ca_symm_eig::dla::sturm;
use ca_symm_eig::dla::tridiag::banded_eigenvalues;
use ca_symm_eig::dla::{bulge, BandedSym, Matrix};
use ca_symm_eig::pla::dist::DistMatrix;
use ca_symm_eig::pla::grid::Grid;
use ca_symm_eig::pla::tsqr::tsqr_explicit;
use proptest::prelude::*;

/// Strategy: a dense matrix with entries in [-1, 1].
fn matrix_strategy(max_m: usize, max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_m, 1..=max_n).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-1.0f64..1.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data))
    })
}

/// Strategy: a symmetric banded matrix (n, b, dense storage).
fn banded_strategy() -> impl Strategy<Value = (Matrix, usize)> {
    (8usize..=40, 1usize..=3).prop_flat_map(|(n, half)| {
        // Even band-widths so a k = 2 halving always divides.
        let b = (2 * half).min(n - 2).max(2);
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
            let mut a = Matrix::from_vec(n, n, data);
            for i in 0..n {
                for j in 0..n {
                    if i.abs_diff(j) > b {
                        a.set(i, j, 0.0);
                    }
                }
            }
            a.symmetrize();
            (a, b)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qr_orthogonality_and_reconstruction(a in matrix_strategy(24, 12)) {
        prop_assume!(a.rows() >= a.cols());
        let f = qr_factor(&a, 4);
        let k = f.k();
        let q = explicit_q(&f.u, &f.t, k);
        let qtq = matmul(&q, Trans::T, &q, Trans::N);
        prop_assert!(qtq.max_diff(&Matrix::identity(k)) < 1e-9);
        let qr = matmul(&q, Trans::N, &f.r, Trans::N);
        prop_assert!(qr.max_diff(&a) < 1e-9 * (a.norm_max() + 1.0));
        // R upper-triangular.
        for i in 0..k {
            for j in 0..i.min(f.r.cols()) {
                prop_assert!(f.r.get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn tsqr_matches_local_qr_invariants(a in matrix_strategy(48, 6), g in 1usize..=4) {
        prop_assume!(a.rows() >= a.cols() * g.max(1));
        let m = Machine::new(MachineParams::new(g));
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, r) = tsqr_explicit(&m, &da);
        let qd = q.assemble_unchecked();
        let qtq = matmul(&qd, Trans::T, &qd, Trans::N);
        prop_assert!(qtq.max_diff(&Matrix::identity(a.cols())) < 1e-9);
        let qr = matmul(&qd, Trans::N, &r, Trans::N);
        prop_assert!(qr.max_diff(&a) < 1e-9 * (a.norm_max() + 1.0));
    }

    #[test]
    fn band_reduction_preserves_whole_spectrum((a, b) in banded_strategy()) {
        prop_assume!(b >= 2);
        let n = a.rows();
        let before = BandedSym::from_dense(&a, b, b);
        let reference = banded_eigenvalues(&before);

        let mut bm = BandedSym::from_dense(&a, b, (2 * b).min(n - 1));
        bulge::reduce_band(&mut bm, 2);
        prop_assert!(bm.measured_bandwidth(1e-9) <= b / 2 + b % 2 + (b / 2 == 0) as usize);

        let after = banded_eigenvalues(&bm);
        for (x, y) in reference.iter().zip(&after) {
            prop_assert!((x - y).abs() < 1e-8 * n as f64, "{x} vs {y}");
        }
        // Sturm cross-check: counts below a few probes agree between the
        // QL spectrum and the reduced matrix's tridiagonal form.
        let mut work = BandedSym::from_dense(&a, b, (2 * b).min(n - 1));
        bulge::reduce_band(&mut work, b); // straight to tridiagonal
        let (d, e) = work.tridiagonal();
        for probe in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            let count = sturm::count_below(&d, &e, probe);
            let expected = reference.iter().filter(|l| **l < probe).count();
            prop_assert!(
                count.abs_diff(expected) <= 1,
                "Sturm count {count} vs spectrum count {expected} at {probe}"
            );
        }
    }

    #[test]
    fn dist_matrix_roundtrips(a in matrix_strategy(20, 20), pr in 1usize..=3, pc in 1usize..=3) {
        let p = pr * pc;
        let m = Machine::new(MachineParams::new(p));
        let grid = Grid::new_2d((0..p).collect(), pr, pc);
        let d = DistMatrix::from_dense(&m, &grid, &a);
        prop_assert!(d.assemble_unchecked().max_diff(&a) < 1e-15);
        let gathered = d.gather(&m, 0);
        prop_assert!(gathered.max_diff(&a) < 1e-15);
        // Redistribution to a different shape preserves content.
        let grid2 = Grid::new_2d((0..p).collect(), pc, pr);
        let d2 = d.redistribute(&m, &grid2);
        prop_assert!(d2.assemble_unchecked().max_diff(&a) < 1e-15);
    }

    #[test]
    fn carma_matches_sequential(a in matrix_strategy(16, 12), n in 1usize..=10, g in 1usize..=6) {
        let k = a.cols();
        let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let m = Machine::new(MachineParams::new(g));
        let c = ca_symm_eig::pla::carma::carma(&m, &Grid::all(g), &a, &b, 1);
        let want = matmul(&a, Trans::N, &b, Trans::N);
        prop_assert!(c.max_diff(&want) < 1e-10 * (k as f64 + 1.0));
    }

    #[test]
    fn banded_symv_matches_dense_product(
        n in 4usize..24,
        b in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let b = b.min(n - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = ca_symm_eig::dla::gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let want = ca_symm_eig::dla::gemm::symv(&dense, &x);
        let got = ca_symm_eig::dla::sym::symv_banded(&bm, &x);
        for (w, g) in want.iter().zip(&got) {
            prop_assert!((w - g).abs() < 1e-10);
        }
    }

    #[test]
    fn numroc_partitions_and_roundtrips(
        n in 1usize..200,
        block in 1usize..9,
        nprocs in 1usize..7,
    ) {
        use ca_symm_eig::pla::cyclic::{global_to_local, local_to_global, numroc};
        let total: usize = (0..nprocs).map(|c| numroc(n, block, c, nprocs)).sum();
        prop_assert_eq!(total, n);
        for g in 0..n {
            let (owner, l) = global_to_local(g, block, nprocs);
            prop_assert!(owner < nprocs);
            prop_assert!(l < numroc(n, block, owner, nprocs));
            prop_assert_eq!(local_to_global(owner, l, block, nprocs), g);
        }
    }

    #[test]
    fn two_sided_update_keeps_exact_symmetry(
        n in 2usize..16,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = ca_symm_eig::dla::gen::random_symmetric(&mut rng, n);
        let u = ca_symm_eig::dla::gen::random_matrix(&mut rng, n, k);
        let v = ca_symm_eig::dla::gen::random_matrix(&mut rng, n, k);
        ca_symm_eig::dla::sym::two_sided_update(&mut a, &u, &v);
        prop_assert_eq!(a.asymmetry(), 0.0);
        // Trace identity: tr(A + UVᵀ + VUᵀ) = tr(A) + 2·Σᵢ (U∘V)ᵢ.
    }

    #[test]
    fn tridiag_ql_matches_sturm_bisection(
        d in proptest::collection::vec(-3.0f64..3.0, 4..24),
        scale in 0.1f64..2.0,
    ) {
        let n = d.len();
        let e: Vec<f64> = (0..n - 1).map(|i| scale * (((i * 13) % 7) as f64 / 7.0 - 0.4)).collect();
        let ql = ca_symm_eig::dla::tridiag::tridiag_eigenvalues(&d, &e);
        let bi = sturm::bisection_eigenvalues(&d, &e, 1e-11);
        for (x, y) in ql.iter().zip(&bi) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }
}

/// Strategy: one random service-batch composition. Each job spec is
/// `((n, engine_idx), (want_vectors, seed))` — nested pairs because the
/// proptest shim implements `Strategy` for 2- and 3-tuples only.
fn batch_strategy() -> impl Strategy<Value = Vec<((usize, usize), (usize, u64))>> {
    proptest::collection::vec(((4usize..=40, 0usize..3), (0usize..2, 0u64..100_000)), 3..=8)
}

proptest! {
    // Each case spins up a service and solves a whole batch; fewer cases
    // than the kernel-level properties above keep the suite CI-fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random batch compositions (mixed sizes, engines, values/vectors)
    /// served concurrently must preserve the conformance gallery's
    /// per-job numerical oracles: the construction spectrum, the
    /// eigenpair residual, and basis orthogonality — all at the
    /// gallery's own calibrated tolerance (`5e-9·n`) and using the
    /// gallery's own defect functions, not a reimplementation.
    #[test]
    fn service_batches_preserve_conformance_oracles(specs in batch_strategy()) {
        use ca_service::{EigenService, Engine, ServiceConfig, SymmEigenJob};
        use ca_symm_eig::dla::gen;
        use conformance::oracle::{orthogonality_defect, residual_defect};
        use rand::{rngs::StdRng, SeedableRng};

        let service = EigenService::new(ServiceConfig {
            workers: 3,
            // A mid-range floor so some jobs coalesce into batched leaf
            // solves while others run singly — both scheduler paths.
            batch_floor: 24,
            ..ServiceConfig::default()
        });

        let jobs: Vec<(Vec<f64>, Matrix, SymmEigenJob)> = specs
            .iter()
            .map(|&((n, engine), (vectors, seed))| {
                let mut rng = StdRng::seed_from_u64(0xBA7C4 ^ seed);
                let spectrum = gen::linspace_spectrum(n, -2.0, 2.0);
                let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
                let job = if vectors == 1 {
                    SymmEigenJob::with_vectors(a.clone(), 4, 1)
                } else {
                    SymmEigenJob::values(a.clone(), 4, 1)
                };
                let job = job.engine(match engine {
                    0 => Engine::Auto,
                    1 => Engine::Ql,
                    _ => Engine::Dnc,
                });
                (spectrum, a, job)
            })
            .collect();

        let results = service.solve_batch(jobs.iter().map(|(_, _, j)| j.clone()));
        prop_assert_eq!(results.len(), jobs.len());
        for ((spectrum, a, job), res) in jobs.iter().zip(results) {
            let r = res.expect("service must complete every admitted job");
            let n = a.rows();
            let tol = 5e-9 * n as f64; // the gallery's calibrated tolerance
            let scale = a.norm_max().max(1.0);

            // Oracle #3: eigenvalues against the construction spectrum.
            prop_assert_eq!(r.eigenvalues.len(), n);
            for (got, want) in r.eigenvalues.iter().zip(spectrum) {
                prop_assert!(
                    (got - want).abs() / scale < tol,
                    "n={n} eigenvalue {got} vs construction {want}"
                );
            }

            // Oracles #1 and #2 when eigenvectors were requested.
            if job.want_vectors {
                let v = r.vectors.as_ref().expect("vectors were requested");
                let res_defect = residual_defect(a, &r.eigenvalues, v);
                let orth_defect = orthogonality_defect(v);
                prop_assert!(res_defect < tol, "n={n} residual {res_defect:e}");
                prop_assert!(orth_defect < tol, "n={n} orthogonality {orth_defect:e}");
            } else {
                prop_assert!(r.vectors.is_none());
            }
        }
    }
}
