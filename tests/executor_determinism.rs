//! Serial ↔ parallel executor equivalence: the parallel superstep
//! executor must be an *invisible* optimization. For a fixed input, a
//! run with every `ca_pla::exec` dispatch forced serial and a run with
//! full thread-level parallelism must produce bitwise-identical numbers
//! **and** identical cost ledgers (same F, W, Q, S after folding).
//!
//! This holds by construction — ledger charges are commutative atomic
//! adds folded only at quiescent fences, and floating-point results are
//! committed in rank order — and these tests pin it down for the two
//! algorithms with the most intricate parallel structure.

use ca_symm_eig::bsp::{Costs, Machine, MachineParams};
use ca_symm_eig::dla::{gen, BandedSym, Matrix};
use ca_symm_eig::eigen::full_to_band::full_to_band;
use ca_symm_eig::eigen::EigenParams;
use ca_symm_eig::pla::dist::DistMatrix;
use ca_symm_eig::pla::exec;
use ca_symm_eig::pla::grid::Grid;
use ca_symm_eig::pla::rect_qr::rect_qr_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_full_to_band(n: usize, p: usize, b: usize, seed: u64) -> (BandedSym, Costs) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::random_symmetric(&mut rng, n);
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let (band, _) = full_to_band(&machine, &params, &a, b);
    (band, machine.report())
}

#[test]
fn full_to_band_ledger_and_numbers_match_serial() {
    let (band_ser, costs_ser) = exec::with_forced_serial(|| run_full_to_band(64, 16, 8, 11));
    let (band_par, costs_par) = run_full_to_band(64, 16, 8, 11);
    assert_eq!(
        band_ser, band_par,
        "parallel full_to_band must be bitwise identical to serial"
    );
    assert_eq!(
        costs_ser, costs_par,
        "folded F/W/Q/S ledgers must not depend on executor threading"
    );
}

fn run_rect_qr(m: usize, n: usize, p: usize, seed: u64) -> (Matrix, Matrix, Costs) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::random_matrix(&mut rng, m, n);
    let machine = Machine::new(MachineParams::new(p));
    let grid = Grid::new_1d((0..p).collect());
    let ad = DistMatrix::from_dense(&machine, &grid, &a);
    let (q, r) = rect_qr_tree(&machine, &ad, p);
    (q.assemble_unchecked(), r, machine.report())
}

#[test]
fn rect_qr_ledger_and_numbers_match_serial() {
    let (q_ser, r_ser, costs_ser) = exec::with_forced_serial(|| run_rect_qr(96, 48, 8, 23));
    let (q_par, r_par, costs_par) = run_rect_qr(96, 48, 8, 23);
    assert_eq!(q_ser, q_par, "explicit Q must be bitwise identical");
    assert_eq!(r_ser, r_par, "R factor must be bitwise identical");
    assert_eq!(
        costs_ser, costs_par,
        "folded F/W/Q/S ledgers must not depend on executor threading"
    );
}

#[test]
fn forced_serial_scope_restores_parallel_dispatch() {
    assert!(!exec::serial_forced() || std::env::var("CA_SERIAL").is_ok());
    exec::with_forced_serial(|| assert!(exec::serial_forced()));
    assert!(!exec::serial_forced() || std::env::var("CA_SERIAL").is_ok());
}
