//! Tier-2 entry point for the cost-model conformance harness.
//!
//! The always-on test runs the reduced (`--quick`) sweep — the same
//! grid the CI conformance job uses — and asserts every claim passes.
//! The `#[ignore]`d test runs the full sweep (`cargo test --release
//! --test conformance -- --ignored`), matching `cargo run -p
//! conformance` exactly.

use std::collections::BTreeSet;

fn assert_report_shape(report: &conformance::Report) {
    // ≥ 5 distinct stages must have fitted exponents (the acceptance
    // floor for the harness).
    let stages: BTreeSet<&str> = report
        .exponents
        .iter()
        .map(|e| e.stage.as_str())
        .collect();
    assert!(
        stages.len() >= 5,
        "fitted exponents cover only {:?}",
        stages
    );
    // The acceptance-critical claims are present: W-in-p at fixed c,
    // and the √c replication gain.
    assert!(report.exponents.iter().any(|e| e.id == "full-to-band.W.p"));
    assert!(report.exponents.iter().any(|e| e.id == "streaming-mm.W.p"));
    assert!(report.gains.iter().any(|g| g.id == "streaming-mm.gain.c4"));
    assert!(!report.oracles.is_empty(), "oracle suite did not run");
    // The JSON document round-trips the verdict fields.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"ca-symm-eig/conformance/v1\""));
    assert!(json.contains("\"measured_exponent\""));
    assert!(json.contains("\"measured_gain\""));
}

#[test]
fn quick_conformance_suite_passes() {
    let report = conformance::run(true, |_| {});
    assert_report_shape(&report);
    let failures: Vec<String> = report
        .exponents
        .iter()
        .filter(|e| !e.pass)
        .map(|e| {
            format!(
                "{}: measured {:+.3} vs paper {:+.2} (tol ±{:.2})",
                e.id, e.measured_exponent, e.paper_exponent, e.tolerance
            )
        })
        .chain(report.gains.iter().filter(|g| !g.pass).map(|g| {
            format!(
                "{}: gain ×{:.3} outside [{:.2}, {:.2}]",
                g.id, g.measured_gain, g.lo, g.hi
            )
        }))
        .chain(report.oracles.iter().filter(|o| !o.pass).map(|o| {
            format!(
                "oracle {}: resid {:.2e} orth {:.2e} λ-err {:.2e} (tol {:.2e})",
                o.matrix, o.residual, o.orthogonality, o.eigenvalue_error, o.tolerance
            )
        }))
        .collect();
    assert!(
        report.pass,
        "{} conformance claims failed:\n{}",
        report.failed,
        failures.join("\n")
    );
}

#[test]
#[ignore = "full sweep (minutes in debug); run with --release -- --ignored"]
fn full_conformance_suite_passes() {
    let report = conformance::run(false, |_| {});
    assert_report_shape(&report);
    assert!(report.pass, "{} conformance claims failed", report.failed);
}
