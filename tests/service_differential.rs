//! Differential suite: every job result from a concurrent batch must be
//! **bit-identical** to the same problem solved solo.
//!
//! The service's determinism claim (DESIGN.md §6f) is that scheduling —
//! concurrency, queue interleaving, coalesced batching, pause/resume
//! churn — never changes a single output bit. This suite enforces it
//! over the full engine/size/output matrix the issue names:
//! QL and D&C finales, `n ∈ {2, 48, 65, 129, 257}`, values-only and
//! with vectors. The solo reference is [`ca_service::solve_job`] called
//! directly on this thread with the same knob snapshot the service
//! froze — the same function the workers run, so any divergence is a
//! real scheduling leak, not a harness artifact.
//!
//! Also runs under `CA_SERIAL=true` in the serial-executor CI lane,
//! covering the "regardless of `CA_SERIAL`" half of the claim (serial ↔
//! parallel bit-identity of the solver itself is pinned by
//! `tests/serial_knob.rs`).

use ca_service::{Engine, EigenService, JobResult, ServiceConfig, SymmEigenJob};
use ca_symm_eig::dla::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 5] = [2, 48, 65, 129, 257];

/// Deterministic job for (n, engine, vectors): seeded matrix with a
/// known spectrum.
fn make_job(n: usize, engine: Engine, vectors: bool) -> SymmEigenJob {
    let mut rng = StdRng::seed_from_u64(0x9E37 ^ (n as u64) << 2 ^ vectors as u64);
    let spectrum = gen::linspace_spectrum(n, -3.0, 3.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let job = if vectors {
        SymmEigenJob::with_vectors(a, 4, 1)
    } else {
        SymmEigenJob::values(a, 4, 1)
    };
    job.engine(engine)
}

/// Exact bit pattern of a result's numerical outputs.
fn bits(r: &JobResult) -> Vec<u64> {
    let mut out: Vec<u64> = r.eigenvalues.iter().map(|v| v.to_bits()).collect();
    if let Some(v) = &r.vectors {
        out.extend(v.data().iter().map(|x| x.to_bits()));
    }
    out
}

/// The full job matrix: engines × sizes × output modes. Vectors at
/// n = 257 are the most expensive cell (~O(n³) back-transformation);
/// the whole matrix stays well inside CI budgets.
fn job_matrix() -> Vec<(String, SymmEigenJob)> {
    let mut jobs = Vec::new();
    for &n in &SIZES {
        for engine in [Engine::Ql, Engine::Dnc] {
            for vectors in [false, true] {
                let label = format!("n={n} {} vectors={vectors}", engine.name());
                jobs.push((label, make_job(n, engine, vectors)));
            }
        }
    }
    jobs
}

#[test]
fn concurrent_batch_is_bit_identical_to_solo() {
    let service = EigenService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        // Floor of 64 exercises both paths: n = 2 and n = 48 coalesce,
        // n ∈ {65, 129, 257} run singly.
        batch_floor: 64,
        ..ServiceConfig::default()
    });
    let knobs = service.knobs();
    let jobs = job_matrix();

    // Solo references, computed first on this thread.
    let solo: Vec<Vec<u64>> = jobs
        .iter()
        .map(|(label, j)| {
            bits(&ca_service::solve_job(j, knobs).unwrap_or_else(|e| panic!("solo {label}: {e}")))
        })
        .collect();

    // One concurrent submission of the whole matrix.
    let served = service.solve_batch(jobs.iter().map(|(_, j)| j.clone()));
    assert_eq!(served.len(), jobs.len());
    for (((label, _), want), got) in jobs.iter().zip(&solo).zip(&served) {
        let got = got.as_ref().unwrap_or_else(|e| panic!("served {label}: {e}"));
        assert_eq!(
            want,
            &bits(got),
            "{label}: concurrent result differs from solo solve"
        );
    }
}

#[test]
fn interleaving_and_batching_shape_do_not_change_bits() {
    // The same matrix served three more ways: single worker (pure FIFO),
    // many workers with reversed submission order, and coalescing
    // disabled. All byte streams must agree with the first serving.
    // The full matrix already ran in `concurrent_batch_is_bit_identical_
    // to_solo`; here the most expensive cells (vectors at n = 257) are
    // dropped to keep three extra servings inside the CI budget —
    // scheduling permutations are size-independent.
    let mut jobs = job_matrix();
    jobs.retain(|(_, j)| j.n() <= 129 || !j.want_vectors);
    let reference_service = EigenService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let knobs = reference_service.knobs();
    let reference: Vec<Vec<u64>> = reference_service
        .solve_batch(jobs.iter().map(|(_, j)| j.clone()))
        .into_iter()
        .map(|r| bits(&r.expect("reference serving")))
        .collect();

    for (workers, reversed, batch_floor) in [(1usize, false, 64usize), (6, true, 64), (4, false, 0)] {
        let service = EigenService::with_knobs(
            ServiceConfig {
                workers,
                queue_capacity: 64,
                batch_floor,
                ..ServiceConfig::default()
            },
            knobs,
        );
        let order: Vec<usize> = if reversed {
            (0..jobs.len()).rev().collect()
        } else {
            (0..jobs.len()).collect()
        };
        let tickets: Vec<_> = order
            .iter()
            .map(|&i| (i, service.submit(jobs[i].1.clone()).expect("admit")))
            .collect();
        for (i, t) in tickets {
            let got = t.wait().unwrap_or_else(|e| panic!("{}: {e}", jobs[i].0));
            assert_eq!(
                reference[i],
                bits(&got),
                "{} (workers={workers} reversed={reversed} floor={batch_floor}): bits changed",
                jobs[i].0
            );
        }
    }
}

#[test]
fn engines_agree_on_eigenvalues_but_differ_in_schedule() {
    // Sanity guard that the differential matrix actually exercises two
    // engines: QL and D&C must agree to solver tolerance (they are
    // different algorithms, so bit-equality is NOT expected) while each
    // engine is bit-stable against itself.
    let service = EigenService::new(ServiceConfig::default());
    for &n in &[48usize, 65] {
        let ql = service
            .submit(make_job(n, Engine::Ql, false))
            .unwrap()
            .wait()
            .unwrap();
        let dnc = service
            .submit(make_job(n, Engine::Dnc, false))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!ql.knobs.dnc_enabled && dnc.knobs.dnc_enabled);
        for (a, b) in ql.eigenvalues.iter().zip(&dnc.eigenvalues) {
            assert!((a - b).abs() < 1e-8 * n as f64, "n={n}: {a} vs {b}");
        }
    }
}
