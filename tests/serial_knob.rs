//! `CA_SERIAL` knob semantics, end to end.
//!
//! The seed had two private parsers for the same variable: the BSP
//! executor accepted "set and not `0`" while the D&C eigensolver
//! accepted only `1`/`true` — so `CA_SERIAL=yes` ran the executor
//! serial and the eigensolver parallel. Both now route through
//! [`ca_obs::knobs::serial`]; these tests pin the unified behaviour by
//! spawning this test binary as a subprocess per spelling (the knob is
//! cached on first read, so distinct values need distinct processes).
//!
//! Checks:
//! * every truthy spelling (`1`, `true`, `yes`, `on`, `TRUE`) switches
//!   **both** subsystems to serial, and the eigenvalues/vectors are
//!   bit-identical to the parallel run (serial ↔ parallel equivalence
//!   is the repo's documented invariant);
//! * falsy and unset leave both parallel;
//! * malformed values (`CA_SERIAL=banana`, `CA_DNC=fast`,
//!   `CA_TRACE=fast`) warn once on stderr naming the knob, instead of
//!   being silently ignored;
//! * the service pins a knob snapshot at construction: a global
//!   `set_dnc_enabled` flip while jobs sit queued changes neither the
//!   engine they run under nor a single output bit (the per-solve
//!   knob-read footgun, regression-tested in its own subprocess).

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::{symm_eigen_25d_vectors, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;

const N: usize = 48;
const P: usize = 4;
const SEED: u64 = 97;

/// FNV-1a over the exact bit patterns of the eigenvalues and vectors.
fn bit_hash(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

fn solve_hash() -> u64 {
    let machine = Machine::new(MachineParams::new(P));
    let params = EigenParams::new(P, 1);
    let mut rng = StdRng::seed_from_u64(SEED);
    let spectrum = gen::linspace_spectrum(N, -2.0, 2.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let (ev, v, _) = symm_eigen_25d_vectors(&machine, &params, &a);
    let mut bits = ev;
    bits.extend_from_slice(v.data());
    bit_hash(&bits)
}

/// Subprocess payload: solves the fixed problem under whatever env the
/// parent set and reports the result hash plus what each subsystem's
/// serial knob resolved to. Ignored in normal runs; the driver tests
/// below invoke it with `--ignored --exact`.
#[test]
#[ignore = "subprocess payload for the CA_SERIAL driver tests"]
fn inner_emit_hash() {
    println!(
        "HASH={:016x} SERIAL_EXEC={} SERIAL_DNC={} LOOKAHEAD={}",
        solve_hash(),
        ca_symm_eig::pla::exec::serial_forced(),
        ca_symm_eig::dla::tune::serial(),
        ca_symm_eig::obs::knobs::lookahead()
    );
}

struct Probe {
    hash: String,
    serial_exec: bool,
    serial_dnc: bool,
    lookahead: bool,
    stderr: String,
}

/// Run [`inner_emit_hash`] in a child process with the given env knobs.
fn probe(env: &[(&str, &str)]) -> Probe {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["--ignored", "--exact", "inner_emit_hash", "--nocapture"])
        .env_remove("CA_SERIAL")
        .env_remove("CA_DNC")
        .env_remove("CA_TRACE")
        .env_remove("CA_LOOKAHEAD");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn test subprocess");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "subprocess failed under {env:?}:\n{stdout}\n{stderr}"
    );
    // The harness prints the payload on the "test inner_emit_hash ..."
    // line itself, so match the marker anywhere in the line.
    let line = stdout
        .lines()
        .find(|l| l.contains("HASH="))
        .unwrap_or_else(|| panic!("no HASH line under {env:?}:\n{stdout}"));
    let field = |key: &str| -> String {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
            .to_string()
    };
    Probe {
        hash: field("HASH"),
        serial_exec: field("SERIAL_EXEC") == "true",
        serial_dnc: field("SERIAL_DNC") == "true",
        lookahead: field("LOOKAHEAD") == "true",
        stderr,
    }
}

/// Subprocess payload for [`service_snapshot_survives_global_knob_flip`]:
/// in a clean process, a service's construction-time [`KnobSnapshot`]
/// must govern every queued job even after the process-global knob is
/// flipped out from under it. Before PR 9 each solve re-read `CA_DNC`
/// at dispatch time, so a flip mid-queue could split one batch across
/// two engine configurations.
///
/// [`KnobSnapshot`]: ca_symm_eig::dla::tune::KnobSnapshot
#[test]
#[ignore = "subprocess payload for the knob-snapshot driver test"]
fn inner_service_snapshot_pins_knobs() {
    use ca_service::{EigenService, ServiceConfig, SymmEigenJob};
    use ca_symm_eig::dla::tune;

    let service = EigenService::new(ServiceConfig {
        workers: 2,
        paused: true, // hold the queue so the flip lands before dispatch
        ..ServiceConfig::default()
    });
    let knobs = service.knobs();

    let jobs: Vec<SymmEigenJob> = (0..6)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(SEED + i);
            let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(N, -2.0, 2.0));
            if i % 2 == 0 {
                SymmEigenJob::with_vectors(a, P, 1)
            } else {
                SymmEigenJob::values(a, P, 1)
            }
        })
        .collect();

    let result_hash = |r: &ca_service::JobResult| {
        let mut bits = r.eigenvalues.clone();
        if let Some(v) = &r.vectors {
            bits.extend_from_slice(v.data());
        }
        bit_hash(&bits)
    };

    // Solo references under the pinned snapshot, before any flip.
    let solo: Vec<u64> = jobs
        .iter()
        .map(|j| result_hash(&ca_service::solve_job(j, knobs).expect("solo reference")))
        .collect();

    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| service.submit(j.clone()).expect("admit"))
        .collect();

    // The footgun this pins: a global engine flip while jobs sit queued.
    tune::set_dnc_enabled(!knobs.dnc_enabled);
    assert_ne!(
        tune::dnc_enabled(),
        knobs.dnc_enabled,
        "the global flip must be visible outside the service"
    );
    service.resume();

    for (t, want) in tickets.into_iter().zip(&solo) {
        let r = t.wait().expect("queued job");
        assert_eq!(
            r.knobs.dnc_enabled, knobs.dnc_enabled,
            "job ran under the flipped global, not the service snapshot"
        );
        assert_eq!(
            result_hash(&r),
            *want,
            "global knob flip changed a queued job's output bits"
        );
    }
    println!("KNOB_PIN_OK=1");
}

#[test]
fn service_snapshot_survives_global_knob_flip() {
    // The payload mutates process-global knob state, so it runs in its
    // own subprocess like the CA_SERIAL probes above.
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            "inner_service_snapshot_pins_knobs",
            "--nocapture",
        ])
        .env_remove("CA_DNC")
        .output()
        .expect("spawn test subprocess");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "knob-snapshot payload failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("KNOB_PIN_OK=1"),
        "payload did not reach its end marker:\n{stdout}"
    );
}

#[test]
fn truthy_spellings_serialize_both_subsystems_bit_identically() {
    let parallel_hash = format!("{:016x}", solve_hash());
    for spelling in ["1", "true", "yes", "on", "TRUE"] {
        let p = probe(&[("CA_SERIAL", spelling)]);
        assert!(
            p.serial_exec && p.serial_dnc,
            "CA_SERIAL={spelling}: executor serial={}, dnc serial={} — the knob must mean \
             the same thing to both subsystems",
            p.serial_exec,
            p.serial_dnc
        );
        assert_eq!(
            p.hash, parallel_hash,
            "CA_SERIAL={spelling}: serial eigenvalues/vectors must be bit-identical to parallel"
        );
    }
}

#[test]
fn falsy_and_unset_stay_parallel_in_both_subsystems() {
    for env in [&[][..], &[("CA_SERIAL", "0")][..], &[("CA_SERIAL", "off")][..]] {
        let p = probe(env);
        assert!(
            !p.serial_exec && !p.serial_dnc,
            "{env:?}: expected parallel dispatch in both subsystems"
        );
    }
}

#[test]
fn serial_knob_composes_with_lookahead_bit_identically() {
    // The 2×2 of {CA_SERIAL} × {CA_LOOKAHEAD}: the task-graph executor
    // under forced-serial dispatch must still match the parallel
    // barrier path bit for bit — the DAG path may not smuggle in a
    // scheduling dependence that only CA_SERIAL=1 exposes.
    let reference = format!("{:016x}", solve_hash());
    for (serial, lookahead) in [("true", "on"), ("true", "off"), ("0", "on"), ("0", "off")] {
        let p = probe(&[("CA_SERIAL", serial), ("CA_LOOKAHEAD", lookahead)]);
        assert_eq!(
            p.lookahead,
            lookahead == "on",
            "CA_LOOKAHEAD={lookahead} did not reach the knob cache"
        );
        assert_eq!(
            p.serial_exec,
            serial == "true",
            "CA_SERIAL={serial} did not reach the executor"
        );
        assert_eq!(
            p.hash, reference,
            "CA_SERIAL={serial} CA_LOOKAHEAD={lookahead}: output bits diverged \
             from the in-process default run"
        );
    }
}

#[test]
fn malformed_knobs_warn_on_stderr_and_fall_back() {
    let p = probe(&[("CA_SERIAL", "banana")]);
    assert!(
        !p.serial_exec && !p.serial_dnc,
        "malformed CA_SERIAL must fall back to the parallel default"
    );
    assert!(
        p.stderr.contains("CA_SERIAL"),
        "malformed CA_SERIAL must warn on stderr naming the knob; got:\n{}",
        p.stderr
    );

    for knob in ["CA_DNC", "CA_TRACE"] {
        let p = probe(&[(knob, "fast")]);
        assert!(
            p.stderr.contains(knob),
            "malformed {knob}=fast must warn on stderr naming the knob; got:\n{}",
            p.stderr
        );
    }
}
