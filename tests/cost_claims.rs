#![allow(clippy::needless_range_loop)]
//! Integration tests of the paper's cost claims on the virtual machine —
//! the assertions behind Table I and the headline Θ(√c) statement.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::baselines::scalapack::scalapack_tridiag;
use ca_symm_eig::eigen::{full_to_band, symm_eigen_25d, EigenParams};
use ca_symm_eig::pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_to_band_replication_saves_communication() {
    // Θ(√c) claim at the stage it concentrates in, within the paper's
    // regime (p = 64, c = 4 = p^{1/3}).
    let n = 96;
    let b = 8;
    let p = 64;
    let mut rng = StdRng::seed_from_u64(500);
    let a = gen::random_symmetric(&mut rng, n);

    let mut w = Vec::new();
    for c in [1usize, 4] {
        let m = Machine::new(MachineParams::new(p));
        let _ = full_to_band(&m, &EigenParams::new(p, c), &a, b);
        w.push(m.report().horizontal_words as f64);
    }
    let gain = w[0] / w[1];
    assert!(
        gain > 1.15,
        "replication gain {gain:.2} too small (paper: toward √c = 2)"
    );
}

#[test]
fn end_to_end_solver_wins_with_replication_at_scale() {
    let n = 256;
    let p = 64;
    let mut rng = StdRng::seed_from_u64(501);
    let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);

    let mut w = Vec::new();
    for c in [1usize, 4] {
        let m = Machine::new(MachineParams::new(p));
        let (ev, _) = symm_eigen_25d(&m, &EigenParams::new(p, c), &a);
        assert!(ca_symm_eig::dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-6 * n as f64);
        w.push(m.report().horizontal_words);
    }
    assert!(
        w[1] < w[0],
        "end-to-end W with c=4 ({}) should beat c=1 ({})",
        w[1],
        w[0]
    );
}

#[test]
fn scalapack_vertical_traffic_is_cubic_in_n() {
    // Table I: Q_scalapack = Θ(n³/p).
    let p = 16;
    let grid = Grid::all(p).squarest_2d();
    let mut q = Vec::new();
    for n in [32usize, 64] {
        let mut rng = StdRng::seed_from_u64(502);
        let a = gen::random_symmetric(&mut rng, n);
        let m = Machine::new(MachineParams::new(p));
        let _ = scalapack_tridiag(&m, &grid, &a);
        q.push(m.report().vertical_words as f64);
    }
    let ratio = q[1] / q[0];
    assert!((5.5..10.5).contains(&ratio), "Q ratio {ratio} not ~8 (cubic)");
}

#[test]
fn scalapack_synchronization_is_linear_in_n() {
    // Table I: S_scalapack = Θ(n·polylog) — per-column collectives.
    let p = 16;
    let grid = Grid::all(p).squarest_2d();
    let mut s = Vec::new();
    for n in [32usize, 64] {
        let mut rng = StdRng::seed_from_u64(503);
        let a = gen::random_symmetric(&mut rng, n);
        let m = Machine::new(MachineParams::new(p));
        let _ = scalapack_tridiag(&m, &grid, &a);
        s.push(m.report().supersteps as f64);
    }
    let ratio = s[1] / s[0];
    assert!((1.7..2.3).contains(&ratio), "S ratio {ratio} not ~2 (linear)");
}

#[test]
fn banded_solver_synchronization_sublinear_in_n() {
    // The whole point of successive band reduction: S does not grow
    // linearly in n (Table I: pᵟ·log²p, n-independent up to the final
    // sequential stage).
    let p = 16;
    let mut s = Vec::new();
    for n in [64usize, 128] {
        let mut rng = StdRng::seed_from_u64(504);
        let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let m = Machine::new(MachineParams::new(p));
        let _ = symm_eigen_25d(&m, &EigenParams::new(p, 1), &a);
        s.push(m.report().supersteps as f64);
    }
    let ratio = s[1] / s[0];
    assert!(
        ratio < 1.7,
        "banded S grew {ratio:.2}× on doubling n (should be ≪ 2×)"
    );
}

#[test]
fn memory_grows_with_replication() {
    // Replication's price: M = Θ(c·n²/p) per processor. The replicated
    // A block itself scales exactly ×c; working buffers (panel QR,
    // aggregates) are c-independent and dilute the end-to-end ratio at
    // small n, so we assert a band rather than exactly c.
    let n = 128;
    let p = 64;
    let mut rng = StdRng::seed_from_u64(505);
    let a = gen::random_symmetric(&mut rng, n);
    let mut mem = Vec::new();
    for c in [1usize, 4] {
        let m = Machine::new(MachineParams::new(p));
        let _ = full_to_band(&m, &EigenParams::new(p, c), &a, 8);
        mem.push(m.report().peak_memory_words as f64);
    }
    let ratio = mem[1] / mem[0];
    assert!(
        (1.5..8.0).contains(&ratio),
        "memory ratio {ratio:.2} should reflect ~c× replication"
    );
}

#[test]
fn solver_communication_decreases_with_p() {
    // W = O(n²/pᵟ): per-processor communication falls as the machine
    // grows (strong scaling of the communication term).
    let n = 128;
    let mut w = Vec::new();
    for p in [16usize, 64] {
        let mut rng = StdRng::seed_from_u64(506);
        let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let m = Machine::new(MachineParams::new(p));
        let _ = symm_eigen_25d(&m, &EigenParams::new(p, 1), &a);
        w.push(m.report().horizontal_words as f64);
    }
    assert!(
        w[1] < w[0],
        "W should fall with p: p=16 → {}, p=64 → {}",
        w[0],
        w[1]
    );
}

#[test]
fn work_is_load_balanced_across_processors() {
    let n = 64;
    let p = 16;
    let mut rng = StdRng::seed_from_u64(507);
    let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let m = Machine::new(MachineParams::new(p));
    let _ = symm_eigen_25d(&m, &EigenParams::new(p, 1), &a);
    let c = m.report();
    // Per-superstep-max F should be within a small factor of volume/p
    // (perfect balance would make them equal).
    let balance = c.flops as f64 / (c.total_flops as f64 / p as f64);
    assert!(
        balance < 6.0,
        "flop imbalance {balance:.1}× (max-per-superstep vs volume/p)"
    );
}
