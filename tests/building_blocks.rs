#![allow(clippy::needless_range_loop)]
//! Cross-cutting integration of the §III building blocks: the three
//! multiplication algorithms agree numerically on the same problem and
//! order correctly in communication cost; the QR paths agree on `R`;
//! collectives satisfy their cost identities.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::{gen, Matrix};
use ca_symm_eig::pla::carma::carma;
use ca_symm_eig::pla::dist::DistMatrix;
use ca_symm_eig::pla::grid::Grid;
use ca_symm_eig::pla::streaming::{streaming_mm, Replicated};
use ca_symm_eig::pla::summa::summa;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn machine(p: usize) -> Machine {
    Machine::new(MachineParams::new(p))
}

#[test]
fn three_multiply_algorithms_agree() {
    let (n, k) = (48usize, 12usize);
    let q = 2;
    let p = q * q;
    let mut rng = StdRng::seed_from_u64(700);
    let a = gen::random_matrix(&mut rng, n, n);
    let b = gen::random_matrix(&mut rng, n, k);
    let want = matmul(&a, Trans::N, &b, Trans::N);

    // SUMMA (2D block layout).
    let m1 = machine(p);
    let g2 = Grid::new_2d((0..p).collect(), q, q);
    let da = DistMatrix::from_dense(&m1, &g2, &a);
    let db = DistMatrix::from_dense(&m1, &g2, &b);
    let mut dc = DistMatrix::zeros(&m1, &g2, n, k);
    summa(&m1, 1.0, &da, &db, 0.0, &mut dc);
    assert!(dc.assemble_unchecked().max_diff(&want) < 1e-11);

    // CARMA (recursive).
    let m2 = machine(p);
    let c2 = carma(&m2, &Grid::all(p), &a, &b, 1);
    assert!(c2.max_diff(&want) < 1e-11);

    // Streaming-MM (replicated A).
    let m3 = machine(p);
    let g3 = Grid::new_3d((0..p).collect(), q, q, 1);
    let rep = Replicated::replicate(&m3, &g3, &a);
    let c3 = streaming_mm(&m3, &rep, (0, 0, n, n), false, &b, 1);
    assert!(c3.max_diff(&want) < 1e-11);

    // Cost ordering for this panel shape (k ≪ n): once A is replicated,
    // streaming must beat both general algorithms on W.
    let w_summa = m1.report().horizontal_words;
    let w_carma = m2.report().horizontal_words;
    let snap = m3.snapshot();
    let _ = streaming_mm(&m3, &rep, (0, 0, n, n), false, &b, 1);
    m3.fence();
    let w_stream = m3.costs_since(&snap).horizontal_words;
    assert!(
        w_stream < w_carma && w_stream < w_summa,
        "streaming {w_stream} should beat carma {w_carma} and summa {w_summa}"
    );
}

#[test]
fn qr_paths_agree_on_r_up_to_signs() {
    let (mrows, n, g) = (64usize, 8usize, 4usize);
    let mut rng = StdRng::seed_from_u64(701);
    let a = gen::random_matrix(&mut rng, mrows, n);
    let seq = ca_symm_eig::dla::qr::qr_factor(&a, 4);

    let m = machine(g);
    let grid = Grid::new_2d((0..g).collect(), g, 1);
    let da = DistMatrix::from_dense(&m, &grid, &a);
    let (tsqr_q, tsqr_r) = ca_symm_eig::pla::tsqr::tsqr_explicit(&m, &da);
    let f_col = ca_symm_eig::pla::rect_qr::rect_qr_with_base(&m, &da, 4);
    let (_tree_q, tree_r) = ca_symm_eig::pla::rect_qr::rect_qr_tree(&m, &da, g);

    for i in 0..n {
        for j in 0..n {
            let want = seq.r.get(i, j).abs();
            assert!((tsqr_r.get(i, j).abs() - want).abs() < 1e-9, "tsqr ({i},{j})");
            assert!((f_col.r.get(i, j).abs() - want).abs() < 1e-9, "col ({i},{j})");
            assert!((tree_r.get(i, j).abs() - want).abs() < 1e-9, "tree ({i},{j})");
        }
    }
    tsqr_q.release(&m);
}

#[test]
fn collective_cost_identities() {
    use ca_symm_eig::pla::coll;
    let p = 8;
    let grid = Grid::all(p);
    let words = 1 << 12;

    // Broadcast ≈ scatter + allgather: per-proc ≤ 3·words + O(1).
    let m = machine(p);
    coll::bcast(&m, &grid, 0, words);
    for w in m.comm_per_proc() {
        assert!(w <= 3 * words + 8, "bcast per-proc {w}");
    }

    // Reduce is the dual of bcast: same asymptotic per-proc traffic.
    let m2 = machine(p);
    coll::reduce(&m2, &grid, 0, words);
    let bcast_max = m.comm_per_proc().into_iter().max().unwrap();
    let reduce_max = m2.comm_per_proc().into_iter().max().unwrap();
    let ratio = reduce_max as f64 / bcast_max as f64;
    assert!((0.3..3.0).contains(&ratio), "bcast/reduce asymmetry {ratio}");

    // All-reduce volume ≈ 2× reduce-scatter volume.
    let m3 = machine(p);
    coll::reduce_scatter(&m3, &grid, words);
    let rs = m3.report().total_volume_words;
    let m4 = machine(p);
    coll::allreduce(&m4, &grid, words);
    let ar = m4.report().total_volume_words;
    assert!(ar > rs && ar < 3 * rs, "allreduce {ar} vs reduce_scatter {rs}");
}

#[test]
fn cyclic_and_block_layouts_interoperate() {
    use ca_symm_eig::pla::cyclic::{from_block, CyclicMatrix};
    let m = machine(4);
    let g = Grid::new_2d((0..4).collect(), 2, 2);
    let mut rng = StdRng::seed_from_u64(702);
    let a = gen::random_matrix(&mut rng, 20, 20);
    let cyc = CyclicMatrix::from_dense(&m, &g, &a, 3, 3);
    let blk = cyc.to_block(&m, &g);
    let round = from_block(&m, &blk, 5, 2);
    assert!(round.assemble_unchecked().max_diff(&a) < 1e-15);
    // Every conversion charged communication.
    assert!(m.report().total_volume_words > 0);
}

#[test]
fn reconstruction_composes_with_tsqr_on_many_shapes() {
    for (mrows, n, g, seed) in [(32usize, 4usize, 4usize, 703u64), (48, 6, 8, 704), (24, 8, 2, 705)] {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, r) = ca_symm_eig::pla::tsqr::tsqr_explicit(&m, &da);
        let rec = ca_symm_eig::pla::reconstruct::reconstruct(&m, &q);
        // A = (I − U T Uᵀ)[S·R; 0].
        let r_fixed = rec.fix_r(&r);
        let u = rec.u.assemble_unchecked();
        let mut stack = Matrix::zeros(mrows, n);
        stack.set_block(0, 0, &r_fixed);
        let ut = matmul(&u, Trans::T, &stack, Trans::N);
        let tut = matmul(&rec.t, Trans::N, &ut, Trans::N);
        let corr = matmul(&u, Trans::N, &tut, Trans::N);
        stack.axpy(-1.0, &corr);
        assert!(
            stack.max_diff(&a) < 1e-9 * (1.0 + a.norm_max()),
            "m={mrows} n={n} g={g}: {}",
            stack.max_diff(&a)
        );
    }
}
