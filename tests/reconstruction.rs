#![allow(clippy::needless_range_loop)]
//! Direct coverage for Householder reconstruction (Corollary III.7):
//! the compact-WY pair `(U, T)` recovered from an explicit orthonormal
//! `Q` through the *non-pivoted LU path* must reproduce the explicitly
//! accumulated `Q` exactly — `Q = (I − U·T·Uᵀ)·[S; 0]` — including the
//! ragged (non-power-of-two) panel shapes the arbitrary-`n` pipeline
//! produces: odd group sizes, row counts the group does not divide, and
//! panel widths that are not powers of two.

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::{gen, Matrix};
use ca_symm_eig::pla::dist::DistMatrix;
use ca_symm_eig::pla::grid::Grid;
use ca_symm_eig::pla::reconstruct::{reconstruct, reconstruct_local};
use ca_symm_eig::pla::{rect_qr, tsqr};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn machine(p: usize) -> Machine {
    Machine::new(MachineParams::new(p))
}

/// Assert the Corollary III.7 identity `(I − U·T·Uᵀ)·[S; 0] = Q` and
/// the structural invariants of the WY pair.
fn assert_wy_identity(q: &Matrix, u: &Matrix, t: &Matrix, s: &[f64], tol: f64) {
    let (mrows, n) = (q.rows(), q.cols());
    let mut shat = Matrix::zeros(mrows, n);
    for i in 0..n {
        shat.set(i, i, s[i]);
        assert!(
            (s[i].abs() - 1.0).abs() < tol,
            "S must be a sign matrix, got {}",
            s[i]
        );
    }
    let uts = matmul(u, Trans::T, &shat, Trans::N);
    let tuts = matmul(t, Trans::N, &uts, Trans::N);
    let corr = matmul(u, Trans::N, &tuts, Trans::N);
    let mut rebuilt = shat.clone();
    rebuilt.axpy(-1.0, &corr);
    assert!(
        rebuilt.max_diff(q) < tol,
        "(I − U·T·Uᵀ)·[S;0] deviates from Q by {}",
        rebuilt.max_diff(q)
    );
    // U unit lower-trapezoidal, T upper-triangular.
    for i in 0..n {
        assert!((u.get(i, i) - 1.0).abs() < tol, "U diagonal at {i}");
        for j in i + 1..n {
            assert!(u.get(i, j).abs() < tol, "U({i},{j}) above diagonal");
        }
        for j in 0..i {
            assert!(t.get(i, j).abs() < tol, "T({i},{j}) below diagonal");
        }
    }
}

#[test]
fn distributed_reconstruction_matches_explicit_q_on_ragged_shapes() {
    // Non-power-of-two group sizes and row counts the group does not
    // divide: the straggler rank holds a short block.
    let mut rng = StdRng::seed_from_u64(2200);
    for (g, mrows, n) in [
        (3usize, 29usize, 5usize), // odd group, prime rows
        (5, 33, 7),                // 33 = 5·6 + 3 ragged remainder
        (6, 45, 9),                // non-power-of-two everything
        (7, 26, 3),                // more procs than a clean split
    ] {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, _r) = tsqr::tsqr_explicit(&m, &da);
        let q_dense = q.assemble_unchecked();
        // The explicitly accumulated Q is orthonormal…
        let qtq = matmul(&q_dense, Trans::T, &q_dense, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(n)) < 1e-9,
            "g={g}: QᵀQ − I = {}",
            qtq.max_diff(&Matrix::identity(n))
        );
        // …and the LU-path reconstruction reproduces it.
        let rec = reconstruct(&m, &q);
        assert_wy_identity(&q_dense, &rec.u.assemble_unchecked(), &rec.t, &rec.s, 1e-9);
    }
}

#[test]
fn local_and_distributed_reconstructions_agree() {
    // Same explicit Q through both paths: the sequential reference
    // (trsm-based) and the distributed LU path must produce the same
    // factors up to roundoff — S is sign-deterministic, so U and T
    // match directly, not just up to the identity.
    let mut rng = StdRng::seed_from_u64(2201);
    let g = 5;
    let (mrows, n) = (31usize, 6usize);
    let m = machine(g);
    let grid = Grid::new_2d((0..g).collect(), g, 1);
    let a = gen::random_matrix(&mut rng, mrows, n);
    let da = DistMatrix::from_dense(&m, &grid, &a);
    let (q, _) = tsqr::tsqr_explicit(&m, &da);
    let q_dense = q.assemble_unchecked();

    let rec = reconstruct(&m, &q);
    let (u_loc, t_loc, s_loc) = reconstruct_local(&q_dense);

    assert_eq!(rec.s.len(), s_loc.len());
    for (a, b) in rec.s.iter().zip(&s_loc) {
        assert_eq!(a, b, "sign choice diverged between paths");
    }
    assert!(
        rec.u.assemble_unchecked().max_diff(&u_loc) < 1e-9,
        "U diverged: {}",
        rec.u.assemble_unchecked().max_diff(&u_loc)
    );
    assert!(rec.t.max_diff(&t_loc) < 1e-9, "T diverged: {}", rec.t.max_diff(&t_loc));
}

#[test]
fn rect_qr_wy_factors_rebuild_input_on_ragged_panels() {
    // End-to-end through rect_qr (which uses reconstruction internally
    // for tall panels): A = (I − U·T·Uᵀ)·[R; 0] for panel shapes the
    // arbitrary-n full-to-band produces (width not a power of two, rows
    // not divisible by the group).
    let mut rng = StdRng::seed_from_u64(2202);
    for (g, mrows, n) in [(4usize, 37usize, 5usize), (3, 22, 6), (8, 51, 11)] {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let f = rect_qr::rect_qr(&m, &da);

        // Stack [R; 0] and apply I − U·T·Uᵀ.
        let u = f.u.assemble_unchecked();
        let mut stack = Matrix::zeros(mrows, n);
        stack.set_block(0, 0, &f.r);
        let ut = matmul(&u, Trans::T, &stack, Trans::N);
        let tut = matmul(&f.t, Trans::N, &ut, Trans::N);
        let corr = matmul(&u, Trans::N, &tut, Trans::N);
        stack.axpy(-1.0, &corr);
        assert!(
            stack.max_diff(&a) < 1e-9 * (mrows as f64),
            "g={g} {mrows}×{n}: A − (I−UTUᵀ)[R;0] = {}",
            stack.max_diff(&a)
        );
    }
}

#[test]
fn reconstruction_handles_square_panel() {
    // m = n: the trapezoidal part is empty, the LU path must still
    // produce a consistent (U, T, S).
    let mut rng = StdRng::seed_from_u64(2203);
    let g = 3;
    let n = 9;
    let m = machine(g);
    let grid = Grid::new_2d((0..g).collect(), g, 1);
    let a = gen::random_matrix(&mut rng, n, n);
    let da = DistMatrix::from_dense(&m, &grid, &a);
    let (q, _) = tsqr::tsqr_explicit(&m, &da);
    let rec = reconstruct(&m, &q);
    assert_wy_identity(&q.assemble_unchecked(), &rec.u.assemble_unchecked(), &rec.t, &rec.s, 1e-8);
}

#[test]
fn reconstruction_charges_the_ledger() {
    // Corollary III.7's point is that reconstruction costs O(mn/p) words
    // — it must be metered, not free.
    let g = 4;
    let m = machine(g);
    let grid = Grid::new_2d((0..g).collect(), g, 1);
    let mut rng = StdRng::seed_from_u64(2204);
    let a = gen::random_matrix(&mut rng, 30, 6);
    let da = DistMatrix::from_dense(&m, &grid, &a);
    let (q, _) = tsqr::tsqr_explicit(&m, &da);
    let before = m.snapshot();
    let _rec = reconstruct(&m, &q);
    let costs = m.costs_since(&before);
    assert!(costs.flops > 0, "reconstruction did no metered flops");
    assert!(costs.horizontal_words > 0, "reconstruction moved no metered words");
}
