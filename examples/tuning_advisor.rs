#![allow(clippy::needless_range_loop)]
//! Tuning advisor: pick the replication factor `c` for your machine
//! from the paper's cost models, then confirm the choice by measuring.
//!
//! §I: "employing a large c is attractive for bandwidth-constrained
//! problems on massively-parallel architectures" — this example shows
//! the advisor recommending differently for a bandwidth-bound and a
//! latency-bound machine, then validates the bandwidth-bound
//! recommendation against measured W on the simulator.
//!
//! Run with: `cargo run --release --example tuning_advisor`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::tuning::{best_configuration, rank_configurations};
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let p = 64;

    // Two hypothetical machines with the same processor count.
    let bandwidth_bound = MachineParams::new(p).with_times(1e-6, 1.0, 0.1, 10.0);
    let latency_bound = MachineParams::new(p).with_times(1e-6, 1e-3, 1e-4, 1e6);

    for (name, m) in [("bandwidth-bound", bandwidth_bound), ("latency-bound", latency_bound)] {
        println!("{name} machine (β = {}, α = {}):", m.beta, m.alpha);
        println!("  ranked configurations for n = {n}:");
        for choice in rank_configurations(n, &m, None) {
            println!(
                "    c = {} (δ = {:.3}, b₀ = {}): modeled time {:.3e}, memory {:.0} words/proc",
                choice.c, choice.delta, choice.b, choice.modeled_time, choice.memory_words
            );
        }
        let best = best_configuration(n, &m, None).expect("has choices");
        println!("  → advisor picks c = {}\n", best.c);
    }

    // Validate on the simulator: the bandwidth-bound pick (c = 4) must
    // move fewer words than c = 1 end to end.
    println!("measured confirmation (simulated run, n = {n}, p = {p}):");
    let mut measured = Vec::new();
    for c in [1usize, 4] {
        let machine = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(77);
        let spectrum = gen::linspace_spectrum(n, -2.0, 2.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let (ev, _) = symm_eigen_25d(&machine, &EigenParams::new(p, c), &a);
        assert!(ca_symm_eig::dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-7 * n as f64);
        let r = machine.report();
        println!(
            "  c = {c}: W = {}, Q = {}, S = {}, peak M = {}",
            r.horizontal_words, r.vertical_words, r.supersteps, r.peak_memory_words
        );
        measured.push(r.horizontal_words);
    }
    assert!(
        measured[1] < measured[0],
        "the bandwidth-bound recommendation must reduce measured W"
    );
    println!(
        "\nreplication saved {:.0}% of the words moved — the advisor's call, confirmed.",
        100.0 * (1.0 - measured[1] as f64 / measured[0] as f64)
    );
}
