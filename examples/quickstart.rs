#![allow(clippy::needless_range_loop)]
//! Quickstart: compute the eigenvalues of a symmetric matrix with the
//! communication-avoiding 2.5D eigensolver on a simulated BSP machine,
//! and inspect what the run cost.
//!
//! Run with: `cargo run --release --example quickstart`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::dla::tridiag::spectrum_distance;
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Problem: a 128×128 symmetric matrix with a known spectrum
    // (A = Q·diag(λ)·Qᵀ for a random orthogonal Q), so we can check the
    // answer exactly.
    let n = 128;
    let mut rng = StdRng::seed_from_u64(2017);
    let spectrum = gen::linspace_spectrum(n, -10.0, 10.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);

    // Machine: 16 virtual processors with c = 1 replication
    // (δ = 1/2, a classic 2D configuration; try p = 64, c = 4 for the
    // full 2.5D regime).
    let p = 16;
    let c = 1;
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, c);
    println!(
        "solving n = {n} on p = {p} processors, c = {c} replicas (δ = {:.3})",
        params.delta()
    );

    // Solve. The eigensolver reduces A to successively thinner banded
    // matrices with the same eigenvalues (full → band → … → tridiagonal)
    // and returns the spectrum plus a per-stage cost breakdown.
    let (eigenvalues, stages) = symm_eigen_25d(&machine, &params, &a);

    let err = spectrum_distance(&eigenvalues, &spectrum);
    println!("largest eigenvalue error vs the prescribed spectrum: {err:.2e}");
    assert!(err < 1e-9 * n as f64);

    println!("\nper-stage costs (the paper's F/W/Q/S quantities):");
    println!(
        "  {:<34} {:>12} {:>10} {:>10} {:>8}",
        "stage", "F (flops)", "W (words)", "Q (words)", "S"
    );
    for s in &stages.stages {
        let c = &s.costs;
        println!(
            "  {:<34} {:>12} {:>10} {:>10} {:>8}",
            s.name, c.flops, c.horizontal_words, c.vertical_words, c.supersteps
        );
    }
    let t = stages.total();
    println!(
        "  {:<34} {:>12} {:>10} {:>10} {:>8}",
        "TOTAL", t.flops, t.horizontal_words, t.vertical_words, t.supersteps
    );

    // The modeled BSP execution time under the machine's α-β-γ-ν
    // parameters.
    let time = machine.report().time(machine.params());
    println!(
        "\nmodeled BSP time: compute {:.2e} + horizontal {:.2e} + vertical {:.2e} + sync {:.2e}",
        time.compute, time.horizontal, time.vertical, time.synchronization
    );
    println!("five smallest eigenvalues: {:?}", &eigenvalues[..5]);
}
