#![allow(clippy::needless_range_loop)]
//! Electronic-structure workload: the use-case the paper's introduction
//! motivates ("scientific applications such as electronic structure
//! methods, which compute eigenvalue decompositions of a sequence of
//! symmetric matrices (see, e.g. Hartree-Fock method)").
//!
//! We build a sequence of disordered tight-binding Hamiltonians (the
//! Anderson model on a ring), solve each with both the 2.5D
//! communication-avoiding eigensolver and the ScaLAPACK-style direct
//! method, track a physical observable (the spectral gap at the Fermi
//! level), and compare the accumulated communication of the two solvers
//! over the whole sequence — the regime where the asymptotic savings
//! compound.
//!
//! Run with: `cargo run --release --example electronic_structure`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::dla::tridiag::spectrum_distance;
use ca_symm_eig::eigen::baselines::scalapack::scalapack_eigenvalues;
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use ca_symm_eig::pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256; // sites on the ring
    let p = 16;
    let hopping = 1.0;
    let steps = 4; // SCF-like iterations with varying disorder

    println!("Anderson tight-binding ring: n = {n} sites, {steps} disorder realizations, p = {p}");
    println!();

    let machine_ca = Machine::new(MachineParams::new(p));
    let machine_direct = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let grid2 = Grid::all(p).squarest_2d();

    println!(
        "  {:>4}  {:>9}  {:>12}  {:>12}  {:>9}",
        "step", "disorder", "E_min", "gap@mid", "λ err"
    );
    for step in 0..steps {
        let disorder = 0.5 + step as f64;
        let mut rng = StdRng::seed_from_u64(100 + step as u64);
        let h = gen::tight_binding_ring(&mut rng, n, hopping, disorder);

        let (ev_ca, _) = symm_eigen_25d(&machine_ca, &params, &h);
        let ev_direct = scalapack_eigenvalues(&machine_direct, &grid2, &h);
        let err = spectrum_distance(&ev_ca, &ev_direct);
        assert!(err < 1e-8, "solvers disagree: {err}");

        // A physical observable: gap between the two states around the
        // band centre (half filling).
        let gap = ev_ca[n / 2] - ev_ca[n / 2 - 1];
        println!(
            "  {:>4}  {:>9.2}  {:>12.6}  {:>12.6}  {:>9.1e}",
            step, disorder, ev_ca[0], gap, err
        );
    }

    let ca = machine_ca.report();
    let direct = machine_direct.report();
    println!();
    println!("accumulated costs over the whole sequence:");
    println!(
        "  {:<18} {:>14} {:>14} {:>10}",
        "solver", "W (words)", "Q (words)", "S"
    );
    println!(
        "  {:<18} {:>14} {:>14} {:>10}",
        "2.5d ca-eigensolver", ca.horizontal_words, ca.vertical_words, ca.supersteps
    );
    println!(
        "  {:<18} {:>14} {:>14} {:>10}",
        "direct (pdsytrd)", direct.horizontal_words, direct.vertical_words, direct.supersteps
    );
    println!();
    let q_ratio = direct.vertical_words as f64 / ca.vertical_words as f64;
    let s_ratio = direct.supersteps as f64 / ca.supersteps as f64;
    println!(
        "direct/banded vertical-traffic ratio: {q_ratio:.2}× (grows ∝ n — the n³/p"
    );
    println!("trailing-matrix matvec traffic that banded reduction avoids);");
    println!("direct/banded synchronization ratio: {s_ratio:.2}× (the direct method");
    println!("synchronizes per column, Θ(n) times per solve).");
}
