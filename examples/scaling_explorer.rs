#![allow(clippy::needless_range_loop)]
//! Scaling explorer: sweep machine configurations (p, c) for a fixed
//! problem and print how the four cost quantities move — a small CLI for
//! exploring the paper's tuning space ("the flexibility offered by the
//! parameter c increases the dimensionality of the tuning space for
//! symmetric eigensolver implementations", §I).
//!
//! Run with: `cargo run --release --example scaling_explorer -- [n]`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::{symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);

    // Every (p, c) with p/c a perfect square and c within (or at the
    // boundary of) the paper's c ≤ p^{1/3} regime.
    let configs: Vec<(usize, usize)> = vec![
        (4, 1),
        (16, 1),
        (36, 1),
        (64, 1),
        (64, 4),
        (144, 1),
        (256, 1),
        (256, 4),
    ];

    println!("2.5D symmetric eigensolver scaling, n = {n}");
    println!();
    println!(
        "  {:>5} {:>3} {:>6}  {:>12} {:>12} {:>12} {:>8} {:>10}  {:>10}",
        "p", "c", "δ", "F max/proc", "W", "Q", "S", "peak M", "model time"
    );

    let mut rng = StdRng::seed_from_u64(9);
    let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);

    for (p, c) in configs {
        if p > n {
            continue; // the paper assumes n ≥ p
        }
        let machine = Machine::new(MachineParams::new(p));
        let params = EigenParams::new(p, c);
        let (ev, _) = symm_eigen_25d(&machine, &params, &a);
        assert!(ca_symm_eig::dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-7 * n as f64);
        let r = machine.report();
        let t = r.time(machine.params());
        println!(
            "  {:>5} {:>3} {:>6.3}  {:>12} {:>12} {:>12} {:>8} {:>10}  {:>10.3e}",
            p,
            c,
            params.delta(),
            r.flops,
            r.horizontal_words,
            r.vertical_words,
            r.supersteps,
            r.peak_memory_words,
            t.total()
        );
    }
    println!();
    println!("Notes: W should fall with p (∝ p^(−δ)) and with c at fixed p (∝ 1/√c");
    println!("within c ≤ p^(1/3)); peak memory grows ∝ c (the price of replication);");
    println!("the modeled time weighs F/W/Q/S by the machine's γ/β/ν/α.");
}
