#![allow(clippy::needless_range_loop)]
//! Successive band reduction, visualized: watch a dense symmetric
//! matrix walk down the band-width ladder (full → b → b/2 → … →
//! tridiagonal) while its eigenvalues stay put — the structural heart of
//! the paper's §IV.
//!
//! Run with: `cargo run --release --example band_reduction_demo`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::tridiag::{banded_eigenvalues, spectrum_distance, tridiag_eigenvalues};
use ca_symm_eig::dla::{gen, BandedSym};
use ca_symm_eig::eigen::{band_to_band, full_to_band, EigenParams};
use ca_symm_eig::pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 64;
    let b0 = 16;
    let p = 8;
    let mut rng = StdRng::seed_from_u64(31);
    let spectrum = gen::linspace_spectrum(n, 0.0, 8.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);

    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new_unchecked(p, 2);
    let grid = Grid::all(p);

    println!("successive band reduction, n = {n}: dense → b = {b0} → … → tridiagonal");
    println!();
    println!("dense input (|entry| > 1e-9):");
    sparsity(&a_to_band(&a), n);

    // Stage 1: full → band.
    let (mut band, _) = full_to_band(&machine, &params, &a, b0);
    check(&band, &spectrum, "full→band");
    println!("\nafter full-to-band (b = {}):", band.bandwidth());
    sparsity(&band, n);

    // Stage 2: halve repeatedly.
    while band.bandwidth() > 1 {
        let (next, _) = band_to_band(&machine, &grid, &band, 2, 1);
        band = next;
        check(&band, &spectrum, "band-to-band");
        println!("\nafter band-to-band (b = {}):", band.bandwidth());
        sparsity(&band, n);
    }

    // Final: tridiagonal eigensolve.
    let (d, e) = band.tridiagonal();
    let ev = tridiag_eigenvalues(&d, &e);
    let err = spectrum_distance(&ev, &spectrum);
    println!("\ntridiagonal QL eigenvalues vs prescribed spectrum: max error {err:.2e}");
    let total = machine.report();
    println!(
        "whole ladder cost: F = {}, W = {}, S = {}",
        total.flops, total.horizontal_words, total.supersteps
    );
}

fn a_to_band(a: &ca_symm_eig::dla::Matrix) -> BandedSym {
    BandedSym::from_dense(a, a.rows() - 1, a.rows() - 1)
}

fn check(band: &BandedSym, spectrum: &[f64], stage: &str) {
    let ev = banded_eigenvalues(band);
    let err = spectrum_distance(&ev, spectrum);
    assert!(err < 1e-8 * spectrum.len() as f64, "{stage}: spectrum drifted {err}");
}

fn sparsity(bandm: &BandedSym, n: usize) {
    let step = (n / 32).max(1);
    for i in (0..n).step_by(step) {
        let mut row = String::from("    ");
        for j in (0..n).step_by(step) {
            row.push(if bandm.get(i, j).abs() > 1e-9 { '█' } else { '·' });
        }
        println!("{row}");
    }
}
