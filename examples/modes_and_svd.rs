#![allow(clippy::needless_range_loop)]
//! Eigenvectors and singular values: the §IV.C extension in action.
//!
//! Computes the vibrational modes of a discrete 1D chain (the
//! tridiagonal Laplacian — whose eigenvectors are exact sine waves we
//! can check against) with `symm_eigen_25d_vectors`, then the SVD of a
//! rank-structured rectangular matrix via the Jordan–Wielandt embedding.
//!
//! Run with: `cargo run --release --example modes_and_svd`

use ca_symm_eig::bsp::{Machine, MachineParams};
use ca_symm_eig::dla::gemm::{matmul, Trans};
use ca_symm_eig::dla::gen;
use ca_symm_eig::eigen::{svd, symm_eigen_25d_vectors, EigenParams};

fn main() {
    // Part 1: modes of a fixed-end chain of 64 masses.
    let n = 64;
    let a = gen::laplacian_2d(n, 1); // tridiagonal (−1, 4, −1): 1D slice of the 2D stencil
    let p = 8;
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new_unchecked(p, 2);
    let (freqs, modes, costs) = symm_eigen_25d_vectors(&machine, &params, &a);

    println!("1D chain normal modes (n = {n}, p = {p}, c = 2):");
    println!("  lowest frequencies² and their analytic values 4−2cos(kπ/(n+1)):");
    for k in 0..4 {
        let analytic = 4.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        println!("    mode {}: λ = {:.8}  (analytic {:.8})", k + 1, freqs[k], analytic);
        assert!((freqs[k] - analytic).abs() < 1e-9);
    }
    // The fundamental mode is a half sine wave: render it.
    println!("  fundamental mode shape (columns of V are the mode shapes):");
    let mut line = String::from("    ");
    for i in (0..n).step_by(2) {
        let v = modes.get(i, 0);
        let level = ((v.abs() * 40.0) as usize).min(8);
        line.push(['·', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'][level]);
    }
    println!("{line}");
    // Residual check.
    let av = matmul(&a, Trans::N, &modes, Trans::N);
    let mut vl = modes.clone();
    for i in 0..n {
        for j in 0..n {
            vl.set(i, j, modes.get(i, j) * freqs[j]);
        }
    }
    println!("  ‖A·V − V·Λ‖_max = {:.2e}", av.max_diff(&vl));
    let bt = costs
        .stages
        .iter()
        .find(|s| s.name.starts_with("back-transformation"))
        .expect("back-transformation stage");
    println!(
        "  back-transformation cost (the §IV.C price): F = {}, W = {}",
        bt.costs.flops, bt.costs.horizontal_words
    );

    // Part 2: SVD of a low-rank-plus-noise matrix.
    println!();
    let (m_rows, n_cols, rank) = (24usize, 16usize, 3usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;
    let xs = gen::random_matrix(&mut rng, m_rows, rank);
    let ys = gen::random_matrix(&mut rng, rank, n_cols);
    let mut low_rank = matmul(&xs, Trans::N, &ys, Trans::N);
    low_rank.scale(3.0);
    let noise = gen::random_matrix(&mut rng, m_rows, n_cols);
    let mut mat = low_rank;
    mat.axpy(0.01, &noise);

    let machine = Machine::new(MachineParams::new(4));
    let (f, _) = svd(&machine, &EigenParams::new(4, 1), &mat);
    println!("SVD of a rank-{rank} + noise {m_rows}×{n_cols} matrix:");
    println!("  singular values: {:?}", &f.sigma[..6.min(f.sigma.len())]);
    let gap = f.sigma[rank - 1] / f.sigma[rank];
    println!("  spectral gap σ_{rank}/σ_{} = {gap:.1} (rank revealed)", rank + 1);
    assert!(gap > 10.0);
    // Reconstruction.
    let mut us = f.u.clone();
    for i in 0..m_rows {
        for j in 0..f.sigma.len() {
            us.set(i, j, f.u.get(i, j) * f.sigma[j]);
        }
    }
    let recon = matmul(&us, Trans::N, &f.v, Trans::T);
    println!("  ‖UΣVᵀ − A‖_max = {:.2e}", recon.max_diff(&mat));

    // What the whole SVD cost on the virtual machine.
    let total = machine.report();
    println!(
        "  machine costs: F = {}, W = {}, S = {}",
        total.flops, total.horizontal_words, total.supersteps
    );
}
