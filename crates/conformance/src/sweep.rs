//! Sweep drivers: run one pipeline stage at a grid point `(n, p, c)` on
//! a fresh virtual machine and return the metered `F/W/Q/S/M` delta.
//!
//! Every driver is deterministic — the input matrix is seeded from the
//! grid point — so two runs of the harness fit identical exponents.
//! Stage shapes are chosen so each varied parameter isolates one term
//! of the paper's formulas (e.g. the streaming operand count `k` is
//! held fixed so `W_mm ∝ n` in the `n`-sweep).

use ca_bsp::{Costs, Machine, MachineParams};
use ca_dla::{gen, BandedSym};
use ca_eigen::{ca_sbr, model, symm_eigen_25d, EigenParams};
use ca_pla::dist::DistMatrix;
use ca_pla::grid::Grid;
use ca_pla::rect_qr::rect_qr;
use ca_pla::streaming::{streaming_mm, Replicated};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pipeline stage the harness can meter in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Algorithm III.1 / Lemma III.3: replicated streaming multiply.
    StreamingMm,
    /// Theorem III.6: rectangular (panel) QR on a 1D group.
    RectQr,
    /// Algorithm IV.1 / Lemma IV.1: 2.5D full→band reduction.
    FullToBand,
    /// Algorithm IV.2 / Lemma IV.3: 2.5D band→band reduction.
    BandToBand,
    /// Lemma IV.2: one CA-SBR band halving.
    CaSbr,
    /// Algorithm IV.3 / Theorem IV.4: the end-to-end eigensolver.
    Solver,
}

impl Stage {
    /// Stable identifier used in claim ids and CONFORMANCE.json.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::StreamingMm => "streaming-mm",
            Stage::RectQr => "rect-qr",
            Stage::FullToBand => "full-to-band",
            Stage::BandToBand => "band-to-band",
            Stage::CaSbr => "ca-sbr",
            Stage::Solver => "solver",
        }
    }
}

/// A sweep grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Matrix dimension.
    pub n: usize,
    /// Processor count.
    pub p: usize,
    /// Replication factor.
    pub c: usize,
}

impl Point {
    /// Convenience constructor.
    pub fn new(n: usize, p: usize, c: usize) -> Self {
        Self { n, p, c }
    }
}

/// Streaming operand width `k`: held fixed across sweeps so that the
/// Lemma III.3 bound `W = (mk + nk)/pᵟ` is linear in the swept `n`.
const STREAM_K: usize = 8;
/// Panel aspect ratio for rect-QR sweeps: `m = QR_ASPECT·n` rows.
const QR_ASPECT: usize = 4;
/// CA-SBR band-width: held fixed (Lemma IV.2 is swept in `n` at
/// constant `b`, isolating the `n·b/p̂` word term).
const SBR_BAND: usize = 8;

/// Deterministic per-point seed (fixed mixing constants; no RNG state
/// shared between points, so sweeps are order-independent).
fn seed(stage: Stage, pt: Point) -> u64 {
    let s = match stage {
        Stage::StreamingMm => 1,
        Stage::RectQr => 2,
        Stage::FullToBand => 3,
        Stage::BandToBand => 4,
        Stage::CaSbr => 5,
        Stage::Solver => 6,
    };
    0x00c0_ffee_u64
        .wrapping_mul(31)
        .wrapping_add(s)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((pt.n as u64) << 32 | (pt.p as u64) << 8 | pt.c as u64)
}

/// Band-width used by the band→band sweep at dimension `n`
/// (proportional to `n`, so the Lemma IV.3 word bound
/// `n^{1+δ}b^{1−δ}/pᵟ` stays `Θ(n²)` in the `n`-sweep).
pub fn b2b_bandwidth(n: usize) -> usize {
    (n / 8).max(4)
}

/// Target band-width of the full→band sweep: `n/8`, *independent of
/// `p`*. Algorithm IV.3 couples its band-width to `p` through
/// `b = n/max(p^{2−3δ}, log p)`; a p-sweep at that schedule would vary
/// two knobs at once and mask the Lemma IV.1 `1/pᵟ` law behind the
/// panel-count change. The solver stage keeps the coupled schedule —
/// that is the composite the paper ships — while this stage isolates
/// the lemma.
pub fn f2b_bandwidth(n: usize) -> usize {
    (n / 8).max(4)
}

/// Run `stage` at `pt` on a fresh machine and return the metered cost
/// delta of the stage proper (input generation, distribution and
/// replication are excluded — the lemmas cost the algorithm, not the
/// operand setup).
pub fn measure(stage: Stage, pt: Point) -> Costs {
    let mut span = ca_obs::span(&format!(
        "conformance {} (n={}, p={}, c={})",
        stage.name(),
        pt.n,
        pt.p,
        pt.c
    ));
    let mut rng = StdRng::seed_from_u64(seed(stage, pt));
    let machine = Machine::new(MachineParams::new(pt.p));
    let costs = match stage {
        Stage::StreamingMm => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            let grid3 = params.grid3();
            let a = gen::random_symmetric(&mut rng, pt.n);
            let b = gen::random_matrix(&mut rng, pt.n, STREAM_K);
            let rep = Replicated::replicate(&machine, &grid3, &a);
            let (_, costs) = machine.measure(|| {
                streaming_mm(&machine, &rep, (0, 0, pt.n, pt.n), false, &b, 1)
            });
            costs
        }
        Stage::RectQr => {
            let a = gen::random_matrix(&mut rng, QR_ASPECT * pt.n, pt.n);
            let grid = Grid::all(pt.p);
            let da = DistMatrix::from_dense(&machine, &grid, &a);
            let (_, costs) = machine.measure(|| rect_qr(&machine, &da));
            costs
        }
        Stage::FullToBand => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            let a = gen::random_symmetric(&mut rng, pt.n);
            let b = f2b_bandwidth(pt.n);
            let (_, costs) =
                machine.measure(|| ca_eigen::full_to_band(&machine, &params, &a, b));
            costs
        }
        Stage::BandToBand => {
            let b = b2b_bandwidth(pt.n);
            let dense = gen::random_banded(&mut rng, pt.n, b);
            let bm = BandedSym::from_dense(&dense, b, b);
            let grid = Grid::all(pt.p);
            let (_, costs) =
                machine.measure(|| ca_eigen::band_to_band(&machine, &grid, &bm, 2, 1));
            costs
        }
        Stage::CaSbr => {
            let dense = gen::random_banded(&mut rng, pt.n, SBR_BAND);
            let bm = BandedSym::from_dense(&dense, SBR_BAND, SBR_BAND);
            let grid = Grid::all(pt.p);
            let (_, costs) = machine.measure(|| ca_sbr(&machine, &grid, &bm));
            costs
        }
        Stage::Solver => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            let spectrum = gen::linspace_spectrum(pt.n, -4.0, 4.0);
            let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
            let ((ev, _stages), costs) =
                machine.measure(|| symm_eigen_25d(&machine, &params, &a));
            // The sweep is also a correctness probe: a run that meters
            // beautifully but diverges numerically must not pass.
            let dist = ca_dla::tridiag::spectrum_distance(&ev, &spectrum);
            assert!(
                dist < 1e-6 * pt.n as f64,
                "solver diverged at n={} p={} c={}: spectrum distance {dist:.3e}",
                pt.n,
                pt.p,
                pt.c
            );
            costs
        }
    };
    span.set_costs(
        costs.flops,
        costs.horizontal_words,
        costs.vertical_words,
        costs.supersteps,
    );
    costs
}

/// The closed-form model prediction ([`ca_eigen::model`]) for `stage`
/// at `pt`, with the *same* stage shapes as [`measure`]. Fitting these
/// over a sweep gives the finite-size exponent the paper's own formula
/// implies on that window — reported as a diagnostic next to the
/// asymptotic exponent.
pub fn model_costs(stage: Stage, pt: Point) -> ModelQuad {
    // The 2.5D grid parameterization only applies to the stages that
    // run on a q×q×c grid; the 1D-group stages take `p` directly.
    let m = match stage {
        Stage::StreamingMm => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            model::mm_streaming(pt.n, pt.n, STREAM_K, params.q, params.c, 1)
        }
        Stage::RectQr => model::qr_rectangular(QR_ASPECT * pt.n, pt.n, pt.p, 0.5),
        Stage::FullToBand => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            model::full_to_band(pt.n, f2b_bandwidth(pt.n), &params)
        }
        Stage::BandToBand => model::band_to_band(pt.n, b2b_bandwidth(pt.n), 2, pt.p, 0.5),
        Stage::CaSbr => model::ca_sbr_halving(pt.n, SBR_BAND, pt.p),
        Stage::Solver => {
            let params = EigenParams::new_unchecked(pt.p, pt.c);
            model::eigensolver(pt.n, &params)
        }
    };
    ModelQuad {
        flops: m.flops,
        horizontal_words: m.horizontal_words,
        vertical_words: m.vertical_words,
        supersteps: m.supersteps,
    }
}

/// The four fitted quantities of a model prediction, as `f64`.
#[derive(Debug, Clone, Copy)]
pub struct ModelQuad {
    /// Predicted `F`.
    pub flops: f64,
    /// Predicted `W`.
    pub horizontal_words: f64,
    /// Predicted `Q`.
    pub vertical_words: f64,
    /// Predicted `S`.
    pub supersteps: f64,
}

/// The metered quantity a claim fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// Computation (per-superstep max, summed) — `F`.
    F,
    /// Total flop *volume* across processors. The lemmas state `F` per
    /// processor assuming balance; per-superstep-max metering folds
    /// load imbalance (asserted separately by the tier-1 balance test)
    /// into the exponent, so composite stages fit the volume instead.
    /// Only meaningful in fixed-`p` sweeps.
    Fvol,
    /// Horizontal (inter-processor) words — `W`.
    W,
    /// Vertical (memory↔cache) words — `Q`.
    Q,
    /// Supersteps — `S`.
    S,
}

impl Quantity {
    /// Stable identifier used in claim ids.
    pub fn name(&self) -> &'static str {
        match self {
            Quantity::F => "F",
            Quantity::Fvol => "Fvol",
            Quantity::W => "W",
            Quantity::Q => "Q",
            Quantity::S => "S",
        }
    }

    /// Extract this quantity from a metered [`Costs`].
    pub fn of(&self, c: &Costs) -> f64 {
        match self {
            Quantity::F => c.flops as f64,
            Quantity::Fvol => c.total_flops as f64,
            Quantity::W => c.horizontal_words as f64,
            Quantity::Q => c.vertical_words as f64,
            Quantity::S => c.supersteps as f64,
        }
    }

    /// Extract this quantity from a model prediction. `Fvol` maps to
    /// the model's per-processor `F` — identical exponent in any
    /// fixed-`p` sweep, which is the only place `Fvol` is claimed.
    pub fn of_model(&self, m: &ModelQuad) -> f64 {
        match self {
            Quantity::F | Quantity::Fvol => m.flops,
            Quantity::W => m.horizontal_words,
            Quantity::Q => m.vertical_words,
            Quantity::S => m.supersteps,
        }
    }
}

/// Replication gain: measure `W` for `stage` at `(n, p, c = 1)` and
/// `(n, p, c = c_hi)` on the same seeded input and return
/// `(w_base, w_replicated, gain)`. The paper's headline is
/// `gain → √c_hi` (Lemma III.3 through Theorem IV.4).
pub fn replication_gain(stage: Stage, n: usize, p: usize, c_hi: usize) -> (f64, f64, f64) {
    let w1 = Quantity::W.of(&measure(stage, Point::new(n, p, 1)));
    let wc = Quantity::W.of(&measure(stage, Point::new(n, p, c_hi)));
    (w1, wc, w1 / wc)
}
