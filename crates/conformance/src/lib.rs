//! # conformance — cost-model conformance harness
//!
//! Does the implementation *scale* the way the paper proves it must,
//! and are the numbers it produces *right*? This crate answers both
//! with one machine-checkable artifact:
//!
//! * [`sweep`] runs each pipeline stage (Streaming-MM, rectangular QR,
//!   full→band, band→band, CA-SBR, the end-to-end solver) over a grid
//!   of `(n, p, c)` on the virtual machine and pulls the metered
//!   `F/W/Q/S` deltas from the BSP ledger;
//! * [`fit`] log-log-fits the measured quantities to extract scaling
//!   exponents;
//! * [`claims`] is the table of asserted power laws — each with its
//!   paper reference (Lemma III.3, Theorem III.6, Lemmas IV.1–IV.3,
//!   Theorem IV.4), the asymptotic exponent, and a *documented*
//!   tolerance calibrated against finite-size effects — plus the
//!   headline `√c` replication-gain bands;
//! * [`oracle`] is the numerical side: residual, orthogonality,
//!   reference spectra (known constructions or independent Sturm
//!   bisection) and metamorphic invariances over a seeded gallery;
//! * [`run`] executes everything and [`report`] serializes the result
//!   as `CONFORMANCE.json` (see `cargo run -p conformance`).

#![warn(missing_docs)]

pub mod claims;
pub mod fit;
pub mod oracle;
pub mod report;
pub mod run;
pub mod sweep;

pub use report::Report;
pub use run::run;
