//! The machine-readable CONFORMANCE.json model.
//!
//! Plain named-field structs only (the vendored serde shim derives
//! `Serialize` for exactly that shape); enums and generics are
//! flattened to strings/numbers before they get here.

use serde::Serialize;

/// One sweep point with the fitted x (swept variable) and y (metered
/// quantity) values.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPointOut {
    /// Matrix dimension.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Replication factor.
    pub c: u64,
    /// Fit x-axis value (the swept variable).
    pub x: f64,
    /// Fit y-axis value (the metered quantity).
    pub y: f64,
}

/// Outcome of one exponent claim.
#[derive(Debug, Clone, Serialize)]
pub struct ClaimOut {
    /// Stable claim id, `<stage>.<quantity>.<variable>`.
    pub id: String,
    /// Stage name.
    pub stage: String,
    /// Metered quantity (`F`/`W`/`Q`/`S`).
    pub quantity: String,
    /// Swept variable (`n`/`p`/`c`).
    pub variable: String,
    /// Paper reference for the claimed exponent.
    pub reference: String,
    /// The paper's asymptotic exponent.
    pub paper_exponent: f64,
    /// The fitted exponent of the measured sweep.
    pub measured_exponent: f64,
    /// The fitted exponent of the closed-form model over the same
    /// points (finite-size baseline; diagnostic, not asserted).
    pub model_window_exponent: f64,
    /// Documented tolerance on `|measured − paper|`.
    pub tolerance: f64,
    /// R² of the measured log-log fit.
    pub r2: f64,
    /// Tolerance rationale.
    pub note: String,
    /// Whether `|measured − paper| ≤ tolerance`.
    pub pass: bool,
    /// The sweep points behind the fit.
    pub points: Vec<SweepPointOut>,
}

/// Outcome of one replication-gain claim.
#[derive(Debug, Clone, Serialize)]
pub struct GainOut {
    /// Stable claim id, `<stage>.gain.c<c_hi>`.
    pub id: String,
    /// Stage name.
    pub stage: String,
    /// Matrix dimension.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Replication factor of the replicated run.
    pub c_hi: u64,
    /// Paper reference for the √c saving.
    pub reference: String,
    /// The paper's predicted gain, `√c_hi`.
    pub expected_gain: f64,
    /// Measured `W(c=1)/W(c=c_hi)`.
    pub measured_gain: f64,
    /// Measured `W` at `c = 1`.
    pub w_base: f64,
    /// Measured `W` at `c = c_hi`.
    pub w_replicated: f64,
    /// Documented lower bound.
    pub lo: f64,
    /// Documented upper bound.
    pub hi: f64,
    /// Band rationale.
    pub note: String,
    /// Whether `lo ≤ measured ≤ hi`.
    pub pass: bool,
}

/// Outcome of one numerical-oracle gallery entry.
#[derive(Debug, Clone, Serialize)]
pub struct OracleOut {
    /// Gallery matrix name.
    pub matrix: String,
    /// Matrix dimension.
    pub n: u64,
    /// Processor count of the solve.
    pub p: u64,
    /// Replication factor of the solve.
    pub c: u64,
    /// Scaled residual `‖AV − VΛ‖_max / (n‖A‖_max)`.
    pub residual: f64,
    /// Orthogonality defect `‖VᵀV − I‖_max`.
    pub orthogonality: f64,
    /// Max eigenvalue deviation vs the reference spectrum (known
    /// analytic values or Sturm bisection), scaled by `‖A‖_max`.
    pub eigenvalue_error: f64,
    /// Which reference the eigenvalues were checked against.
    pub reference: String,
    /// Shift metamorphic defect: `max|λ(A+σI) − (λ(A)+σ)|`, scaled.
    pub shift_defect: f64,
    /// Scale metamorphic defect: `max|λ(sA) − sλ(A)|`, scaled.
    pub scale_defect: f64,
    /// Orthogonal-similarity defect: `max|λ(QAQᵀ) − λ(A)|`, scaled.
    pub similarity_defect: f64,
    /// Threshold applied to every scaled defect above.
    pub tolerance: f64,
    /// Whether every defect is below `tolerance`.
    pub pass: bool,
}

/// The whole CONFORMANCE.json document.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Schema tag for downstream readers.
    pub schema: String,
    /// Whether this was a `--quick` (reduced-sweep) run.
    pub quick: bool,
    /// Exponent-claim outcomes.
    pub exponents: Vec<ClaimOut>,
    /// Replication-gain outcomes.
    pub gains: Vec<GainOut>,
    /// Numerical-oracle outcomes.
    pub oracles: Vec<OracleOut>,
    /// Number of passing checks (all three sections).
    pub passed: u64,
    /// Number of failing checks.
    pub failed: u64,
    /// Overall verdict: `failed == 0`.
    pub pass: bool,
}

impl Report {
    /// Serialize to pretty-printed JSON (the vendored serde_json shim
    /// only emits compact strings; re-indent for diffability).
    pub fn to_json(&self) -> String {
        pretty(&serde_json::to_string(self).expect("report serialization"))
    }
}

/// Re-indent a compact JSON string (2 spaces, newline after `{`/`[`,
/// `,` and before `}`/`]`). String-literal aware; assumes valid JSON.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for ch in compact.chars() {
        if in_str {
            out.push(ch);
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                out.push(ch);
            }
            '{' | '[' => {
                depth += 1;
                out.push(ch);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(ch);
            }
            ',' => {
                out.push(ch);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(ch);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printer_is_string_literal_aware() {
        let compact = r#"{"a":[1,2],"s":"x{,}y"}"#;
        let p = pretty(compact);
        assert!(p.contains("\"a\": [\n"));
        // Braces and commas inside the string literal stay untouched.
        assert!(p.contains(r#""x{,}y""#));
        // Round-trip structure: depth returns to zero.
        assert!(p.trim_end().ends_with('}'));
    }
}
