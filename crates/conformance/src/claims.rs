//! The claims table: every scaling law the harness asserts, with the
//! paper reference, the asymptotic exponent, and a *documented*
//! tolerance.
//!
//! Tolerances are calibrated, not wished for. The fitted exponent of a
//! finite sweep differs from the asymptotic one because the lemmas'
//! bounds carry lower-order terms (latency `log p` factors, per-stage
//! setup, the `mn/p` additive term of Theorem III.6) that do not vanish
//! on an `n ≤ 192`, `p ≤ 64` window. Each claim's `note` records which
//! term dominates the deviation; the tolerance is set to roughly twice
//! the deviation observed at calibration time, so a *regression* (an
//! accounting bug that changes the scaling class, e.g. `W` going from
//! `n²/pᵟ` to `n²/√p`-less) trips the assertion while normal finite-size
//! wobble does not. The model-implied window exponent (same fit applied
//! to [`ca_eigen::model`] closed forms over the same points) is emitted
//! alongside as a diagnostic baseline.

use crate::sweep::{Point, Quantity, Stage};

/// One asserted power-law claim: the fitted exponent of `quantity` in
/// `variable` over `points` must land within `tol` of `paper`.
#[derive(Debug, Clone)]
pub struct ExponentClaim {
    /// Stable id, `<stage>.<quantity>.<variable>`.
    pub id: &'static str,
    /// Stage under test.
    pub stage: Stage,
    /// Metered quantity being fitted.
    pub quantity: Quantity,
    /// The swept variable: `"n"`, `"p"` or `"c"`.
    pub variable: &'static str,
    /// The paper's asymptotic exponent.
    pub paper: f64,
    /// Documented tolerance on `|fitted − paper|`.
    pub tol: f64,
    /// Paper reference (lemma/theorem) for the exponent.
    pub reference: &'static str,
    /// Why the tolerance is what it is (which lower-order term bends
    /// the finite-size fit, and in which direction).
    pub note: &'static str,
    /// Full sweep grid.
    pub points: Vec<Point>,
    /// Reduced sweep used by `--quick` and the CI tier-2 job.
    pub quick_points: Vec<Point>,
}

impl ExponentClaim {
    /// Value of the swept variable at `pt` (the fit's x-axis).
    pub fn x_of(&self, pt: &Point) -> f64 {
        match self.variable {
            "n" => pt.n as f64,
            "p" => pt.p as f64,
            "c" => pt.c as f64,
            other => unreachable!("unknown sweep variable {other}"),
        }
    }
}

/// A replication-gain claim: `W(c=1)/W(c=c_hi)` at fixed `(n, p)` must
/// land inside `[lo, hi]`, bracketing the paper's `√c` prediction.
#[derive(Debug, Clone)]
pub struct GainClaim {
    /// Stable id, `<stage>.gain.c<child>`.
    pub id: &'static str,
    /// Stage under test.
    pub stage: Stage,
    /// Matrix dimension.
    pub n: usize,
    /// Processor count.
    pub p: usize,
    /// Replication factor of the replicated run.
    pub c_hi: usize,
    /// The paper's predicted gain, `√c_hi`.
    pub expected: f64,
    /// Documented lower bound on the measured gain.
    pub lo: f64,
    /// Documented upper bound on the measured gain.
    pub hi: f64,
    /// Paper reference for the √c saving.
    pub reference: &'static str,
    /// Why the band is what it is.
    pub note: &'static str,
}

fn n_sweep(p: usize, c: usize, ns: &[usize]) -> Vec<Point> {
    ns.iter().map(|&n| Point::new(n, p, c)).collect()
}

fn p_sweep(n: usize, c: usize, ps: &[usize]) -> Vec<Point> {
    ps.iter().map(|&p| Point::new(n, p, c)).collect()
}

/// The asserted exponent claims. Covers all six stages; the
/// acceptance-critical entries are `solver.W.p` (the headline
/// `W = O(n²/pᵟ)` in `p`) and the [`gain_claims`] `√c` rows.
pub fn exponent_claims() -> Vec<ExponentClaim> {
    let ns: &[usize] = &[64, 96, 128, 192];
    let ns_quick: &[usize] = &[64, 128];
    // p/c must leave a square per-layer grid: 4, 16, 36, 64 at c = 1.
    let ps: &[usize] = &[4, 16, 36, 64];
    let ps_quick: &[usize] = &[16, 64];
    vec![
        // ——— Streaming-MM (Algorithm III.1, Lemma III.3) ———
        ExponentClaim {
            id: "streaming-mm.W.n",
            stage: Stage::StreamingMm,
            quantity: Quantity::W,
            variable: "n",
            paper: 1.0,
            tol: 0.25,
            reference: "Lemma III.3: W = O((mk + nk)/p^δ), k fixed",
            note: "k is held fixed, so W is linear in n; the broadcast \
                   of B and reduce-scatter of C add O(k·q) per-step terms \
                   that fade as n grows.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "streaming-mm.F.n",
            stage: Stage::StreamingMm,
            quantity: Quantity::F,
            variable: "n",
            paper: 2.0,
            tol: 0.15,
            reference: "Lemma III.3: F = O(mnk/p), k fixed",
            note: "Pure GEMM flops; the per-superstep-max metering adds \
                   only block-roundoff wobble.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "streaming-mm.W.p",
            stage: Stage::StreamingMm,
            quantity: Quantity::W,
            variable: "p",
            paper: -0.5,
            tol: 0.2,
            reference: "Lemma III.3: W = O(n·k/p^δ), δ = 1/2 at c = 1",
            note: "At c = 1, p^δ = √p exactly; the measured −0.42 \
                   deviation comes from ceil-divided block sizes at \
                   p = 64 on n = 128.",
            points: p_sweep(128, 1, ps),
            quick_points: p_sweep(128, 1, ps_quick),
        },
        // ——— Rectangular QR (Theorem III.6) ———
        ExponentClaim {
            id: "rect-qr.F.n",
            stage: Stage::RectQr,
            quantity: Quantity::F,
            variable: "n",
            paper: 3.0,
            tol: 0.3,
            reference: "Theorem III.6: F = O(mn²/p), m = 4n",
            note: "Panel aspect is fixed (m = 4n), so flops are cubic in \
                   the panel width; the TSQR tree adds O(n³ log p) \
                   butterfly terms with small constants.",
            points: n_sweep(4, 1, &[32, 48, 64, 96]),
            quick_points: n_sweep(4, 1, &[32, 64]),
        },
        ExponentClaim {
            id: "rect-qr.W.n",
            stage: Stage::RectQr,
            quantity: Quantity::W,
            variable: "n",
            paper: 2.0,
            tol: 0.3,
            reference: "Theorem III.6: W = O(m^δ n^{2−δ}/p^δ + mn/p), m = 4n",
            note: "Both terms are Θ(n²) once m ∝ n; the log p tree \
                   factor is n-independent and drops out of the fit.",
            points: n_sweep(4, 1, &[32, 48, 64, 96]),
            quick_points: n_sweep(4, 1, &[32, 64]),
        },
        // ——— Full-to-band (Algorithm IV.1, Lemma IV.1) ———
        ExponentClaim {
            id: "full-to-band.W.n",
            stage: Stage::FullToBand,
            quantity: Quantity::W,
            variable: "n",
            paper: 2.0,
            tol: 0.35,
            reference: "Lemma IV.1: W = O(n²/p^δ)",
            note: "b = n/8 so the panel count is constant across the \
                   sweep; panel QR and reconstruction words carry \
                   sub-quadratic terms that depress the slope slightly.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "full-to-band.Fvol.n",
            stage: Stage::FullToBand,
            quantity: Quantity::Fvol,
            variable: "n",
            paper: 3.0,
            tol: 0.35,
            reference: "Lemma IV.1: F = O(n³/p)",
            note: "Volume-based (see Quantity::Fvol): the panel QR runs \
                   on a processor subset, so per-superstep-max F folds \
                   stage imbalance into the exponent; the tier-1 \
                   balance test bounds that imbalance separately.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "full-to-band.W.p",
            stage: Stage::FullToBand,
            quantity: Quantity::W,
            variable: "p",
            paper: -0.5,
            tol: 0.3,
            reference: "Lemma IV.1: W = O(n²/p^δ), δ = 1/2 at c = 1",
            note: "Acceptance-critical claim, swept at fixed b = 16 \
                   (Algorithm IV.3's b(p) schedule would vary two knobs \
                   at once). Measured ≈ −0.28 at calibration: panel-QR \
                   tree words (Θ(b² log p) per panel) do not fall with \
                   p and flatten the slope on this window.",
            points: p_sweep(128, 1, ps),
            quick_points: p_sweep(128, 1, ps_quick),
        },
        // ——— Band-to-band (Algorithm IV.2, Lemma IV.3) ———
        ExponentClaim {
            id: "band-to-band.W.n",
            stage: Stage::BandToBand,
            quantity: Quantity::W,
            variable: "n",
            paper: 2.0,
            tol: 0.35,
            reference: "Lemma IV.3: W = O(n^{1+δ}b^{1−δ}/p^δ), b = n/8",
            note: "With b ∝ n the bound is Θ(n²); the per-chase QR \
                   panels add an O(n·b) floor visible at n = 64.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "band-to-band.F.n",
            stage: Stage::BandToBand,
            quantity: Quantity::F,
            variable: "n",
            paper: 3.0,
            tol: 0.35,
            reference: "Lemma IV.3: F = O(n²b/p), b = n/8",
            note: "Bulge-chase updates are Θ(n²b); with b ∝ n the sweep \
                   sees the cubic.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        // ——— CA-SBR (Lemma IV.2) ———
        ExponentClaim {
            id: "ca-sbr.W.n",
            stage: Stage::CaSbr,
            quantity: Quantity::W,
            variable: "n",
            paper: 1.0,
            tol: 0.3,
            reference: "Lemma IV.2: W = O(nb/p̂), b fixed",
            note: "b is held fixed at 8, so the per-processor word share \
                   is linear in n. The sweep starts at n = 96: below \
                   that the bulge windows (≈ 2b columns) are comparable \
                   to the per-processor column ranges and boundary \
                   traffic is superlinear (measured ratios converge to \
                   linear from above as n grows).",
            points: n_sweep(4, 1, &[96, 128, 192, 256]),
            quick_points: n_sweep(4, 1, &[128, 256]),
        },
        ExponentClaim {
            id: "ca-sbr.F.n",
            stage: Stage::CaSbr,
            quantity: Quantity::F,
            variable: "n",
            paper: 2.0,
            tol: 0.3,
            reference: "Lemma IV.2: F = O(n²b/p̂), b fixed",
            note: "Each of the O(n/b) sweeps touches O(nb²/p̂) entries.",
            points: n_sweep(4, 1, &[96, 128, 192, 256]),
            quick_points: n_sweep(4, 1, &[128, 256]),
        },
        // ——— End-to-end solver (Algorithm IV.3, Theorem IV.4) ———
        ExponentClaim {
            id: "solver.W.n",
            stage: Stage::Solver,
            quantity: Quantity::W,
            variable: "n",
            paper: 2.0,
            tol: 0.35,
            reference: "Theorem IV.4: W = O(n²/p^δ)",
            note: "Composition of the stage claims; the sequential \
                   eigensolve gather adds an O(n·b) term.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "solver.Fvol.n",
            stage: Stage::Solver,
            quantity: Quantity::Fvol,
            variable: "n",
            paper: 3.0,
            tol: 0.35,
            reference: "Theorem IV.4: F = O(n³/p)",
            note: "Volume-based (see Quantity::Fvol): the sequential \
                   banded eigensolve runs on one processor and would \
                   dominate per-superstep-max F at small n.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
        ExponentClaim {
            id: "solver.W.p",
            stage: Stage::Solver,
            quantity: Quantity::W,
            variable: "p",
            paper: -0.5,
            tol: 0.4,
            reference: "Theorem IV.4 / Lemma IV.1: W = O(n²/p^δ), δ = 1/2 at c = 1",
            note: "Swept at n = 256, p ≥ 16: the composite couples \
                   b(p) = n/max(√p, log p) to p and runs band-to-band \
                   on shrinking processor prefixes whose words do not \
                   fall with the global p; measured ≈ −0.22 at \
                   calibration. Below p = 16 the 1D stages dominate and \
                   the slope collapses entirely — the claim documents \
                   where the asymptotic regime starts.",
            points: p_sweep(256, 1, &[16, 36, 64]),
            quick_points: p_sweep(256, 1, &[16, 64]),
        },
        ExponentClaim {
            id: "solver.S.n",
            stage: Stage::Solver,
            quantity: Quantity::S,
            variable: "n",
            paper: 0.0,
            tol: 0.8,
            reference: "Theorem IV.4: S = O(p^δ log²p), n-independent",
            note: "The headline is what S is *not*: linear in n (the \
                   ScaLAPACK baseline's Θ(n) column collectives). The \
                   band-to-band chase count grows mildly with n on \
                   finite windows; the tolerance excludes slope ≥ 0.8, \
                   i.e. anything approaching the direct method's 1.0.",
            points: n_sweep(16, 1, ns),
            quick_points: n_sweep(16, 1, ns_quick),
        },
    ]
}

/// The asserted `√c` replication-gain claims.
pub fn gain_claims() -> Vec<GainClaim> {
    vec![
        GainClaim {
            id: "streaming-mm.gain.c4",
            stage: Stage::StreamingMm,
            n: 128,
            p: 64,
            c_hi: 4,
            expected: 2.0,
            lo: 1.5,
            hi: 2.5,
            reference: "Lemma III.3: W ∝ 1/p^δ = 1/(q·c) → ×√c at fixed p",
            note: "The streaming kernel realizes the √c saving almost \
                   exactly; the band allows block-size roundoff.",
        },
        GainClaim {
            id: "full-to-band.gain.c4",
            stage: Stage::FullToBand,
            n: 96,
            p: 64,
            c_hi: 4,
            expected: 2.0,
            lo: 1.15,
            hi: 2.5,
            reference: "Lemma IV.1: W = O(n²/p^δ) → ×√c at fixed p",
            note: "Panel QR and reconstruction words are c-independent \
                   and dilute the gain at n = 96 (the same band the \
                   tier-1 spot check pins: > 1.15, toward 2).",
        },
        GainClaim {
            id: "solver.gain.c4",
            stage: Stage::Solver,
            n: 192,
            p: 64,
            c_hi: 4,
            expected: 2.0,
            lo: 1.05,
            hi: 2.5,
            reference: "Theorem IV.4: end-to-end W gains √c where \
                        full-to-band dominates",
            note: "Band-to-band and the sequential stage are \
                   c-independent, so the end-to-end gain is the \
                   full-to-band gain diluted by their word share; must \
                   stay > 1 (replication never loses) and below √c·1.25.",
        },
    ]
}
