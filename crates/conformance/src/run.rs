//! Execute the claims table and assemble the [`Report`].

use crate::claims::{exponent_claims, gain_claims};
use crate::fit::fit_log_log;
use crate::oracle;
use crate::report::{ClaimOut, GainOut, Report, SweepPointOut};
use crate::sweep::{measure, model_costs, replication_gain};

/// Run every exponent claim, gain claim and oracle entry; `quick`
/// selects the reduced sweeps (CI tier-2 / smoke test). `progress`
/// receives one line per completed check, for live output.
pub fn run(quick: bool, mut progress: impl FnMut(&str)) -> Report {
    let mut exponents = Vec::new();
    for claim in exponent_claims() {
        let points = if quick {
            &claim.quick_points
        } else {
            &claim.points
        };
        let xs: Vec<f64> = points.iter().map(|pt| claim.x_of(pt)).collect();
        let mut ys = Vec::with_capacity(points.len());
        let mut model_ys = Vec::with_capacity(points.len());
        let mut points_out = Vec::with_capacity(points.len());
        for pt in points {
            let costs = measure(claim.stage, *pt);
            let y = claim.quantity.of(&costs);
            model_ys.push(claim.quantity.of_model(&model_costs(claim.stage, *pt)));
            points_out.push(SweepPointOut {
                n: pt.n as u64,
                p: pt.p as u64,
                c: pt.c as u64,
                x: claim.x_of(pt),
                y,
            });
            ys.push(y);
        }
        let fitted = fit_log_log(&xs, &ys);
        let model_fit = fit_log_log(&xs, &model_ys);
        let pass = (fitted.slope - claim.paper).abs() <= claim.tol;
        progress(&format!(
            "{} {:<22} paper {:+.2}  measured {:+.3}  (model window {:+.3}, R²={:.4}, tol ±{:.2})",
            if pass { "PASS" } else { "FAIL" },
            claim.id,
            claim.paper,
            fitted.slope,
            model_fit.slope,
            fitted.r2,
            claim.tol,
        ));
        exponents.push(ClaimOut {
            id: claim.id.to_string(),
            stage: claim.stage.name().to_string(),
            quantity: claim.quantity.name().to_string(),
            variable: claim.variable.to_string(),
            reference: claim.reference.to_string(),
            paper_exponent: claim.paper,
            measured_exponent: fitted.slope,
            model_window_exponent: model_fit.slope,
            tolerance: claim.tol,
            r2: fitted.r2,
            note: claim.note.to_string(),
            pass,
            points: points_out,
        });
    }

    let mut gains = Vec::new();
    for g in gain_claims() {
        let (w_base, w_rep, gain) = replication_gain(g.stage, g.n, g.p, g.c_hi);
        let pass = gain >= g.lo && gain <= g.hi;
        progress(&format!(
            "{} {:<22} √c = {:.2}  measured ×{:.3}  (band [{:.2}, {:.2}])",
            if pass { "PASS" } else { "FAIL" },
            g.id,
            g.expected,
            gain,
            g.lo,
            g.hi,
        ));
        gains.push(GainOut {
            id: g.id.to_string(),
            stage: g.stage.name().to_string(),
            n: g.n as u64,
            p: g.p as u64,
            c_hi: g.c_hi as u64,
            reference: g.reference.to_string(),
            expected_gain: g.expected,
            measured_gain: gain,
            w_base,
            w_replicated: w_rep,
            lo: g.lo,
            hi: g.hi,
            note: g.note.to_string(),
            pass,
        });
    }

    let oracles = oracle::run_gallery(quick);
    for o in &oracles {
        progress(&format!(
            "{} oracle {:<14} n={:<3} p={:<2} c={}  resid {:.2e}  orth {:.2e}  λ-err {:.2e} (vs {})",
            if o.pass { "PASS" } else { "FAIL" },
            o.matrix,
            o.n,
            o.p,
            o.c,
            o.residual,
            o.orthogonality,
            o.eigenvalue_error,
            o.reference,
        ));
    }

    let passed = exponents.iter().filter(|e| e.pass).count()
        + gains.iter().filter(|g| g.pass).count()
        + oracles.iter().filter(|o| o.pass).count();
    let total = exponents.len() + gains.len() + oracles.len();
    Report {
        schema: "ca-symm-eig/conformance/v1".to_string(),
        quick,
        exponents,
        gains,
        oracles,
        passed: passed as u64,
        failed: (total - passed) as u64,
        pass: total == passed,
    }
}
