//! Numerical oracle suite: the harness's answer to "the costs scale,
//! but are the numbers right?".
//!
//! A seeded matrix gallery (built on `ca_dla::gen`) is solved with the
//! 2.5D eigensolver and checked four ways:
//!
//! 1. **Residual** `‖AV − VΛ‖_max / (n‖A‖_max)` — the computed pairs
//!    actually diagonalize `A`;
//! 2. **Orthogonality** `‖VᵀV − I‖_max` — the basis did not drift;
//! 3. **Reference spectrum** — eigenvalues against either the known
//!    construction spectrum (`symmetric_with_spectrum` galleries) or an
//!    independent Sturm-bisection reference (tridiagonal galleries
//!    directly; dense galleries through a *sequential* bulge-chasing
//!    tridiagonalization, a different code path from the parallel
//!    pipeline under test);
//! 4. **Metamorphic invariances** — `λ(A + σI) = λ(A) + σ`,
//!    `λ(sA) = s·λ(A)`, and `λ(QAQᵀ) = λ(A)` for a seeded orthogonal
//!    `Q`; these need no reference at all and catch silent scaling or
//!    similarity bugs.

use crate::report::OracleOut;
use ca_bsp::{Machine, MachineParams};
use ca_dla::gemm::{matmul, Trans};
use ca_dla::sturm::bisection_eigenvalues;
use ca_dla::{bulge, gen, BandedSym, Matrix};
use ca_eigen::{symm_eigen_25d, symm_eigen_25d_vectors, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where a gallery entry's reference eigenvalues come from.
enum RefSpec {
    /// The spectrum the matrix was constructed from.
    Known(Vec<f64>),
    /// Independent Sturm bisection on the tridiagonal form.
    Sturm,
}

impl RefSpec {
    fn label(&self) -> &'static str {
        match self {
            RefSpec::Known(_) => "construction spectrum",
            RefSpec::Sturm => "Sturm bisection",
        }
    }
}

struct GalleryEntry {
    name: &'static str,
    a: Matrix,
    reference: RefSpec,
}

/// The seeded gallery at dimension `n`. Every entry is deterministic.
fn gallery(n: usize) -> Vec<GalleryEntry> {
    let mut rng = StdRng::seed_from_u64(0x0AC1E);
    let linspace = gen::linspace_spectrum(n, -1.0, 1.0);
    let graded = gen::graded_spectrum(n, 4.0, 0.75);
    let clustered = gen::clustered_spectrum(n, 4, -2.0, 2.0, 1e-9);
    vec![
        GalleryEntry {
            name: "linspace",
            a: gen::symmetric_with_spectrum(&mut rng, &linspace),
            reference: RefSpec::Known(linspace),
        },
        GalleryEntry {
            name: "graded",
            a: gen::symmetric_with_spectrum(&mut rng, &graded),
            reference: RefSpec::Known(graded),
        },
        GalleryEntry {
            name: "clustered",
            a: gen::symmetric_with_spectrum(&mut rng, &clustered),
            reference: RefSpec::Known(clustered),
        },
        GalleryEntry {
            name: "diag-dominant",
            a: gen::diagonally_dominant(&mut rng, n, 4.0),
            reference: RefSpec::Sturm,
        },
        GalleryEntry {
            name: "wilkinson",
            a: gen::wilkinson(n | 1), // Wilkinson matrices are odd-sized
            reference: RefSpec::Sturm,
        },
        GalleryEntry {
            name: "clement",
            a: gen::clement(n),
            reference: RefSpec::Sturm,
        },
        GalleryEntry {
            name: "tight-binding",
            a: gen::tight_binding_ring(&mut rng, n, 1.0, 0.3),
            reference: RefSpec::Sturm,
        },
    ]
}

/// Independent reference spectrum by sequential bulge-chasing
/// tridiagonalization + Sturm bisection — no parallel pipeline code.
fn sturm_reference(a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    let bw = measured_dense_bandwidth(a);
    if bw <= 1 {
        let (d, e) = tridiag_of(a);
        return bisection_eigenvalues(&d, &e, 1e-12);
    }
    let cap = (2 * bw).min(n - 1);
    let mut bm = BandedSym::from_dense(a, bw, cap);
    bulge::reduce_band_to(&mut bm, 1); // straight to tridiagonal
    let (d, e) = bm.tridiagonal();
    bisection_eigenvalues(&d, &e, 1e-12)
}

fn measured_dense_bandwidth(a: &Matrix) -> usize {
    let n = a.rows();
    let mut bw = 0;
    for i in 0..n {
        for j in 0..i {
            if a.get(i, j) != 0.0 {
                bw = bw.max(i - j);
            }
        }
    }
    bw
}

fn tridiag_of(a: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let d = (0..n).map(|i| a.get(i, i)).collect();
    let e = (0..n - 1).map(|i| a.get(i + 1, i)).collect();
    (d, e)
}

fn solve_values(p: usize, c: usize, a: &Matrix) -> Vec<f64> {
    let m = Machine::new(MachineParams::new(p));
    symm_eigen_25d(&m, &EigenParams::new_unchecked(p, c), a).0
}

fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Scaled eigenpair residual `‖AV − VΛ‖_max / (n‖A‖_max)` — oracle #1.
///
/// Public so downstream property tests (e.g. the service batch sweep in
/// the umbrella crate) apply *the same* acceptance metric as the
/// conformance gallery rather than reinventing a near-miss of it.
pub fn residual_defect(a: &Matrix, eigenvalues: &[f64], v: &Matrix) -> f64 {
    let n = a.rows();
    let scale = a.norm_max().max(1.0);
    let av = matmul(a, Trans::N, v, Trans::N);
    let mut vl = v.clone();
    for (j, lambda) in eigenvalues.iter().enumerate() {
        for i in 0..n {
            vl.set(i, j, vl.get(i, j) * lambda);
        }
    }
    av.max_diff(&vl) / (n as f64 * scale)
}

/// Basis-drift defect `‖VᵀV − I‖_max` — oracle #2. See
/// [`residual_defect`] for why this is public.
pub fn orthogonality_defect(v: &Matrix) -> f64 {
    let vtv = matmul(v, Trans::T, v, Trans::N);
    vtv.max_diff(&Matrix::identity(v.rows()))
}

/// Run the full oracle battery for one gallery entry at `(p, c)`.
fn check_entry(entry: &GalleryEntry, p: usize, c: usize, tol: f64) -> OracleOut {
    let a = &entry.a;
    let n = a.rows();
    let scale = a.norm_max().max(1.0);

    // Eigenpairs: residual + orthogonality.
    let m = Machine::new(MachineParams::new(p));
    let (ev, v, _) = symm_eigen_25d_vectors(&m, &EigenParams::new_unchecked(p, c), a);
    let residual = residual_defect(a, &ev, &v);
    let orthogonality = orthogonality_defect(&v);

    // Reference spectrum.
    let reference = match &entry.reference {
        RefSpec::Known(s) => s.clone(),
        RefSpec::Sturm => sturm_reference(a),
    };
    let eigenvalue_error = max_abs_diff(&ev, &reference) / scale;

    // Metamorphic invariances (eigenvalues only).
    let sigma = 1.25;
    let mut shifted = a.clone();
    for i in 0..n {
        shifted.set(i, i, shifted.get(i, i) + sigma);
    }
    let ev_shift = solve_values(p, c, &shifted);
    let want_shift: Vec<f64> = ev.iter().map(|l| l + sigma).collect();
    let shift_defect = max_abs_diff(&ev_shift, &want_shift) / scale;

    let s = 3.0;
    let mut scaled = a.clone();
    scaled.scale(s);
    let ev_scale = solve_values(p, c, &scaled);
    let want_scale: Vec<f64> = ev.iter().map(|l| s * l).collect();
    let scale_defect = max_abs_diff(&ev_scale, &want_scale) / (s * scale);

    let mut rng = StdRng::seed_from_u64(0x51u64 + n as u64);
    let q = gen::random_orthogonal(&mut rng, n);
    let qa = matmul(&q, Trans::N, a, Trans::N);
    let mut sim = matmul(&qa, Trans::N, &q, Trans::T);
    sim.symmetrize(); // roundoff-level asymmetry from the two products
    let ev_sim = solve_values(p, c, &sim);
    let similarity_defect = max_abs_diff(&ev_sim, &ev) / scale;

    let pass = residual < tol
        && orthogonality < tol
        && eigenvalue_error < tol
        && shift_defect < tol
        && scale_defect < tol
        && similarity_defect < tol;
    OracleOut {
        matrix: entry.name.to_string(),
        n: n as u64,
        p: p as u64,
        c: c as u64,
        residual,
        orthogonality,
        eigenvalue_error,
        reference: entry.reference.label().to_string(),
        shift_defect,
        scale_defect,
        similarity_defect,
        tolerance: tol,
        pass,
    }
}

/// Run the oracle gallery. `quick` solves at `n = 32` on `p = 4`
/// processors only; the full run adds `n = 48` and a replicated
/// `(p = 8, c = 2)` configuration for the spectrum-construction
/// galleries.
///
/// The tolerance `5e-9·n` on every scaled defect was calibrated at
/// ~10× the worst observed defect (clustered spectra and the
/// back-transformation accumulate the most roundoff).
pub fn run_gallery(quick: bool) -> Vec<OracleOut> {
    let mut out = Vec::new();
    let tol_at = |n: usize| 5e-9 * n as f64;
    for e in gallery(32) {
        out.push(check_entry(&e, 4, 1, tol_at(32)));
    }
    if !quick {
        for e in gallery(48) {
            out.push(check_entry(&e, 4, 1, tol_at(48)));
        }
        // Replication must not change the numbers, only the words.
        for e in gallery(32).into_iter().take(3) {
            out.push(check_entry(&e, 8, 2, tol_at(32)));
        }
    }
    out
}
