//! Log-log least squares: the measured scaling exponent of a sweep.
//!
//! For a claimed power law `y = C·xᵉ`, the points `(ln x, ln y)` lie on
//! a line of slope `e`; the fitted slope is the *measured exponent* and
//! `R²` says how power-law-like the sweep actually was (log-additive
//! lower-order terms — latency, `log p` factors — depress `R²` and bend
//! the fitted slope toward them, which is exactly what the per-claim
//! tolerances in [`crate::claims`] budget for).

/// Result of a log-log linear fit.
#[derive(Debug, Clone, Copy)]
pub struct LogLogFit {
    /// Fitted exponent (slope in log-log space).
    pub slope: f64,
    /// Fitted `ln C` (intercept in log-log space).
    pub intercept: f64,
    /// Coefficient of determination of the log-log line.
    pub r2: f64,
}

/// Least-squares fit of `ln y` against `ln x`. Requires at least two
/// distinct positive `x` values; non-positive `y` values are clamped to
/// a tiny positive floor (a metered quantity of zero means the stage
/// did not exercise that resource).
pub fn fit_log_log(xs: &[f64], ys: &[f64]) -> LogLogFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two sweep points");
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.max(1e-300).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ly.iter().map(|y| (y - my).powi(2)).sum();
    assert!(sxx > 0.0, "sweep must vary x");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // R² = 1 − SS_res/SS_tot (1.0 for a perfectly flat exact fit).
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r2 = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    LogLogFit {
        slope,
        intercept,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_is_recovered() {
        let xs = [4.0f64, 16.0, 64.0, 256.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x.powf(-0.5)).collect();
        let f = fit_log_log(&xs, &ys);
        assert!((f.slope + 0.5).abs() < 1e-12, "slope {}", f.slope);
        assert!((f.intercept - 3.5f64.ln()).abs() < 1e-12);
        assert!(f.r2 > 1.0 - 1e-12);
    }

    #[test]
    fn additive_lower_order_term_biases_the_slope_upward() {
        // y = x² + 40·x: at small x the linear term drags the fitted
        // exponent below 2 — the bias the claim tolerances budget for.
        let xs = [8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * x + 40.0 * x).collect();
        let f = fit_log_log(&xs, &ys);
        assert!(f.slope > 1.0 && f.slope < 2.0);
        assert!(f.r2 > 0.99, "still near-linear in log-log: {}", f.r2);
    }

    #[test]
    #[should_panic(expected = "vary x")]
    fn constant_x_is_rejected() {
        let _ = fit_log_log(&[2.0, 2.0], &[1.0, 2.0]);
    }
}
