//! `cargo run -p conformance [--release] [-- --quick] [-- --out PATH]`
//!
//! Runs the cost-model conformance harness and the numerical oracle
//! suite, prints one line per check, writes `CONFORMANCE.json`, and
//! exits non-zero if any claim fails.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "CONFORMANCE.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "conformance — cost-model conformance harness\n\n\
                     USAGE: cargo run -p conformance [--release] [-- OPTIONS]\n\n\
                     OPTIONS:\n  \
                       --quick       reduced sweeps (CI tier-2 grid)\n  \
                       --out PATH    write the JSON report to PATH\n                \
                       (default CONFORMANCE.json)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    println!(
        "conformance: {} sweep — fitting measured F/W/Q/S exponents against the paper's claims",
        if quick { "reduced (--quick)" } else { "full" }
    );
    let report = conformance::run(quick, |line| println!("{line}"));
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "\n{} checks passed, {} failed — report written to {out_path}",
        report.passed, report.failed
    );
    // With CA_TRACE ≥ 1, summarize the per-sweep spans and counters the
    // run recorded.
    if ca_obs::enabled() {
        let events = ca_obs::drain();
        let dropped = ca_obs::take_dropped();
        print!("\n{}", ca_obs::export::render_summary(&ca_obs::export::summarize(&events)));
        for (name, value) in ca_obs::counters::snapshot() {
            println!("  {name:<28} {value}");
        }
        if dropped > 0 {
            println!("  (trace ring overflowed: {dropped} events dropped)");
        }
    }
    if report.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
