//! Exporters: chrome-trace JSON and the per-stage summary table.
//!
//! The chrome-trace output is the "JSON Array Format" understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph": "X"`) event per span with microsecond `ts`/`dur`,
//! the metered `F/W/Q/S` deltas and counter totals attached as `args`.
//! The summary groups events by exact span name in first-appearance
//! order — the same keying `StageCosts` uses — so the two views of a
//! run can be diffed line by line.

use crate::ring::Event;

/// Wall/cost totals for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Exact span name (the grouping key).
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Summed wall-clock seconds.
    pub wall_secs: f64,
    /// Summed metered `F` delta.
    pub flops: u64,
    /// Summed metered `W` delta.
    pub horizontal_words: u64,
    /// Summed metered `Q` delta.
    pub vertical_words: u64,
    /// Summed metered `S` delta.
    pub supersteps: u64,
}

/// Group `events` by exact name, preserving first-appearance order.
pub fn summarize(events: &[Event]) -> Vec<StageSummary> {
    let mut out: Vec<StageSummary> = Vec::new();
    for ev in events {
        let name = ev.name();
        let entry = match out.iter_mut().find(|s| s.name == name) {
            Some(e) => e,
            None => {
                out.push(StageSummary {
                    name: name.to_string(),
                    count: 0,
                    wall_secs: 0.0,
                    flops: 0,
                    horizontal_words: 0,
                    vertical_words: 0,
                    supersteps: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        entry.count += 1;
        entry.wall_secs += ev.wall_secs();
        entry.flops += ev.flops;
        entry.horizontal_words += ev.horizontal_words;
        entry.vertical_words += ev.vertical_words;
        entry.supersteps += ev.supersteps;
    }
    out
}

/// Render a summary as an aligned text table.
pub fn render_summary(summaries: &[StageSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>5} {:>10}  {:>14} {:>12} {:>12} {:>6}\n",
        "span", "count", "wall ms", "F", "W", "Q", "S"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<44} {:>5} {:>10.3}  {:>14} {:>12} {:>12} {:>6}\n",
            s.name,
            s.count,
            s.wall_secs * 1e3,
            s.flops,
            s.horizontal_words,
            s.vertical_words,
            s.supersteps
        ));
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize `events` (plus counter totals and the dropped-event count)
/// as chrome-trace JSON. Load the file in `chrome://tracing` or
/// Perfetto; span nesting is reconstructed per-`tid` from the
/// timestamps.
pub fn chrome_trace(events: &[Event], counters: &[(&str, u64)], dropped: u64) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for ev in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts = ev.start_ns as f64 / 1e3;
        let dur = (ev.end_ns.saturating_sub(ev.start_ns)) as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"args\": {{\"flops\": {}, \
             \"horizontal_words\": {}, \"vertical_words\": {}, \"supersteps\": {}, \
             \"depth\": {}}}}}",
            json_escape(ev.name()),
            ev.tid,
            ev.flops,
            ev.horizontal_words,
            ev.vertical_words,
            ev.supersteps,
            ev.depth
        ));
    }
    // Counter totals and trace health as instant metadata events.
    for (name, value) in counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"counter:{}\", \"ph\": \"i\", \"pid\": 1, \"tid\": 0, \
             \"ts\": 0, \"s\": \"g\", \"args\": {{\"value\": {value}}}}}",
            json_escape(name)
        ));
    }
    if !first {
        out.push_str(",\n");
    }
    out.push_str(&format!(
        "{{\"name\": \"trace:dropped_events\", \"ph\": \"i\", \"pid\": 1, \"tid\": 0, \
         \"ts\": 0, \"s\": \"g\", \"args\": {{\"value\": {dropped}}}}}"
    ));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Event;

    fn ev(name: &str, start: u64, end: u64, f: u64) -> Event {
        let mut e = Event::named(name);
        e.start_ns = start;
        e.end_ns = end;
        e.flops = f;
        e
    }

    #[test]
    fn summary_groups_by_name_in_order() {
        let events = vec![ev("b", 0, 1_000, 5), ev("a", 1_000, 3_000, 7), ev("b", 3_000, 4_000, 1)];
        let s = summarize(&events);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "b");
        assert_eq!(s[0].count, 2);
        assert_eq!(s[0].flops, 6);
        assert!((s[0].wall_secs - 2e-6).abs() < 1e-12);
        assert_eq!(s[1].name, "a");
        let table = render_summary(&s);
        assert!(table.contains("wall ms"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let events = vec![ev("stage \"x\"\\", 500, 2_500, 9)];
        let json = chrome_trace(&events, &[("test.counter", 3)], 2);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with("]"));
        assert!(json.contains("\\\"x\\\"\\\\"), "name must be escaped: {json}");
        assert!(json.contains("\"ts\": 0.500"));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("counter:test.counter"));
        assert!(json.contains("trace:dropped_events"));
        // Balanced braces/brackets (cheap well-formedness proxy; the
        // vendored serde_json shim has no parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
