//! A counting global allocator for allocation metering.
//!
//! Binaries that want `alloc.count` / `alloc.bytes` in their traces
//! install this as the global allocator and switch metering on around
//! the region of interest:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ca_obs::alloc::CountingAllocator = ca_obs::alloc::CountingAllocator;
//!
//! ca_obs::alloc::set_metering(true);
//! run_solver();
//! let (count, bytes) = ca_obs::alloc::take();
//! ```
//!
//! The metering gate is a plain [`AtomicBool`] toggled *explicitly* —
//! never derived lazily from the environment — because the allocator
//! runs inside every heap call: a lazy `env::var` or `OnceLock`
//! initialization here would itself allocate and recurse. For the same
//! reason the tallies are raw atomics rather than registry
//! [`Counter`](crate::counters::Counter)s (registration takes a lock
//! and grows a `Vec`); merge [`snapshot`] into the counter list at
//! export time instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static METERING: AtomicBool = AtomicBool::new(false);
static COUNT: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Switch allocation metering on or off. Off by default; with metering
/// off the allocator adds one relaxed load per heap call.
pub fn set_metering(on: bool) {
    METERING.store(on, Ordering::Relaxed);
}

/// Current `(allocation count, allocated bytes)` tallies.
pub fn snapshot() -> (u64, u64) {
    (COUNT.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

/// Read and reset the tallies.
pub fn take() -> (u64, u64) {
    (COUNT.swap(0, Ordering::Relaxed), BYTES.swap(0, Ordering::Relaxed))
}

/// [`System`] with opt-in allocation counting; see the module docs.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if METERING.load(Ordering::Relaxed) {
            COUNT.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if METERING.load(Ordering::Relaxed) {
            COUNT.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator globally, so drive
    // the GlobalAlloc impl directly.
    #[test]
    fn meters_only_when_enabled() {
        let a = CountingAllocator;
        let layout = Layout::from_size_align(64, 8).unwrap();
        let base = snapshot();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        unsafe { a.dealloc(p, layout) };
        assert_eq!(snapshot(), base, "metering off must not count");

        set_metering(true);
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        unsafe { a.dealloc(p, layout) };
        set_metering(false);
        let (count, bytes) = snapshot();
        assert!(count > base.0);
        assert!(bytes >= base.1 + 64);
    }
}
