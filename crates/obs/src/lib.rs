//! `ca-obs`: runtime knobs plus a lightweight tracing/metrics layer for
//! the communication-avoiding eigensolver.
//!
//! Two jobs live here because they share one root cause — runtime
//! behaviour that must mean the same thing everywhere:
//!
//! 1. **Knobs** ([`knobs`]): the single parser for `CA_*` environment
//!    variables. Every crate consults [`knobs::serial`] /
//!    [`knobs::bool_env`] / [`knobs::usize_env`] instead of rolling its
//!    own truthiness rules, so `CA_SERIAL=yes` can never again mean
//!    "serial" to one subsystem and "parallel" to another.
//! 2. **Tracing** ([`span`]/[`kernel_span`], [`counters`], [`export`]):
//!    span-based stage instrumentation feeding a process-global
//!    lock-free ring, exported as chrome-trace JSON or a per-stage
//!    summary table.
//!
//! ## Trace levels
//!
//! The `CA_TRACE` knob (an unsigned integer, default `0`) selects how
//! much is recorded:
//!
//! | level | meaning |
//! |-------|---------|
//! | 0     | off — spans are inert, counters are no-ops |
//! | 1     | stage-level spans ([`span`]) + counters |
//! | 2     | adds kernel-detail spans ([`kernel_span`]): executor fan-out, GEMM/QR, stage drivers |
//!
//! Stage spans and kernel spans are split so a deep kernel trace can
//! never evict the handful of stage spans the conformance checks rely
//! on: at level 1 the kernel call sites don't even read the clock.
//!
//! ## Overhead
//!
//! Disabled (level 0, the default), every instrumentation point is one
//! relaxed atomic load and a predictable branch — measured end-to-end
//! overhead on the solver is within noise of a build with the `off`
//! feature, which compiles the subsystem down to inert stubs (enable it
//! from a leaf binary with `--features ca-obs/off`).

#![warn(missing_docs)]

pub mod alloc;
pub mod counters;
pub mod export;
pub mod knobs;
// With `off`, the ring and the live span constructor are compiled but
// unreachable; that is the point of the feature, not dead weight to
// warn about.
#[cfg_attr(feature = "off", allow(dead_code))]
mod ring;
#[cfg_attr(feature = "off", allow(dead_code))]
mod span;

pub use counters::Counter;
pub use ring::{Event, NAME_CAP};
pub use span::{thread_tid, SpanGuard};

#[cfg(not(feature = "off"))]
mod live {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::OnceLock;

    /// Sentinel meaning "not yet initialized from `CA_TRACE`".
    const UNSET: u32 = u32::MAX;
    static LEVEL: AtomicU32 = AtomicU32::new(UNSET);

    // Must inline across crates: this load guards every instrumentation
    // point, and an out-of-line call per GEMM/workspace checkout is
    // exactly the disabled-mode overhead the 2% gate forbids.
    #[inline]
    pub fn level() -> u32 {
        let cur = LEVEL.load(Ordering::Relaxed);
        if cur != UNSET {
            return cur;
        }
        init_level()
    }

    #[cold]
    fn init_level() -> u32 {
        let parsed = knobs::usize_env("CA_TRACE").unwrap_or(0).min(u32::MAX as usize - 1) as u32;
        // Racing first reads all parse the same env value; last store
        // wins with an identical result.
        LEVEL.store(parsed, Ordering::Relaxed);
        parsed
    }

    pub fn set_level(level: u32) {
        LEVEL.store(level.min(UNSET - 1), Ordering::Relaxed);
    }

    fn global_ring() -> &'static ring::Ring {
        static RING: OnceLock<ring::Ring> = OnceLock::new();
        RING.get_or_init(|| ring::Ring::new(1 << 16))
    }

    pub fn push_event(ev: Event) {
        global_ring().push(ev);
    }

    pub fn drain() -> Vec<Event> {
        global_ring().drain()
    }

    pub fn take_dropped() -> u64 {
        global_ring().take_dropped()
    }

    pub fn dropped_events() -> u64 {
        global_ring().dropped()
    }
}

#[cfg(not(feature = "off"))]
pub use live_api::*;

#[cfg(not(feature = "off"))]
mod live_api {
    use super::*;

    /// The active trace level (see the crate docs). Initialized from
    /// `CA_TRACE` on first read; overridable with [`set_level`].
    #[inline]
    pub fn level() -> u32 {
        live::level()
    }

    /// Override the trace level in-process (exporter binaries and tests;
    /// normal runs just set `CA_TRACE`).
    pub fn set_level(level: u32) {
        live::set_level(level);
    }

    /// True when tracing is on (level ≥ 1); gates counter updates.
    #[inline]
    pub fn enabled() -> bool {
        level() >= 1
    }

    /// Open a stage-level span (live at level ≥ 1).
    #[inline]
    pub fn span(name: &str) -> SpanGuard {
        if level() >= 1 {
            SpanGuard::begin(name)
        } else {
            SpanGuard::inert()
        }
    }

    /// Open a kernel-detail span (live only at level ≥ 2).
    #[inline]
    pub fn kernel_span(name: &str) -> SpanGuard {
        if level() >= 2 {
            SpanGuard::begin(name)
        } else {
            SpanGuard::inert()
        }
    }

    /// Push a completed event to the global ring (spans do this on
    /// drop; markers may call it directly).
    pub fn push_event(ev: Event) {
        live::push_event(ev);
    }

    /// Drain every queued event from the global ring, FIFO.
    pub fn drain() -> Vec<Event> {
        live::drain()
    }

    /// Read and reset the count of events dropped on ring overflow.
    pub fn take_dropped() -> u64 {
        live::take_dropped()
    }

    /// Events dropped on ring overflow since the last [`take_dropped`].
    pub fn dropped_events() -> u64 {
        live::dropped_events()
    }
}

#[cfg(feature = "off")]
pub use off_api::*;

#[cfg(feature = "off")]
mod off_api {
    use super::*;

    /// Always 0: the `off` feature compiles tracing out.
    #[inline]
    pub fn level() -> u32 {
        0
    }

    /// No-op with the `off` feature.
    pub fn set_level(_level: u32) {}

    /// Always false: the `off` feature compiles tracing out.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// Always inert with the `off` feature.
    #[inline]
    pub fn span(_name: &str) -> SpanGuard {
        SpanGuard::inert()
    }

    /// Always inert with the `off` feature.
    #[inline]
    pub fn kernel_span(_name: &str) -> SpanGuard {
        SpanGuard::inert()
    }

    /// Discards the event with the `off` feature.
    pub fn push_event(_ev: Event) {}

    /// Always empty with the `off` feature.
    pub fn drain() -> Vec<Event> {
        Vec::new()
    }

    /// Always 0 with the `off` feature.
    pub fn take_dropped() -> u64 {
        0
    }

    /// Always 0 with the `off` feature.
    pub fn dropped_events() -> u64 {
        0
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn span_liveness_follows_level() {
        let before = level();
        set_level(0);
        assert!(!span("idle").is_active());
        assert!(!kernel_span("idle.kernel").is_active());
        set_level(1);
        assert!(span("stage").is_active());
        assert!(!kernel_span("kernel").is_active());
        set_level(2);
        assert!(kernel_span("kernel").is_active());
        set_level(before);
    }

    #[test]
    fn spans_land_in_the_global_ring() {
        let before = level();
        set_level(1);
        {
            let mut g = span("lib-test-stage");
            g.set_costs(11, 22, 33, 44);
        }
        set_level(before);
        let drained = drain();
        let ev = drained
            .iter()
            .find(|e| e.name() == "lib-test-stage")
            .expect("span must be recorded");
        assert_eq!(
            (ev.flops, ev.horizontal_words, ev.vertical_words, ev.supersteps),
            (11, 22, 33, 44)
        );
        assert!(ev.end_ns >= ev.start_ns);
    }
}
