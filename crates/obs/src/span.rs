//! Span guards: scoped stage/kernel instrumentation.
//!
//! A [`SpanGuard`] captures its entry time on creation and pushes one
//! completed [`Event`](crate::Event) to the global ring when dropped.
//! When tracing is disabled the guard is *inert*: no clock read, no
//! event, no thread-local traffic — construction and drop optimize down
//! to a branch on one relaxed atomic load, which is what keeps the
//! disabled-mode overhead unmeasurable.
//!
//! Each thread carries a stable small id and a nesting-depth counter,
//! so exporters can rebuild the span tree (chrome-trace stacks spans of
//! one `tid` by interval containment; the pin tests assert the
//! intervals really do nest).

use crate::ring::Event;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process trace epoch: all event timestamps are nanoseconds since
/// this instant.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static THREAD_TID: Cell<u32> = const { Cell::new(u32::MAX) };
    static THREAD_DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Stable small id of the calling thread (assigned on first use).
pub fn thread_tid() -> u32 {
    THREAD_TID.with(|cell| {
        let cur = cell.get();
        if cur != u32::MAX {
            return cur;
        }
        static NEXT: AtomicU32 = AtomicU32::new(1);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

/// A scoped span. Create with [`crate::span`] (stage level) or
/// [`crate::kernel_span`] (kernel detail level); attach metered cost
/// deltas with [`SpanGuard::set_costs`] before it drops.
#[must_use = "a span records its interval when dropped"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation: drop is a no-op.
    event: Option<Event>,
}

impl SpanGuard {
    /// An inert guard (tracing disabled).
    #[inline]
    pub(crate) fn inert() -> Self {
        Self { event: None }
    }

    /// A live guard: stamps entry time, thread id and nesting depth.
    pub(crate) fn begin(name: &str) -> Self {
        let mut event = Event::named(name);
        event.tid = thread_tid();
        event.depth = THREAD_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        event.start_ns = now_ns();
        Self { event: Some(event) }
    }

    /// True when this guard will record an event on drop.
    pub fn is_active(&self) -> bool {
        self.event.is_some()
    }

    /// Attach the metered `F/W/Q/S` deltas accumulated over the span
    /// (typically `Machine::costs_since` of a snapshot taken at entry).
    pub fn set_costs(&mut self, flops: u64, horizontal: u64, vertical: u64, supersteps: u64) {
        if let Some(ev) = self.event.as_mut() {
            ev.flops = flops;
            ev.horizontal_words = horizontal;
            ev.vertical_words = vertical;
            ev.supersteps = supersteps;
        }
    }
}

impl Drop for SpanGuard {
    // Inlined so the inert case (the default) is one branch at the call
    // site; the live tail is outlined to keep that branch small.
    #[inline]
    fn drop(&mut self) {
        if self.event.is_some() {
            finish(self);
        }
        #[cold]
        fn finish(guard: &mut SpanGuard) {
            if let Some(mut ev) = guard.event.take() {
                ev.end_ns = now_ns();
                THREAD_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                crate::push_event(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_never_records() {
        let mut g = SpanGuard::inert();
        assert!(!g.is_active());
        g.set_costs(1, 2, 3, 4);
        drop(g); // must not touch the ring or the depth counter
        assert_eq!(THREAD_DEPTH.with(Cell::get), 0);
    }

    #[test]
    fn depth_tracks_nesting() {
        let a = SpanGuard::begin("outer");
        let b = SpanGuard::begin("inner");
        assert_eq!(a.event.as_ref().unwrap().depth, 0);
        assert_eq!(b.event.as_ref().unwrap().depth, 1);
        drop(b);
        drop(a);
        assert_eq!(THREAD_DEPTH.with(Cell::get), 0);
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct() {
        let here = thread_tid();
        assert_eq!(here, thread_tid());
        let there = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(here, there);
    }
}
