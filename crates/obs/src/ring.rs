//! The process-global event collector: a lock-free bounded ring buffer.
//!
//! Spans complete on whatever thread ran them — including the superstep
//! executor's short-lived workers — so the collector must accept
//! concurrent pushes without a lock. This is the classic Vyukov bounded
//! MPMC queue: each slot carries a sequence stamp that hands it back
//! and forth between producers and consumers, every transition a single
//! CAS or release store. [`Event`] is `Copy` with an inline name
//! buffer, so slots never own heap data and a push never allocates.
//!
//! When the ring is full (a deep `CA_TRACE=2` kernel trace can outrun
//! the drain), new events are **dropped and counted** rather than
//! blocking the hot path; [`Ring::dropped`] reports how many, and the
//! exporters surface the count so a truncated trace is never mistaken
//! for a complete one.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Inline capacity of an event's name. Longer names are truncated at a
/// UTF-8 boundary.
pub const NAME_CAP: usize = 56;

/// One completed span (or marker), `Copy` so the ring never drops heap
/// data. Times are nanoseconds since the process trace epoch.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    name_buf: [u8; NAME_CAP],
    name_len: u8,
    /// Stable small id of the emitting thread.
    pub tid: u32,
    /// Span-nesting depth on the emitting thread (0 = top level).
    pub depth: u16,
    /// Span entry time, ns since the trace epoch.
    pub start_ns: u64,
    /// Span exit time, ns since the trace epoch.
    pub end_ns: u64,
    /// Metered `F` delta over the span (0 when the caller has no ledger).
    pub flops: u64,
    /// Metered `W` delta over the span.
    pub horizontal_words: u64,
    /// Metered `Q` delta over the span.
    pub vertical_words: u64,
    /// Metered `S` delta (superstep count) over the span.
    pub supersteps: u64,
}

impl Event {
    /// Build an event with the given name (truncated to [`NAME_CAP`]
    /// bytes at a char boundary); all numeric fields zero.
    pub fn named(name: &str) -> Self {
        let mut buf = [0u8; NAME_CAP];
        let mut len = name.len().min(NAME_CAP);
        while len > 0 && !name.is_char_boundary(len) {
            len -= 1;
        }
        buf[..len].copy_from_slice(&name.as_bytes()[..len]);
        Self {
            name_buf: buf,
            name_len: len as u8,
            tid: 0,
            depth: 0,
            start_ns: 0,
            end_ns: 0,
            flops: 0,
            horizontal_words: 0,
            vertical_words: 0,
            supersteps: 0,
        }
    }

    /// The span name.
    pub fn name(&self) -> &str {
        // The constructor only ever stores a char-boundary prefix of a
        // valid &str, so this cannot fail.
        std::str::from_utf8(&self.name_buf[..self.name_len as usize]).unwrap_or("")
    }

    /// Wall duration of the span in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 * 1e-9
    }
}

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Event>>,
}

// The sequence-stamp protocol guarantees exclusive access to `value`
// between the CAS that claims a slot and the release store that
// publishes it, so sharing slots across threads is sound.
unsafe impl Sync for Slot {}

/// Lock-free bounded MPMC event queue (Vyukov layout).
pub struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

impl Ring {
    /// A ring holding up to `capacity` events; `capacity` is rounded up
    /// to a power of two (minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Push an event; returns `false` (and counts a drop) when full.
    pub fn push(&self, ev: Event) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Claimed: we have exclusive access until the
                        // release store below publishes the slot.
                        unsafe { (*slot.value.get()).write(ev) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let ev = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(ev);
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every queued event in FIFO order.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }

    /// Events dropped because the ring was full, since the last
    /// [`Ring::take_dropped`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Read and reset the dropped-event count.
    pub fn take_dropped(&self) -> u64 {
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_drop_counting() {
        let ring = Ring::new(4);
        for i in 0..4 {
            assert!(ring.push(Event::named(&format!("e{i}"))));
        }
        assert!(!ring.push(Event::named("overflow")));
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(Event::name).collect::<Vec<_>>(),
            vec!["e0", "e1", "e2", "e3"]
        );
        assert!(ring.pop().is_none());
        // Space reclaimed after the drain.
        assert!(ring.push(Event::named("again")));
        assert_eq!(ring.take_dropped(), 1);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_pushes_all_land_or_count() {
        let ring = Ring::new(1024);
        const THREADS: usize = 8;
        const PER: usize = 200;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER {
                        let mut ev = Event::named("c");
                        ev.flops = (t * PER + i) as u64;
                        ring.push(ev);
                    }
                });
            }
        });
        let drained = ring.drain();
        assert_eq!(drained.len() as u64 + ring.dropped(), (THREADS * PER) as u64);
        // No event duplicated or corrupted.
        let mut seen: Vec<u64> = drained.iter().map(|e| e.flops).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), drained.len(), "duplicated event payloads");
    }

    #[test]
    fn name_truncates_at_char_boundary() {
        let long = "p̄".repeat(40); // multi-byte chars
        let ev = Event::named(&long);
        assert!(ev.name().len() <= NAME_CAP);
        assert!(long.starts_with(ev.name()));
    }
}
