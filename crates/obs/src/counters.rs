//! Process-global named counters.
//!
//! Subsystems declare a `static` [`Counter`] and bump it from hot paths
//! (`CHASE_WINDOWS.add(1)`); the counter registers itself in a global
//! list on its first live update, so [`snapshot`] only reports counters
//! that actually fired. Updates are a relaxed `fetch_add`/`fetch_max`
//! guarded by the tracing level — with tracing off (the default) an
//! update is one relaxed load and a branch, cheap enough for the bulge
//! chase and workspace checkout paths.
//!
//! Registered counters in this build: `workspace.checkouts`,
//! `workspace.grows`, `workspace.high_water_words` (arena metering),
//! `bulge.chase_windows` (chase kernel invocations), `dnc.secular_roots`
//! / `dnc.secular_iters` (secular-equation work),
//! `service.submitted` / `service.completed` / `service.failed` /
//! `service.queue_rejected` / `service.deadline_missed` /
//! `service.batches` / `service.batched_jobs` /
//! `service.queue_depth_peak` / `service.queue_wait_us` /
//! `service.solve_us` (batch-service scheduling, mirrored from
//! `ca_service::ServiceStats`), and `alloc.count` / `alloc.bytes` when
//! a binary installs [`crate::alloc::CountingAllocator`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A named monotonic counter; declare as `static` and update via
/// [`Counter::add`] / [`Counter::record_max`].
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

fn registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl Counter {
    /// A new counter with the given registry name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap_or_else(|e| e.into_inner()).push(self);
        }
    }

    /// Add `v`; a no-op unless tracing is enabled (`CA_TRACE ≥ 1`).
    #[inline]
    pub fn add(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raise the counter to at least `v` (high-water marks); a no-op
    /// unless tracing is enabled.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// `(name, value)` of every counter that has fired, sorted by name.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| (c.name, c.get()))
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Zero every registered counter (between traced runs).
pub fn reset() {
    for c in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

// The whole suite needs live enablement toggling, which `off` stubs out.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    static TEST_A: Counter = Counter::new("test.a");
    static TEST_MAX: Counter = Counter::new("test.max");

    #[test]
    fn add_and_max_respect_enablement() {
        let level = crate::level();
        crate::set_level(0);
        TEST_A.add(5);
        assert_eq!(TEST_A.get(), 0, "disabled add must be a no-op");
        crate::set_level(1);
        TEST_A.add(5);
        TEST_A.add(2);
        TEST_MAX.record_max(3);
        TEST_MAX.record_max(1);
        assert_eq!(TEST_A.get(), 7);
        assert_eq!(TEST_MAX.get(), 3);
        let snap = snapshot();
        assert!(snap.iter().any(|&(n, v)| n == "test.a" && v == 7));
        reset();
        assert_eq!(TEST_A.get(), 0);
        crate::set_level(level);
    }
}
