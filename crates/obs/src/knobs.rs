//! The one shared parser for the repo's `CA_*` environment knobs.
//!
//! Every crate that honours a runtime knob routes its env parsing
//! through this module, so a value like `CA_SERIAL=yes` means the same
//! thing to the BSP executor, the D&C eigensolver and everything else.
//! (The seed had two private parsers: `ca_pla::exec` accepted "set and
//! not `0`" while `ca_dla::tune` accepted only `1`/`true` — so
//! `CA_SERIAL=yes` ran the executor serial but the eigensolver
//! parallel. Centralizing the truthiness table here is the fix.)
//!
//! ## Accepted values
//!
//! Boolean knobs (`CA_SERIAL`): **truthy** = `1`, `true`, `yes`, `on`;
//! **falsy** = `0`, `false`, `no`, `off`, and the empty string — all
//! case-insensitive, surrounding whitespace ignored. Anything else is
//! *malformed*: a one-time warning goes to stderr and the knob keeps
//! its default.
//!
//! Integer knobs (`CA_DNC`, `CA_DNC_LEAF`, `CA_HALVE_FLOOR`,
//! `CA_TRACE`) parse as unsigned decimal integers; malformed values
//! (`CA_DNC=fast`) likewise warn once on stderr and fall back to the
//! default instead of being silently ignored.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Parse a boolean knob value. `None` means unrecognized (malformed).
///
/// Truthy: `1`, `true`, `yes`, `on`. Falsy: `0`, `false`, `no`, `off`,
/// `""`. Case-insensitive; surrounding whitespace is trimmed.
pub fn parse_bool(raw: &str) -> Option<bool> {
    let v = raw.trim();
    if v.is_empty() {
        return Some(false);
    }
    if v.eq_ignore_ascii_case("1")
        || v.eq_ignore_ascii_case("true")
        || v.eq_ignore_ascii_case("yes")
        || v.eq_ignore_ascii_case("on")
    {
        return Some(true);
    }
    if v.eq_ignore_ascii_case("0")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("no")
        || v.eq_ignore_ascii_case("off")
    {
        return Some(false);
    }
    None
}

/// Emit `msg` to stderr at most once per distinct `key` for the life of
/// the process. Used so a malformed knob warns exactly once no matter
/// how many call sites consult it.
fn warn_once(key: &str, msg: &str) {
    static SEEN: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = seen.lock().unwrap_or_else(|e| e.into_inner());
    if guard.insert(key.to_string()) {
        eprintln!("{msg}");
    }
}

/// Read the boolean env knob `name`, warning once on stderr (and
/// returning `default`) when the value is set but unrecognized.
pub fn bool_env(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(raw) => parse_bool(&raw).unwrap_or_else(|| {
            warn_once(
                name,
                &format!(
                    "warning: ignoring malformed {name}={raw:?} \
                     (accepted: 1/true/yes/on or 0/false/no/off; using default {default})"
                ),
            );
            default
        }),
        Err(_) => default,
    }
}

/// Read the unsigned-integer env knob `name`. Unset returns `None`
/// silently; a set-but-malformed value warns once on stderr and also
/// returns `None` (the caller's default applies).
pub fn usize_env(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(
                name,
                &format!(
                    "warning: ignoring malformed {name}={raw:?} \
                     (expected an unsigned integer; using default)"
                ),
            );
            None
        }
    }
}

/// True when `CA_SERIAL` is truthy: all parallel dispatch in the repo —
/// the BSP superstep executor, D&C recursive splits and secular root
/// solves, panel-parallel back-transformation — runs in deterministic
/// serial order instead. The env variable is consulted once, on first
/// read; every consumer shares this cache, so the knob cannot diverge
/// between subsystems.
pub fn serial() -> bool {
    static SERIAL: OnceLock<bool> = OnceLock::new();
    *SERIAL.get_or_init(|| bool_env("CA_SERIAL", false))
}

/// Runtime override state for `CA_LOOKAHEAD`: 0 = follow the env knob,
/// 1 = forced on, 2 = forced off.
static LOOKAHEAD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// True when the `CA_LOOKAHEAD` knob is enabled (the default): the
/// two-sided reduction drivers run on the dependency-driven task-graph
/// executor (`ca_pla::dag`) with zero-copy task bodies and depth-1 panel
/// lookahead instead of materializing every superstep at a barrier. Off
/// restores the barrier path exactly. The env variable is consulted once
/// on first read; [`set_lookahead_enabled`] overrides it at runtime
/// (used by the benchmark drivers to run both legs in one process).
pub fn lookahead() -> bool {
    match LOOKAHEAD_OVERRIDE.load(Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| bool_env("CA_LOOKAHEAD", true))
        }
    }
}

/// Force the `CA_LOOKAHEAD` knob on or off for the rest of the process,
/// regardless of the environment. Benchmarks and equivalence tests use
/// this to compare the task-graph and barrier paths in one run.
pub fn set_lookahead_enabled(enabled: bool) {
    LOOKAHEAD_OVERRIDE.store(if enabled { 1 } else { 2 }, Relaxed);
}

/// Drop any [`set_lookahead_enabled`] override and fall back to the
/// cached `CA_LOOKAHEAD` environment value.
pub fn reset_lookahead() {
    LOOKAHEAD_OVERRIDE.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_table() {
        for v in ["1", "true", "TRUE", "yes", "Yes", "on", " on ", "tRuE"] {
            assert_eq!(parse_bool(v), Some(true), "{v:?} must be truthy");
        }
        for v in ["0", "false", "no", "NO", "off", "", "  "] {
            assert_eq!(parse_bool(v), Some(false), "{v:?} must be falsy");
        }
        for v in ["2", "enable", "y", "t", "banana"] {
            assert_eq!(parse_bool(v), None, "{v:?} must be malformed");
        }
    }

    #[test]
    fn usize_env_reads_and_rejects() {
        std::env::set_var("CA_OBS_TEST_USIZE", "42");
        assert_eq!(usize_env("CA_OBS_TEST_USIZE"), Some(42));
        std::env::set_var("CA_OBS_TEST_USIZE", " 7 ");
        assert_eq!(usize_env("CA_OBS_TEST_USIZE"), Some(7));
        std::env::set_var("CA_OBS_TEST_USIZE", "fast");
        assert_eq!(usize_env("CA_OBS_TEST_USIZE"), None);
        std::env::remove_var("CA_OBS_TEST_USIZE");
        assert_eq!(usize_env("CA_OBS_TEST_USIZE"), None);
    }

    #[test]
    fn lookahead_override_wins_and_resets() {
        // Whatever the env says, the runtime override must win, and
        // resetting must fall back to a stable (cached) env value.
        let base = lookahead();
        set_lookahead_enabled(false);
        assert!(!lookahead());
        set_lookahead_enabled(true);
        assert!(lookahead());
        reset_lookahead();
        assert_eq!(lookahead(), base);
    }

    #[test]
    fn bool_env_defaults_on_malformed() {
        std::env::set_var("CA_OBS_TEST_BOOL", "banana");
        assert!(!bool_env("CA_OBS_TEST_BOOL", false));
        assert!(bool_env("CA_OBS_TEST_BOOL", true));
        std::env::set_var("CA_OBS_TEST_BOOL", "yes");
        assert!(bool_env("CA_OBS_TEST_BOOL", false));
        std::env::remove_var("CA_OBS_TEST_BOOL");
    }
}
