//! Streaming-MM (Algorithm III.1 / Lemma III.3): multiplication with a
//! pre-replicated operand on a `q × q × c` grid.
//!
//! The operand `A` is stored once per layer (`c` copies, each distributed
//! over a `q × q` grid); the thin operand `B` streams through in
//! `z = w·c` column blocks, `w` per layer. Each iteration gathers `B_jh`
//! along grid rows, multiplies against the resident `A_ij` blocks, and
//! reduce-scatters `C_ih = Σ_j A_ij·B_jh` along grid columns — per-proc
//! communication `O((mk + nk)/(qc)) = O((mk + nk)/pᵟ)`, the key saving
//! over non-replicated multiplication that Algorithm IV.1 exploits for
//! its aggregated trailing updates.
//!
//! Vertical traffic follows Lemma III.3's two cases: if a processor's
//! `A` block fits in cache it is read once across all `w` iterations;
//! otherwise each iteration re-reads it.

use crate::coll;
use crate::dist::DistMatrix;
use crate::exec;
use crate::grid::Grid;
use ca_bsp::Machine;
use ca_dla::gemm::{gemm, Trans};
use ca_dla::Matrix;

/// A matrix replicated over the `c` layers of a 3D grid, distributed
/// over a 2D `q₀ × q₁` grid within each layer.
#[derive(Debug, Clone)]
pub struct Replicated {
    /// The full `q₀ × q₁ × c` grid.
    pub grid3: Grid,
    /// The per-layer 2D distribution (content identical on every layer;
    /// stored once, memory charged on all layers).
    pub layer: DistMatrix,
}

impl Replicated {
    /// Replicate a dense matrix (starting from any balanced layout over
    /// the whole grid) onto every layer: distribute over layer 0, then
    /// broadcast along the layer fibers.
    pub fn replicate(m: &Machine, grid3: &Grid, a: &Matrix) -> Replicated {
        let (q0, q1, c) = grid3.shape();
        let layer0 = grid3.layer(0);
        let layer = DistMatrix::from_dense(m, &layer0, a);
        // Fiber broadcast of each block to the other layers.
        if c > 1 {
            for i in 0..q0 {
                for j in 0..q1 {
                    let fiber = grid3.fiber_group(i, j);
                    let r = layer0.rank(i, j, 0);
                    coll::bcast(m, &fiber, 0, layer.words_on(r));
                    for l in 1..c {
                        m.alloc(grid3.at(i, j, l), layer.words_on(r));
                    }
                }
            }
        }
        Replicated {
            grid3: grid3.clone(),
            layer,
        }
    }

    /// Words of replicated storage per layer-0 processor block `(i, j)`.
    pub fn block_words(&self, i: usize, j: usize) -> u64 {
        self.layer.words_on(self.layer.grid().rank(i, j, 0))
    }

    /// Release all layers' storage.
    pub fn release(self, m: &Machine) {
        let (q0, q1, c) = self.grid3.shape();
        for i in 0..q0 {
            for j in 0..q1 {
                let words = self.block_words(i, j);
                for l in 1..c {
                    m.free(self.grid3.at(i, j, l), words);
                }
            }
        }
        self.layer.release(m);
    }
}

/// `C = op(A[sub])·B` where `A` is replicated ([`Replicated`]), `sub`
/// selects the rows/cols `(r0, c0, nr, nc)` of `A` to use (Algorithm IV.1
/// multiplies against trailing submatrices), `B` is `nc × k`
/// (`nr × k` when transposed) in any balanced layout, and `w` is the
/// per-layer streaming depth of Algorithm III.1.
///
/// Returns `C` (`nr × k`, or `nc × k` transposed) evenly spread over the
/// grid.
pub fn streaming_mm(
    m: &Machine,
    rep: &Replicated,
    sub: (usize, usize, usize, usize),
    transpose_a: bool,
    b: &Matrix,
    w: usize,
) -> Matrix {
    let a_dense = rep.layer.assemble_unchecked();
    streaming_mm_dense(m, &rep.grid3, &a_dense, sub, transpose_a, b, w)
}

/// [`streaming_mm`] against a replicated operand supplied directly as a
/// dense matrix (the caller vouches that it is already replicated across
/// the grid's layers — e.g. Algorithm IV.1's aggregated `U⁽⁰⁾`/`V⁽⁰⁾`
/// panels, which line 10 of the algorithm replicates as they are
/// produced).
pub fn streaming_mm_dense(
    m: &Machine,
    grid3: &Grid,
    a_dense: &Matrix,
    sub: (usize, usize, usize, usize),
    transpose_a: bool,
    b: &Matrix,
    w: usize,
) -> Matrix {
    let (r0, c0, nr, nc) = sub;
    let (q0, q1, c) = grid3.shape();
    assert_eq!(q0, q1, "streaming_mm expects a square per-layer grid");
    let q = q0;
    let (inner, out_rows) = if transpose_a { (nr, nc) } else { (nc, nr) };
    assert_eq!(b.rows(), inner, "streaming_mm: inner dimension mismatch");
    let k = b.cols();
    let w = w.max(1);
    let z = w * c;

    // Redistribute B (charged from any balanced layout).
    let total_b = (inner * k) as u64;
    for &pid in grid3.procs() {
        m.charge_comm(pid, 2 * total_b / grid3.len() as u64);
    }
    m.step(grid3.procs(), 1);

    // Split the inner dimension by the layer grid's owner blocks of A
    // and the k dimension into z column blocks.
    let inner_splits = crate::dist::splits(inner, q);
    let k_splits = crate::dist::splits(k, z);

    let mut out = Matrix::zeros(out_rows, k);
    let out_splits = crate::dist::splits(out_rows, q);
    let h_cache = m.cache_words();

    for l in 0..c {
        // Layer l handles column blocks h ∈ {l, l+c, …, l+(w−1)c}.
        for step in 0..w {
            let h = l + step * c;
            if h >= z || k_splits[h] == k_splits[h + 1] {
                continue;
            }
            let (k0, k1) = (k_splits[h], k_splits[h + 1]);
            let kb = k1 - k0;
            for jdim in 0..q {
                let (j0, j1) = (inner_splits[jdim], inner_splits[jdim + 1]);
                if j0 == j1 {
                    continue;
                }
                let b_jh = b.block(j0, k0, j1 - j0, kb);
                // Gather B_jh along the row dimension of the layer grid.
                let gather_group = if transpose_a {
                    grid3.dim1_group(jdim, l)
                } else {
                    grid3.dim0_group(jdim, l)
                };
                coll::allgather(m, &gather_group, b_jh.len() as u64 / q as u64);

                // Each idim produces a disjoint output row range
                // [i0, i1): run the charged multiplies concurrently and
                // accumulate the partial products in rank order.
                let b_jh = &b_jh;
                let parts = exec::par_ranks(q, |idim| {
                    let (i0, i1) = (out_splits[idim], out_splits[idim + 1]);
                    if i0 == i1 {
                        return None;
                    }
                    // The resident A block for this (i, j): rows/cols of
                    // the submatrix.
                    let (ar, ac, anr, anc) = if transpose_a {
                        (r0 + j0, c0 + i0, j1 - j0, i1 - i0)
                    } else {
                        (r0 + i0, c0 + j0, i1 - i0, j1 - j0)
                    };
                    let a_blk = a_dense.block(ar, ac, anr, anc);
                    let pid = grid3.at(
                        if transpose_a { jdim } else { idim },
                        if transpose_a { idim } else { jdim },
                        l,
                    );
                    let ta = if transpose_a { Trans::T } else { Trans::N };
                    // Charged local multiply with Lemma III.3 vertical
                    // accounting: A resident in cache across iterations
                    // when it fits.
                    let flops = 2 * (i1 - i0) as u64 * (j1 - j0) as u64 * kb as u64;
                    m.charge_flops(pid, flops);
                    let a_words = a_blk.len() as u64;
                    let bc_words = (b_jh.len() + (i1 - i0) * kb) as u64;
                    let vert = if a_words <= h_cache && step > 0 {
                        bc_words
                    } else {
                        bc_words + a_words
                    };
                    m.charge_vert(pid, vert);
                    let mut part = Matrix::zeros(i1 - i0, kb);
                    gemm(1.0, &a_blk, ta, b_jh, Trans::N, 0.0, &mut part);
                    Some((i0, part))
                });
                // The reduce-scatter below performs the Σⱼ numerically
                // represented by this serial in-order accumulation.
                for (i0, part) in parts.into_iter().flatten() {
                    for rr in 0..part.rows() {
                        for cc in 0..part.cols() {
                            out.add_to(i0 + rr, k0 + cc, part.get(rr, cc));
                        }
                    }
                }
            }
            // Reduce-scatter C_ih = Σ_j C̄_ijh along the other dimension.
            for idim in 0..q {
                let group = if transpose_a {
                    grid3.dim0_group(idim, l)
                } else {
                    grid3.dim1_group(idim, l)
                };
                let ci_words = ((out_splits[idim + 1] - out_splits[idim]) * kb) as u64;
                coll::reduce_scatter(m, &group, ci_words);
            }
            m.step(grid3.procs(), 1);
        }
    }
    out
}

/// Convenience for replicating onto a 3D grid directly from a
/// [`DistMatrix`] already living on layer 0.
pub fn replicate_from_layer0(m: &Machine, grid3: &Grid, layer: DistMatrix) -> Replicated {
    let (q0, q1, c) = grid3.shape();
    if c > 1 {
        for i in 0..q0 {
            for j in 0..q1 {
                let fiber = grid3.fiber_group(i, j);
                let r = layer.grid().rank(i, j, 0);
                coll::bcast(m, &fiber, 0, layer.words_on(r));
                for l in 1..c {
                    m.alloc(grid3.at(i, j, l), layer.words_on(r));
                }
            }
        }
    }
    Replicated {
        grid3: grid3.clone(),
        layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn grid3(q: usize, c: usize) -> Grid {
        Grid::new_3d((0..q * q * c).collect(), q, q, c)
    }

    #[test]
    fn full_matrix_product_matches() {
        for (q, c, w) in [(2usize, 1usize, 1usize), (2, 2, 1), (2, 2, 2), (3, 1, 2)] {
            let p = q * q * c;
            let m = machine(p);
            let g = grid3(q, c);
            let mut rng = StdRng::seed_from_u64(160 + (q * c + w) as u64);
            let a = gen::random_matrix(&mut rng, 12, 12);
            let b = gen::random_matrix(&mut rng, 12, 6);
            let rep = Replicated::replicate(&m, &g, &a);
            let cmat = streaming_mm(&m, &rep, (0, 0, 12, 12), false, &b, w);
            let want = matmul(&a, Trans::N, &b, Trans::N);
            assert!(
                cmat.max_diff(&want) < 1e-11,
                "q={q} c={c} w={w}: wrong product"
            );
        }
    }

    #[test]
    fn submatrix_product_matches() {
        let m = machine(8);
        let g = grid3(2, 2);
        let mut rng = StdRng::seed_from_u64(170);
        let a = gen::random_matrix(&mut rng, 16, 16);
        let b = gen::random_matrix(&mut rng, 10, 4);
        let rep = Replicated::replicate(&m, &g, &a);
        // A[4.., 6..]·B with the 12×10 trailing block.
        let cmat = streaming_mm(&m, &rep, (4, 6, 12, 10), false, &b, 2);
        let want = matmul(&a.block(4, 6, 12, 10), Trans::N, &b, Trans::N);
        assert!(cmat.max_diff(&want) < 1e-11);
    }

    #[test]
    fn transposed_product_matches() {
        let m = machine(4);
        let g = grid3(2, 1);
        let mut rng = StdRng::seed_from_u64(171);
        let a = gen::random_matrix(&mut rng, 14, 14);
        let b = gen::random_matrix(&mut rng, 9, 5);
        let rep = Replicated::replicate(&m, &g, &a);
        // A[2..11, 3..14)ᵀ·B: (9×11)ᵀ is 11×9 · 9×5.
        let cmat = streaming_mm(&m, &rep, (2, 3, 9, 11), true, &b, 1);
        let want = matmul(&a.block(2, 3, 9, 11), Trans::T, &b, Trans::N);
        assert!(cmat.max_diff(&want) < 1e-11);
    }

    #[test]
    fn replication_cuts_streaming_communication() {
        // Lemma III.3: W = O((mk + nk)/(qc)) — more layers, less W for
        // the same p... no wait, p grows with c. Fix q and vary c: W per
        // proc should *drop* roughly by c.
        let n = 32;
        let k = 8;
        let q = 2;
        let mut ws = Vec::new();
        for c in [1usize, 4] {
            let p = q * q * c;
            let m = machine(p);
            let g = grid3(q, c);
            let a = Matrix::zeros(n, n);
            let b = Matrix::zeros(n, k);
            let rep = Replicated::replicate(&m, &g, &a);
            let snap = m.snapshot();
            let _ = streaming_mm(&m, &rep, (0, 0, n, n), false, &b, 1);
            m.fence();
            ws.push(m.costs_since(&snap).horizontal_words as f64);
        }
        assert!(
            ws[1] < ws[0] / 1.5,
            "W did not drop with replication: {ws:?}"
        );
    }

    #[test]
    fn memory_scales_with_layers() {
        let q = 2;
        let n = 16;
        let m1 = machine(q * q);
        let rep1 = Replicated::replicate(&m1, &grid3(q, 1), &Matrix::zeros(n, n));
        let m2 = machine(q * q * 3);
        let rep2 = Replicated::replicate(&m2, &grid3(q, 3), &Matrix::zeros(n, n));
        // Peak per-proc memory identical (each holds one block copy).
        assert_eq!(
            m1.report().peak_memory_words,
            m2.report().peak_memory_words
        );
        rep1.release(&m1);
        rep2.release(&m2);
    }
}
