//! Streaming-MM (Algorithm III.1 / Lemma III.3): multiplication with a
//! pre-replicated operand on a `q × q × c` grid.
//!
//! The operand `A` is stored once per layer (`c` copies, each distributed
//! over a `q × q` grid); the thin operand `B` streams through in
//! `z = w·c` column blocks, `w` per layer. Each iteration gathers `B_jh`
//! along grid rows, multiplies against the resident `A_ij` blocks, and
//! reduce-scatters `C_ih = Σ_j A_ij·B_jh` along grid columns — per-proc
//! communication `O((mk + nk)/(qc)) = O((mk + nk)/pᵟ)`, the key saving
//! over non-replicated multiplication that Algorithm IV.1 exploits for
//! its aggregated trailing updates.
//!
//! Vertical traffic follows Lemma III.3's two cases: if a processor's
//! `A` block fits in cache it is read once across all `w` iterations;
//! otherwise each iteration re-reads it.

use crate::coll;
use crate::dist::DistMatrix;
use crate::exec;
use crate::grid::Grid;
use ca_bsp::Machine;
use ca_dla::gemm::{gemm, gemm_view, Trans};
use ca_dla::view::{MatrixView, MatrixViewMut};
use ca_dla::Matrix;

/// A matrix replicated over the `c` layers of a 3D grid, distributed
/// over a 2D `q₀ × q₁` grid within each layer.
#[derive(Debug, Clone)]
pub struct Replicated {
    /// The full `q₀ × q₁ × c` grid.
    pub grid3: Grid,
    /// The per-layer 2D distribution (content identical on every layer;
    /// stored once, memory charged on all layers).
    pub layer: DistMatrix,
}

impl Replicated {
    /// Replicate a dense matrix (starting from any balanced layout over
    /// the whole grid) onto every layer: distribute over layer 0, then
    /// broadcast along the layer fibers.
    pub fn replicate(m: &Machine, grid3: &Grid, a: &Matrix) -> Replicated {
        let (q0, q1, c) = grid3.shape();
        let layer0 = grid3.layer(0);
        let layer = DistMatrix::from_dense(m, &layer0, a);
        // Fiber broadcast of each block to the other layers.
        if c > 1 {
            for i in 0..q0 {
                for j in 0..q1 {
                    let fiber = grid3.fiber_group(i, j);
                    let r = layer0.rank(i, j, 0);
                    coll::bcast(m, &fiber, 0, layer.words_on(r));
                    for l in 1..c {
                        m.alloc(grid3.at(i, j, l), layer.words_on(r));
                    }
                }
            }
        }
        Replicated {
            grid3: grid3.clone(),
            layer,
        }
    }

    /// Words of replicated storage per layer-0 processor block `(i, j)`.
    pub fn block_words(&self, i: usize, j: usize) -> u64 {
        self.layer.words_on(self.layer.grid().rank(i, j, 0))
    }

    /// Release all layers' storage.
    pub fn release(self, m: &Machine) {
        let (q0, q1, c) = self.grid3.shape();
        for i in 0..q0 {
            for j in 0..q1 {
                let words = self.block_words(i, j);
                for l in 1..c {
                    m.free(self.grid3.at(i, j, l), words);
                }
            }
        }
        self.layer.release(m);
    }
}

/// `C = op(A[sub])·B` where `A` is replicated ([`Replicated`]), `sub`
/// selects the rows/cols `(r0, c0, nr, nc)` of `A` to use (Algorithm IV.1
/// multiplies against trailing submatrices), `B` is `nc × k`
/// (`nr × k` when transposed) in any balanced layout, and `w` is the
/// per-layer streaming depth of Algorithm III.1.
///
/// Returns `C` (`nr × k`, or `nc × k` transposed) evenly spread over the
/// grid.
pub fn streaming_mm(
    m: &Machine,
    rep: &Replicated,
    sub: (usize, usize, usize, usize),
    transpose_a: bool,
    b: &Matrix,
    w: usize,
) -> Matrix {
    let a_dense = rep.layer.assemble_unchecked();
    streaming_mm_dense(m, &rep.grid3, &a_dense, sub, transpose_a, b, w)
}

/// [`streaming_mm`] against a replicated operand supplied directly as a
/// dense matrix (the caller vouches that it is already replicated across
/// the grid's layers — e.g. Algorithm IV.1's aggregated `U⁽⁰⁾`/`V⁽⁰⁾`
/// panels, which line 10 of the algorithm replicates as they are
/// produced).
pub fn streaming_mm_dense(
    m: &Machine,
    grid3: &Grid,
    a_dense: &Matrix,
    sub: (usize, usize, usize, usize),
    transpose_a: bool,
    b: &Matrix,
    w: usize,
) -> Matrix {
    let (r0, c0, nr, nc) = sub;
    let (q0, q1, c) = grid3.shape();
    assert_eq!(q0, q1, "streaming_mm expects a square per-layer grid");
    let q = q0;
    let (inner, out_rows) = if transpose_a { (nr, nc) } else { (nc, nr) };
    assert_eq!(b.rows(), inner, "streaming_mm: inner dimension mismatch");
    let k = b.cols();
    if ca_obs::knobs::lookahead() {
        // Lookahead mode routes through the zero-copy sweep — bitwise-
        // and ledger-identical to the path below (see
        // `view_into_variant_is_bitwise_identical_with_matching_charges`),
        // it just reads the resident/streamed blocks as sub-views.
        let mut out = Matrix::zeros(out_rows, k);
        streaming_mm_view_into(
            m,
            grid3,
            &a_dense.view(),
            sub,
            transpose_a,
            &b.view(),
            false,
            w,
            &mut out.view_mut(),
        );
        return out;
    }
    let w = w.max(1);
    let z = w * c;

    // Redistribute B (charged from any balanced layout).
    let total_b = (inner * k) as u64;
    for &pid in grid3.procs() {
        m.charge_comm(pid, 2 * total_b / grid3.len() as u64);
    }
    m.step(grid3.procs(), 1);

    // Split the inner dimension by the layer grid's owner blocks of A
    // and the k dimension into z column blocks.
    let inner_splits = crate::dist::splits(inner, q);
    let k_splits = crate::dist::splits(k, z);

    let mut out = Matrix::zeros(out_rows, k);
    let out_splits = crate::dist::splits(out_rows, q);
    let h_cache = m.cache_words();

    for l in 0..c {
        // Layer l handles column blocks h ∈ {l, l+c, …, l+(w−1)c}.
        for step in 0..w {
            let h = l + step * c;
            if h >= z || k_splits[h] == k_splits[h + 1] {
                continue;
            }
            let (k0, k1) = (k_splits[h], k_splits[h + 1]);
            let kb = k1 - k0;
            for jdim in 0..q {
                let (j0, j1) = (inner_splits[jdim], inner_splits[jdim + 1]);
                if j0 == j1 {
                    continue;
                }
                let b_jh = b.block(j0, k0, j1 - j0, kb);
                // Gather B_jh along the row dimension of the layer grid.
                let gather_group = if transpose_a {
                    grid3.dim1_group(jdim, l)
                } else {
                    grid3.dim0_group(jdim, l)
                };
                coll::allgather(m, &gather_group, b_jh.len() as u64 / q as u64);

                // Each idim produces a disjoint output row range
                // [i0, i1): run the charged multiplies concurrently and
                // accumulate the partial products in rank order.
                let b_jh = &b_jh;
                let parts = exec::par_ranks(q, |idim| {
                    let (i0, i1) = (out_splits[idim], out_splits[idim + 1]);
                    if i0 == i1 {
                        return None;
                    }
                    // The resident A block for this (i, j): rows/cols of
                    // the submatrix.
                    let (ar, ac, anr, anc) = if transpose_a {
                        (r0 + j0, c0 + i0, j1 - j0, i1 - i0)
                    } else {
                        (r0 + i0, c0 + j0, i1 - i0, j1 - j0)
                    };
                    let a_blk = a_dense.block(ar, ac, anr, anc);
                    let pid = grid3.at(
                        if transpose_a { jdim } else { idim },
                        if transpose_a { idim } else { jdim },
                        l,
                    );
                    let ta = if transpose_a { Trans::T } else { Trans::N };
                    // Charged local multiply with Lemma III.3 vertical
                    // accounting: A resident in cache across iterations
                    // when it fits.
                    let flops = 2 * (i1 - i0) as u64 * (j1 - j0) as u64 * kb as u64;
                    m.charge_flops(pid, flops);
                    let a_words = a_blk.len() as u64;
                    let bc_words = (b_jh.len() + (i1 - i0) * kb) as u64;
                    let vert = if a_words <= h_cache && step > 0 {
                        bc_words
                    } else {
                        bc_words + a_words
                    };
                    m.charge_vert(pid, vert);
                    let mut part = Matrix::zeros(i1 - i0, kb);
                    gemm(1.0, &a_blk, ta, b_jh, Trans::N, 0.0, &mut part);
                    Some((i0, part))
                });
                // The reduce-scatter below performs the Σⱼ numerically
                // represented by this serial in-order accumulation.
                for (i0, part) in parts.into_iter().flatten() {
                    for rr in 0..part.rows() {
                        for cc in 0..part.cols() {
                            out.add_to(i0 + rr, k0 + cc, part.get(rr, cc));
                        }
                    }
                }
            }
            // Reduce-scatter C_ih = Σ_j C̄_ijh along the other dimension.
            for idim in 0..q {
                let group = if transpose_a {
                    grid3.dim0_group(idim, l)
                } else {
                    grid3.dim1_group(idim, l)
                };
                let ci_words = ((out_splits[idim + 1] - out_splits[idim]) * kb) as u64;
                coll::reduce_scatter(m, &group, ci_words);
            }
            m.step(grid3.procs(), 1);
        }
    }
    out
}

/// Zero-copy [`streaming_mm_dense`]: operands as views, the product
/// written (overwritten) into a strided output view.
///
/// The task-graph (`CA_LOOKAHEAD`) path of the reduction drivers uses
/// this to stream trailing updates straight out of the replicated
/// operand and straight into pre-allocated aggregate storage. Results
/// and ledger are **bitwise identical** to the copy path: the per-rank
/// resident blocks `A_ij` and streamed blocks `B_jh` become sub-views
/// instead of extracted copies (same per-cell values, same GEMM kernel
/// decision shapes), each rank's partial product still lands in a fresh
/// `β = 0` buffer, and the rank-ordered elementwise accumulation into
/// the zero-filled output performs the copy path's exact add sequence
/// (including the `0.0 + x` first touch). All charges are shape-derived
/// and issued in the same order.
///
/// `transpose_b` streams `Bᵀ` without materializing the transpose (the
/// aggregate-panel operands of Algorithm IV.1's lines 5/12 are
/// transposed blocks): the GEMM kernels' operand resolver reads the
/// stored orientation in place, performing the same arithmetic in the
/// same order as on a pre-transposed copy.
#[allow(clippy::too_many_arguments)] // mirrors streaming_mm_dense + the output view
pub fn streaming_mm_view_into(
    m: &Machine,
    grid3: &Grid,
    a_dense: &MatrixView,
    sub: (usize, usize, usize, usize),
    transpose_a: bool,
    b: &MatrixView,
    transpose_b: bool,
    w: usize,
    out: &mut MatrixViewMut,
) {
    let (r0, c0, nr, nc) = sub;
    let (q0, q1, c) = grid3.shape();
    assert_eq!(q0, q1, "streaming_mm expects a square per-layer grid");
    let q = q0;
    let (inner, out_rows) = if transpose_a { (nr, nc) } else { (nc, nr) };
    let (b_rows, k) = if transpose_b {
        (b.cols(), b.rows())
    } else {
        (b.rows(), b.cols())
    };
    assert_eq!(b_rows, inner, "streaming_mm: inner dimension mismatch");
    assert_eq!(
        (out.rows(), out.cols()),
        (out_rows, k),
        "streaming_mm_view_into: output shape disagrees"
    );
    let w = w.max(1);
    let z = w * c;

    // Redistribute B (charged from any balanced layout).
    let total_b = (inner * k) as u64;
    for &pid in grid3.procs() {
        m.charge_comm(pid, 2 * total_b / grid3.len() as u64);
    }
    m.step(grid3.procs(), 1);

    let inner_splits = crate::dist::splits(inner, q);
    let k_splits = crate::dist::splits(k, z);

    out.fill(0.0);
    let out_splits = crate::dist::splits(out_rows, q);
    let h_cache = m.cache_words();

    for l in 0..c {
        for step in 0..w {
            let h = l + step * c;
            if h >= z || k_splits[h] == k_splits[h + 1] {
                continue;
            }
            let (k0, k1) = (k_splits[h], k_splits[h + 1]);
            let kb = k1 - k0;
            for jdim in 0..q {
                let (j0, j1) = (inner_splits[jdim], inner_splits[jdim + 1]);
                if j0 == j1 {
                    continue;
                }
                let b_jh = if transpose_b {
                    b.sub(k0, j0, kb, j1 - j0)
                } else {
                    b.sub(j0, k0, j1 - j0, kb)
                };
                let gather_group = if transpose_a {
                    grid3.dim1_group(jdim, l)
                } else {
                    grid3.dim0_group(jdim, l)
                };
                coll::allgather(m, &gather_group, (b_jh.rows() * b_jh.cols()) as u64 / q as u64);

                let b_jh = &b_jh;
                let parts = exec::par_ranks(q, |idim| {
                    let (i0, i1) = (out_splits[idim], out_splits[idim + 1]);
                    if i0 == i1 {
                        return None;
                    }
                    let (ar, ac, anr, anc) = if transpose_a {
                        (r0 + j0, c0 + i0, j1 - j0, i1 - i0)
                    } else {
                        (r0 + i0, c0 + j0, i1 - i0, j1 - j0)
                    };
                    let a_blk = a_dense.sub(ar, ac, anr, anc);
                    let pid = grid3.at(
                        if transpose_a { jdim } else { idim },
                        if transpose_a { idim } else { jdim },
                        l,
                    );
                    let ta = if transpose_a { Trans::T } else { Trans::N };
                    let tb = if transpose_b { Trans::T } else { Trans::N };
                    let flops = 2 * (i1 - i0) as u64 * (j1 - j0) as u64 * kb as u64;
                    m.charge_flops(pid, flops);
                    let a_words = (a_blk.rows() * a_blk.cols()) as u64;
                    let bc_words = (b_jh.rows() * b_jh.cols() + (i1 - i0) * kb) as u64;
                    let vert = if a_words <= h_cache && step > 0 {
                        bc_words
                    } else {
                        bc_words + a_words
                    };
                    m.charge_vert(pid, vert);
                    let mut part = Matrix::zeros(i1 - i0, kb);
                    gemm_view(1.0, &a_blk, ta, b_jh, tb, 0.0, &mut part.view_mut());
                    Some((i0, part))
                });
                for (i0, part) in parts.into_iter().flatten() {
                    out.sub_mut(i0, k0, part.rows(), part.cols())
                        .add_scaled(1.0, &part.view());
                }
            }
            for idim in 0..q {
                let group = if transpose_a {
                    grid3.dim0_group(idim, l)
                } else {
                    grid3.dim1_group(idim, l)
                };
                let ci_words = ((out_splits[idim + 1] - out_splits[idim]) * kb) as u64;
                coll::reduce_scatter(m, &group, ci_words);
            }
            m.step(grid3.procs(), 1);
        }
    }
}

/// Convenience for replicating onto a 3D grid directly from a
/// [`DistMatrix`] already living on layer 0.
pub fn replicate_from_layer0(m: &Machine, grid3: &Grid, layer: DistMatrix) -> Replicated {
    let (q0, q1, c) = grid3.shape();
    if c > 1 {
        for i in 0..q0 {
            for j in 0..q1 {
                let fiber = grid3.fiber_group(i, j);
                let r = layer.grid().rank(i, j, 0);
                coll::bcast(m, &fiber, 0, layer.words_on(r));
                for l in 1..c {
                    m.alloc(grid3.at(i, j, l), layer.words_on(r));
                }
            }
        }
    }
    Replicated {
        grid3: grid3.clone(),
        layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn grid3(q: usize, c: usize) -> Grid {
        Grid::new_3d((0..q * q * c).collect(), q, q, c)
    }

    #[test]
    fn full_matrix_product_matches() {
        for (q, c, w) in [(2usize, 1usize, 1usize), (2, 2, 1), (2, 2, 2), (3, 1, 2)] {
            let p = q * q * c;
            let m = machine(p);
            let g = grid3(q, c);
            let mut rng = StdRng::seed_from_u64(160 + (q * c + w) as u64);
            let a = gen::random_matrix(&mut rng, 12, 12);
            let b = gen::random_matrix(&mut rng, 12, 6);
            let rep = Replicated::replicate(&m, &g, &a);
            let cmat = streaming_mm(&m, &rep, (0, 0, 12, 12), false, &b, w);
            let want = matmul(&a, Trans::N, &b, Trans::N);
            assert!(
                cmat.max_diff(&want) < 1e-11,
                "q={q} c={c} w={w}: wrong product"
            );
        }
    }

    #[test]
    fn submatrix_product_matches() {
        let m = machine(8);
        let g = grid3(2, 2);
        let mut rng = StdRng::seed_from_u64(170);
        let a = gen::random_matrix(&mut rng, 16, 16);
        let b = gen::random_matrix(&mut rng, 10, 4);
        let rep = Replicated::replicate(&m, &g, &a);
        // A[4.., 6..]·B with the 12×10 trailing block.
        let cmat = streaming_mm(&m, &rep, (4, 6, 12, 10), false, &b, 2);
        let want = matmul(&a.block(4, 6, 12, 10), Trans::N, &b, Trans::N);
        assert!(cmat.max_diff(&want) < 1e-11);
    }

    #[test]
    fn transposed_product_matches() {
        let m = machine(4);
        let g = grid3(2, 1);
        let mut rng = StdRng::seed_from_u64(171);
        let a = gen::random_matrix(&mut rng, 14, 14);
        let b = gen::random_matrix(&mut rng, 9, 5);
        let rep = Replicated::replicate(&m, &g, &a);
        // A[2..11, 3..14)ᵀ·B: (9×11)ᵀ is 11×9 · 9×5.
        let cmat = streaming_mm(&m, &rep, (2, 3, 9, 11), true, &b, 1);
        let want = matmul(&a.block(2, 3, 9, 11), Trans::T, &b, Trans::N);
        assert!(cmat.max_diff(&want) < 1e-11);
    }

    #[test]
    fn view_into_variant_is_bitwise_identical_with_matching_charges() {
        let _knob = crate::test_knob::barrier_guard();
        for (q, c, w, sub, transpose_a, transpose_b, k, seed) in [
            (2usize, 1usize, 1usize, (0usize, 0usize, 12usize, 12usize), false, false, 6usize, 400u64),
            (2, 2, 2, (4, 6, 12, 10), false, false, 4, 401),
            (2, 1, 1, (2, 3, 9, 11), true, false, 5, 402),
            (3, 1, 2, (1, 0, 13, 14), false, false, 7, 403),
            (2, 1, 2, (3, 1, 11, 9), false, true, 6, 404),
            (2, 2, 1, (0, 2, 10, 13), true, true, 5, 405),
        ] {
            let p = q * q * c;
            let g = grid3(q, c);
            let mut rng = StdRng::seed_from_u64(seed);
            let a = gen::random_matrix(&mut rng, 16, 17);
            let (_, _, nr, nc) = sub;
            let inner = if transpose_a { nr } else { nc };
            let out_rows = if transpose_a { nc } else { nr };
            // The copy path takes B stored `inner x k`; the view path may
            // instead read the transpose of a `k x inner` backing store.
            let b = gen::random_matrix(&mut rng, inner, k);
            let b_stored = if transpose_b { b.transpose() } else { b.clone() };

            let m1 = machine(p);
            let want = streaming_mm_dense(&m1, &g, &a, sub, transpose_a, &b, w);
            m1.fence();

            let m2 = machine(p);
            let mut host = Matrix::zeros(out_rows + 2, k + 3);
            streaming_mm_view_into(
                &m2,
                &g,
                &a.view(),
                sub,
                transpose_a,
                &b_stored.view(),
                transpose_b,
                w,
                &mut host.subview_mut(1, 2, out_rows, k),
            );
            m2.fence();

            for i in 0..out_rows {
                for j in 0..k {
                    assert!(
                        host.get(1 + i, 2 + j).to_bits() == want.get(i, j).to_bits(),
                        "q={q} c={c} w={w} ta={transpose_a} tb={transpose_b}: bit mismatch at ({i},{j})"
                    );
                }
            }
            assert_eq!(
                m1.report(),
                m2.report(),
                "q={q} c={c} w={w} ta={transpose_a} tb={transpose_b}: ledger diverged"
            );
        }
    }

    #[test]
    fn replication_cuts_streaming_communication() {
        // Lemma III.3: W = O((mk + nk)/(qc)) — more layers, less W for
        // the same p... no wait, p grows with c. Fix q and vary c: W per
        // proc should *drop* roughly by c.
        let n = 32;
        let k = 8;
        let q = 2;
        let mut ws = Vec::new();
        for c in [1usize, 4] {
            let p = q * q * c;
            let m = machine(p);
            let g = grid3(q, c);
            let a = Matrix::zeros(n, n);
            let b = Matrix::zeros(n, k);
            let rep = Replicated::replicate(&m, &g, &a);
            let snap = m.snapshot();
            let _ = streaming_mm(&m, &rep, (0, 0, n, n), false, &b, 1);
            m.fence();
            ws.push(m.costs_since(&snap).horizontal_words as f64);
        }
        assert!(
            ws[1] < ws[0] / 1.5,
            "W did not drop with replication: {ws:?}"
        );
    }

    #[test]
    fn memory_scales_with_layers() {
        let q = 2;
        let n = 16;
        let m1 = machine(q * q);
        let rep1 = Replicated::replicate(&m1, &grid3(q, 1), &Matrix::zeros(n, n));
        let m2 = machine(q * q * 3);
        let rep2 = Replicated::replicate(&m2, &grid3(q, 3), &Matrix::zeros(n, n));
        // Peak per-proc memory identical (each holds one block copy).
        assert_eq!(
            m1.report().peak_memory_words,
            m2.report().peak_memory_words
        );
        rep1.release(&m1);
        rep2.release(&m2);
    }
}
