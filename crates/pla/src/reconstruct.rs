//! Householder reconstruction (Corollary III.7; Ballard et al. \[26\]).
//!
//! Converts an explicit `m × n` orthonormal factor `Q` (e.g. from a TSQR
//! down-sweep) into the compact-WY pair `(U, T)` with
//! `Q = (I − U·T·Uᵀ)·[S; 0]` for a diagonal sign matrix `S`:
//!
//! 1. `(U₁, W₁, S) = LU(Q₁ − S)` — distributed non-pivoted LU with
//!    on-the-fly sign subtraction (diagonally dominant by construction),
//! 2. `U = (Q − [S; 0])·W₁⁻¹` — distributed triangular inversion plus a
//!    communication-optimal rectangular multiply (Lemma III.2),
//! 3. `T = −W₁·S·U₁⁻ᵀ`.
//!
//! Consumers that want `A = Q·R` with the reconstructed Householder `Q`
//! must flip the rows of their `R` by `S` (see [`Reconstruction::fix_r`]).

use crate::carma;
use crate::coll;
use crate::dist::DistMatrix;
use crate::grid::Grid;
use crate::lu::{dist_lu_signed, dist_tri_inverse};
use ca_bsp::Machine;
use ca_dla::lu::{Diag, Triangle};
use ca_dla::Matrix;

/// The compact-WY representation recovered from an explicit `Q`.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// `m × n` unit-lower-trapezoidal Householder vectors, distributed
    /// in the 1D row layout of the input `Q`.
    pub u: DistMatrix,
    /// `n × n` upper-triangular `T` (numerically assembled; its storage
    /// and all operations on it are charged as distributed).
    pub t: Matrix,
    /// Diagonal signs: `Q = (I − U·T·Uᵀ)·[S; 0]`.
    pub s: Vec<f64>,
}

impl Reconstruction {
    /// Adjust an upper-triangular `R` (from the QR that produced `Q`) so
    /// that `A = (I − U·T·Uᵀ)·[R'; 0]`: `R' = S·R` (row sign flips).
    pub fn fix_r(&self, r: &Matrix) -> Matrix {
        let mut out = r.clone();
        for i in 0..r.rows().min(self.s.len()) {
            for j in 0..r.cols() {
                out.set(i, j, self.s[i] * r.get(i, j));
            }
        }
        out
    }
}

/// Reconstruct `(U, T, S)` from a distributed explicit `Q` (1D row
/// layout over its group).
pub fn reconstruct(machine: &Machine, q: &DistMatrix) -> Reconstruction {
    let group = q.grid().clone();
    let g = group.len();
    let (mrows, n) = q.shape();
    assert!(mrows >= n, "reconstruction requires m ≥ n");

    // Square subgrid for the n×n triangular work.
    let qq = (g as f64).sqrt().floor() as usize;
    let sub = group.prefix((qq * qq).max(1)).as_2d(qq.max(1), qq.max(1));

    // 1. Redistribute Q₁ (top n×n) onto the subgrid and LU it with sign
    //    subtraction.
    let q1 = q.block_redist(machine, 0, 0, n, n, &sub);
    let (u1, w1, s) = dist_lu_signed(machine, &q1);

    // 2. W₁⁻¹ and U₁⁻ᵀ by distributed triangular inversion.
    let w1_inv = dist_tri_inverse(machine, &w1, Triangle::Upper, Diag::NonUnit);
    let u1_inv = dist_tri_inverse(machine, &u1, Triangle::Lower, Diag::Unit);

    // 3. U = (Q − Ŝ)·W₁⁻¹ via the recursive rectangular multiply on the
    //    full group (Lemma III.2 is exactly the cost Corollary III.7
    //    invokes for these products).
    let mut q_minus_s = q.assemble_unchecked();
    for (i, si) in s.iter().enumerate() {
        q_minus_s.add_to(i, i, -si);
    }
    let u_dense = carma::carma_spread(machine, &group, &q_minus_s, &w1_inv.assemble_unchecked(), 1);
    let u = DistMatrix::from_dense_free(machine, &group, &u_dense);

    // 4. T = −W₁·S·U₁⁻ᵀ on the subgrid's processors.
    let mut w1s = w1.assemble_unchecked();
    for j in 0..n {
        for i in 0..n {
            let v = w1s.get(i, j) * s[j];
            w1s.set(i, j, v);
        }
    }
    let u1_inv_t = u1_inv.assemble_unchecked().transpose();
    // Charge the transpose shuffle on the subgrid.
    coll::allgather(machine, &sub, ((n * n) / sub.len().max(1)) as u64);
    let mut t = carma::carma_spread(machine, &sub, &w1s, &u1_inv_t, 1);
    t.scale(-1.0);

    // Release the temporaries' storage.
    q1.release(machine);
    u1.release(machine);
    w1.release(machine);
    w1_inv.release(machine);
    u1_inv.release(machine);

    Reconstruction { u, t, s }
}

/// Sequential reconstruction (single processor), used at recursion base
/// cases and in tests.
pub fn reconstruct_local(q: &Matrix) -> (Matrix, Matrix, Vec<f64>) {
    let n = q.cols();
    let q1 = q.block(0, 0, n, n);
    let (u1, w1, s) = ca_dla::lu::lu_nopivot_signed(&q1);
    let mut q_minus_s = q.clone();
    for (i, si) in s.iter().enumerate() {
        q_minus_s.add_to(i, i, -si);
    }
    // U = (Q − Ŝ)·W₁⁻¹ via a right triangular solve.
    let mut u = q_minus_s;
    ca_dla::lu::trsm_right(&w1, Triangle::Upper, Diag::NonUnit, false, &mut u);
    // T = −W₁·S·U₁⁻ᵀ: T·U₁ᵀ = −W₁·S  ⇔  right-solve with U₁ᵀ.
    let mut t = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            t.set(i, j, -w1.get(i, j) * s[j]);
        }
    }
    ca_dla::lu::trsm_right(&u1, Triangle::Lower, Diag::Unit, true, &mut t);
    (u, t, s)
}

/// Grid re-export used by callers picking reconstruction subgroups.
pub fn square_subgrid(group: &Grid) -> Grid {
    let qq = (group.len() as f64).sqrt().floor() as usize;
    group.prefix((qq * qq).max(1)).as_2d(qq.max(1), qq.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsqr;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::{matmul, Trans};
    use ca_dla::gen;
    use ca_dla::qr::{explicit_q as wy_explicit_q, qr_factor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check_wy(q: &Matrix, u: &Matrix, t: &Matrix, s: &[f64], tol: f64) {
        // (I − U·T·Uᵀ)·[S;0] ≈ Q.
        let (mrows, n) = (q.rows(), q.cols());
        let mut shat = Matrix::zeros(mrows, n);
        for i in 0..n {
            shat.set(i, i, s[i]);
        }
        let mut rebuilt = shat.clone();
        // rebuilt −= U·(T·(Uᵀ·Ŝ))
        let uts = matmul(u, Trans::T, &shat, Trans::N);
        let tuts = matmul(t, Trans::N, &uts, Trans::N);
        let corr = matmul(u, Trans::N, &tuts, Trans::N);
        rebuilt.axpy(-1.0, &corr);
        assert!(
            rebuilt.max_diff(q) < tol,
            "reconstructed Q deviates by {}",
            rebuilt.max_diff(q)
        );
        // U unit lower-trapezoidal.
        for i in 0..n {
            assert!((u.get(i, i) - 1.0).abs() < tol, "U diagonal");
            for j in i + 1..n {
                assert!(u.get(i, j).abs() < tol, "U upper part");
            }
        }
    }

    #[test]
    fn local_reconstruction_roundtrip() {
        let mut rng = StdRng::seed_from_u64(120);
        for (mrows, n) in [(12usize, 4usize), (8, 8), (20, 5)] {
            let a = gen::random_matrix(&mut rng, mrows, n);
            let f = qr_factor(&a, 4);
            let q = wy_explicit_q(&f.u, &f.t, n);
            let (u, t, s) = reconstruct_local(&q);
            check_wy(&q, &u, &t, &s, 1e-9);
        }
    }

    #[test]
    fn distributed_reconstruction_matches_wy_identity() {
        for g in [4usize, 8] {
            let m = machine(g);
            let grid = Grid::new_2d((0..g).collect(), g, 1);
            let mut rng = StdRng::seed_from_u64(121 + g as u64);
            let a = gen::random_matrix(&mut rng, 8 * g, 6);
            let da = DistMatrix::from_dense(&m, &grid, &a);
            let (q, _r) = tsqr::tsqr_explicit(&m, &da);
            let rec = reconstruct(&m, &q);
            check_wy(
                &q.assemble_unchecked(),
                &rec.u.assemble_unchecked(),
                &rec.t,
                &rec.s,
                1e-9,
            );
        }
    }

    #[test]
    fn fix_r_restores_factorization() {
        let g = 4;
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(130);
        let a = gen::random_matrix(&mut rng, 24, 5);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, r) = tsqr::tsqr_explicit(&m, &da);
        let rec = reconstruct(&m, &q);
        let r_fixed = rec.fix_r(&r);
        // A = (I − U T Uᵀ)·[R'; 0].
        let mut stack = Matrix::zeros(24, 5);
        stack.set_block(0, 0, &r_fixed);
        let u = rec.u.assemble_unchecked();
        let ut_stack = matmul(&u, Trans::T, &stack, Trans::N);
        let t_ut = matmul(&rec.t, Trans::N, &ut_stack, Trans::N);
        let corr = matmul(&u, Trans::N, &t_ut, Trans::N);
        stack.axpy(-1.0, &corr);
        assert!(stack.max_diff(&a) < 1e-9, "A ≠ (I−UTUᵀ)[R';0]: {}", stack.max_diff(&a));
    }

    #[test]
    fn reconstruction_on_singletonish_groups() {
        // g = 2: square subgrid degenerates to 1×1.
        let m = machine(2);
        let grid = Grid::new_2d(vec![0, 1], 2, 1);
        let mut rng = StdRng::seed_from_u64(131);
        let a = gen::random_matrix(&mut rng, 10, 3);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, _) = tsqr::tsqr_explicit(&m, &da);
        let rec = reconstruct(&m, &q);
        check_wy(
            &q.assemble_unchecked(),
            &rec.u.assemble_unchecked(),
            &rec.t,
            &rec.s,
            1e-9,
        );
    }
}
