//! BSP collectives: word-exact cost charging for the communication
//! patterns the paper's algorithms use.
//!
//! Every collective charges each participant's horizontal-word counter
//! with the words it sends plus receives and advances the *group's*
//! superstep counters (subgroup collectives on disjoint groups share
//! global supersteps — see `ca-bsp`). One-to-all and all-to-one
//! collectives use the standard two-phase BSP realization
//! (scatter + allgather, reduce-scatter + gather) so no processor's
//! per-superstep traffic exceeds `O(words)` — matching the collective
//! costs assumed throughout §III/§IV of the paper.
//!
//! The physical payload movement is performed by the callers (the
//! distributed containers in [`crate::dist`] and the algorithms), which
//! hold the per-processor buffers; these functions are the single point
//! where the corresponding costs enter the ledger.

use crate::grid::Grid;
use ca_bsp::{Machine, ProcId};

/// Point-to-point transfer: `words` from `from` to `to`, one superstep
/// for the pair.
pub fn p2p(m: &Machine, from: ProcId, to: ProcId, words: u64) {
    if from == to {
        return;
    }
    m.charge_transfer(from, to, words);
    m.step(&[from, to], 1);
}

/// A batch of point-to-point transfers executed in a single superstep by
/// the given group (BSP permits an arbitrary h-relation per superstep).
pub fn exchange(m: &Machine, group: &Grid, moves: &[(ProcId, ProcId, u64)]) {
    for &(from, to, words) in moves {
        m.charge_transfer(from, to, words);
    }
    m.step(group.procs(), 1);
}

/// Broadcast `words` from `root` (a rank within `group`) to all members:
/// two-phase (scatter, then allgather).
pub fn bcast(m: &Machine, group: &Grid, root: usize, words: u64) {
    let g = group.len() as u64;
    if g <= 1 || words == 0 {
        return;
    }
    let root_id = group.proc(root);
    // Phase 1: root scatters pieces (exact proportional accounting —
    // integer rounding up would add a spurious O(g) term per call).
    m.charge_comm(root_id, words - words / g);
    for (r, &pid) in group.procs().iter().enumerate() {
        if r != root {
            m.charge_comm(pid, words / g);
        }
    }
    // Phase 2: allgather of pieces.
    for &pid in group.procs() {
        m.charge_comm(pid, 2 * (words * (g - 1)) / g);
    }
    m.step(group.procs(), 2);
}

/// Gather `words_each` from every member onto `root`: one superstep.
pub fn gather(m: &Machine, group: &Grid, root: usize, words_each: u64) {
    let g = group.len() as u64;
    if g <= 1 || words_each == 0 {
        return;
    }
    let root_id = group.proc(root);
    for (r, &pid) in group.procs().iter().enumerate() {
        if r != root {
            m.charge_comm(pid, words_each);
        }
    }
    m.charge_comm(root_id, (g - 1) * words_each);
    m.step(group.procs(), 1);
}

/// Scatter `words_each` from `root` to every member: one superstep.
pub fn scatter(m: &Machine, group: &Grid, root: usize, words_each: u64) {
    let g = group.len() as u64;
    if g <= 1 || words_each == 0 {
        return;
    }
    let root_id = group.proc(root);
    m.charge_comm(root_id, (g - 1) * words_each);
    for (r, &pid) in group.procs().iter().enumerate() {
        if r != root {
            m.charge_comm(pid, words_each);
        }
    }
    m.step(group.procs(), 1);
}

/// All-gather: every member contributes `words_each` and ends with all
/// `g·words_each` words: one superstep.
pub fn allgather(m: &Machine, group: &Grid, words_each: u64) {
    let g = group.len() as u64;
    if g <= 1 || words_each == 0 {
        return;
    }
    for &pid in group.procs() {
        m.charge_comm(pid, 2 * (g - 1) * words_each);
    }
    m.step(group.procs(), 1);
}

/// Reduce-scatter: every member holds `words_total`, the element-wise
/// sum ends evenly scattered (`words_total/g` each): one superstep plus
/// the reduction flops.
pub fn reduce_scatter(m: &Machine, group: &Grid, words_total: u64) {
    let g = group.len() as u64;
    if g <= 1 || words_total == 0 {
        return;
    }
    for &pid in group.procs() {
        m.charge_comm(pid, 2 * (words_total * (g - 1)) / g);
        m.charge_flops(pid, (words_total * (g - 1)) / g);
    }
    m.step(group.procs(), 1);
}

/// Reduce `words` element-wise onto `root`: two-phase
/// (reduce-scatter + gather).
pub fn reduce(m: &Machine, group: &Grid, root: usize, words: u64) {
    let g = group.len() as u64;
    if g <= 1 || words == 0 {
        return;
    }
    reduce_scatter(m, group, words);
    gather(m, group, root, (words / g).max(1));
}

/// All-reduce `words` element-wise: two-phase
/// (reduce-scatter + allgather).
pub fn allreduce(m: &Machine, group: &Grid, words: u64) {
    let g = group.len() as u64;
    if g <= 1 || words == 0 {
        return;
    }
    reduce_scatter(m, group, words);
    allgather(m, group, (words / g).max(1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn p2p_charges_pair_and_steps() {
        let m = machine(4);
        p2p(&m, 0, 3, 10);
        m.fence();
        let c = m.report();
        assert_eq!(c.total_volume_words, 20);
        assert_eq!(c.supersteps, 2); // the p2p step + the fence
    }

    #[test]
    fn bcast_cost_is_linear_in_words_not_group_size() {
        // Two-phase broadcast: per-proc traffic ≤ 3·words regardless of g.
        for g in [2usize, 4, 8, 16] {
            let m = machine(g);
            let grid = Grid::all(g);
            bcast(&m, &grid, 0, 1000);
            let per_proc = m.comm_per_proc();
            for w in per_proc {
                assert!(w <= 3 * 1000 + 3 * g as u64, "g={g}: per-proc {w}");
            }
        }
    }

    #[test]
    fn gather_charges_root_with_total() {
        let m = machine(4);
        gather(&m, &Grid::all(4), 0, 100);
        let per = m.comm_per_proc();
        assert_eq!(per[0], 300);
        assert_eq!(per[1], 100);
    }

    #[test]
    fn allgather_symmetric() {
        let m = machine(3);
        allgather(&m, &Grid::all(3), 50);
        let per = m.comm_per_proc();
        assert!(per.iter().all(|&w| w == 200));
    }

    #[test]
    fn reduce_scatter_charges_flops() {
        let m = machine(4);
        reduce_scatter(&m, &Grid::all(4), 400);
        m.fence();
        let c = m.report();
        assert_eq!(c.flops, 300); // (g−1)·w/g per proc
    }

    #[test]
    fn singleton_group_is_free() {
        let m = machine(2);
        let g1 = Grid::new_1d(vec![1]);
        bcast(&m, &g1, 0, 1000);
        reduce(&m, &g1, 0, 1000);
        allgather(&m, &g1, 1000);
        let c = m.report();
        assert_eq!(c.horizontal_words, 0);
        assert_eq!(c.supersteps, 0);
    }

    #[test]
    fn scatter_is_dual_of_gather() {
        let m = machine(4);
        scatter(&m, &Grid::all(4), 0, 100);
        let per = m.comm_per_proc();
        assert_eq!(per[0], 300); // root sends (g−1)·words_each
        assert_eq!(per[3], 100);
        assert_eq!(m.report().supersteps, 1);
    }

    #[test]
    fn exchange_batches_into_one_superstep() {
        let m = machine(4);
        exchange(
            &m,
            &Grid::all(4),
            &[(0, 1, 10), (2, 3, 20), (1, 2, 5)],
        );
        m.fence();
        let c = m.report();
        assert_eq!(c.total_volume_words, 2 * 35);
        assert_eq!(c.supersteps, 2); // the exchange + the fence
    }

    #[test]
    fn zero_word_collectives_are_free() {
        let m = machine(4);
        bcast(&m, &Grid::all(4), 0, 0);
        gather(&m, &Grid::all(4), 0, 0);
        reduce_scatter(&m, &Grid::all(4), 0);
        let c = m.report();
        assert_eq!(c.horizontal_words, 0);
        assert_eq!(c.supersteps, 0);
    }

    #[test]
    fn subgroup_collectives_share_supersteps() {
        let m = machine(4);
        let left = Grid::new_1d(vec![0, 1]);
        let right = Grid::new_1d(vec![2, 3]);
        allgather(&m, &left, 10);
        allgather(&m, &right, 10);
        m.fence();
        assert_eq!(m.report().supersteps, 2); // concurrent + fence
    }
}
