//! The parallel superstep executor: runs per-virtual-processor work of a
//! single BSP phase on real threads.
//!
//! A superstep's per-processor bodies are independent by construction —
//! that is the BSP model's whole premise — so the simulator may execute
//! them concurrently between fences. The `ca-bsp` ledger is atomic and
//! every charge is a commutative add, which makes the folded cost report
//! *bit-identical* to serial execution no matter how threads interleave.
//!
//! ## Rules for closures passed to this module
//!
//! * They may call `charge_*`, `alloc`/`free`, and `step` freely (all
//!   commutative), and any local kernels.
//! * They must **not** call `Machine::fence`, `report`, or `snapshot`:
//!   folds read per-phase deltas and must run at quiescent points. Every
//!   public `ca-pla` collective and kernel wrapper is fold-free; of the
//!   distributed algorithms only `rect_qr::rect_qr_tree` fences
//!   internally (and is therefore never dispatched through here).
//! * Per-rank outputs must be disjoint (e.g. one local block per rank).
//!
//! ## Per-thread workspace arenas
//!
//! The `ca-dla` hot-path kernels draw scratch buffers from a
//! thread-local [`ca_dla::Workspace`] arena (`ca_dla::workspace::with_ws`).
//! Because this executor runs each rank body to completion on a single
//! worker thread, each checkout stays on one thread for the duration
//! of a body: buffers checked out inside a rank body are returned
//! before the body yields, arenas never migrate across threads, and no
//! synchronization is needed. (Checkout is a re-entrant LIFO stack of
//! arenas since the batch service arrived — nested `with_ws` scopes on
//! one thread each get their own arena, warm-reused in steady state.)
//! A warm arena makes steady-state bulge chasing allocation-free
//! regardless of which worker a rank lands on.
//!
//! Set `CA_SERIAL` truthy (`1`/`true`/`yes`/`on`, per
//! [`ca_obs::knobs`]) to force serial in-order execution — the escape
//! hatch for debugging and for measuring the parallel overhead itself.

use std::cell::Cell;

thread_local! {
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// True when the shared `CA_SERIAL` knob ([`ca_obs::knobs::serial`]) is
/// truthy, or inside a [`with_forced_serial`] scope: all executor entry
/// points then run their bodies inline, in rank order. The same knob
/// read gates every other parallel path in the repo (D&C splits,
/// back-transformation), so one setting means one behaviour everywhere.
pub fn serial_forced() -> bool {
    FORCE_SERIAL.with(Cell::get) || ca_obs::knobs::serial()
}

/// Run `f` with executor dispatch forced serial on this thread,
/// regardless of `CA_SERIAL`. Because serial dispatch keeps all work on
/// the calling thread, the override propagates through nested executor
/// calls. Used by the determinism tests to compare serial and parallel
/// runs within one process.
pub fn with_forced_serial<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SERIAL.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(FORCE_SERIAL.with(|c| c.replace(true)));
    f()
}

/// Run `f(0), f(1), …, f(n-1)` — in parallel unless serial execution is
/// forced — and collect the results in rank order.
pub fn par_ranks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let _span = ca_obs::kernel_span("exec.par_ranks");
    if serial_forced() || n <= 1 {
        return (0..n).map(f).collect();
    }
    use rayon::prelude::*;
    (0..n).into_par_iter().map(f).collect()
}

/// Run `f(rank)` for every rank in `0..n` for its side effects.
pub fn for_each_rank<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let _span = ca_obs::kernel_span("exec.for_each_rank");
    if serial_forced() || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    use rayon::prelude::*;
    (0..n).into_par_iter().for_each(f);
}

/// Run `f(rank, &mut items[rank])` for every rank — the owner-computes
/// pattern over a distributed matrix's local blocks.
pub fn par_over<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let _span = ca_obs::kernel_span("exec.par_over");
    if serial_forced() || items.len() <= 1 {
        for (r, item) in items.iter_mut().enumerate() {
            f(r, item);
        }
        return;
    }
    use rayon::prelude::*;
    items.par_iter_mut().enumerate().for_each(|(r, item)| f(r, item));
}

/// Run two independent closures, potentially concurrently, and return
/// both results. Used for independent multiply chains within a phase.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if serial_forced() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    rayon::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_ranks_preserves_order() {
        let v = par_ranks(17, |r| r * r);
        assert_eq!(v, (0..17).map(|r| r * r).collect::<Vec<_>>());
    }

    #[test]
    fn par_over_mutates_every_slot() {
        let mut xs = vec![0u64; 23];
        par_over(&mut xs, |r, x| *x = r as u64 + 1);
        assert!(xs.iter().enumerate().all(|(r, &x)| x == r as u64 + 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
