//! SUMMA: 2D parallel matrix multiplication (van de Geijn & Watts \[25\]),
//! the workhorse the paper's baselines use and the comparison point for
//! the replicated Streaming-MM of Algorithm III.1.
//!
//! `C ← α·A·B + β·C` with all three matrices block-distributed over the
//! same `pr × pc` grid. For each inner-dimension panel, the owning
//! column of `A` broadcasts its piece along grid rows, the owning row of
//! `B` broadcasts along grid columns, and every processor accumulates a
//! local GEMM — communication `O((mk + kn)/√p · √p/…)` per the classic
//! 2D bound `O((mn + mk + kn)/√p)` on square grids.

use crate::coll;
use crate::dist::DistMatrix;
use crate::exec;
use crate::kern;
use ca_bsp::Machine;
use ca_dla::gemm::Trans;
use ca_dla::Matrix;

/// `C ← α·A·B + β·C` (shapes `m×k`, `k×n`, `m×n`), all on `C`'s grid.
pub fn summa(m: &Machine, alpha: f64, a: &DistMatrix, b: &DistMatrix, beta: f64, c: &mut DistMatrix) {
    let (am, ak) = a.shape();
    let (bk, bn) = b.shape();
    let (cm, cn) = c.shape();
    assert_eq!(ak, bk, "summa: inner dimensions disagree");
    assert_eq!((am, bn), (cm, cn), "summa: output shape disagrees");
    assert_eq!(a.grid(), c.grid(), "summa: A must share C's grid");
    assert_eq!(b.grid(), c.grid(), "summa: B must share C's grid");
    let grid = c.grid().clone();
    let (pr, pc, _) = grid.shape();

    // Inner panel boundaries: union of A's column splits and B's row
    // splits, so each panel lies within one owner block of each.
    let mut bounds: Vec<usize> = crate::dist::splits(ak, pc)
        .into_iter()
        .chain(crate::dist::splits(ak, pr))
        .collect();
    bounds.sort_unstable();
    bounds.dedup();

    // Scale C once (every rank's block independently).
    if beta != 1.0 {
        exec::par_over(c.locals_mut(), |_, loc| {
            if beta == 0.0 {
                loc.data_mut().fill(0.0);
            } else {
                loc.scale(beta);
            }
        });
    }

    for w in bounds.windows(2) {
        let (k0, k1) = (w[0], w[1]);
        if k1 == k0 {
            continue;
        }
        // For every grid row i: owner column of A's panel broadcasts.
        // For every grid col j: owner row of B's panel broadcasts.
        let a_owner_col = owner_block(&crate::dist::splits(ak, pc), k0);
        let b_owner_row = owner_block(&crate::dist::splits(ak, pr), k0);

        // Extract the panel pieces (per grid row / column).
        let mut a_panels: Vec<Matrix> = Vec::with_capacity(pr);
        for i in 0..pr {
            let r = grid.rank(i, a_owner_col, 0);
            let (_, c0, _, _) = a.owned_range(r);
            let loc = a.local(r);
            let piece = loc.block(0, k0 - c0, loc.rows(), k1 - k0);
            let row_group = grid.dim1_group(i, 0);
            coll::bcast(m, &row_group, a_owner_col, piece.len() as u64);
            a_panels.push(piece);
        }
        let mut b_panels: Vec<Matrix> = Vec::with_capacity(pc);
        for j in 0..pc {
            let r = grid.rank(b_owner_row, j, 0);
            let (r0, _, _, _) = b.owned_range(r);
            let loc = b.local(r);
            let piece = loc.block(k0 - r0, 0, k1 - k0, loc.cols());
            let col_group = grid.dim0_group(j, 0);
            coll::bcast(m, &col_group, b_owner_row, piece.len() as u64);
            b_panels.push(piece);
        }

        // Local accumulation on every processor (disjoint output
        // blocks, so the executor runs the ranks concurrently).
        exec::par_over(c.locals_mut(), |r, loc| {
            let (i, j, _) = grid.coords(r);
            kern::local_gemm(
                m,
                grid.proc(r),
                alpha,
                &a_panels[i],
                Trans::N,
                &b_panels[j],
                Trans::N,
                1.0,
                loc,
            );
        });
    }
}

/// Index of the block interval (in `splits`) containing position `x`.
fn owner_block(splits: &[usize], x: usize) -> usize {
    splits.partition_point(|&s| s <= x) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use ca_bsp::{Machine, MachineParams};
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn matches_sequential_square_grid() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let mut rng = StdRng::seed_from_u64(80);
        let a = gen::random_matrix(&mut rng, 12, 8);
        let b = gen::random_matrix(&mut rng, 8, 10);
        let da = DistMatrix::from_dense(&m, &g, &a);
        let db = DistMatrix::from_dense(&m, &g, &b);
        let mut dc = DistMatrix::zeros(&m, &g, 12, 10);
        summa(&m, 1.0, &da, &db, 0.0, &mut dc);
        let want = matmul(&a, Trans::N, &b, Trans::N);
        assert!(dc.assemble_unchecked().max_diff(&want) < 1e-12);
    }

    #[test]
    fn matches_sequential_rect_grid_and_accumulates() {
        let m = machine(6);
        let g = Grid::new_2d((0..6).collect(), 2, 3);
        let mut rng = StdRng::seed_from_u64(81);
        let a = gen::random_matrix(&mut rng, 9, 7);
        let b = gen::random_matrix(&mut rng, 7, 11);
        let c0 = gen::random_matrix(&mut rng, 9, 11);
        let da = DistMatrix::from_dense(&m, &g, &a);
        let db = DistMatrix::from_dense(&m, &g, &b);
        let mut dc = DistMatrix::from_dense(&m, &g, &c0);
        summa(&m, 2.0, &da, &db, 3.0, &mut dc);
        let mut want = c0.clone();
        want.scale(3.0);
        want.axpy(2.0, &matmul(&a, Trans::N, &b, Trans::N));
        assert!(dc.assemble_unchecked().max_diff(&want) < 1e-12);
    }

    #[test]
    fn communication_scales_with_inverse_sqrt_p() {
        // W per processor for n×n SUMMA on a √p×√p grid is Θ(n²/√p).
        let n = 64;
        let mut w_by_p = Vec::new();
        for q in [2usize, 4] {
            let p = q * q;
            let m = machine(p);
            let g = Grid::new_2d((0..p).collect(), q, q);
            let a = Matrix::zeros(n, n);
            let da = DistMatrix::from_dense(&m, &g, &a);
            let db = DistMatrix::from_dense(&m, &g, &a);
            let mut dc = DistMatrix::zeros(&m, &g, n, n);
            let snap = m.snapshot();
            summa(&m, 1.0, &da, &db, 0.0, &mut dc);
            m.fence();
            w_by_p.push(m.costs_since(&snap).horizontal_words as f64);
        }
        // Doubling q should roughly halve per-processor W.
        let ratio = w_by_p[0] / w_by_p[1];
        assert!(ratio > 1.5 && ratio < 3.0, "W ratio {ratio}");
    }

    #[test]
    fn flops_are_load_balanced() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let a = Matrix::identity(16);
        let da = DistMatrix::from_dense(&m, &g, &a);
        let db = DistMatrix::from_dense(&m, &g, &a);
        let mut dc = DistMatrix::zeros(&m, &g, 16, 16);
        summa(&m, 1.0, &da, &db, 0.0, &mut dc);
        let f = m.flops_per_proc();
        let max = *f.iter().max().unwrap() as f64;
        let min = *f.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.5, "flop imbalance {f:?}");
    }
}
