//! # ca-pla — distributed building blocks on the virtual BSP machine
//!
//! Implements §III of Solomonik et al. (SPAA'17) — the parallel building
//! blocks the communication-avoiding symmetric eigensolver is composed
//! of — executing on the `ca-bsp` virtual machine with every word of
//! data motion and every flop charged to the ledger:
//!
//! * processor grids and groups ([`grid`]),
//! * BSP collectives with exact word/superstep charging ([`coll`]),
//! * distributed matrices with per-processor physical storage ([`dist`]),
//! * cost-charged local kernel wrappers ([`kern`]),
//! * SUMMA 2D matrix multiplication ([`summa`]),
//! * Streaming-MM, Algorithm III.1 / Lemma III.3 ([`streaming`]),
//! * recursive rectangular matmul, Lemma III.2 / CARMA ([`carma`]),
//! * TSQR binary-tree QR ([`tsqr`]),
//! * Householder reconstruction, Corollary III.7 ([`reconstruct`]),
//! * 2D blocked CAQR for (nearly) square matrices ([`square_qr`]),
//! * rect-QR, Algorithm III.2 / Theorem III.6 ([`rect_qr`]),
//! * distributed non-pivoted LU and triangular solves ([`lu`]),
//! * the parallel superstep executor ([`exec`]) — runs independent
//!   per-virtual-processor work on real threads between fences.
//!
//! ## Layout policy
//!
//! All 2D algorithms use *block* distributions with panel width equal to
//! the block size (one block per processor per dimension). For the
//! per-superstep-maximum cost accounting of the paper's model this is
//! load-balance-equivalent to the block-cyclic layouts the paper assumes
//! (DESIGN.md §8): redistribution between stages is explicit and charged.

// Index-heavy numerical code: range loops over several arrays at once
// are the clearer idiom here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod alpha_beta;
pub mod carma;
pub mod coll;
pub mod cyclic;
pub mod dag;
pub mod dist;
pub mod exec;
pub mod grid;
pub mod kern;
pub mod lu;
pub mod ops;
pub mod reconstruct;
pub mod rect_qr;
pub mod square_qr;
pub mod streaming;
pub mod summa;
pub mod tsqr;

pub use dist::DistMatrix;
pub use grid::Grid;

/// Serializes tests that toggle the process-global lookahead knob
/// (`ca_obs::knobs::set_lookahead_enabled`), so a concurrently running
/// equivalence test cannot observe a half-toggled state. Safe either
/// way for every *other* test: both knob settings compute bit-identical
/// results.
#[cfg(test)]
pub(crate) mod test_knob {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Take the knob lock and force the barrier (copy) path; the guard
    /// restores the default on drop.
    pub fn barrier_guard() -> impl Drop {
        struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
        impl Drop for Guard {
            fn drop(&mut self) {
                ca_obs::knobs::reset_lookahead();
            }
        }
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ca_obs::knobs::set_lookahead_enabled(false);
        Guard(g)
    }
}
