//! Distributed non-pivoted LU and triangular inversion on 2D grids.
//!
//! This substitutes for Tiskin's BSP LU \[32\] in Corollary III.7's
//! Householder reconstruction (DESIGN.md §2): a right-looking blocked LU
//! with one block per processor on a `q × q` grid. Per-superstep maxima:
//! `F = O(n³/p)`, `W = O(n²/√p)`, `S = O(√p)` — the costs the corollary
//! needs on the `b × b` matrices reconstruction is invoked on. Like the
//! paper's usage, pivoting is omitted because the reconstruction matrix
//! `Q₁ − S` is diagonally dominant.

use crate::coll;
use crate::dist::DistMatrix;
use crate::kern;
use ca_bsp::Machine;
use ca_dla::gemm::Trans;
use ca_dla::lu::{Diag, Triangle};
use ca_dla::Matrix;

/// Distributed non-pivoted LU: `A = L·U` with `L` unit lower-triangular.
///
/// `a` must be square on a square 2D grid.
pub fn dist_lu(m: &Machine, a: &DistMatrix) -> (DistMatrix, DistMatrix) {
    let (l, u, _) = dist_lu_impl(m, a, false);
    (l, u)
}

/// Distributed LU with on-the-fly diagonal sign subtraction
/// (Householder reconstruction, Corollary III.7 / \[26\]): factors
/// `A − diag(s) = L·U` with `sᵢ = −sgn(pivotᵢ)`. Returns `(L, U, s)`.
pub fn dist_lu_signed(m: &Machine, a: &DistMatrix) -> (DistMatrix, DistMatrix, Vec<f64>) {
    dist_lu_impl(m, a, true)
}

fn dist_lu_impl(m: &Machine, a: &DistMatrix, signed: bool) -> (DistMatrix, DistMatrix, Vec<f64>) {
    let (n, n2) = a.shape();
    assert_eq!(n, n2, "dist_lu requires a square matrix");
    let grid = a.grid().clone();
    let (q, q2, _) = grid.shape();
    assert_eq!(q, q2, "dist_lu requires a square grid");

    // Working copy of the blocks.
    let mut w: Vec<Matrix> = (0..grid.len()).map(|r| a.local(r).clone()).collect();
    let block_words = |mat: &Matrix| mat.len() as u64;

    let mut signs = Vec::with_capacity(n);
    for k in 0..q {
        let diag_rank = grid.rank(k, k, 0);
        // Local LU of the diagonal block.
        let (lkk, ukk) = if signed {
            m.charge_flops(grid.proc(diag_rank), ca_dla::costs::lu_flops(w[diag_rank].rows()));
            let (l, u, s) = ca_dla::lu::lu_nopivot_signed(&w[diag_rank]);
            signs.extend_from_slice(&s);
            (l, u)
        } else {
            kern::local_lu(m, grid.proc(diag_rank), &w[diag_rank])
        };
        w[diag_rank] = compose_lu(&lkk, &ukk);

        // Broadcast U_kk down grid column k; L_kk along grid row k.
        let col_group = grid.dim0_group(k, 0);
        coll::bcast(m, &col_group, k, block_words(&ukk));
        let row_group = grid.dim1_group(k, 0);
        coll::bcast(m, &row_group, k, block_words(&lkk));

        // Panel solves.
        for i in k + 1..q {
            let r = grid.rank(i, k, 0);
            kern::local_trsm_right(m, grid.proc(r), &ukk, Triangle::Upper, Diag::NonUnit, false, &mut w[r]);
        }
        for j in k + 1..q {
            let r = grid.rank(k, j, 0);
            kern::local_trsm_left(m, grid.proc(r), &lkk, Triangle::Lower, Diag::Unit, false, &mut w[r]);
        }
        m.step(grid.procs(), 1);

        // Trailing update: broadcast panel blocks and GEMM.
        for i in k + 1..q {
            let src = grid.rank(i, k, 0);
            let row_i = grid.dim1_group(i, 0);
            coll::bcast(m, &row_i, k, block_words(&w[src]));
        }
        for j in k + 1..q {
            let src = grid.rank(k, j, 0);
            let col_j = grid.dim0_group(j, 0);
            coll::bcast(m, &col_j, k, block_words(&w[src]));
        }
        for i in k + 1..q {
            for j in k + 1..q {
                let r = grid.rank(i, j, 0);
                let aik = w[grid.rank(i, k, 0)].clone();
                let akj = w[grid.rank(k, j, 0)].clone();
                let mut acc = w[r].clone();
                kern::local_gemm(m, grid.proc(r), -1.0, &aik, Trans::N, &akj, Trans::N, 1.0, &mut acc);
                w[r] = acc;
            }
        }
        m.step(grid.procs(), 1);
    }

    // Split the working blocks into L and U distributed factors.
    let mut l = DistMatrix::zeros(m, &grid, n, n);
    let mut u = DistMatrix::zeros(m, &grid, n, n);
    for r in 0..grid.len() {
        let (i, j, _) = grid.coords(r);
        let blk = &w[r];
        match i.cmp(&j) {
            std::cmp::Ordering::Greater => *l.local_mut(r) = blk.clone(),
            std::cmp::Ordering::Less => *u.local_mut(r) = blk.clone(),
            std::cmp::Ordering::Equal => {
                let (nr, nc) = (blk.rows(), blk.cols());
                let mut lb = Matrix::zeros(nr, nc);
                let mut ub = Matrix::zeros(nr, nc);
                for bi in 0..nr {
                    for bj in 0..nc {
                        if bi > bj {
                            lb.set(bi, bj, blk.get(bi, bj));
                        } else {
                            ub.set(bi, bj, blk.get(bi, bj));
                        }
                    }
                    if bi < nc {
                        lb.set(bi, bi, 1.0);
                    }
                }
                *l.local_mut(r) = lb;
                *u.local_mut(r) = ub;
            }
        }
    }
    if signed {
        // Sign choices live with the diagonal-block owners; share them
        // with the group (n words).
        coll::allgather(m, &grid, n.div_ceil(grid.len()) as u64);
    }
    (l, u, signs)
}

/// Pack `L` (unit diagonal implicit) and `U` into one block, LAPACK
/// style, for the working array.
fn compose_lu(l: &Matrix, u: &Matrix) -> Matrix {
    let n = l.rows();
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            w.set(i, j, if i > j { l.get(i, j) } else { u.get(i, j) });
        }
    }
    w
}

/// Distributed inverse of a triangular matrix on a square 2D grid
/// (block back-substitution).
pub fn dist_tri_inverse(m: &Machine, t: &DistMatrix, tri: Triangle, diag: Diag) -> DistMatrix {
    match tri {
        Triangle::Upper => dist_tri_inverse_upper(m, t, diag),
        Triangle::Lower => {
            // inv(L) = inv(Lᵀ)ᵀ with Lᵀ upper.
            let tt = t.transpose(m);
            let inv_t = dist_tri_inverse_upper(m, &tt, diag);
            inv_t.transpose(m)
        }
    }
}

fn dist_tri_inverse_upper(m: &Machine, t: &DistMatrix, diag: Diag) -> DistMatrix {
    let (n, n2) = t.shape();
    assert_eq!(n, n2);
    let grid = t.grid().clone();
    let (q, q2, _) = grid.shape();
    assert_eq!(q, q2, "dist_tri_inverse requires a square grid");

    let mut x = DistMatrix::zeros(m, &grid, n, n);
    // Local inverses of the diagonal blocks first.
    let mut diag_inv: Vec<Option<Matrix>> = vec![None; q];
    for i in 0..q {
        let r = grid.rank(i, i, 0);
        let tii = t.local(r);
        m.charge_flops(grid.proc(r), (tii.rows() as u64).pow(3) / 3);
        let inv = ca_dla::lu::tri_inverse(tii, Triangle::Upper, diag);
        diag_inv[i] = Some(inv);
    }
    m.step(grid.procs(), 1);

    // Column-block back-substitution, bottom-up over row blocks.
    for i in (0..q).rev() {
        // X_ii = T_ii⁻¹.
        let rii = grid.rank(i, i, 0);
        *x.local_mut(rii) = diag_inv[i].clone().expect("diag inverse");
        // Broadcast T_ii⁻¹ along grid row i for the off-diagonal solves.
        let row_i = grid.dim1_group(i, 0);
        coll::bcast(m, &row_i, i, x.local(rii).len() as u64);

        for j in i + 1..q {
            // S = Σ_{k>i} T_ik · X_kj, partials computed at (i,k),
            // reduced at (i,j).
            let rij = grid.rank(i, j, 0);
            let (ri0, cj0, nri, ncj) = x.owned_range(rij);
            let _ = (ri0, cj0);
            let mut s = Matrix::zeros(nri, ncj);
            for k in i + 1..q {
                let rkj = grid.rank(k, j, 0);
                let rik = grid.rank(i, k, 0);
                // Ship X_kj to (i,k), multiply, ship partial to (i,j).
                coll::p2p(m, grid.proc(rkj), grid.proc(rik), x.local(rkj).len() as u64);
                let partial = kern::local_matmul(m, grid.proc(rik), t.local(rik), Trans::N, x.local(rkj), Trans::N);
                coll::p2p(m, grid.proc(rik), grid.proc(rij), partial.len() as u64);
                s.axpy(1.0, &partial);
                m.charge_flops(grid.proc(rij), partial.len() as u64);
            }
            // X_ij = −T_ii⁻¹ · S at (i,j).
            let tii_inv = diag_inv[i].as_ref().expect("diag inverse");
            let mut xij = kern::local_matmul(m, grid.proc(rij), tii_inv, Trans::N, &s, Trans::N);
            xij.scale(-1.0);
            *x.local_mut(rij) = xij;
        }
        m.step(grid.procs(), 1);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn diag_dominant(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = gen::random_matrix(&mut rng, n, n);
        for i in 0..n {
            a.set(i, i, n as f64 + a.get(i, i));
        }
        a
    }

    #[test]
    fn dist_lu_matches_product() {
        for (n, q) in [(12usize, 2usize), (16, 4), (9, 3)] {
            let p = q * q;
            let m = machine(p);
            let g = Grid::new_2d((0..p).collect(), q, q);
            let a = diag_dominant(n, 100 + n as u64);
            let da = DistMatrix::from_dense(&m, &g, &a);
            let (l, u) = dist_lu(&m, &da);
            let ld = l.assemble_unchecked();
            let ud = u.assemble_unchecked();
            let prod = matmul(&ld, Trans::N, &ud, Trans::N);
            assert!(prod.max_diff(&a) < 1e-9, "n={n} q={q}: LU ≠ A ({})", prod.max_diff(&a));
            // Structure checks.
            for i in 0..n {
                assert!((ld.get(i, i) - 1.0).abs() < 1e-12);
                for j in i + 1..n {
                    assert_eq!(ld.get(i, j), 0.0);
                    assert_eq!(ud.get(j, i), 0.0);
                }
            }
        }
    }

    #[test]
    fn dist_lu_agrees_with_sequential() {
        let n = 8;
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let a = diag_dominant(n, 104);
        let da = DistMatrix::from_dense(&m, &g, &a);
        let (l, u) = dist_lu(&m, &da);
        let (ls, us) = ca_dla::lu::lu_nopivot(&a);
        assert!(l.assemble_unchecked().max_diff(&ls) < 1e-9);
        assert!(u.assemble_unchecked().max_diff(&us) < 1e-9);
    }

    #[test]
    fn tri_inverse_upper() {
        let n = 12;
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let (_, u) = ca_dla::lu::lu_nopivot(&diag_dominant(n, 105));
        let du = DistMatrix::from_dense(&m, &g, &u);
        let inv = dist_tri_inverse(&m, &du, Triangle::Upper, Diag::NonUnit);
        let prod = matmul(&u, Trans::N, &inv.assemble_unchecked(), Trans::N);
        assert!(prod.max_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn tri_inverse_lower_unit() {
        let n = 10;
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let (l, _) = ca_dla::lu::lu_nopivot(&diag_dominant(n, 106));
        let dl = DistMatrix::from_dense(&m, &g, &l);
        let inv = dist_tri_inverse(&m, &dl, Triangle::Lower, Diag::Unit);
        let prod = matmul(&l, Trans::N, &inv.assemble_unchecked(), Trans::N);
        assert!(prod.max_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn lu_flops_are_distributed() {
        let n = 32;
        let m = machine(16);
        let g = Grid::new_2d((0..16).collect(), 4, 4);
        let a = diag_dominant(n, 107);
        let da = DistMatrix::from_dense(&m, &g, &a);
        let _ = dist_lu(&m, &da);
        m.fence();
        let total: u64 = m.flops_per_proc().iter().sum();
        let maxp = *m.flops_per_proc().iter().max().unwrap();
        // No single processor does more than ~a third of the work.
        assert!((maxp as f64) < 0.4 * total as f64, "max {maxp} of {total}");
    }
}
