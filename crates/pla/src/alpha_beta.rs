//! α–β-model collectives: tree-based realizations with pairwise
//! synchronization.
//!
//! §II of the paper: "Sometimes, we will employ algorithms as building
//! blocks whose cost has been analyzed in the standard α−β model, which
//! is restricted to point-to-point messaging (pairwise synchronization).
//! These algorithms are trivially translated to the BSP model used in
//! this paper, which is less restrictive (allows bulk synchronizations)."
//!
//! This module makes the translation concrete: binomial-tree broadcast
//! and reduction charge `⌈log₂ g⌉` supersteps of pairwise exchanges
//! (each a distinct BSP superstep for the participating pair-wave),
//! versus the two-superstep bulk realizations in [`crate::coll`]. The
//! words moved are identical in the α–β tree only for small payloads;
//! for large ones the bulk two-phase forms dominate — which is exactly
//! why the paper's BSP accounting prefers them. The comparison test at
//! the bottom documents both regimes.

use crate::grid::Grid;
use ca_bsp::Machine;

/// Binomial-tree broadcast of `words` from rank 0: `⌈log₂ g⌉` rounds of
/// pairwise sends; every round is one superstep for the group.
pub fn tree_bcast(m: &Machine, group: &Grid, words: u64) {
    let g = group.len();
    if g <= 1 || words == 0 {
        return;
    }
    let mut have = 1usize; // ranks [0, have) hold the payload
    while have < g {
        let senders = have.min(g - have);
        for s in 0..senders {
            let from = group.proc(s);
            let to = group.proc(have + s);
            m.charge_transfer(from, to, words);
        }
        m.step(group.procs(), 1);
        have *= 2;
    }
}

/// Binomial-tree reduction of `words` onto rank 0 (element-wise sum):
/// `⌈log₂ g⌉` rounds; each merge costs `words` flops at the receiver.
pub fn tree_reduce(m: &Machine, group: &Grid, words: u64) {
    let g = group.len();
    if g <= 1 || words == 0 {
        return;
    }
    let mut stride = 1usize;
    while stride < g {
        for owner in (0..g).step_by(2 * stride) {
            let partner = owner + stride;
            if partner >= g {
                continue;
            }
            m.charge_transfer(group.proc(partner), group.proc(owner), words);
            m.charge_flops(group.proc(owner), words);
        }
        m.step(group.procs(), 1);
        stride *= 2;
    }
}

/// Recursive-doubling all-gather: `⌈log₂ g⌉` rounds with doubling
/// payloads (`words_each`, then 2·, 4·, …) — total `O(g·words_each)`
/// per processor like the bulk form, but `log g` supersteps instead
/// of one.
pub fn tree_allgather(m: &Machine, group: &Grid, words_each: u64) {
    let g = group.len();
    if g <= 1 || words_each == 0 {
        return;
    }
    let mut chunk = words_each;
    let mut stride = 1usize;
    while stride < g {
        for r in 0..g {
            let partner = r ^ stride;
            if partner < g && partner > r {
                m.charge_transfer(group.proc(r), group.proc(partner), chunk);
                m.charge_transfer(group.proc(partner), group.proc(r), chunk);
            }
        }
        m.step(group.procs(), 1);
        chunk *= 2;
        stride *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll;
    use ca_bsp::MachineParams;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn tree_bcast_reaches_everyone_in_log_rounds() {
        for g in [2usize, 5, 8, 16] {
            let m = machine(g);
            tree_bcast(&m, &Grid::all(g), 100);
            let s = m.report().supersteps;
            let expect = (g as f64).log2().ceil() as u64;
            assert_eq!(s, expect, "g={g}");
            // Every non-root received exactly once.
            let per = m.comm_per_proc();
            assert!(per.iter().skip(1).all(|&w| w >= 100), "{per:?}");
        }
    }

    #[test]
    fn bsp_bulk_vs_alpha_beta_tree_tradeoff() {
        // §II's point, measured: for large payloads the bulk two-phase
        // broadcast moves ~3·w per processor in 2 supersteps, while the
        // α–β tree costs the root w·log g... no — each proc ≤ w·(rounds
        // it sends in), but the *max* per-proc traffic is w per round it
        // participates, total w·log g at the root. Bulk wins on W for
        // g > 8-ish; tree wins on supersteps only vs naive flat sends.
        let g = 16;
        let w = 1 << 16;

        let m_bulk = machine(g);
        coll::bcast(&m_bulk, &Grid::all(g), 0, w);
        let bulk = m_bulk.report();

        let m_tree = machine(g);
        tree_bcast(&m_tree, &Grid::all(g), w);
        let tree = m_tree.report();

        // Bulk: 2 supersteps; tree: log₂ 16 = 4.
        assert!(bulk.supersteps < tree.supersteps);
        // Bulk per-proc W is O(w); the tree's root sends w·log g.
        assert!(
            bulk.horizontal_words < tree.horizontal_words,
            "bulk {} vs tree {}",
            bulk.horizontal_words,
            tree.horizontal_words
        );
    }

    #[test]
    fn tree_reduce_counts_merge_flops() {
        let m = machine(8);
        tree_reduce(&m, &Grid::all(8), 64);
        // 7 merges of 64 additions happen across the tree.
        assert_eq!(m.report().total_flops, 7 * 64);
        assert_eq!(m.report().supersteps, 3);
    }

    #[test]
    fn tree_allgather_total_volume_matches_bulk() {
        let g = 8;
        let we = 50;
        let m_tree = machine(g);
        tree_allgather(&m_tree, &Grid::all(g), we);
        let m_bulk = machine(g);
        coll::allgather(&m_bulk, &Grid::all(g), we);
        let vt = m_tree.report().total_volume_words;
        let vb = m_bulk.report().total_volume_words;
        // Same asymptotic volume (g·(g−1)·we-ish), within 2×.
        assert!(vt as f64 / vb as f64 > 0.4 && (vt as f64 / vb as f64) < 2.5,
            "tree {vt} vs bulk {vb}");
    }
}
