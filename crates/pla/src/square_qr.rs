//! Square QR (Lemma III.5): QR factorization of (nearly) square
//! matrices on a processor group.
//!
//! The paper realizes this lemma with Tiskin's pairwise-elimination QR
//! \[6\]. We realize the same interface through the column-recursive
//! rect-QR of [`crate::rect_qr`] (see DESIGN.md §2/§8 for the recorded
//! substitution): for a square `n × n` input the column recursion with
//! Lemma III.2 multiplies yields `W = O(n²/pᵟ)`-shaped communication,
//! `F = O(n³/p)` and `S = O(pᵟ·polylog)` — the cost point Lemma III.5
//! supplies to Algorithm III.2's base cases.

use crate::dist::DistMatrix;
use crate::rect_qr::{rect_qr_with_base, PanelQr};
use ca_bsp::Machine;

/// QR of a (nearly) square matrix `a` (`n ≤ m ≤ 2n`) on its 1D group.
pub fn square_qr(machine: &Machine, a: &DistMatrix) -> PanelQr {
    let (m, n) = a.shape();
    assert!(m >= n && m <= 2 * n, "square_qr expects n ≤ m ≤ 2n, got {m}×{n}");
    rect_qr_with_base(machine, a, crate::rect_qr::BASE_COLS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use ca_bsp::{Machine, MachineParams};
    use ca_dla::gemm::{matmul, Trans};
    use ca_dla::gen;
    use ca_dla::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn square_qr_factorizes() {
        let g = 4;
        let m = Machine::new(MachineParams::new(g));
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(150);
        let a = gen::random_matrix(&mut rng, 40, 32);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let f = square_qr(&m, &da);
        let u = f.u.assemble_unchecked();
        let mut stack = Matrix::zeros(40, 32);
        stack.set_block(0, 0, &f.r);
        let ut = matmul(&u, Trans::T, &stack, Trans::N);
        let tut = matmul(&f.t, Trans::N, &ut, Trans::N);
        let corr = matmul(&u, Trans::N, &tut, Trans::N);
        stack.axpy(-1.0, &corr);
        assert!(stack.max_diff(&a) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "expects n ≤ m ≤ 2n")]
    fn rejects_very_tall_inputs() {
        let m = Machine::new(MachineParams::new(2));
        let grid = Grid::new_2d(vec![0, 1], 2, 1);
        let a = Matrix::zeros(100, 10);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let _ = square_qr(&m, &da);
    }
}
