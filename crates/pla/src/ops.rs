//! Panel-shaped multiply helpers: the cheap communication patterns for
//! products of a row-spread panel with a small resident matrix.
//!
//! The paper's trailing-update chains (Algorithm IV.1 line 9,
//! Algorithm IV.2 lines 19–20, "done right to left") multiply tall
//! panels by tiny `T`-sized squares. Routing those through the full
//! recursive multiply would re-spread operands at every level; the
//! natural realizations are
//!
//! * [`rmul_small`] — `A·B` with `A` row-spread and `B` small: broadcast
//!   `B` (`O(|B|)` words per processor), multiply row slices locally;
//!   falls back to [`crate::carma`] when `B` is too large for the
//!   broadcast to win.
//! * [`tmul_reduce`] — `Aᵀ·B` with both operands row-spread over the
//!   same group: local partial products plus an all-reduce of the small
//!   output.

use crate::carma::carma;
use crate::coll;
use crate::grid::Grid;
use ca_bsp::Machine;
use ca_dla::gemm::{matmul, Trans};
use ca_dla::Matrix;

/// `A·B` where `A` (`m×k`) is row-spread over `group` and `B` (`k×n`)
/// is small. Chooses between the broadcast-and-multiply pattern and the
/// recursive multiply by comparing their per-processor traffic.
pub fn rmul_small(m: &Machine, group: &Grid, v_mem: usize, a: &Matrix, b: &Matrix) -> Matrix {
    let g = group.len() as u64;
    let bcast_words = b.len() as u64;
    let spread_words = 2 * (a.len() as u64 + a.rows() as u64 * b.cols() as u64) / g.max(1);
    if g <= 1 || bcast_words <= spread_words {
        coll::bcast(m, group, 0, bcast_words);
        for &pid in group.procs() {
            m.charge_flops(
                pid,
                ca_dla::costs::gemm_flops(a.rows(), a.cols(), b.cols()) / g,
            );
            m.charge_vert(
                pid,
                (a.len() as u64 + bcast_words + (a.rows() * b.cols()) as u64) / g + bcast_words,
            );
        }
        matmul(a, Trans::N, b, Trans::N)
    } else {
        carma(m, group, a, b, v_mem)
    }
}

/// `Aᵀ·B` where `A` (`m×k₁`) and `B` (`m×k₂`) are row-spread over the
/// same group: each processor multiplies its row slices and the
/// `k₁×k₂` partials are all-reduced.
pub fn tmul_reduce(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "tmul_reduce: row counts disagree");
    let g = group.len() as u64;
    let out_words = (a.cols() * b.cols()) as u64;
    for &pid in group.procs() {
        m.charge_flops(
            pid,
            ca_dla::costs::gemm_flops(a.cols(), a.rows(), b.cols()) / g.max(1),
        );
        m.charge_vert(pid, (a.len() + b.len()) as u64 / g.max(1) + out_words);
    }
    coll::allreduce(m, group, out_words);
    matmul(a, Trans::T, b, Trans::N)
}

/// Multiply with *resident* operands: both inputs already live evenly
/// spread on `group` (e.g. inside a bulge chase, where the window gather
/// paid for residency — Lemma IV.3's "each processor subset can obtain
/// the submatrix … with O(b²/p̂) horizontal communication"). Charges the
/// Lemma III.2 cost *without* the operand-movement term:
/// `W = O(v^{1/3}·(mnk/g)^{2/3} + output/g)` per processor, plus the
/// usual flops and vertical traffic.
pub fn resident_mm(
    m: &Machine,
    group: &Grid,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    v: usize,
) -> Matrix {
    let (mm, kk) = match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    };
    let nn = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    let g = group.len() as u64;
    let mnk = (mm * kk * nn) as u64;
    let reduce_term = ((v.max(1) as f64).cbrt() * ((mnk / g.max(1)) as f64).powf(2.0 / 3.0)) as u64;
    let out_words = (mm * nn) as u64;
    for &pid in group.procs() {
        m.charge_flops(pid, 2 * mnk / g.max(1));
        // Only the inner-dimension reduction crosses processors:
        // operands are resident and outputs land distributed where they
        // are produced (owner-computes).
        m.charge_comm(pid, reduce_term);
        m.charge_vert(
            pid,
            (a.len() as u64 + b.len() as u64 + out_words) / g.max(1),
        );
    }
    m.step(group.procs(), 2);
    matmul(a, ta, b, tb)
}

/// A small product computed redundantly (or on rank 0 and broadcast):
/// for `T`-sized square chains where everything fits on one processor.
pub fn small_product(
    m: &Machine,
    group: &Grid,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
) -> Matrix {
    let rows = match ta {
        Trans::N => a.rows(),
        Trans::T => a.cols(),
    };
    let inner = match ta {
        Trans::N => a.cols(),
        Trans::T => a.rows(),
    };
    let cols = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    m.charge_flops(group.proc(0), ca_dla::costs::gemm_flops(rows, inner, cols));
    m.charge_vert(group.proc(0), (a.len() + b.len() + rows * cols) as u64);
    coll::bcast(m, group, 0, (rows * cols) as u64);
    matmul(a, ta, b, tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn rmul_small_matches_sequential() {
        let m = machine(4);
        let g = Grid::all(4);
        let mut rng = StdRng::seed_from_u64(250);
        let a = gen::random_matrix(&mut rng, 24, 6);
        let b = gen::random_matrix(&mut rng, 6, 6);
        let c = rmul_small(&m, &g, 1, &a, &b);
        assert!(c.max_diff(&matmul(&a, Trans::N, &b, Trans::N)) < 1e-12);
    }

    #[test]
    fn rmul_small_broadcast_path_is_cheap() {
        let m = machine(8);
        let g = Grid::all(8);
        let a = Matrix::zeros(512, 4);
        let b = Matrix::zeros(4, 4);
        let snap = m.snapshot();
        let _ = rmul_small(&m, &g, 1, &a, &b);
        m.fence();
        let w = m.costs_since(&snap).horizontal_words;
        // Should be ~|B| per processor (broadcast), far below |A|/g.
        assert!(w < 100, "rmul_small W = {w}");
    }

    #[test]
    fn tmul_reduce_matches_sequential() {
        let m = machine(4);
        let g = Grid::all(4);
        let mut rng = StdRng::seed_from_u64(251);
        let a = gen::random_matrix(&mut rng, 30, 5);
        let b = gen::random_matrix(&mut rng, 30, 3);
        let c = tmul_reduce(&m, &g, &a, &b);
        assert!(c.max_diff(&matmul(&a, Trans::T, &b, Trans::N)) < 1e-12);
        assert_eq!(c.rows(), 5);
        assert_eq!(c.cols(), 3);
    }

    #[test]
    fn small_product_charges_one_processor() {
        let m = machine(4);
        let g = Grid::all(4);
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        let _ = small_product(&m, &g, &a, Trans::T, &b, Trans::N);
        let f = m.flops_per_proc();
        assert!(f[0] > 0);
        assert_eq!(f[1] + f[2] + f[3], 0);
    }
}
