//! Processor grids and groups.
//!
//! The paper's algorithms run on 1D groups, 2D `q×q` grids, and 3D
//! `q×q×c` grids (`c` replication layers, Algorithm III.1 /
//! Algorithm IV.1). A [`Grid`] is an ordered list of virtual processor
//! ids with a logical 3D shape; 1D and 2D grids set the trailing
//! dimensions to one. Subgroup extraction (rows, columns, layers,
//! fibers, contiguous splits) returns plain processor lists used by the
//! collectives in [`crate::coll`].

use ca_bsp::ProcId;

/// An ordered set of processors with a logical `d0 × d1 × d2` shape.
///
/// Rank `r` has coordinates `(i, j, l)` with
/// `r = (l·d1 + j)·d0 + i` — i.e. `i` (the first/row dimension) varies
/// fastest, layers slowest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    shape: (usize, usize, usize),
    procs: Vec<ProcId>,
}

impl Grid {
    /// 1D group over the given processors.
    pub fn new_1d(procs: Vec<ProcId>) -> Self {
        let n = procs.len();
        Self::new(procs, (n, 1, 1))
    }

    /// 2D `pr × pc` grid (row-major over the processor list as described
    /// above).
    pub fn new_2d(procs: Vec<ProcId>, pr: usize, pc: usize) -> Self {
        Self::new(procs, (pr, pc, 1))
    }

    /// 3D `q0 × q1 × c` grid.
    pub fn new_3d(procs: Vec<ProcId>, q0: usize, q1: usize, c: usize) -> Self {
        Self::new(procs, (q0, q1, c))
    }

    fn new(procs: Vec<ProcId>, shape: (usize, usize, usize)) -> Self {
        assert_eq!(
            procs.len(),
            shape.0 * shape.1 * shape.2,
            "processor count must match the grid shape"
        );
        assert!(!procs.is_empty(), "grid must be nonempty");
        Self { shape, procs }
    }

    /// The whole machine `0..p` as a 1D group.
    pub fn all(p: usize) -> Self {
        Self::new_1d((0..p).collect())
    }

    /// Grid shape `(d0, d1, d2)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Number of processors in the grid.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if the grid is empty (never constructible; for clippy).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The processor list in rank order.
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Processor at rank `r`.
    pub fn proc(&self, r: usize) -> ProcId {
        self.procs[r]
    }

    /// Rank of grid coordinates `(i, j, l)`.
    pub fn rank(&self, i: usize, j: usize, l: usize) -> usize {
        let (d0, d1, d2) = self.shape;
        assert!(i < d0 && j < d1 && l < d2, "grid coordinates out of range");
        (l * d1 + j) * d0 + i
    }

    /// Processor at grid coordinates `(i, j, l)`.
    pub fn at(&self, i: usize, j: usize, l: usize) -> ProcId {
        self.procs[self.rank(i, j, l)]
    }

    /// Coordinates of rank `r`.
    pub fn coords(&self, r: usize) -> (usize, usize, usize) {
        let (d0, d1, _) = self.shape;
        (r % d0, (r / d0) % d1, r / (d0 * d1))
    }

    /// Row group: fixed `(j, l)`, varying `i` (a 1D grid).
    pub fn dim0_group(&self, j: usize, l: usize) -> Grid {
        let d0 = self.shape.0;
        Grid::new_1d((0..d0).map(|i| self.at(i, j, l)).collect())
    }

    /// Column group: fixed `(i, l)`, varying `j`.
    pub fn dim1_group(&self, i: usize, l: usize) -> Grid {
        let d1 = self.shape.1;
        Grid::new_1d((0..d1).map(|j| self.at(i, j, l)).collect())
    }

    /// Fiber group: fixed `(i, j)`, varying `l` (across replication
    /// layers).
    pub fn fiber_group(&self, i: usize, j: usize) -> Grid {
        let d2 = self.shape.2;
        Grid::new_1d((0..d2).map(|l| self.at(i, j, l)).collect())
    }

    /// Layer `l` as a 2D `d0 × d1` grid.
    pub fn layer(&self, l: usize) -> Grid {
        let (d0, d1, _) = self.shape;
        let procs = (0..d0 * d1).map(|r| self.procs[l * d0 * d1 + r]).collect();
        Grid::new_2d(procs, d0, d1)
    }

    /// First `k` processors (in rank order) as a 1D group.
    pub fn prefix(&self, k: usize) -> Grid {
        assert!(k >= 1 && k <= self.len());
        Grid::new_1d(self.procs[..k].to_vec())
    }

    /// Split into `parts` contiguous 1D groups of equal size.
    pub fn split(&self, parts: usize) -> Vec<Grid> {
        assert!(parts >= 1 && self.len().is_multiple_of(parts), "split must be even");
        let each = self.len() / parts;
        (0..parts)
            .map(|s| Grid::new_1d(self.procs[s * each..(s + 1) * each].to_vec()))
            .collect()
    }

    /// Reshape the same processors into a `pr × pc` 2D grid.
    pub fn as_2d(&self, pr: usize, pc: usize) -> Grid {
        Grid::new_2d(self.procs.clone(), pr, pc)
    }

    /// Reshape into the most square 2D factorization `pr × pc` with
    /// `pr ≤ pc` (used by base-case square QR / LU on arbitrary groups).
    pub fn squarest_2d(&self) -> Grid {
        let p = self.len();
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        self.as_2d(pr.max(1), p / pr.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = Grid::new_3d((0..24).collect(), 2, 3, 4);
        for r in 0..24 {
            let (i, j, l) = g.coords(r);
            assert_eq!(g.rank(i, j, l), r);
        }
    }

    #[test]
    fn groups_partition_the_grid() {
        let g = Grid::new_3d((0..12).collect(), 2, 3, 2);
        let mut seen = [false; 12];
        for l in 0..2 {
            for j in 0..3 {
                for p in g.dim0_group(j, l).procs() {
                    assert!(!seen[*p]);
                    seen[*p] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn layer_extracts_2d() {
        let g = Grid::new_3d((0..18).collect(), 3, 3, 2);
        let l1 = g.layer(1);
        assert_eq!(l1.shape(), (3, 3, 1));
        assert_eq!(l1.at(0, 0, 0), 9);
        assert_eq!(l1.at(2, 2, 0), 17);
    }

    #[test]
    fn fiber_crosses_layers() {
        let g = Grid::new_3d((0..8).collect(), 2, 2, 2);
        let f = g.fiber_group(1, 1);
        assert_eq!(f.procs(), &[3, 7]);
    }

    #[test]
    fn split_is_contiguous() {
        let g = Grid::all(8);
        let parts = g.split(4);
        assert_eq!(parts[2].procs(), &[4, 5]);
    }

    #[test]
    fn squarest_2d_factorizations() {
        assert_eq!(Grid::all(12).squarest_2d().shape(), (3, 4, 1));
        assert_eq!(Grid::all(16).squarest_2d().shape(), (4, 4, 1));
        assert_eq!(Grid::all(7).squarest_2d().shape(), (1, 7, 1));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn shape_mismatch_panics() {
        let _ = Grid::new_2d(vec![0, 1, 2], 2, 2);
    }
}
