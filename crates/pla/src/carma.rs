//! Recursive communication-optimal rectangular matrix multiplication
//! (Lemma III.2; Demmel et al.'s CARMA \[24\]).
//!
//! BFS recursion: split the largest of the three dimensions in half,
//! assign half the processor group to each part, and recurse; `m`/`n`
//! splits replicate the other operand down into both halves (charged),
//! `k` splits combine the two partial products with a summed reduction
//! (charged). The base case (one processor) is a charged local GEMM.
//!
//! The memory parameter `v` of Lemma III.2 serializes the multiply into
//! `v` inner-dimension chunks, trading `α·v log p` synchronization for a
//! `(mnk/(vp))^{2/3}` replication footprint — exactly how Algorithm IV.1
//! invokes it (`v = p^{2−3δ}`).
//!
//! Operands enter evenly spread over the group (`words/g` per processor)
//! and the output leaves evenly spread — the paper's "any load balanced
//! starting layout" precondition.

use crate::grid::Grid;
use crate::kern;
use ca_bsp::Machine;
use ca_dla::gemm::Trans;
use ca_dla::Matrix;

/// `C = A·B` on `group` with memory parameter `v ≥ 1` (Lemma III.2),
/// from an *arbitrary* load-balanced layout: pays the one-time
/// `O((mn + nk + mk)/p)`-per-processor redistribution into CARMA's
/// recursive layout (the entry charge of Lemma III.2's proof) before
/// the recursion.
/// ```
/// use ca_bsp::{Machine, MachineParams};
/// use ca_pla::{carma::carma, Grid};
/// use ca_dla::Matrix;
///
/// let m = Machine::new(MachineParams::new(4));
/// let a = Matrix::identity(8);
/// let b = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
/// let c = carma(&m, &Grid::all(4), &a, &b, 1);
/// assert!(c.max_diff(&b) < 1e-15);
/// assert!(m.report().horizontal_words > 0); // the multiply was charged
/// ```
pub fn carma(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix, v: usize) -> Matrix {
    let (mm, kk) = (a.rows(), a.cols());
    let nn = b.cols();
    let entry = ((mm * kk + kk * nn + mm * nn) as u64).div_ceil(group.len() as u64);
    for &pid in group.procs() {
        m.charge_comm(pid, entry);
    }
    m.step(group.procs(), 1);
    carma_spread(m, group, a, b, v)
}

/// [`carma`] for operands already in the recursive layout (produced by
/// an enclosing recursion or an earlier charged redistribution): skips
/// the entry charge, keeping only the internal replication/reduction
/// traffic.
pub fn carma_spread(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix, v: usize) -> Matrix {
    let (mm, kk) = (a.rows(), a.cols());
    let (kk2, nn) = (b.rows(), b.cols());
    assert_eq!(kk, kk2, "carma: inner dimensions disagree");
    let v = v.max(1).min(kk.max(1));
    if v == 1 || kk < 2 * v {
        return carma_rec(m, group, a, b);
    }
    // Serialize into v inner-dimension chunks (streaming): each chunk is
    // a full recursive multiply; partial products accumulate in place.
    let mut c = Matrix::zeros(mm, nn);
    let bounds: Vec<usize> = (0..=v).map(|i| i * kk / v).collect();
    let g = group.len() as u64;
    for w in bounds.windows(2) {
        if w[1] == w[0] {
            continue;
        }
        let ac = a.block(0, w[0], mm, w[1] - w[0]);
        let bc = b.block(w[0], 0, w[1] - w[0], nn);
        let part = carma_rec(m, group, &ac, &bc);
        c.axpy(1.0, &part);
        for &pid in group.procs() {
            m.charge_flops(pid, (mm * nn) as u64 / g);
        }
    }
    c
}

fn carma_rec(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix) -> Matrix {
    let g = group.len();
    if g == 1 {
        return kern::local_matmul(m, group.proc(0), a, Trans::N, b, Trans::N);
    }
    let (mm, kk) = (a.rows(), a.cols());
    let nn = b.cols();
    let g1 = g / 2;
    let halves = (group.prefix(g1), Grid::new_1d(group.procs()[g1..].to_vec()));
    let gw = g as u64;

    if mm >= kk && mm >= nn && mm >= 2 {
        // Split rows of A (and C); B is replicated into both halves.
        let cut = mm * g1 / g;
        let a1 = a.block(0, 0, cut, kk);
        let a2 = a.block(cut, 0, mm - cut, kk);
        for &pid in group.procs() {
            // Each processor's share of B doubles (A rows stay in place
            // in the recursive layout).
            m.charge_comm(pid, 2 * (kk * nn) as u64 / gw);
            m.alloc(pid, (kk * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        let c1 = carma_rec(m, &halves.0, &a1, b);
        let c2 = carma_rec(m, &halves.1, &a2, b);
        for &pid in group.procs() {
            m.free(pid, (kk * nn) as u64 / gw);
        }
        Matrix::vstack(&[&c1, &c2])
    } else if nn >= kk && nn >= 2 {
        // Split columns of B (and C); A is replicated into both halves.
        let cut = nn * g1 / g;
        let b1 = b.block(0, 0, kk, cut);
        let b2 = b.block(0, cut, kk, nn - cut);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * kk) as u64 / gw);
            m.alloc(pid, (mm * kk) as u64 / gw);
        }
        m.step(group.procs(), 1);
        let c1 = carma_rec(m, &halves.0, a, &b1);
        let c2 = carma_rec(m, &halves.1, a, &b2);
        for &pid in group.procs() {
            m.free(pid, (mm * kk) as u64 / gw);
        }
        let mut c = Matrix::zeros(mm, nn);
        c.set_block(0, 0, &c1);
        c.set_block(0, cut, &c2);
        c
    } else if kk >= 2 {
        // Split the inner dimension: both halves compute a partial C,
        // combined with a summed reduction over the full group.
        let cut = kk * g1 / g;
        let a1 = a.block(0, 0, mm, cut);
        let a2 = a.block(0, cut, mm, kk - cut);
        let b1 = b.block(0, 0, cut, nn);
        let b2 = b.block(cut, 0, kk - cut, nn);
        let c1 = carma_rec(m, &halves.0, &a1, &b1);
        let mut c2 = carma_rec(m, &halves.1, &a2, &b2);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * nn) as u64 / gw);
            m.charge_flops(pid, (mm * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        c2.axpy(1.0, &c1);
        c2
    } else {
        // Degenerate tiny dimensions: compute on rank 0.
        kern::local_matmul(m, group.proc(0), a, Trans::N, b, Trans::N)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check(mm: usize, kk: usize, nn: usize, g: usize, v: usize, seed: u64) {
        let m = machine(g);
        let grid = Grid::all(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mm, kk);
        let b = gen::random_matrix(&mut rng, kk, nn);
        let c = carma(&m, &grid, &a, &b, v);
        let want = matmul(&a, Trans::N, &b, Trans::N);
        assert!(
            c.max_diff(&want) < 1e-10 * (kk as f64),
            "m={mm} k={kk} n={nn} g={g} v={v}: wrong product"
        );
    }

    #[test]
    fn square_on_various_groups() {
        check(16, 16, 16, 1, 1, 110);
        check(16, 16, 16, 4, 1, 111);
        check(16, 16, 16, 8, 1, 112);
        check(17, 13, 19, 6, 1, 113);
    }

    #[test]
    fn tall_wide_and_inner_shapes() {
        check(64, 8, 8, 4, 1, 114); // m-dominant (1D regime)
        check(8, 8, 64, 4, 1, 115); // n-dominant
        check(8, 64, 8, 4, 1, 116); // k-dominant (reduction path)
    }

    #[test]
    fn v_parameter_preserves_product() {
        check(24, 32, 16, 4, 4, 117);
        check(12, 40, 12, 8, 5, 118);
    }

    #[test]
    fn one_d_regime_moves_small_operands_only() {
        // m ≫ n = k with few processors: per-proc W should be O(nk),
        // not O(mn/p) — the 1D case of Lemma III.2.
        let (mm, nk) = (512usize, 8usize);
        let g = 4;
        let m = machine(g);
        let a = Matrix::zeros(mm, nk);
        let b = Matrix::zeros(nk, nk);
        let snap = m.snapshot();
        let _ = carma(&m, &Grid::all(g), &a, &b, 1);
        m.fence();
        let w = m.costs_since(&snap).horizontal_words;
        // Lemma III.2's bound for this shape: O((mn + nk + mk)/p) —
        // crucially NOT O(m·k) (the tall operand is never replicated).
        let bound = 2 * (mm * nk + nk * nk + mm * nk) / g;
        assert!(w < bound as u64, "1D regime W={w} exceeds bound {bound}");
        // And below moving the tall operand wholesale (the per-processor
        // charge is the one-time O((mn+nk+mk)/p) entry redistribution
        // plus O(nk·log g) of B-replication — never O(m·k)).
        assert!(w < (mm * nk) as u64, "tall operand was replicated");
    }

    #[test]
    fn k_split_reduction_charges_flops() {
        let g = 2;
        let m = machine(g);
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        // k is largest when m = n < k: use a 2×8 · 8×2 product.
        let a2 = Matrix::zeros(2, 8);
        let b2 = Matrix::zeros(8, 2);
        let _ = carma(&m, &Grid::all(g), &a2, &b2, 1);
        let _ = (a, b);
        m.fence();
        // Reduction adds mn/g flops per proc on top of local gemms.
        assert!(m.report().flops > 0);
    }

    #[test]
    fn more_processors_reduce_or_hold_per_proc_volume() {
        let n = 32;
        let mut vols = Vec::new();
        for g in [2usize, 8] {
            let m = machine(g);
            let a = Matrix::zeros(n, n);
            let b = Matrix::zeros(n, n);
            let snap = m.snapshot();
            let _ = carma(&m, &Grid::all(g), &a, &b, 1);
            m.fence();
            vols.push(m.costs_since(&snap).horizontal_words);
        }
        assert!(vols[1] <= 2 * vols[0], "W grew too fast with p: {vols:?}");
    }
}
