//! Recursive communication-optimal rectangular matrix multiplication
//! (Lemma III.2; Demmel et al.'s CARMA \[24\]).
//!
//! BFS recursion: split the largest of the three dimensions in half,
//! assign half the processor group to each part, and recurse; `m`/`n`
//! splits replicate the other operand down into both halves (charged),
//! `k` splits combine the two partial products with a summed reduction
//! (charged). The base case (one processor) is a charged local GEMM.
//!
//! The memory parameter `v` of Lemma III.2 serializes the multiply into
//! `v` inner-dimension chunks, trading `α·v log p` synchronization for a
//! `(mnk/(vp))^{2/3}` replication footprint — exactly how Algorithm IV.1
//! invokes it (`v = p^{2−3δ}`).
//!
//! Operands enter evenly spread over the group (`words/g` per processor)
//! and the output leaves evenly spread — the paper's "any load balanced
//! starting layout" precondition.

use crate::grid::Grid;
use crate::kern;
use ca_bsp::Machine;
use ca_dla::gemm::Trans;
use ca_dla::view::{MatrixView, MatrixViewMut};
use ca_dla::Matrix;

/// `C = A·B` on `group` with memory parameter `v ≥ 1` (Lemma III.2),
/// from an *arbitrary* load-balanced layout: pays the one-time
/// `O((mn + nk + mk)/p)`-per-processor redistribution into CARMA's
/// recursive layout (the entry charge of Lemma III.2's proof) before
/// the recursion.
/// ```
/// use ca_bsp::{Machine, MachineParams};
/// use ca_pla::{carma::carma, Grid};
/// use ca_dla::Matrix;
///
/// let m = Machine::new(MachineParams::new(4));
/// let a = Matrix::identity(8);
/// let b = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
/// let c = carma(&m, &Grid::all(4), &a, &b, 1);
/// assert!(c.max_diff(&b) < 1e-15);
/// assert!(m.report().horizontal_words > 0); // the multiply was charged
/// ```
pub fn carma(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix, v: usize) -> Matrix {
    let (mm, kk) = (a.rows(), a.cols());
    let nn = b.cols();
    let entry = ((mm * kk + kk * nn + mm * nn) as u64).div_ceil(group.len() as u64);
    for &pid in group.procs() {
        m.charge_comm(pid, entry);
    }
    m.step(group.procs(), 1);
    carma_spread(m, group, a, b, v)
}

/// [`carma`] for operands already in the recursive layout (produced by
/// an enclosing recursion or an earlier charged redistribution): skips
/// the entry charge, keeping only the internal replication/reduction
/// traffic.
pub fn carma_spread(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix, v: usize) -> Matrix {
    let (mm, kk) = (a.rows(), a.cols());
    let (kk2, nn) = (b.rows(), b.cols());
    assert_eq!(kk, kk2, "carma: inner dimensions disagree");
    if ca_obs::knobs::lookahead() {
        // Lookahead mode routes every multiply through the zero-copy
        // recursion — bitwise- and ledger-identical to the path below
        // (`into_variant_is_bitwise_identical_with_matching_charges`),
        // it just skips the per-split operand extraction copies.
        let mut out = Matrix::zeros(mm, nn);
        carma_spread_into(m, group, &a.view(), Trans::N, &b.view(), v, &mut out.view_mut());
        return out;
    }
    let v = v.max(1).min(kk.max(1));
    if v == 1 || kk < 2 * v {
        return carma_rec(m, group, a, b);
    }
    // Serialize into v inner-dimension chunks (streaming): each chunk is
    // a full recursive multiply; partial products accumulate in place.
    let mut c = Matrix::zeros(mm, nn);
    let bounds: Vec<usize> = (0..=v).map(|i| i * kk / v).collect();
    let g = group.len() as u64;
    for w in bounds.windows(2) {
        if w[1] == w[0] {
            continue;
        }
        let ac = a.block(0, w[0], mm, w[1] - w[0]);
        let bc = b.block(w[0], 0, w[1] - w[0], nn);
        let part = carma_rec(m, group, &ac, &bc);
        c.axpy(1.0, &part);
        for &pid in group.procs() {
            m.charge_flops(pid, (mm * nn) as u64 / g);
        }
    }
    c
}

/// Rows/cols of `op(A)` for a view operand.
#[inline]
fn op_shape(a: &MatrixView, ta: Trans) -> (usize, usize) {
    match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    }
}

/// Sub-view of `op(A)` (rows `r0..r0+nr`, cols `c0..c0+nc` in *op*
/// coordinates), mapped back onto the stored orientation.
#[inline]
fn op_sub<'a>(
    a: &MatrixView<'a>,
    ta: Trans,
    r0: usize,
    c0: usize,
    nr: usize,
    nc: usize,
) -> MatrixView<'a> {
    match ta {
        Trans::N => a.sub(r0, c0, nr, nc),
        Trans::T => a.sub(c0, r0, nc, nr),
    }
}

/// Zero-copy [`carma_spread`]: `out ← op(A)·B` written directly into a
/// strided output view, with operands taken as (optionally transposed)
/// views of their parent storage.
///
/// Used by the task-graph (`CA_LOOKAHEAD`) path of the reduction
/// drivers, which address aggregate panels in place instead of
/// extracting blocks. The result and the ledger charges are **bitwise
/// identical** to `carma_spread` on extracted copies:
///
/// * every split recurses on the same logical sub-shapes, so the charge
///   sequence (values *and* order) is unchanged;
/// * `m`/`n` splits route disjoint output regions instead of
///   `vstack`/`set_block` assembly — pure data-movement elimination;
/// * `k` splits and `v`-chunking keep the copy path's
///   temporary-plus-elementwise-add accumulation, preserving the exact
///   add sequence (including the `0.0 + x` of the first chunk);
/// * the one-processor base writes through a `β = 0` GEMM, which
///   pre-zeroes the output and therefore stores the same bits as a
///   fresh-matrix product copied into place;
/// * a transposed operand reads through the GEMM kernels' `op(A)`
///   resolver, which performs the same arithmetic in the same order as
///   on a pre-transposed copy.
pub fn carma_spread_into(
    m: &Machine,
    group: &Grid,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    v: usize,
    out: &mut MatrixViewMut,
) {
    let (mm, kk) = op_shape(a, ta);
    let (kk2, nn) = (b.rows(), b.cols());
    assert_eq!(kk, kk2, "carma: inner dimensions disagree");
    assert_eq!(
        (out.rows(), out.cols()),
        (mm, nn),
        "carma_spread_into: output shape disagrees"
    );
    let v = v.max(1).min(kk.max(1));
    if v == 1 || kk < 2 * v {
        carma_rec_into(m, group, a, ta, b, out);
        return;
    }
    // v inner-dimension chunks, accumulated chunk-by-chunk exactly as
    // the copy path does (zero-fill + add, not first-chunk direct write:
    // the `0.0 + x` add is observable on signed zeros).
    out.fill(0.0);
    let bounds: Vec<usize> = (0..=v).map(|i| i * kk / v).collect();
    let g = group.len() as u64;
    for w in bounds.windows(2) {
        if w[1] == w[0] {
            continue;
        }
        let ac = op_sub(a, ta, 0, w[0], mm, w[1] - w[0]);
        let bc = b.sub(w[0], 0, w[1] - w[0], nn);
        let mut part = Matrix::zeros(mm, nn);
        carma_rec_into(m, group, &ac, ta, &bc, &mut part.view_mut());
        out.add_scaled(1.0, &part.view());
        for &pid in group.procs() {
            m.charge_flops(pid, (mm * nn) as u64 / g);
        }
    }
}

/// The recursion behind [`carma_spread_into`] — mirrors [`carma_rec`]
/// split-for-split with the output routed to disjoint sub-views.
fn carma_rec_into(
    m: &Machine,
    group: &Grid,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    out: &mut MatrixViewMut,
) {
    let g = group.len();
    let (mm, kk) = op_shape(a, ta);
    let nn = b.cols();
    if g == 1 {
        kern::local_matmul_into(m, group.proc(0), a, ta, b, Trans::N, out);
        return;
    }
    let g1 = g / 2;
    let halves = (group.prefix(g1), Grid::new_1d(group.procs()[g1..].to_vec()));
    let gw = g as u64;

    if mm >= kk && mm >= nn && mm >= 2 {
        // Split rows of op(A) (and C); B is replicated into both halves.
        let cut = mm * g1 / g;
        let a1 = op_sub(a, ta, 0, 0, cut, kk);
        let a2 = op_sub(a, ta, cut, 0, mm - cut, kk);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (kk * nn) as u64 / gw);
            m.alloc(pid, (kk * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        carma_rec_into(m, &halves.0, &a1, ta, b, &mut out.sub_mut(0, 0, cut, nn));
        carma_rec_into(m, &halves.1, &a2, ta, b, &mut out.sub_mut(cut, 0, mm - cut, nn));
        for &pid in group.procs() {
            m.free(pid, (kk * nn) as u64 / gw);
        }
    } else if nn >= kk && nn >= 2 {
        // Split columns of B (and C); op(A) is replicated into both halves.
        let cut = nn * g1 / g;
        let b1 = b.sub(0, 0, kk, cut);
        let b2 = b.sub(0, cut, kk, nn - cut);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * kk) as u64 / gw);
            m.alloc(pid, (mm * kk) as u64 / gw);
        }
        m.step(group.procs(), 1);
        carma_rec_into(m, &halves.0, a, ta, &b1, &mut out.sub_mut(0, 0, mm, cut));
        carma_rec_into(m, &halves.1, a, ta, &b2, &mut out.sub_mut(0, cut, mm, nn - cut));
        for &pid in group.procs() {
            m.free(pid, (mm * kk) as u64 / gw);
        }
    } else if kk >= 2 {
        // Split the inner dimension: both halves compute a partial C,
        // combined with a summed reduction over the full group. The
        // copy path's `c2.axpy(1.0, c1)` accumulation is preserved:
        // first half into a temporary, second half into `out`, one
        // elementwise add.
        let cut = kk * g1 / g;
        let a1 = op_sub(a, ta, 0, 0, mm, cut);
        let a2 = op_sub(a, ta, 0, cut, mm, kk - cut);
        let b1 = b.sub(0, 0, cut, nn);
        let b2 = b.sub(cut, 0, kk - cut, nn);
        let mut c1 = Matrix::zeros(mm, nn);
        carma_rec_into(m, &halves.0, &a1, ta, &b1, &mut c1.view_mut());
        carma_rec_into(m, &halves.1, &a2, ta, &b2, out);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * nn) as u64 / gw);
            m.charge_flops(pid, (mm * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        out.add_scaled(1.0, &c1.view());
    } else {
        // Degenerate tiny dimensions: compute on rank 0.
        kern::local_matmul_into(m, group.proc(0), a, ta, b, Trans::N, out);
    }
}

fn carma_rec(m: &Machine, group: &Grid, a: &Matrix, b: &Matrix) -> Matrix {
    let g = group.len();
    if g == 1 {
        return kern::local_matmul(m, group.proc(0), a, Trans::N, b, Trans::N);
    }
    let (mm, kk) = (a.rows(), a.cols());
    let nn = b.cols();
    let g1 = g / 2;
    let halves = (group.prefix(g1), Grid::new_1d(group.procs()[g1..].to_vec()));
    let gw = g as u64;

    if mm >= kk && mm >= nn && mm >= 2 {
        // Split rows of A (and C); B is replicated into both halves.
        let cut = mm * g1 / g;
        let a1 = a.block(0, 0, cut, kk);
        let a2 = a.block(cut, 0, mm - cut, kk);
        for &pid in group.procs() {
            // Each processor's share of B doubles (A rows stay in place
            // in the recursive layout).
            m.charge_comm(pid, 2 * (kk * nn) as u64 / gw);
            m.alloc(pid, (kk * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        let c1 = carma_rec(m, &halves.0, &a1, b);
        let c2 = carma_rec(m, &halves.1, &a2, b);
        for &pid in group.procs() {
            m.free(pid, (kk * nn) as u64 / gw);
        }
        Matrix::vstack(&[&c1, &c2])
    } else if nn >= kk && nn >= 2 {
        // Split columns of B (and C); A is replicated into both halves.
        let cut = nn * g1 / g;
        let b1 = b.block(0, 0, kk, cut);
        let b2 = b.block(0, cut, kk, nn - cut);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * kk) as u64 / gw);
            m.alloc(pid, (mm * kk) as u64 / gw);
        }
        m.step(group.procs(), 1);
        let c1 = carma_rec(m, &halves.0, a, &b1);
        let c2 = carma_rec(m, &halves.1, a, &b2);
        for &pid in group.procs() {
            m.free(pid, (mm * kk) as u64 / gw);
        }
        let mut c = Matrix::zeros(mm, nn);
        c.set_block(0, 0, &c1);
        c.set_block(0, cut, &c2);
        c
    } else if kk >= 2 {
        // Split the inner dimension: both halves compute a partial C,
        // combined with a summed reduction over the full group.
        let cut = kk * g1 / g;
        let a1 = a.block(0, 0, mm, cut);
        let a2 = a.block(0, cut, mm, kk - cut);
        let b1 = b.block(0, 0, cut, nn);
        let b2 = b.block(cut, 0, kk - cut, nn);
        let c1 = carma_rec(m, &halves.0, &a1, &b1);
        let mut c2 = carma_rec(m, &halves.1, &a2, &b2);
        for &pid in group.procs() {
            m.charge_comm(pid, 2 * (mm * nn) as u64 / gw);
            m.charge_flops(pid, (mm * nn) as u64 / gw);
        }
        m.step(group.procs(), 1);
        c2.axpy(1.0, &c1);
        c2
    } else {
        // Degenerate tiny dimensions: compute on rank 0.
        kern::local_matmul(m, group.proc(0), a, Trans::N, b, Trans::N)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::matmul;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check(mm: usize, kk: usize, nn: usize, g: usize, v: usize, seed: u64) {
        let m = machine(g);
        let grid = Grid::all(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mm, kk);
        let b = gen::random_matrix(&mut rng, kk, nn);
        let c = carma(&m, &grid, &a, &b, v);
        let want = matmul(&a, Trans::N, &b, Trans::N);
        assert!(
            c.max_diff(&want) < 1e-10 * (kk as f64),
            "m={mm} k={kk} n={nn} g={g} v={v}: wrong product"
        );
    }

    #[test]
    fn square_on_various_groups() {
        check(16, 16, 16, 1, 1, 110);
        check(16, 16, 16, 4, 1, 111);
        check(16, 16, 16, 8, 1, 112);
        check(17, 13, 19, 6, 1, 113);
    }

    #[test]
    fn tall_wide_and_inner_shapes() {
        check(64, 8, 8, 4, 1, 114); // m-dominant (1D regime)
        check(8, 8, 64, 4, 1, 115); // n-dominant
        check(8, 64, 8, 4, 1, 116); // k-dominant (reduction path)
    }

    #[test]
    fn v_parameter_preserves_product() {
        check(24, 32, 16, 4, 4, 117);
        check(12, 40, 12, 8, 5, 118);
    }

    #[test]
    fn into_variant_is_bitwise_identical_with_matching_charges() {
        // The zero-copy recursion must reproduce the copy path exactly:
        // same f64 bits in the product (written into an offset region of
        // a larger buffer) and the same folded ledger, for both operand
        // orientations and with v-chunking active.
        let _knob = crate::test_knob::barrier_guard();
        for (mm, kk, nn, g, v, ta, seed) in [
            (24usize, 32usize, 16usize, 4usize, 1usize, Trans::N, 310u64),
            (24, 32, 16, 4, 4, Trans::N, 311),
            (64, 8, 8, 6, 1, Trans::N, 312),
            (8, 40, 8, 8, 5, Trans::N, 313), // k-split + chunking
            (17, 13, 19, 5, 2, Trans::T, 314),
            (32, 24, 16, 4, 3, Trans::T, 315),
        ] {
            let grid = Grid::all(g);
            let mut rng = StdRng::seed_from_u64(seed);
            let (ar, ac) = match ta {
                Trans::N => (mm, kk),
                Trans::T => (kk, mm),
            };
            let a = gen::random_matrix(&mut rng, ar, ac);
            let b = gen::random_matrix(&mut rng, kk, nn);

            let m1 = machine(g);
            let a_op = match ta {
                Trans::N => a.block(0, 0, mm, kk),
                Trans::T => a.transpose(),
            };
            let want = carma_spread(&m1, &grid, &a_op, &b, v);
            m1.fence();

            let m2 = machine(g);
            // Write into an interior region of a larger host to exercise
            // the strided case.
            let mut host = Matrix::zeros(mm + 3, nn + 2);
            carma_spread_into(
                &m2,
                &grid,
                &a.view(),
                ta,
                &b.view(),
                v,
                &mut host.subview_mut(2, 1, mm, nn),
            );
            m2.fence();

            for i in 0..mm {
                for j in 0..nn {
                    assert!(
                        host.get(2 + i, 1 + j).to_bits() == want.get(i, j).to_bits(),
                        "m={mm} k={kk} n={nn} g={g} v={v} ta={ta:?}: bit mismatch at ({i},{j})"
                    );
                }
            }
            assert_eq!(
                m1.report(),
                m2.report(),
                "m={mm} k={kk} n={nn} g={g} v={v} ta={ta:?}: ledger diverged"
            );
        }
    }

    #[test]
    fn one_d_regime_moves_small_operands_only() {
        // m ≫ n = k with few processors: per-proc W should be O(nk),
        // not O(mn/p) — the 1D case of Lemma III.2.
        let (mm, nk) = (512usize, 8usize);
        let g = 4;
        let m = machine(g);
        let a = Matrix::zeros(mm, nk);
        let b = Matrix::zeros(nk, nk);
        let snap = m.snapshot();
        let _ = carma(&m, &Grid::all(g), &a, &b, 1);
        m.fence();
        let w = m.costs_since(&snap).horizontal_words;
        // Lemma III.2's bound for this shape: O((mn + nk + mk)/p) —
        // crucially NOT O(m·k) (the tall operand is never replicated).
        let bound = 2 * (mm * nk + nk * nk + mm * nk) / g;
        assert!(w < bound as u64, "1D regime W={w} exceeds bound {bound}");
        // And below moving the tall operand wholesale (the per-processor
        // charge is the one-time O((mn+nk+mk)/p) entry redistribution
        // plus O(nk·log g) of B-replication — never O(m·k)).
        assert!(w < (mm * nk) as u64, "tall operand was replicated");
    }

    #[test]
    fn k_split_reduction_charges_flops() {
        let g = 2;
        let m = machine(g);
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        // k is largest when m = n < k: use a 2×8 · 8×2 product.
        let a2 = Matrix::zeros(2, 8);
        let b2 = Matrix::zeros(8, 2);
        let _ = carma(&m, &Grid::all(g), &a2, &b2, 1);
        let _ = (a, b);
        m.fence();
        // Reduction adds mn/g flops per proc on top of local gemms.
        assert!(m.report().flops > 0);
    }

    #[test]
    fn more_processors_reduce_or_hold_per_proc_volume() {
        let n = 32;
        let mut vols = Vec::new();
        for g in [2usize, 8] {
            let m = machine(g);
            let a = Matrix::zeros(n, n);
            let b = Matrix::zeros(n, n);
            let snap = m.snapshot();
            let _ = carma(&m, &Grid::all(g), &a, &b, 1);
            m.fence();
            vols.push(m.costs_since(&snap).horizontal_words);
        }
        assert!(vols[1] <= 2 * vols[0], "W grew too fast with p: {vols:?}");
    }
}
