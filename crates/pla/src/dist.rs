//! Distributed matrices with per-processor physical storage.
//!
//! A [`DistMatrix`] is partitioned over a 2D grid in a block layout:
//! processor `(i, j)` of a `pr × pc` grid owns the contiguous block
//! `rows[row_splits[i]..row_splits[i+1]] × cols[col_splits[j]..col_splits[j+1]]`.
//! Every block physically lives in the owner's local store; cross-owner
//! access goes through methods that move the data and charge the
//! corresponding BSP costs.
//!
//! 1D row (column) layouts are 2D grids with `pc = 1` (`pr = 1`).

use crate::coll;
use crate::grid::Grid;
use ca_bsp::Machine;
use ca_dla::Matrix;

/// Even partition of `n` into `parts` split points (length `parts + 1`).
pub fn splits(n: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|i| i * n / parts).collect()
}

/// A dense matrix distributed in a block layout over a 2D grid.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    rows: usize,
    cols: usize,
    grid: Grid,
    row_splits: Vec<usize>,
    col_splits: Vec<usize>,
    /// Local blocks in grid-rank order.
    local: Vec<Matrix>,
}

impl DistMatrix {
    /// Zero matrix distributed over `grid` (2D shape); allocations are
    /// recorded with the machine's memory tracker.
    pub fn zeros(m: &Machine, grid: &Grid, rows: usize, cols: usize) -> Self {
        let (pr, pc, pl) = grid.shape();
        assert_eq!(pl, 1, "DistMatrix requires a 2D grid (use layers for 3D)");
        let row_splits = splits(rows, pr);
        let col_splits = splits(cols, pc);
        let mut local = Vec::with_capacity(grid.len());
        for r in 0..grid.len() {
            let (i, j, _) = grid.coords(r);
            let nr = row_splits[i + 1] - row_splits[i];
            let nc = col_splits[j + 1] - col_splits[j];
            m.alloc(grid.proc(r), (nr * nc) as u64);
            local.push(Matrix::zeros(nr, nc));
        }
        Self {
            rows,
            cols,
            grid: grid.clone(),
            row_splits,
            col_splits,
            local,
        }
    }

    /// Distribute a dense matrix that starts in an arbitrary
    /// load-balanced layout: each processor receives its block and sends
    /// away its old share; cost `O(β·(words/p) + α)` per the paper's
    /// redistribution assumption.
    pub fn from_dense(m: &Machine, grid: &Grid, a: &Matrix) -> Self {
        let mut d = Self::zeros(m, grid, a.rows(), a.cols());
        for r in 0..d.grid.len() {
            let (r0, c0, nr, nc) = d.owned_range(r);
            let block = a.block(r0, c0, nr, nc);
            m.charge_comm(d.grid.proc(r), 2 * (nr * nc) as u64);
            d.local[r] = block;
        }
        m.step(d.grid.procs(), 1);
        d
    }

    /// Matrix dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The grid this matrix is distributed over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Global index range owned by grid rank `r`: `(r0, c0, nr, nc)`.
    pub fn owned_range(&self, r: usize) -> (usize, usize, usize, usize) {
        let (i, j, _) = self.grid.coords(r);
        (
            self.row_splits[i],
            self.col_splits[j],
            self.row_splits[i + 1] - self.row_splits[i],
            self.col_splits[j + 1] - self.col_splits[j],
        )
    }

    /// Grid rank owning global entry `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols);
        let bi = self.row_splits.partition_point(|&s| s <= i) - 1;
        let bj = self.col_splits.partition_point(|&s| s <= j) - 1;
        self.grid.rank(bi, bj, 0)
    }

    /// The local block of grid rank `r`.
    pub fn local(&self, r: usize) -> &Matrix {
        &self.local[r]
    }

    /// Mutable local block of grid rank `r` (owner-side computation).
    pub fn local_mut(&mut self, r: usize) -> &mut Matrix {
        &mut self.local[r]
    }

    /// All local blocks in grid-rank order — the disjoint per-rank
    /// slots the parallel executor (`crate::exec`) fans owner-computes
    /// work over.
    pub fn locals_mut(&mut self) -> &mut [Matrix] {
        &mut self.local
    }

    /// Words stored on grid rank `r`.
    pub fn words_on(&self, r: usize) -> u64 {
        self.local[r].len() as u64
    }

    /// Release the distributed storage, updating the memory tracker.
    pub fn release(self, m: &Machine) {
        for r in 0..self.grid.len() {
            m.free(self.grid.proc(r), self.local[r].len() as u64);
        }
    }

    /// Gather the whole matrix onto the processor at grid rank `root`.
    pub fn gather(&self, m: &Machine, root: usize) -> Matrix {
        let root_id = self.grid.proc(root);
        let mut out = Matrix::zeros(self.rows, self.cols);
        let mut moves = Vec::new();
        for r in 0..self.grid.len() {
            let (r0, c0, _, _) = self.owned_range(r);
            out.set_block(r0, c0, &self.local[r]);
            if r != root {
                moves.push((self.grid.proc(r), root_id, self.local[r].len() as u64));
            }
        }
        coll::exchange(m, &self.grid, &moves);
        out
    }

    /// Assemble the full matrix without charging any cost — for tests and
    /// diagnostics only.
    pub fn assemble_unchecked(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.grid.len() {
            let (r0, c0, _, _) = self.owned_range(r);
            out.set_block(r0, c0, &self.local[r]);
        }
        out
    }

    /// Read the global block `(r0, c0, nr, nc)` onto the processor at
    /// grid rank `dest`: owners send their pieces (one superstep).
    pub fn read_block(
        &self,
        m: &Machine,
        dest: usize,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
    ) -> Matrix {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block out of range");
        let dest_id = self.grid.proc(dest);
        let mut out = Matrix::zeros(nr, nc);
        let mut moves = Vec::new();
        for r in 0..self.grid.len() {
            let (br0, bc0, bnr, bnc) = self.owned_range(r);
            // Intersection with the requested block.
            let ri0 = r0.max(br0);
            let ri1 = (r0 + nr).min(br0 + bnr);
            let ci0 = c0.max(bc0);
            let ci1 = (c0 + nc).min(bc0 + bnc);
            if ri0 >= ri1 || ci0 >= ci1 {
                continue;
            }
            let piece = self.local[r].block(ri0 - br0, ci0 - bc0, ri1 - ri0, ci1 - ci0);
            if self.grid.proc(r) != dest_id {
                moves.push((self.grid.proc(r), dest_id, piece.len() as u64));
            }
            out.set_block(ri0 - r0, ci0 - c0, &piece);
        }
        coll::exchange(m, &self.grid, &moves);
        out
    }

    /// Write `block` (held by the processor at grid rank `src`) into the
    /// global position `(r0, c0)`: owners receive their pieces (one
    /// superstep).
    pub fn write_block(&mut self, m: &Machine, src: usize, r0: usize, c0: usize, block: &Matrix) {
        let (nr, nc) = (block.rows(), block.cols());
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block out of range");
        let src_id = self.grid.proc(src);
        let mut moves = Vec::new();
        for r in 0..self.grid.len() {
            let (br0, bc0, bnr, bnc) = self.owned_range(r);
            let ri0 = r0.max(br0);
            let ri1 = (r0 + nr).min(br0 + bnr);
            let ci0 = c0.max(bc0);
            let ci1 = (c0 + nc).min(bc0 + bnc);
            if ri0 >= ri1 || ci0 >= ci1 {
                continue;
            }
            let piece = block.block(ri0 - r0, ci0 - c0, ri1 - ri0, ci1 - ci0);
            if self.grid.proc(r) != src_id {
                moves.push((src_id, self.grid.proc(r), piece.len() as u64));
            }
            self.local[r].set_block(ri0 - br0, ci0 - bc0, &piece);
        }
        coll::exchange(m, &self.grid, &moves);
    }

    /// Redistribute onto a (possibly different) grid/shape: every
    /// processor sends its old share and receives its new block
    /// (one superstep of an all-to-all).
    pub fn redistribute(&self, m: &Machine, new_grid: &Grid) -> DistMatrix {
        let mut out = DistMatrix::zeros(m, new_grid, self.rows, self.cols);
        // Charge: each old owner sends what it holds, each new owner
        // receives what it will hold (self-overlap not discounted: block
        // boundaries rarely align, and the paper's redistribution charge
        // is O(words/p) regardless).
        for r in 0..self.grid.len() {
            m.charge_comm(self.grid.proc(r), self.local[r].len() as u64);
        }
        for r in 0..new_grid.len() {
            m.charge_comm(new_grid.proc(r), out.local[r].len() as u64);
        }
        let dense = self.assemble_unchecked();
        for r in 0..new_grid.len() {
            let (r0, c0, nr, nc) = out.owned_range(r);
            out.local[r] = dense.block(r0, c0, nr, nc);
        }
        let mut all: Vec<_> = self
            .grid
            .procs()
            .iter()
            .chain(new_grid.procs())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        m.step(&all, 1);
        out
    }

    /// Distribute a dense matrix whose blocks are already resident on
    /// their owners (e.g. the output of a recursive multiply that left
    /// its result evenly spread): records allocations but charges no
    /// communication.
    pub fn from_dense_free(m: &Machine, grid: &Grid, a: &Matrix) -> Self {
        let mut d = Self::zeros(m, grid, a.rows(), a.cols());
        for r in 0..d.grid.len() {
            let (r0, c0, nr, nc) = d.owned_range(r);
            d.local[r] = a.block(r0, c0, nr, nc);
        }
        d
    }

    /// Redistribute the sub-block `(r0, c0, nr, nc)` onto `new_grid` as
    /// its own distributed matrix (one superstep of an all-to-all;
    /// senders charged their intersection, receivers their new block).
    pub fn block_redist(
        &self,
        m: &Machine,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        new_grid: &Grid,
    ) -> DistMatrix {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block out of range");
        let mut out = DistMatrix::zeros(m, new_grid, nr, nc);
        for r in 0..self.grid.len() {
            let (br0, bc0, bnr, bnc) = self.owned_range(r);
            let ri0 = r0.max(br0);
            let ri1 = (r0 + nr).min(br0 + bnr);
            let ci0 = c0.max(bc0);
            let ci1 = (c0 + nc).min(bc0 + bnc);
            if ri0 < ri1 && ci0 < ci1 {
                m.charge_comm(self.grid.proc(r), ((ri1 - ri0) * (ci1 - ci0)) as u64);
            }
        }
        let dense = self.assemble_unchecked().block(r0, c0, nr, nc);
        for r in 0..new_grid.len() {
            let (nr0, nc0, nnr, nnc) = out.owned_range(r);
            m.charge_comm(new_grid.proc(r), (nnr * nnc) as u64);
            out.local[r] = dense.block(nr0, nc0, nnr, nnc);
        }
        let mut all: Vec<_> = self
            .grid
            .procs()
            .iter()
            .chain(new_grid.procs())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        m.step(&all, 1);
        out
    }

    /// Transposed copy on the same grid: every block is transposed
    /// locally and shipped to the mirror owner (one superstep).
    pub fn transpose(&self, m: &Machine) -> DistMatrix {
        let mut out = DistMatrix::zeros(m, &self.grid, self.cols, self.rows);
        let dense_t = self.assemble_unchecked().transpose();
        let mut moves = Vec::new();
        for r in 0..self.grid.len() {
            let (i, j, _) = self.grid.coords(r);
            let mirror = self.grid.rank(
                j.min(self.grid.shape().0 - 1),
                i.min(self.grid.shape().1 - 1),
                0,
            );
            if mirror != r && !self.local[r].is_empty() {
                moves.push((
                    self.grid.proc(r),
                    self.grid.proc(mirror),
                    self.local[r].len() as u64,
                ));
            }
        }
        coll::exchange(m, &self.grid, &moves);
        for r in 0..self.grid.len() {
            let (r0, c0, nr, nc) = out.owned_range(r);
            out.local[r] = dense_t.block(r0, c0, nr, nc);
        }
        out
    }

    /// Replicate the whole matrix onto every member of `group`
    /// (two-phase broadcast pattern from the owners), returning the dense
    /// copy each member now holds. Used for replicated operands
    /// (Algorithm III.1's `A`, Algorithm IV.1's `U`/`V` panels).
    pub fn replicate(&self, m: &Machine, group: &Grid) -> Matrix {
        let words = (self.rows * self.cols) as u64;
        let g = group.len() as u64;
        if g > 1 {
            // Owners each send their share to g−1 destinations via the
            // two-phase pattern: per-proc traffic O(words) total.
            for &pid in group.procs() {
                m.charge_comm(pid, 2 * words.div_ceil(g) * (g - 1));
            }
            for r in 0..self.grid.len() {
                m.charge_comm(self.grid.proc(r), self.local[r].len() as u64);
            }
            m.step(group.procs(), 2);
        }
        for &pid in group.procs() {
            m.alloc(pid, words);
        }
        self.assemble_unchecked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn splits_are_even_and_cover() {
        let s = splits(10, 3);
        assert_eq!(s, vec![0, 3, 6, 10]);
        assert_eq!(splits(8, 4), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn from_dense_roundtrip() {
        let m = machine(6);
        let g = Grid::new_2d((0..6).collect(), 2, 3);
        let mut rng = StdRng::seed_from_u64(70);
        let a = gen::random_matrix(&mut rng, 9, 11);
        let d = DistMatrix::from_dense(&m, &g, &a);
        assert!(d.assemble_unchecked().max_diff(&a) < 1e-15);
        let back = d.gather(&m, 0);
        assert!(back.max_diff(&a) < 1e-15);
    }

    #[test]
    fn owner_of_matches_owned_range() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let d = DistMatrix::zeros(&m, &g, 7, 5);
        for i in 0..7 {
            for j in 0..5 {
                let r = d.owner_of(i, j);
                let (r0, c0, nr, nc) = d.owned_range(r);
                assert!(i >= r0 && i < r0 + nr && j >= c0 && j < c0 + nc);
            }
        }
    }

    #[test]
    fn block_read_write_roundtrip() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let mut rng = StdRng::seed_from_u64(71);
        let a = gen::random_matrix(&mut rng, 8, 8);
        let mut d = DistMatrix::from_dense(&m, &g, &a);
        let blk = d.read_block(&m, 0, 2, 3, 4, 4);
        assert!(blk.max_diff(&a.block(2, 3, 4, 4)) < 1e-15);
        let mut newblk = blk.clone();
        newblk.scale(2.0);
        d.write_block(&m, 0, 2, 3, &newblk);
        let out = d.assemble_unchecked();
        assert!((out.get(3, 4) - 2.0 * a.get(3, 4)).abs() < 1e-15);
        assert!((out.get(0, 0) - a.get(0, 0)).abs() < 1e-15);
    }

    #[test]
    fn gather_charges_approximately_total_words() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let a = Matrix::zeros(16, 16);
        let d = DistMatrix::from_dense(&m, &g, &a);
        let snap = m.snapshot();
        let _ = d.gather(&m, 0);
        let c = m.costs_since(&snap);
        // Root receives 3/4 of 256 words; volume counts both ends.
        assert_eq!(c.total_volume_words, 2 * 192);
    }

    #[test]
    fn redistribute_preserves_content() {
        let m = machine(8);
        let g1 = Grid::new_2d((0..4).collect(), 2, 2);
        let g2 = Grid::new_2d((2..8).collect(), 3, 2);
        let mut rng = StdRng::seed_from_u64(72);
        let a = gen::random_matrix(&mut rng, 10, 6);
        let d1 = DistMatrix::from_dense(&m, &g1, &a);
        let d2 = d1.redistribute(&m, &g2);
        assert!(d2.assemble_unchecked().max_diff(&a) < 1e-15);
    }

    #[test]
    fn memory_tracking_allocates_and_releases() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let d = DistMatrix::zeros(&m, &g, 8, 8);
        assert_eq!(m.report().peak_memory_words, 16);
        d.release(&m);
        let d2 = DistMatrix::zeros(&m, &g, 8, 8);
        // Peak unchanged after release+realloc of the same size.
        assert_eq!(m.report().peak_memory_words, 16);
        d2.release(&m);
    }

    #[test]
    fn uneven_dims_still_roundtrip() {
        let m = machine(6);
        let g = Grid::new_2d((0..6).collect(), 3, 2);
        let mut rng = StdRng::seed_from_u64(73);
        let a = gen::random_matrix(&mut rng, 11, 7);
        let d = DistMatrix::from_dense(&m, &g, &a);
        assert!(d.assemble_unchecked().max_diff(&a) < 1e-15);
    }
}
