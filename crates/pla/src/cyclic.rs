//! Block-cyclic distributions — the layout the paper's algorithms
//! assume (Algorithm III.1's `Require` block, Algorithm IV.1's
//! `b mod q ≡ 1` condition are both statements about cyclic layouts).
//!
//! A [`CyclicMatrix`] distributes an `m×n` matrix over a `pr×pc` grid in
//! ScaLAPACK's 2D block-cyclic fashion: global entry `(i, j)` lives on
//! grid coordinates `((i/mb) mod pr, (j/nb) mod pc)`. The defining
//! property — and the reason the paper's recursions can assume perfect
//! load balance *at every trailing submatrix* without re-balancing — is
//! that any aligned trailing corner `A[o.., o..]` remains evenly spread
//! (proved in this module's tests, contrasted against the block layout
//! where the leading processors go idle).
//!
//! The simulator's algorithm executors use block layouts with explicit
//! charged redistribution between steps (DESIGN.md §8); this module
//! makes the equivalence argument concrete and provides charged
//! conversions both ways.

use crate::coll;
use crate::dist::DistMatrix;
use crate::grid::Grid;
use ca_bsp::Machine;
use ca_dla::Matrix;

/// A dense matrix in a 2D block-cyclic layout.
#[derive(Debug, Clone)]
pub struct CyclicMatrix {
    rows: usize,
    cols: usize,
    mb: usize,
    nb: usize,
    grid: Grid,
    /// Local pieces in grid-rank order, each holding that processor's
    /// cyclically-owned entries packed row-major in local index order.
    local: Vec<Matrix>,
}

/// Number of rows/cols of a dimension owned by grid coordinate `coord`
/// (ScaLAPACK's `numroc`).
pub fn numroc(n: usize, block: usize, coord: usize, nprocs: usize) -> usize {
    let nblocks = n / block;
    let mut count = (nblocks / nprocs) * block;
    let extra = nblocks % nprocs;
    if coord < extra {
        count += block;
    } else if coord == extra {
        count += n % block;
    }
    count
}

/// Map a global index to `(owner coordinate, local index)`.
pub fn global_to_local(g: usize, block: usize, nprocs: usize) -> (usize, usize) {
    let blk = g / block;
    let owner = blk % nprocs;
    let local_blk = blk / nprocs;
    (owner, local_blk * block + g % block)
}

/// Map `(owner coordinate, local index)` back to the global index.
pub fn local_to_global(owner: usize, l: usize, block: usize, nprocs: usize) -> usize {
    let local_blk = l / block;
    (local_blk * nprocs + owner) * block + l % block
}

impl CyclicMatrix {
    /// Distribute a dense matrix block-cyclically (charged as a
    /// balanced redistribution, one superstep).
    pub fn from_dense(
        m: &Machine,
        grid: &Grid,
        a: &Matrix,
        mb: usize,
        nb: usize,
    ) -> CyclicMatrix {
        let (pr, pc, pl) = grid.shape();
        assert_eq!(pl, 1, "CyclicMatrix requires a 2D grid");
        assert!(mb >= 1 && nb >= 1);
        let (rows, cols) = (a.rows(), a.cols());
        let mut local = Vec::with_capacity(grid.len());
        for r in 0..grid.len() {
            let (pi, pj, _) = grid.coords(r);
            let lr = numroc(rows, mb, pi, pr);
            let lc = numroc(cols, nb, pj, pc);
            let mut blk = Matrix::zeros(lr, lc);
            for li in 0..lr {
                let gi = local_to_global(pi, li, mb, pr);
                for lj in 0..lc {
                    let gj = local_to_global(pj, lj, nb, pc);
                    blk.set(li, lj, a.get(gi, gj));
                }
            }
            m.charge_comm(grid.proc(r), 2 * (lr * lc) as u64);
            m.alloc(grid.proc(r), (lr * lc) as u64);
            local.push(blk);
        }
        m.step(grid.procs(), 1);
        CyclicMatrix {
            rows,
            cols,
            mb,
            nb,
            grid: grid.clone(),
            local,
        }
    }

    /// Matrix dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Blocking factors `(mb, nb)`.
    pub fn blocks(&self) -> (usize, usize) {
        (self.mb, self.nb)
    }

    /// The grid this matrix lives on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Grid rank owning global entry `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        let (pr, pc, _) = self.grid.shape();
        let (oi, _) = global_to_local(i, self.mb, pr);
        let (oj, _) = global_to_local(j, self.nb, pc);
        self.grid.rank(oi, oj, 0)
    }

    /// Words stored on grid rank `r`.
    pub fn words_on(&self, r: usize) -> u64 {
        self.local[r].len() as u64
    }

    /// Assemble the dense matrix (diagnostics/tests; no charge).
    pub fn assemble_unchecked(&self) -> Matrix {
        let (pr, pc, _) = self.grid.shape();
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.grid.len() {
            let (pi, pj, _) = self.grid.coords(r);
            let blk = &self.local[r];
            for li in 0..blk.rows() {
                let gi = local_to_global(pi, li, self.mb, pr);
                for lj in 0..blk.cols() {
                    let gj = local_to_global(pj, lj, self.nb, pc);
                    out.set(gi, gj, blk.get(li, lj));
                }
            }
        }
        out
    }

    /// Words each processor owns of the aligned trailing submatrix
    /// `A[o.., o..]` — the load-balance diagnostic that distinguishes
    /// cyclic from block layouts.
    pub fn trailing_words(&self, o: usize) -> Vec<u64> {
        let (pr, pc, _) = self.grid.shape();
        (0..self.grid.len())
            .map(|r| {
                let (pi, pj, _) = self.grid.coords(r);
                let lr = (0..numroc(self.rows, self.mb, pi, pr))
                    .filter(|&li| local_to_global(pi, li, self.mb, pr) >= o)
                    .count();
                let lc = (0..numroc(self.cols, self.nb, pj, pc))
                    .filter(|&lj| local_to_global(pj, lj, self.nb, pc) >= o)
                    .count();
                (lr * lc) as u64
            })
            .collect()
    }

    /// Convert to a block layout (charged all-to-all: every entry can
    /// change owner).
    pub fn to_block(&self, m: &Machine, grid: &Grid) -> DistMatrix {
        for r in 0..self.grid.len() {
            m.charge_comm(self.grid.proc(r), self.words_on(r));
        }
        let dense = self.assemble_unchecked();
        let out = DistMatrix::from_dense_free(m, grid, &dense);
        for r in 0..grid.len() {
            m.charge_comm(grid.proc(r), out.words_on(r));
        }
        coll::exchange(m, grid, &[]);
        out
    }

    /// Release the storage.
    pub fn release(self, m: &Machine) {
        for r in 0..self.grid.len() {
            m.free(self.grid.proc(r), self.local[r].len() as u64);
        }
    }
}

/// Convert a block-layout matrix to block-cyclic (charged all-to-all).
pub fn from_block(m: &Machine, d: &DistMatrix, mb: usize, nb: usize) -> CyclicMatrix {
    for r in 0..d.grid().len() {
        m.charge_comm(d.grid().proc(r), d.words_on(r));
    }
    let dense = d.assemble_unchecked();
    // from_dense charges the receive side and the superstep.
    CyclicMatrix::from_dense(m, d.grid(), &dense, mb, nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn numroc_partitions_exactly() {
        for (n, b, p) in [(100usize, 7usize, 4usize), (64, 8, 4), (13, 3, 5), (9, 4, 2)] {
            let total: usize = (0..p).map(|c| numroc(n, b, c, p)).sum();
            assert_eq!(total, n, "n={n} b={b} p={p}");
        }
    }

    #[test]
    fn index_maps_roundtrip() {
        for g in 0..200 {
            let (owner, l) = global_to_local(g, 7, 5);
            assert_eq!(local_to_global(owner, l, 7, 5), g);
        }
    }

    #[test]
    fn dense_roundtrip() {
        let m = machine(6);
        let g = Grid::new_2d((0..6).collect(), 2, 3);
        let mut rng = StdRng::seed_from_u64(800);
        let a = gen::random_matrix(&mut rng, 19, 23);
        let c = CyclicMatrix::from_dense(&m, &g, &a, 4, 3);
        assert!(c.assemble_unchecked().max_diff(&a) < 1e-15);
    }

    #[test]
    fn owner_of_matches_storage() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let a = Matrix::from_fn(16, 16, |i, j| (i * 16 + j) as f64);
        let c = CyclicMatrix::from_dense(&m, &g, &a, 2, 2);
        // Spot-check: entry (i, j) appears in the owner's local block.
        for (i, j) in [(0, 0), (3, 5), (10, 2), (15, 15)] {
            let r = c.owner_of(i, j);
            let v = a.get(i, j);
            let found = c.local[r].data().iter().any(|&x| (x - v).abs() < 1e-15);
            assert!(found, "entry ({i},{j}) not on its owner");
        }
    }

    #[test]
    fn cyclic_trailing_submatrices_stay_balanced_block_does_not() {
        // THE property: for the trailing corner A[o.., o..] at o = n/2,
        // the cyclic layout keeps every processor's share within a block
        // of the mean, while the block layout idles 3/4 of the grid.
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let n = 64;
        let a = Matrix::zeros(n, n);
        let cyc = CyclicMatrix::from_dense(&m, &g, &a, 4, 4);
        let o = n / 2;
        let shares = cyc.trailing_words(o);
        let mean = shares.iter().sum::<u64>() as f64 / 4.0;
        for s in &shares {
            assert!(
                (*s as f64 - mean).abs() <= mean * 0.3,
                "cyclic trailing shares unbalanced: {shares:?}"
            );
        }
        // Block layout: the trailing corner lives entirely on one
        // processor's quadrant.
        let blk = DistMatrix::from_dense(&m, &g, &a);
        let mut owners = std::collections::HashSet::new();
        for i in o..n {
            for j in o..n {
                owners.insert(blk.owner_of(i, j));
            }
        }
        assert_eq!(owners.len(), 1, "block layout should concentrate the corner");
    }

    #[test]
    fn conversions_preserve_content_and_charge() {
        let m = machine(4);
        let g = Grid::new_2d((0..4).collect(), 2, 2);
        let mut rng = StdRng::seed_from_u64(801);
        let a = gen::random_matrix(&mut rng, 12, 12);
        let c = CyclicMatrix::from_dense(&m, &g, &a, 3, 3);
        let snap = m.snapshot();
        let d = c.to_block(&m, &g);
        assert!(d.assemble_unchecked().max_diff(&a) < 1e-15);
        let back = from_block(&m, &d, 3, 3);
        assert!(back.assemble_unchecked().max_diff(&a) < 1e-15);
        let cost = m.costs_since(&snap);
        assert!(cost.horizontal_words > 0, "conversions must be charged");
    }

    #[test]
    fn alg_iv1_layout_condition_holds() {
        // Algorithm IV.1's Require: with b mod q ≡ 0 and block size q,
        // appending b-column panels to a cyclic layout preserves perfect
        // balance: every processor-column owns exactly b/q of any
        // aligned b-column group.
        let q = 4;
        let b = 12; // b mod q == 0
        let m = machine(q);
        let g = Grid::new_2d((0..q).collect(), 1, q);
        let a = Matrix::zeros(4, 48);
        let c = CyclicMatrix::from_dense(&m, &g, &a, 4, 1);
        for panel in 0..4 {
            let start = panel * b;
            for pj in 0..q {
                let owned = (start..start + b)
                    .filter(|&gc| global_to_local(gc, 1, q).0 == pj)
                    .count();
                assert_eq!(owned, b / q, "panel {panel}, proc col {pj}");
            }
        }
        let _ = c;
    }
}
