//! TSQR: communication-avoiding QR of tall-and-skinny matrices via a
//! binary reduction tree (Demmel, Grigori, Hoemmen, Langou \[16\]).
//!
//! Each processor QR-factors its row block locally; pairs then merge
//! their `R` factors up a binary tree (`log g` supersteps, `O(n²)` words
//! per level). The implicit tree `Q` can be expanded into an explicit
//! `m × n` orthonormal factor by a down-sweep ([`explicit_q`]), which the
//! Householder reconstruction of Corollary III.7 then converts into the
//! compact-WY `(U, T)` form the eigensolver needs.

use crate::coll;
use crate::dist::DistMatrix;
use crate::exec;
use crate::grid::Grid;
use crate::kern;
use ca_bsp::Machine;
use ca_dla::qr::{apply_q, QrFactors};
use ca_dla::Matrix;

/// One merge node of the TSQR reduction tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Grid rank that performed the merge.
    pub owner: usize,
    /// Grid rank whose `R` was merged into the owner's.
    pub partner: usize,
    /// Rows contributed by the owner (top of the stacked matrix).
    pub top_rows: usize,
    /// Rows contributed by the partner (bottom).
    pub bot_rows: usize,
    /// QR factors of the stacked `[R_top; R_bot]`.
    pub factors: QrFactors,
}

/// The TSQR factorization: leaf factors plus the merge tree; `r` is the
/// final upper-triangular factor (held by the group's rank 0).
#[derive(Debug, Clone)]
pub struct Tsqr {
    /// Number of columns factored.
    pub n: usize,
    /// The 1D group the factorization ran on.
    pub group: Grid,
    /// Per-rank leaf QR factors.
    pub leaves: Vec<QrFactors>,
    /// Merge levels, bottom-up; level `l` merges ranks at stride `2^l`.
    pub levels: Vec<Vec<TreeNode>>,
    /// Final `min(m,n) × n` upper-triangular factor (on rank 0).
    pub r: Matrix,
}

/// TSQR of `a`, a matrix in a 1D row-block layout (`g × 1` grid).
pub fn tsqr(m: &Machine, a: &DistMatrix) -> Tsqr {
    let group = a.grid().clone();
    let (_, pc, _) = group.shape();
    assert_eq!(pc, 1, "tsqr expects a 1D row-block layout");
    let g = group.len();
    let (_rows, n) = a.shape();

    // Leaf factorizations — one independent QR per rank.
    let leaves = exec::par_ranks(g, |rank| kern::local_qr(m, group.proc(rank), a.local(rank)));
    let mut current_r: Vec<Matrix> = leaves.iter().map(|f| f.r.clone()).collect();
    m.step(group.procs(), 1);

    // Binary reduction tree.
    let mut levels = Vec::new();
    let mut stride = 1;
    while stride < g {
        let mut moves = Vec::new();
        for owner in (0..g).step_by(2 * stride) {
            let partner = owner + stride;
            if partner >= g {
                continue;
            }
            moves.push((
                group.proc(partner),
                group.proc(owner),
                current_r[partner].len() as u64,
            ));
        }
        coll::exchange(m, &group, &moves);
        // Merge nodes of one level touch disjoint (owner, partner)
        // pairs — run them concurrently, reading current_r immutably.
        let pairs: Vec<(usize, usize)> = (0..g)
            .step_by(2 * stride)
            .filter_map(|owner| {
                let partner = owner + stride;
                (partner < g).then_some((owner, partner))
            })
            .collect();
        let current = &current_r;
        let mut nodes = exec::par_ranks(pairs.len(), |idx| {
            let (owner, partner) = pairs[idx];
            let top = &current[owner];
            let bot = &current[partner];
            let stacked = Matrix::vstack(&[top, bot]);
            let f = kern::local_qr(m, group.proc(owner), &stacked);
            TreeNode {
                owner,
                partner,
                top_rows: top.rows(),
                bot_rows: bot.rows(),
                factors: f,
            }
        });
        for node in &mut nodes {
            current_r[node.owner] = node.factors.r.clone();
        }
        levels.push(nodes);
        stride *= 2;
    }

    Tsqr {
        n,
        group,
        leaves,
        levels,
        r: current_r[0].clone(),
    }
}

/// Expand the implicit tree `Q` into an explicit `m × n` factor,
/// distributed in the same 1D row-block layout as the input.
///
/// Down-sweep: rank 0 seeds the root with `I_n`; each tree node applies
/// its merge-`Q` to its slab and ships the bottom part to its partner;
/// leaves apply their local `Q`.
pub fn explicit_q(m: &Machine, t: &Tsqr, out: &mut DistMatrix) {
    let g = t.group.len();
    let n = t.n;
    assert_eq!(out.grid(), &t.group, "output must live on the TSQR group");
    assert_eq!(out.shape().1, n);

    // Per-rank current slab.
    let mut slab: Vec<Option<Matrix>> = vec![None; g];
    let root_rows = t.r.rows();
    let mut seed = Matrix::zeros(root_rows, n);
    for i in 0..root_rows.min(n) {
        seed.set(i, i, 1.0);
    }
    slab[0] = Some(seed);

    // Walk the tree top-down. Within a level the nodes own disjoint
    // (owner, partner) slabs, so the node applications run concurrently:
    // take the inputs in order, apply in parallel, store in order.
    for level in t.levels.iter().rev() {
        let inputs: Vec<Matrix> = level
            .iter()
            .map(|node| {
                slab[node.owner]
                    .take()
                    .expect("tree down-sweep: owner slab missing")
            })
            .collect();
        let split = exec::par_ranks(level.len(), |idx| {
            let node = &level[idx];
            // Pad to the stacked height (the slab may be narrower when
            // leaf blocks had fewer rows than columns).
            let total = node.top_rows + node.bot_rows;
            let mut cin = Matrix::zeros(total, n);
            cin.set_block(0, 0, &inputs[idx]);
            m.charge_flops(
                t.group.proc(node.owner),
                ca_dla::costs::apply_q_flops(total, node.factors.k(), n),
            );
            apply_q(&node.factors.u, &node.factors.t, &mut cin);
            let top = cin.block(0, 0, node.top_rows, n);
            let bot = cin.block(node.top_rows, 0, node.bot_rows, n);
            (top, bot)
        });
        let mut moves = Vec::new();
        for (node, (top, bot)) in level.iter().zip(split) {
            moves.push((
                t.group.proc(node.owner),
                t.group.proc(node.partner),
                bot.len() as u64,
            ));
            slab[node.owner] = Some(top);
            slab[node.partner] = Some(bot);
        }
        coll::exchange(m, &t.group, &moves);
    }

    // Leaf application — independent per rank.
    let slabs: Vec<Matrix> = slab
        .into_iter()
        .map(|s| s.expect("leaf slab missing"))
        .collect();
    let leaf_out = exec::par_ranks(g, |rank| {
        let leaf = &t.leaves[rank];
        let rows = leaf.u.rows();
        let mut cin = Matrix::zeros(rows, n);
        cin.set_block(0, 0, &slabs[rank]);
        m.charge_flops(
            t.group.proc(rank),
            ca_dla::costs::apply_q_flops(rows, leaf.k(), n),
        );
        apply_q(&leaf.u, &leaf.t, &mut cin);
        cin
    });
    for (rank, cin) in leaf_out.into_iter().enumerate() {
        *out.local_mut(rank) = cin;
    }
    m.step(t.group.procs(), 1);
}

/// Convenience: TSQR followed by explicit-`Q` expansion; returns
/// `(Q, R)` with `Q` on the input's layout and `R` on rank 0.
pub fn tsqr_explicit(m: &Machine, a: &DistMatrix) -> (DistMatrix, Matrix) {
    let t = tsqr(m, a);
    let (rows, n) = a.shape();
    let mut q = DistMatrix::zeros(m, &t.group, rows, n);
    explicit_q(m, &t, &mut q);
    (q, t.r.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::{matmul, Trans};
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check_tsqr(mrows: usize, n: usize, g: usize, seed: u64) {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, r) = tsqr_explicit(&m, &da);
        let qd = q.assemble_unchecked();
        let k = r.rows();
        // QᵀQ = I.
        let qtq = matmul(&qd, Trans::T, &qd, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(n.min(qtq.rows()))) < 1e-11,
            "m={mrows} n={n} g={g}: Q not orthonormal ({})",
            qtq.max_diff(&Matrix::identity(n))
        );
        // QR = A.
        let qr = matmul(&qd, Trans::N, &r, Trans::N);
        assert!(qr.max_diff(&a) < 1e-11, "m={mrows} n={n} g={g}: QR ≠ A");
        // R upper-triangular.
        for i in 0..k {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn power_of_two_groups() {
        check_tsqr(64, 6, 8, 90);
        check_tsqr(32, 4, 4, 91);
    }

    #[test]
    fn non_power_of_two_group() {
        check_tsqr(60, 5, 6, 92);
        check_tsqr(21, 3, 3, 93);
    }

    #[test]
    fn single_processor_degenerates_to_local_qr() {
        check_tsqr(10, 4, 1, 94);
    }

    #[test]
    fn leaf_blocks_shorter_than_columns() {
        // 5 columns but only 4 rows per leaf: trapezoidal leaf Rs.
        check_tsqr(16, 5, 4, 95);
    }

    #[test]
    fn r_agrees_with_sequential_up_to_signs() {
        let m = machine(4);
        let grid = Grid::new_2d((0..4).collect(), 4, 1);
        let mut rng = StdRng::seed_from_u64(96);
        let a = gen::random_matrix(&mut rng, 40, 5);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let t = tsqr(&m, &da);
        let seq = ca_dla::qr::qr_factor(&a, 5);
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (t.r.get(i, j).abs() - seq.r.get(i, j).abs()).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    t.r.get(i, j),
                    seq.r.get(i, j)
                );
            }
        }
    }

    #[test]
    fn communication_is_logarithmic_in_group_size() {
        // Per-proc W for TSQR is O(n² log g): it must grow far slower
        // than linearly in g.
        let n = 8;
        let mut w = Vec::new();
        for g in [2usize, 8] {
            let m = machine(g);
            let grid = Grid::new_2d((0..g).collect(), g, 1);
            let a = Matrix::zeros(16 * g, n);
            let da = DistMatrix::from_dense(&m, &grid, &a);
            let snap = m.snapshot();
            let _ = tsqr(&m, &da);
            m.fence();
            w.push(m.costs_since(&snap).horizontal_words as f64);
        }
        assert!(w[1] / w[0] < 4.0, "TSQR W grew too fast: {w:?}");
    }
}
