//! rect-QR: communication-efficient QR of arbitrary rectangular matrices
//! with Householder output (Algorithm III.2 / Theorem III.6 +
//! Corollary III.7).
//!
//! The paper's Algorithm III.2 uses a binary *row*-reduction tree with a
//! square QR at each node; it also notes (§III.B) that "alternate
//! communication-efficient formulations of a rectangular QR algorithm
//! are also possible (for instance by combining column-recursion \[30\]
//! with communication-efficient matrix multiplication, see \[31\])". We
//! implement that sanctioned variant, which reaches the same cost shape
//! with far simpler machinery on the virtual machine:
//!
//! * tall base cases (`n ≤ max(n₀, m/g)`) use the TSQR row tree — which
//!   *is* Algorithm III.2's recursion shape for `m ≫ n` — followed by
//!   Householder reconstruction (Corollary III.7);
//! * wider panels recurse on column halves, applying the left factor to
//!   the right half with the recursive rectangular multiply of
//!   Lemma III.2, so the update communication matches the
//!   `O(mᵟn²⁻ᵟ/pᵟ)` term of Theorem III.6.
//!
//! The output is the aggregated compact-WY pair `(U, T)` plus `R` — the
//! exact interface Algorithms IV.1/IV.2 consume.

use crate::carma;
use crate::dist::DistMatrix;
use crate::grid::Grid;
use crate::kern;
use crate::reconstruct;
use crate::tsqr;
use ca_bsp::Machine;
use ca_dla::Matrix;

/// Result of a distributed panel QR: `A = (I − U·T·Uᵀ)·[R; 0]`.
#[derive(Debug, Clone)]
pub struct PanelQr {
    /// 1D group the factorization ran on.
    pub group: Grid,
    /// `m × k` unit-lower-trapezoidal Householder vectors, 1D row layout.
    pub u: DistMatrix,
    /// `k × k` upper-triangular aggregated `T` (assembled numerically;
    /// storage and operations charged as distributed).
    pub t: Matrix,
    /// `k × n` upper-triangular/trapezoidal factor.
    pub r: Matrix,
}

/// Default base-case panel width.
pub const BASE_COLS: usize = 32;

/// Distributed QR of `a` (1D row layout, `m ≥ n`): returns the
/// Householder representation per Corollary III.7.
pub fn rect_qr(machine: &Machine, a: &DistMatrix) -> PanelQr {
    rect_qr_with_base(machine, a, BASE_COLS)
}

/// [`rect_qr`] with an explicit base-case width (testing / tuning).
pub fn rect_qr_with_base(machine: &Machine, a: &DistMatrix, base: usize) -> PanelQr {
    let group = a.grid().clone();
    let (mrows, n) = a.shape();
    assert!(mrows >= n, "rect_qr requires m ≥ n (got {mrows} × {n})");
    let g = group.len();

    // Base case: single processor — local QR gives (U, T, R) directly.
    if g == 1 {
        let f = kern::local_qr(machine, group.proc(0), a.local(0));
        let u = DistMatrix::from_dense_free(machine, &group, &f.u);
        return PanelQr {
            group,
            u,
            t: f.t,
            r: f.r,
        };
    }

    // Base case: tall panel — TSQR + reconstruction.
    if n <= base.max(mrows.div_ceil(g)) {
        let t = tsqr::tsqr(machine, a);
        let mut q = DistMatrix::zeros(machine, &group, mrows, n);
        tsqr::explicit_q(machine, &t, &mut q);
        let rec = reconstruct::reconstruct(machine, &q);
        let r = rec.fix_r(&t.r);
        q.release(machine);
        return PanelQr {
            group,
            u: rec.u,
            t: rec.t,
            r,
        };
    }

    // Column recursion.
    let n1 = n / 2;
    let n2 = n - n1;

    let left = a.block_redist(machine, 0, 0, mrows, n1, &group);
    let f1 = rect_qr_with_base(machine, &left, base);
    left.release(machine);

    // Apply Q₁ᵀ to the right half: C ← C − U₁·(T₁ᵀ·(U₁ᵀ·C)).
    let u1_dense = f1.u.assemble_unchecked();
    let mut c = a.assemble_unchecked().block(0, n1, mrows, n2);
    let u1t_c = carma::carma_spread(machine, &group, &u1_dense.transpose(), &c, 1);
    let t1t = f1.t.transpose();
    let s = carma::carma_spread(machine, &group, &t1t, &u1t_c, 1);
    let upd = carma::carma_spread(machine, &group, &u1_dense, &s, 1);
    c.axpy(-1.0, &upd);
    for &pid in group.procs() {
        machine.charge_flops(pid, (mrows * n2) as u64 / g as u64);
    }

    // R₁₂ is the top n1 rows of the updated right half; the right
    // recursion runs on the rows below.
    let r12 = c.block(0, 0, n1, n2);
    let tail = c.block(n1, 0, mrows - n1, n2);
    let tail_dist = DistMatrix::from_dense_free(machine, &group, &tail);
    let f2 = rect_qr_with_base(machine, &tail_dist, base);
    tail_dist.release(machine);

    // Assemble U = [U₁ | [0; U₂]] (one realignment exchange).
    let u2_dense = f2.u.assemble_unchecked();
    let mut u_dense = Matrix::zeros(mrows, n);
    u_dense.set_block(0, 0, &u1_dense);
    u_dense.set_block(n1, n1, &u2_dense);
    for &pid in group.procs() {
        machine.charge_comm(pid, (mrows * n) as u64 / (2 * g as u64));
    }
    machine.step(group.procs(), 1);
    let u = DistMatrix::from_dense_free(machine, &group, &u_dense);

    // Aggregate T = [T₁, T₁₂; 0, T₂] with T₁₂ = −T₁·(U₁ᵀ·U₂̂)·T₂,
    // where U₂̂ is U₂ embedded at rows n1…
    let mut u2_embedded = Matrix::zeros(mrows, n2);
    u2_embedded.set_block(n1, 0, &u2_dense);
    let u1t_u2 = carma::carma_spread(machine, &group, &u1_dense.transpose(), &u2_embedded, 1);
    let t1_u = carma::carma_spread(machine, &group, &f1.t, &u1t_u2, 1);
    let mut t12 = carma::carma_spread(machine, &group, &t1_u, &f2.t, 1);
    t12.scale(-1.0);
    let mut t = Matrix::zeros(n, n);
    t.set_block(0, 0, &f1.t);
    t.set_block(0, n1, &t12);
    t.set_block(n1, n1, &f2.t);

    // Assemble R = [R₁, R₁₂; 0, R₂].
    let mut r = Matrix::zeros(n, n);
    r.set_block(0, 0, &f1.r);
    r.set_block(0, n1, &r12);
    r.set_block(n1, n1, &f2.r);

    f1.u.release(machine);
    f2.u.release(machine);

    PanelQr { group, u, t, r }
}

/// **Algorithm III.2 verbatim**: the binary *row*-reduction-tree QR.
///
/// This is the paper's pseudocode as written (complementing the
/// column-recursive [`rect_qr`], see module docs): partition the rows
/// into `r = min(p, ⌈m/2n⌉)` chunks, factor each on `p/r` processors
/// (line 6 — disjoint groups, concurrent), recurse on the stacked `R`
/// factors with all `p` processors (line 7), then rebuild the explicit
/// orthogonal factor as `Qᵢ = Wᵢ·Zᵢ` (line 11, Lemma III.2 multiplies).
/// `q_max` caps the processors used by (nearly) square base cases, as
/// in Theorem III.6's proof.
///
/// Returns the explicit `m×n` `Q` (1D row layout) and `R`; apply
/// Corollary III.7 ([`crate::reconstruct`]) for the Householder form.
pub fn rect_qr_tree(
    machine: &Machine,
    a: &DistMatrix,
    q_max: usize,
) -> (DistMatrix, Matrix) {
    let group = a.grid().clone();
    let (mrows, n) = a.shape();
    assert!(mrows >= n, "rect_qr_tree requires m ≥ n");
    let p = group.len();

    // Line 1: sequential base case.
    if p == 1 {
        let f = kern::local_qr(machine, group.proc(0), a.local(0));
        let q = ca_dla::qr::explicit_q(&f.u, &f.t, n);
        let mut r = Matrix::zeros(n.min(mrows), n);
        r.set_block(0, 0, &f.r);
        return (DistMatrix::from_dense_free(machine, &group, &q), r);
    }

    // Line 2: (nearly) square base case on min(p, q_max) processors.
    if mrows <= 2 * n {
        let used = p.min(q_max).max(1);
        let sub = group.prefix(used);
        let da = a.block_redist(machine, 0, 0, mrows, n, &sub);
        let f = rect_qr_with_base(machine, &da, BASE_COLS);
        da.release(machine);
        let q_sub = explicit_q(machine, &f);
        let q = q_sub.redistribute(machine, &group);
        q_sub.release(machine);
        let r = f.r.clone();
        f.u.release(machine);
        return (q, r);
    }

    // Line 3: partition A into r row chunks.
    let r_chunks = p.min(mrows.div_ceil(2 * n)).max(2).min(p);
    let row_splits = crate::dist::splits(mrows, r_chunks);
    let groups = if p.is_multiple_of(r_chunks) {
        group.split(r_chunks)
    } else {
        // Uneven processor split: ⌊p/r⌋ each, +1 for the remainder.
        let base = p / r_chunks;
        let extra = p % r_chunks;
        let mut out = Vec::new();
        let mut at = 0;
        for i in 0..r_chunks {
            let len = base + usize::from(i < extra);
            out.push(Grid::new_1d(group.procs()[at..at + len].to_vec()));
            at += len;
        }
        out
    };

    // Lines 4–6: concurrent recursion per chunk (disjoint groups).
    let mut ws: Vec<DistMatrix> = Vec::with_capacity(r_chunks);
    let mut rs: Vec<Matrix> = Vec::with_capacity(r_chunks);
    for (i, sub) in groups.iter().enumerate() {
        let (r0, r1) = (row_splits[i], row_splits[i + 1]);
        let chunk = a.block_redist(machine, r0, 0, r1 - r0, n, sub);
        let (w_i, r_i) = rect_qr_tree(machine, &chunk, q_max);
        chunk.release(machine);
        ws.push(w_i);
        let mut r_pad = Matrix::zeros(n, n);
        r_pad.set_block(0, 0, &r_i.block(0, 0, r_i.rows().min(n), n));
        rs.push(r_pad);
    }

    // Line 7: QR of the stacked Rs with all p processors.
    let stacked_refs: Vec<&Matrix> = rs.iter().collect();
    let stacked = Matrix::vstack(&stacked_refs);
    let dstacked = DistMatrix::from_dense(machine, &group, &stacked);
    let (z, r_final) = rect_qr_tree(machine, &dstacked, q_max);
    dstacked.release(machine);

    // Lines 8–11: Qᵢ = Wᵢ·Zᵢ per chunk (Lemma III.2 multiplies on the
    // chunk's group).
    let z_dense = z.assemble_unchecked();
    z.release(machine);
    let mut q_dense = Matrix::zeros(mrows, n);
    // Disjoint chunk groups, fold-free multiplies: run them in parallel
    // and write the disjoint row slabs back in order.
    let q_chunks = crate::exec::par_ranks(groups.len(), |i| {
        let w_dense = ws[i].assemble_unchecked();
        let z_i = z_dense.block(i * n, 0, n, n);
        carma::carma_spread(machine, &groups[i], &w_dense, &z_i, 1)
    });
    for (i, q_i) in q_chunks.iter().enumerate() {
        q_dense.set_block(row_splits[i], 0, q_i);
    }
    for w in ws {
        w.release(machine);
    }
    machine.fence();
    (
        DistMatrix::from_dense_free(machine, &group, &q_dense),
        r_final,
    )
}

/// Apply `Qᵀ` from a [`PanelQr`] to a distributed matrix (same row
/// space): `C ← C − U·(Tᵀ·(Uᵀ·C))` via Lemma III.2 multiplies.
pub fn apply_qt(machine: &Machine, f: &PanelQr, c: &mut DistMatrix) {
    let group = &f.group;
    let u_dense = f.u.assemble_unchecked();
    let c_dense = c.assemble_unchecked();
    let utc = carma::carma_spread(machine, group, &u_dense.transpose(), &c_dense, 1);
    let ttutc = carma::carma_spread(machine, group, &f.t.transpose(), &utc, 1);
    let upd = carma::carma_spread(machine, group, &u_dense, &ttutc, 1);
    let mut out = c_dense;
    out.axpy(-1.0, &upd);
    for &pid in group.procs() {
        machine.charge_flops(pid, (out.len() as u64).div_ceil(group.len() as u64));
    }
    *c = DistMatrix::from_dense_free(machine, c.grid(), &out);
}

/// Explicit `m × k` orthonormal factor of a [`PanelQr`]
/// (`Q = (I − U·T·Uᵀ)·[I; 0]`), distributed in the panel's row layout.
pub fn explicit_q(machine: &Machine, f: &PanelQr) -> DistMatrix {
    let (mrows, k) = f.u.shape();
    let group = &f.group;
    let mut eye = Matrix::zeros(mrows, k);
    for i in 0..k {
        eye.set(i, i, 1.0);
    }
    let u_dense = f.u.assemble_unchecked();
    // Uᵀ·[I;0] = U₁ᵀ — cheap (triangular read), still charged.
    let u1t = carma::carma_spread(machine, group, &u_dense.transpose(), &eye, 1);
    let tu = carma::carma_spread(machine, group, &f.t, &u1t, 1);
    let upd = carma::carma_spread(machine, group, &u_dense, &tu, 1);
    eye.axpy(-1.0, &upd);
    DistMatrix::from_dense_free(machine, group, &eye)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::{matmul, Trans};
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check_rect_qr(mrows: usize, n: usize, g: usize, base: usize, seed: u64) {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let f = rect_qr_with_base(&m, &da, base);
        // A = (I − U·T·Uᵀ)·[R; 0].
        let u = f.u.assemble_unchecked();
        let mut stack = Matrix::zeros(mrows, n);
        stack.set_block(0, 0, &f.r);
        let ut = matmul(&u, Trans::T, &stack, Trans::N);
        let tut = matmul(&f.t, Trans::N, &ut, Trans::N);
        let corr = matmul(&u, Trans::N, &tut, Trans::N);
        stack.axpy(-1.0, &corr);
        assert!(
            stack.max_diff(&a) < 1e-8,
            "m={mrows} n={n} g={g} base={base}: A deviates by {}",
            stack.max_diff(&a)
        );
        // R upper-triangular; U unit-lower-trapezoidal.
        for i in 0..n {
            for j in 0..i {
                assert!(f.r.get(i, j).abs() < 1e-9);
            }
            assert!((u.get(i, i) - 1.0).abs() < 1e-9);
            for j in i + 1..n {
                assert!(u.get(i, j).abs() < 1e-9);
            }
        }
        // Orthogonality of the implied Q.
        let q = explicit_q(&m, &f);
        let qd = q.assemble_unchecked();
        let qtq = matmul(&qd, Trans::T, &qd, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(n)) < 1e-8,
            "QᵀQ deviates by {}",
            qtq.max_diff(&Matrix::identity(n))
        );
    }

    #[test]
    fn tall_panel_tsqr_path() {
        check_rect_qr(48, 6, 4, 8, 140);
    }

    #[test]
    fn square_matrix_column_recursion() {
        check_rect_qr(16, 16, 4, 4, 141);
    }

    #[test]
    fn nearly_square_2n_by_n() {
        check_rect_qr(24, 12, 4, 4, 142);
    }

    #[test]
    fn single_processor() {
        check_rect_qr(20, 10, 1, 4, 143);
    }

    #[test]
    fn wide_group_tall_matrix() {
        check_rect_qr(64, 10, 8, 4, 144);
    }

    #[test]
    fn apply_qt_matches_explicit() {
        let g = 4;
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(145);
        let a = gen::random_matrix(&mut rng, 20, 8);
        let c0 = gen::random_matrix(&mut rng, 20, 5);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let f = rect_qr_with_base(&m, &da, 4);
        let q = explicit_q(&m, &f).assemble_unchecked();
        // Full m×m Q action: Qᵀ·C where Q = I − U T Uᵀ.
        let u = f.u.assemble_unchecked();
        let utc = matmul(&u, Trans::T, &c0, Trans::N);
        let ttutc = matmul(&f.t.transpose(), Trans::N, &utc, Trans::N);
        let mut want = c0.clone();
        want.axpy(-1.0, &matmul(&u, Trans::N, &ttutc, Trans::N));
        let mut dc = DistMatrix::from_dense(&m, &grid, &c0);
        apply_qt(&m, &f, &mut dc);
        assert!(dc.assemble_unchecked().max_diff(&want) < 1e-9);
        // And QᵀA has R on top.
        let qta = matmul(&q, Trans::T, &a, Trans::N);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    (qta.get(i, j) - f.r.get(i, j)).abs() < 1e-8,
                    "R mismatch at ({i},{j})"
                );
            }
        }
    }

    fn check_tree(mrows: usize, n: usize, g: usize, q_max: usize, seed: u64) {
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen::random_matrix(&mut rng, mrows, n);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (q, r) = rect_qr_tree(&m, &da, q_max);
        let qd = q.assemble_unchecked();
        // Q orthonormal, QR = A, R upper-triangular.
        let qtq = matmul(&qd, Trans::T, &qd, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(n)) < 1e-8,
            "m={mrows} n={n} g={g}: QᵀQ deviates by {}",
            qtq.max_diff(&Matrix::identity(n))
        );
        let qr = matmul(&qd, Trans::N, &r.block(0, 0, n.min(r.rows()), n), Trans::N);
        assert!(
            qr.max_diff(&a) < 1e-8 * (1.0 + a.norm_max()),
            "m={mrows} n={n} g={g}: QR ≠ A ({})",
            qr.max_diff(&a)
        );
        for i in 0..r.rows().min(n) {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tree_variant_tall_matrix() {
        check_tree(128, 8, 4, 4, 160);
    }

    #[test]
    fn tree_variant_very_tall_more_chunks_than_procs() {
        check_tree(256, 4, 2, 2, 161);
    }

    #[test]
    fn tree_variant_square_base_case() {
        check_tree(24, 12, 4, 2, 162);
    }

    #[test]
    fn tree_variant_uneven_processor_split() {
        // p = 3 processors over r = 2+ chunks exercises the remainder
        // path.
        check_tree(96, 8, 3, 2, 163);
    }

    #[test]
    fn tree_variant_matches_column_recursive_r() {
        // Both variants factor the same matrix; |R| must agree up to
        // row signs (QR uniqueness).
        let g = 4;
        let m = machine(g);
        let grid = Grid::new_2d((0..g).collect(), g, 1);
        let mut rng = StdRng::seed_from_u64(164);
        let a = gen::random_matrix(&mut rng, 64, 8);
        let da = DistMatrix::from_dense(&m, &grid, &a);
        let (_, r_tree) = rect_qr_tree(&m, &da, g);
        let f = rect_qr_with_base(&m, &da, 4);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    (r_tree.get(i, j).abs() - f.r.get(i, j).abs()).abs() < 1e-8,
                    "R mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn communication_improves_with_group_size_for_square() {
        let n = 64;
        let mut w = Vec::new();
        for g in [4usize, 16] {
            let m = machine(g);
            let grid = Grid::new_2d((0..g).collect(), g, 1);
            let mut rng = StdRng::seed_from_u64(146);
            let a = gen::random_matrix(&mut rng, n, n);
            let da = DistMatrix::from_dense(&m, &grid, &a);
            let snap = m.snapshot();
            let _ = rect_qr_with_base(&m, &da, 8);
            m.fence();
            w.push(m.costs_since(&snap).horizontal_words as f64);
        }
        // Per-proc W should not grow when p grows.
        assert!(w[1] <= w[0] * 1.2, "rect_qr W grew with p: {w:?}");
    }
}
