//! Cost-charged wrappers around the sequential kernels of `ca-dla`.
//!
//! Whenever an algorithm runs a local kernel on a virtual processor, it
//! calls these wrappers so the flops (`F`) and vertical traffic (`Q`)
//! enter the ledger with the formulas of Lemmas III.1/III.4.

use ca_bsp::{Machine, ProcId};
use ca_dla::costs;
use ca_dla::gemm::{gemm, gemm_view, Trans};
use ca_dla::lu::{lu_nopivot, trsm_left, trsm_right, Diag, Triangle};
use ca_dla::qr::{qr_factor, QrFactors};
use ca_dla::view::{MatrixView, MatrixViewMut};
use ca_dla::Matrix;

/// Charged local GEMM: `C ← α·op(A)·op(B) + β·C` on processor `j`.
#[allow(clippy::too_many_arguments)] // mirrors BLAS dgemm's signature
pub fn local_gemm(
    m: &Machine,
    j: ProcId,
    alpha: f64,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    beta: f64,
    c: &mut Matrix,
) {
    let (mm, kk) = match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    };
    let nn = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    m.charge_flops(j, costs::gemm_flops(mm, kk, nn));
    m.charge_vert(j, costs::gemm_vert(mm, kk, nn, m.cache_words()));
    gemm(alpha, a, ta, b, tb, beta, c);
}

/// Charged local GEMM returning a fresh output matrix.
pub fn local_matmul(
    m: &Machine,
    j: ProcId,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
) -> Matrix {
    let mm = match ta {
        Trans::N => a.rows(),
        Trans::T => a.cols(),
    };
    let nn = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    let mut c = Matrix::zeros(mm, nn);
    local_gemm(m, j, 1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

/// Charged local GEMM writing `op(A)·op(B)` into a strided output view
/// (`beta = 0`). Charges are the same shape-derived formulas as
/// [`local_matmul`], and because the GEMM entry pre-scales the output
/// before accumulating, the stored bits equal a fresh-matrix product
/// copied into place — the zero-copy leaf of the task-graph path.
pub fn local_matmul_into(
    m: &Machine,
    j: ProcId,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    tb: Trans,
    out: &mut MatrixViewMut,
) {
    let (mm, kk) = match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    };
    let nn = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    m.charge_flops(j, costs::gemm_flops(mm, kk, nn));
    m.charge_vert(j, costs::gemm_vert(mm, kk, nn, m.cache_words()));
    gemm_view(1.0, a, ta, b, tb, 0.0, out);
}

/// Charged local Householder QR on processor `j`.
pub fn local_qr(m: &Machine, j: ProcId, a: &Matrix) -> QrFactors {
    m.charge_flops(j, costs::qr_flops(a.rows(), a.cols()));
    m.charge_vert(j, costs::qr_vert(a.rows(), a.cols(), m.cache_words()));
    qr_factor(a, 32)
}

/// Charged local non-pivoted LU on processor `j`.
pub fn local_lu(m: &Machine, j: ProcId, a: &Matrix) -> (Matrix, Matrix) {
    m.charge_flops(j, costs::lu_flops(a.rows()));
    m.charge_vert(j, (a.rows() * a.cols()) as u64);
    lu_nopivot(a)
}

/// Charged left triangular solve on processor `j`.
pub fn local_trsm_left(
    m: &Machine,
    j: ProcId,
    t: &Matrix,
    tri: Triangle,
    diag: Diag,
    transposed: bool,
    b: &mut Matrix,
) {
    m.charge_flops(j, costs::trsm_flops(t.rows(), b.cols()));
    m.charge_vert(j, (t.rows() * t.cols() + b.rows() * b.cols()) as u64);
    trsm_left(t, tri, diag, transposed, b);
}

/// Charged right triangular solve on processor `j`.
pub fn local_trsm_right(
    m: &Machine,
    j: ProcId,
    t: &Matrix,
    tri: Triangle,
    diag: Diag,
    transposed: bool,
    b: &mut Matrix,
) {
    m.charge_flops(j, costs::trsm_flops(t.rows(), b.rows()));
    m.charge_vert(j, (t.rows() * t.cols() + b.rows() * b.cols()) as u64);
    trsm_right(t, tri, diag, transposed, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;

    #[test]
    fn gemm_charges_2mnk() {
        let m = Machine::new(MachineParams::new(2));
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        let _ = local_matmul(&m, 1, &a, Trans::N, &b, Trans::N);
        m.fence();
        assert_eq!(m.report().flops, 2 * 4 * 4 * 4);
        assert_eq!(m.flops_per_proc()[0], 0);
    }

    #[test]
    fn qr_charges_to_named_proc() {
        let m = Machine::new(MachineParams::new(3));
        let a = Matrix::from_fn(6, 3, |i, j| (i + j) as f64 + 1.0);
        let _ = local_qr(&m, 2, &a);
        let f = m.flops_per_proc();
        assert!(f[2] > 0);
        assert_eq!(f[0] + f[1], 0);
    }
}
