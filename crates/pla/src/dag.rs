//! Dependency-driven task-graph executor with superstep lookahead.
//!
//! The BSP executor ([`crate::exec`]) joins every worker at every
//! superstep: panel QR serializes against trailing updates even when
//! their operands are disjoint. This module removes that barrier. A
//! driver expresses one reduction as a [`TaskGraph`] — panel-QR,
//! trailing-update, aggregate and chase-window nodes with explicit data
//! dependencies — and the executor runs any task whose dependencies
//! have completed, regardless of which superstep the barrier path would
//! have assigned it to (depth-1 panel lookahead falls out naturally:
//! panel `k+1`'s first tasks become ready while panel `k`'s trailing
//! updates are still in flight).
//!
//! ## Deterministic charging (the ledger stays bit-identical)
//!
//! Task bodies do not touch the live F/W/Q/S ledger. Each body runs
//! under [`Machine::capture`], which redirects every `charge_*`,
//! `alloc`/`free` and `step` into a per-task [`ChargeLog`]. After all
//! tasks have completed, a *replay pass* applies the logs in task
//! **insertion order**, executing [`Machine::fence`] wherever the
//! driver placed a fence marker ([`TaskGraph::add_fence`]). Drivers
//! insert tasks in the barrier path's program order, so the replayed
//! event stream — and therefore the folded per-phase maxima, superstep
//! counts and peak-memory high-water marks — is bitwise the stream the
//! barrier path produces, no matter how execution interleaved.
//!
//! Because capture is thread-local, each body is additionally wrapped
//! in [`exec::with_forced_serial`]: nested `par_ranks`/`join` dispatch
//! stays on the body's worker thread, so no charge escapes its log.
//! Parallelism comes from running independent *tasks* concurrently,
//! not from splitting one task's interior.
//!
//! ## Scheduling
//!
//! With one worker (single hardware thread, `CA_SERIAL`, or a
//! single-task graph) bodies run inline in insertion order — zero
//! scheduling overhead, and trivially the same order the barrier path
//! executes. With more workers, a scoped thread pool (the same
//! `std::thread::scope` machinery the rayon shim uses) pulls tasks
//! from a ready queue guarded by a mutex/condvar pair; completion of a
//! task decrements its dependents' in-degrees and enqueues any that
//! reach zero.
//!
//! Observability: every body runs inside a `dag.task` kernel span, and
//! the `dag.ready_queue_depth` counter records the high-water mark of
//! the ready queue — the visible measure of how much work lookahead
//! exposes beyond the barrier path's one-phase window.

use crate::exec;
use ca_bsp::{ChargeLog, Machine};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// Identifier of a task within one [`TaskGraph`] (its insertion index).
pub type TaskId = usize;

static READY_DEPTH: ca_obs::Counter = ca_obs::Counter::new("dag.ready_queue_depth");
static TASKS_RUN: ca_obs::Counter = ca_obs::Counter::new("dag.tasks_run");

/// A write-once slot passing data between tasks of a [`TaskGraph`].
///
/// The producer task calls [`TaskCell::set`]; consumer tasks declare a
/// dependency on the producer and read with [`TaskCell::with_ref`] or
/// [`TaskCell::take`]. The executor's queue synchronization provides
/// the happens-before edge; the mutex makes the handoff sound.
pub struct TaskCell<T>(Mutex<Option<T>>);

impl<T> TaskCell<T> {
    /// An empty cell.
    pub fn new() -> Self {
        TaskCell(Mutex::new(None))
    }

    /// Store the produced value (a task runs at most once, so a double
    /// set indicates a mis-built graph).
    pub fn set(&self, v: T) {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        assert!(slot.is_none(), "TaskCell set twice");
        *slot = Some(v);
    }

    /// Take the value out (panics if the producer has not run).
    pub fn take(&self) -> T {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("TaskCell read before its producer ran")
    }

    /// Borrow the value in place.
    pub fn with_ref<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(slot.as_ref().expect("TaskCell read before its producer ran"))
    }

    /// Borrow the value mutably in place.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(slot.as_mut().expect("TaskCell read before its producer ran"))
    }
}

impl<T> Default for TaskCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

type Body<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Task<'env> {
    label: &'static str,
    deps: Vec<TaskId>,
    body: Mutex<Option<Body<'env>>>,
}

enum Item {
    Task(TaskId),
    Fence,
}

/// A dependency graph of charged task bodies plus the fence positions
/// of the equivalent barrier-path schedule. Build with
/// [`TaskGraph::add_task`]/[`TaskGraph::add_fence`] in the barrier
/// path's program order, then [`TaskGraph::run`].
pub struct TaskGraph<'env> {
    machine: &'env Machine,
    tasks: Vec<Task<'env>>,
    schedule: Vec<Item>,
}

impl<'env> TaskGraph<'env> {
    /// An empty graph charging `machine`.
    pub fn new(machine: &'env Machine) -> Self {
        TaskGraph {
            machine,
            tasks: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Append a task. `deps` are ids of previously added tasks; the
    /// body may start as soon as all of them have completed. Insertion
    /// order must be the barrier path's program order — it defines the
    /// deterministic charge-replay order, and it is a topological order
    /// by construction (deps point backwards only).
    pub fn add_task(
        &mut self,
        label: &'static str,
        deps: &[TaskId],
        body: impl FnOnce() + Send + 'env,
    ) -> TaskId {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "task dependency {d} does not precede task {id}");
        }
        self.tasks.push(Task {
            label,
            deps: deps.to_vec(),
            body: Mutex::new(Some(Box::new(body))),
        });
        self.schedule.push(Item::Task(id));
        id
    }

    /// Mark a superstep barrier of the equivalent barrier-path
    /// schedule. Execution does **not** wait here — the marker only
    /// tells the replay pass where to fold the ledger
    /// ([`Machine::fence`]), keeping the per-phase maxima identical to
    /// the barrier path's.
    pub fn add_fence(&mut self) {
        self.schedule.push(Item::Fence);
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Execute every task (respecting dependencies), then replay the
    /// captured charge logs in insertion order with fences at the
    /// recorded barrier positions.
    pub fn run(self) {
        let n = self.tasks.len();
        let logs: Vec<OnceLock<ChargeLog>> = (0..n).map(|_| OnceLock::new()).collect();
        let workers = if exec::serial_forced() {
            1
        } else {
            rayon::current_num_threads().min(n).max(1)
        };

        if workers <= 1 {
            for (id, task) in self.tasks.iter().enumerate() {
                let log = run_body(task);
                logs[id].set(log).expect("task ran twice");
            }
        } else {
            self.run_pooled(workers, &logs);
        }

        // Deterministic charging pass: insertion order, fences where the
        // barrier path would have fenced.
        for item in &self.schedule {
            match item {
                Item::Task(id) => {
                    let log = logs[*id].get().expect("task never ran");
                    self.machine.replay(log);
                }
                Item::Fence => self.machine.fence(),
            }
        }
    }

    /// Multi-worker execution: scoped threads pulling from a shared
    /// ready queue; task completion releases its dependents.
    fn run_pooled(&self, workers: usize, logs: &[OnceLock<ChargeLog>]) {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, task) in self.tasks.iter().enumerate() {
            indegree[id] = task.deps.len();
            for &d in &task.deps {
                dependents[d].push(id);
            }
        }

        struct State {
            ready: VecDeque<TaskId>,
            indegree: Vec<usize>,
            remaining: usize,
        }
        let mut ready = VecDeque::new();
        for (id, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                ready.push_back(id);
            }
        }
        READY_DEPTH.record_max(ready.len() as u64);
        let state = Mutex::new(State {
            ready,
            indegree,
            remaining: n,
        });
        let cv = Condvar::new();
        let state = &state;
        let cv = &cv;
        let dependents = &dependents;
        let tasks = &self.tasks;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let id = {
                        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if st.remaining == 0 {
                                return;
                            }
                            if let Some(id) = st.ready.pop_front() {
                                break id;
                            }
                            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    let log = run_body(&tasks[id]);
                    logs[id].set(log).expect("task ran twice");
                    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                    st.remaining -= 1;
                    for &dep in &dependents[id] {
                        st.indegree[dep] -= 1;
                        if st.indegree[dep] == 0 {
                            st.ready.push_back(dep);
                        }
                    }
                    READY_DEPTH.record_max(st.ready.len() as u64);
                    drop(st);
                    cv.notify_all();
                });
            }
        });
    }
}

/// Run one task body under a `dag.task` span with its charges captured
/// and nested dispatch pinned to this thread.
fn run_body(task: &Task<'_>) -> ChargeLog {
    let _span = ca_obs::kernel_span("dag.task");
    TASKS_RUN.add(1);
    let body = task
        .body
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .unwrap_or_else(|| panic!("task {:?} executed twice", task.label));
    let ((), log) = Machine::capture(|| exec::with_forced_serial(body));
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_and_respects_dependencies() {
        let m = Machine::new(MachineParams::new(2));
        let order = Mutex::new(Vec::new());
        let mut g = TaskGraph::new(&m);
        let a = g.add_task("a", &[], || order.lock().unwrap().push("a"));
        let b = g.add_task("b", &[a], || order.lock().unwrap().push("b"));
        let _c = g.add_task("c", &[a, b], || order.lock().unwrap().push("c"));
        g.run();
        let seen = order.into_inner().unwrap();
        assert_eq!(seen.len(), 3);
        let pos = |x: &str| seen.iter().position(|&s| s == x).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn charges_replay_into_fence_phases_like_the_barrier_path() {
        // Barrier path: phase 1 charges (1000 on p0), fence, phase 2
        // charges (10 on p0, 2000 on p1), fence. Folded F must be
        // 1000 + 2000 regardless of execution interleaving.
        let barrier = Machine::new(MachineParams::new(2));
        barrier.charge_flops(0, 1000);
        barrier.fence();
        barrier.charge_flops(0, 10);
        barrier.charge_flops(1, 2000);
        barrier.fence();
        let want = barrier.report();

        let m = Machine::new(MachineParams::new(2));
        let mut g = TaskGraph::new(&m);
        let t1 = g.add_task("phase1", &[], || m.charge_flops(0, 1000));
        g.add_fence();
        g.add_task("phase2a", &[t1], || m.charge_flops(0, 10));
        g.add_task("phase2b", &[], || m.charge_flops(1, 2000));
        g.add_fence();
        g.run();
        assert_eq!(m.report(), want);
    }

    #[test]
    fn task_cells_hand_values_downstream() {
        let m = Machine::new(MachineParams::new(1));
        let cell = TaskCell::new();
        let out = TaskCell::new();
        let mut g = TaskGraph::new(&m);
        let p = g.add_task("produce", &[], || cell.set(21usize));
        g.add_task("consume", &[p], || out.set(cell.take() * 2));
        g.run();
        assert_eq!(out.take(), 42);
    }

    #[test]
    fn wide_graphs_complete_under_contention() {
        let m = Machine::new(MachineParams::new(4));
        let count = AtomicUsize::new(0);
        let mut g = TaskGraph::new(&m);
        let roots: Vec<TaskId> = (0..8)
            .map(|_| {
                g.add_task("root", &[], || {
                    count.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for _ in 0..32 {
            g.add_task("leaf", &roots, || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.add_fence();
        g.run();
        assert_eq!(count.load(Ordering::Relaxed), 40);
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_dependencies_are_rejected() {
        let m = Machine::new(MachineParams::new(1));
        let mut g = TaskGraph::new(&m);
        g.add_task("bad", &[0], || {});
    }
}
