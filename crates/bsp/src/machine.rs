//! The virtual BSP machine: per-processor cost ledger and superstep logic.

use crate::costs::{CostSnapshot, Costs};
use crate::MachineParams;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// One deferred ledger mutation recorded by [`Machine::capture`].
///
/// Every variant mirrors exactly one `Machine` charging entry point, so
/// a replayed log performs the same `fetch_add`/`fetch_max` sequence the
/// captured region would have performed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChargeEvent {
    /// [`Machine::charge_flops`].
    Flops(ProcId, u64),
    /// [`Machine::charge_comm`] (a `charge_transfer` captures as two).
    Comm(ProcId, u64),
    /// [`Machine::charge_vert`].
    Vert(ProcId, u64),
    /// [`Machine::alloc`].
    Alloc(ProcId, u64),
    /// [`Machine::free`].
    Free(ProcId, u64),
    /// [`Machine::step`] over a processor group.
    Step(Vec<ProcId>, u64),
}

/// An ordered log of ledger mutations captured by [`Machine::capture`],
/// replayable later with [`Machine::replay`].
///
/// This is the mechanism behind the task-graph executor's deterministic
/// charging pass: a task's numeric body runs whenever its dependencies
/// allow (possibly crossing what the barrier path treats as a fence
/// boundary), while its ledger charges are logged and replayed by the
/// driver *inside* the original fence phase, in task insertion order.
/// Because every charge value is computed from operand shapes — never
/// from timing or thread identity — a replayed log is identical to the
/// log the barrier path would have produced in place, and the per-phase
/// `Σᵢ maxⱼ` folds (plus the order-sensitive peak-memory high-water
/// mark) come out bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChargeLog {
    events: Vec<ChargeEvent>,
}

impl ChargeLog {
    /// The recorded events, in capture order.
    pub fn events(&self) -> &[ChargeEvent] {
        &self.events
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append every event of `other` after this log's events.
    pub fn extend(&mut self, other: ChargeLog) {
        self.events.extend(other.events);
    }
}

thread_local! {
    /// Active capture log for this thread, if any. Charges from any
    /// `Machine` on this thread are redirected while set.
    static CAPTURE: RefCell<Option<ChargeLog>> = const { RefCell::new(None) };
}

/// Redirect a charge into the active capture log, if one is installed
/// on this thread. Returns `true` when the event was captured.
#[inline]
fn try_capture(make: impl FnOnce() -> ChargeEvent) -> bool {
    CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(log) => {
                log.events.push(make());
                true
            }
            None => false,
        }
    })
}

/// True when a [`Machine::capture`] scope is active on this thread.
fn capturing() -> bool {
    CAPTURE.with(|c| c.borrow().is_some())
}

/// One fenced phase's folded maxima — the per-phase profile behind the
/// paper's `Σᵢ maxⱼ` sums, recordable for diagnostics (see
/// [`Machine::enable_phase_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Max flops by any processor during the phase.
    pub flops: u64,
    /// Max horizontal words by any processor during the phase.
    pub horizontal_words: u64,
    /// Max vertical words by any processor during the phase.
    pub vertical_words: u64,
    /// Processors that did any work or communication in the phase.
    pub active_procs: usize,
}

/// Identifier of a virtual processor, in `0..p`.
pub type ProcId = usize;

/// A virtual BSP machine of `p` processors with a metered cost ledger.
///
/// The machine does not store application data itself — distributed
/// containers (see `ca-pla`) own per-processor buffers and report every
/// word they move and every flop they execute through the `charge_*`
/// methods. All counters are atomic, so the machine is `Sync` and the
/// per-virtual-processor loops of a superstep may be executed on real
/// threads concurrently (see `ca-pla`'s `exec` module). Determinism is
/// preserved regardless of thread interleaving because every mutation
/// between fences is a commutative `fetch_add`/`fetch_max`: the
/// per-processor totals a fold observes are interleaving-independent.
/// The folds themselves ([`Machine::fence`] / [`Machine::report`]) must
/// run at quiescent points — after the worker threads of the phase have
/// been joined — which the executor guarantees by construction.
///
/// ```
/// use ca_bsp::{Machine, MachineParams};
///
/// let m = Machine::new(MachineParams::new(4));
/// m.charge_flops(0, 100);          // processor 0 computes
/// m.charge_transfer(0, 1, 8);      // 8 words move 0 → 1
/// m.fence();                       // end of the superstep
/// let costs = m.report();
/// assert_eq!(costs.flops, 100);    // per-superstep max, summed
/// assert_eq!(costs.horizontal_words, 8);
/// assert_eq!(costs.supersteps, 1);
/// ```
///
/// ## Supersteps and fences
///
/// * [`Machine::step`] advances the private superstep counter of a
///   *subgroup* of processors — used when disjoint groups communicate
///   concurrently (BSP permits independent subgroup exchanges to share
///   global supersteps, so each group's count advances independently).
/// * [`Machine::fence`] is a global barrier: it (1) folds the paper's
///   per-superstep maxima for `F`/`W`/`Q` over the phase that just ended,
///   and (2) aligns every processor's superstep counter to the global
///   maximum plus one.
pub struct Machine {
    params: MachineParams,
    /// Cumulative flops per processor.
    flops: Vec<AtomicU64>,
    /// Cumulative words sent+received per processor.
    comm: Vec<AtomicU64>,
    /// Cumulative vertical (memory<->cache) words per processor.
    vert: Vec<AtomicU64>,
    /// Private superstep counter per processor.
    steps: Vec<AtomicU64>,
    /// Current allocated words per processor.
    mem: Vec<AtomicU64>,
    /// Peak allocated words per processor.
    peak_mem: Vec<AtomicU64>,
    /// Per-processor counter values at the last fence (for phase maxima).
    fence_flops: Vec<AtomicU64>,
    fence_comm: Vec<AtomicU64>,
    fence_vert: Vec<AtomicU64>,
    /// Folded sums of per-phase maxima (the paper's Σᵢ maxⱼ). Only
    /// touched by `fold`, which runs at quiescent points.
    folded_flops: AtomicU64,
    folded_comm: AtomicU64,
    folded_vert: AtomicU64,
    /// Optional per-phase trace (None until enabled).
    trace: Mutex<Option<Vec<PhaseRecord>>>,
}

impl Machine {
    /// Create a machine with the given parameters; all counters zero.
    pub fn new(params: MachineParams) -> Self {
        let p = params.p;
        assert!(p > 0, "machine must have at least one processor");
        let zeros = || (0..p).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Self {
            params,
            flops: zeros(),
            comm: zeros(),
            vert: zeros(),
            steps: zeros(),
            mem: zeros(),
            peak_mem: zeros(),
            fence_flops: zeros(),
            fence_comm: zeros(),
            fence_vert: zeros(),
            folded_flops: AtomicU64::new(0),
            folded_comm: AtomicU64::new(0),
            folded_vert: AtomicU64::new(0),
            trace: Mutex::new(None),
        }
    }

    /// Start recording a [`PhaseRecord`] at every fold (fence/report).
    /// Used by the timeline diagnostics; has no effect on the costs.
    pub fn enable_phase_trace(&self) {
        let mut t = self.trace.lock().unwrap();
        if t.is_none() {
            *t = Some(Vec::new());
        }
    }

    /// The recorded phase trace so far (empty if tracing is off).
    pub fn phase_trace(&self) -> Vec<PhaseRecord> {
        self.trace.lock().unwrap().clone().unwrap_or_default()
    }

    /// Number of processors `p`.
    pub fn p(&self) -> usize {
        self.params.p
    }

    /// Cache size `H` in words.
    pub fn cache_words(&self) -> u64 {
        self.params.cache_words
    }

    /// The architectural parameters this machine was built with.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Charge `f` floating point operations to processor `j`.
    #[inline]
    pub fn charge_flops(&self, j: ProcId, f: u64) {
        if try_capture(|| ChargeEvent::Flops(j, f)) {
            return;
        }
        self.flops[j].fetch_add(f, Relaxed);
    }

    /// Charge `w` words of horizontal traffic (sent or received) to
    /// processor `j`.
    #[inline]
    pub fn charge_comm(&self, j: ProcId, w: u64) {
        if try_capture(|| ChargeEvent::Comm(j, w)) {
            return;
        }
        self.comm[j].fetch_add(w, Relaxed);
    }

    /// Charge a point-to-point transfer of `w` words: `w` is charged to
    /// both endpoints (each processor's `Wⱼ` counts words sent *and*
    /// received, per §II). A self-transfer charges nothing.
    #[inline]
    pub fn charge_transfer(&self, from: ProcId, to: ProcId, w: u64) {
        if from != to {
            self.charge_comm(from, w);
            self.charge_comm(to, w);
        }
    }

    /// Charge `q` words of vertical (memory↔cache) traffic to processor `j`.
    #[inline]
    pub fn charge_vert(&self, j: ProcId, q: u64) {
        if try_capture(|| ChargeEvent::Vert(j, q)) {
            return;
        }
        self.vert[j].fetch_add(q, Relaxed);
    }

    /// Record an allocation of `words` on processor `j` (memory tracking).
    pub fn alloc(&self, j: ProcId, words: u64) {
        if try_capture(|| ChargeEvent::Alloc(j, words)) {
            return;
        }
        let now = self.mem[j].fetch_add(words, Relaxed) + words;
        self.peak_mem[j].fetch_max(now, Relaxed);
    }

    /// Record a deallocation of `words` on processor `j`.
    pub fn free(&self, j: ProcId, words: u64) {
        if try_capture(|| ChargeEvent::Free(j, words)) {
            return;
        }
        let prev = self.mem[j].fetch_sub(words, Relaxed);
        debug_assert!(prev >= words, "freeing more than allocated on {j}");
        if prev < words {
            // Saturate instead of wrapping if a release is over-reported.
            self.mem[j].store(0, Relaxed);
        }
    }

    /// Advance the superstep counter of every processor in `group` by
    /// `count`. Used by collectives executed on a (possibly proper)
    /// subgroup; disjoint subgroups stepping concurrently share global
    /// supersteps, which this per-processor accounting captures.
    pub fn step(&self, group: &[ProcId], count: u64) {
        if try_capture(|| ChargeEvent::Step(group.to_vec(), count)) {
            return;
        }
        for &j in group {
            self.steps[j].fetch_add(count, Relaxed);
        }
    }

    /// Run `f` with every ledger mutation on this thread redirected into
    /// a [`ChargeLog`] instead of the live counters. Returns the result
    /// and the log; apply it later with [`Machine::replay`].
    ///
    /// Scopes nest (the inner scope's log is disjoint from the outer
    /// one's) and the redirect is per-thread: work `f` hands to *other*
    /// threads charges the live ledger directly, so captured task bodies
    /// must keep their work on the calling thread (the task-graph
    /// executor runs each body to completion on one worker).
    /// [`Machine::fence`]/[`Machine::report`] are forbidden inside a
    /// capture scope — a fold of half-captured state would be
    /// meaningless — and panic in debug builds.
    pub fn capture<R>(f: impl FnOnce() -> R) -> (R, ChargeLog) {
        let prev = CAPTURE.with(|c| c.borrow_mut().replace(ChargeLog::default()));
        // Armed until the success path disarms it: a panic in `f`
        // restores the enclosing scope's log (this scope's events drop).
        struct Guard(Option<Option<ChargeLog>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                if let Some(prev) = self.0.take() {
                    CAPTURE.with(|c| *c.borrow_mut() = prev);
                }
            }
        }
        let mut guard = Guard(Some(prev));
        let out = f();
        let prev = guard.0.take().expect("capture guard consumed twice");
        let log = CAPTURE
            .with(|c| std::mem::replace(&mut *c.borrow_mut(), prev))
            .unwrap_or_default();
        (out, log)
    }

    /// Apply a captured [`ChargeLog`] to this machine's live ledger, in
    /// capture order. Same quiescence rules as the direct charging
    /// calls; the replay itself is not capturable (replaying inside a
    /// capture scope would silently re-log — call it from driver code).
    pub fn replay(&self, log: &ChargeLog) {
        debug_assert!(
            !capturing(),
            "Machine::replay inside a capture scope would re-log the events"
        );
        for ev in &log.events {
            match ev {
                ChargeEvent::Flops(j, f) => {
                    self.flops[*j].fetch_add(*f, Relaxed);
                }
                ChargeEvent::Comm(j, w) => {
                    self.comm[*j].fetch_add(*w, Relaxed);
                }
                ChargeEvent::Vert(j, q) => {
                    self.vert[*j].fetch_add(*q, Relaxed);
                }
                ChargeEvent::Alloc(j, words) => {
                    let now = self.mem[*j].fetch_add(*words, Relaxed) + words;
                    self.peak_mem[*j].fetch_max(now, Relaxed);
                }
                ChargeEvent::Free(j, words) => {
                    let prev = self.mem[*j].fetch_sub(*words, Relaxed);
                    debug_assert!(prev >= *words, "freeing more than allocated on {j}");
                    if prev < *words {
                        self.mem[*j].store(0, Relaxed);
                    }
                }
                ChargeEvent::Step(group, count) => {
                    for &j in group {
                        self.steps[j].fetch_add(*count, Relaxed);
                    }
                }
            }
        }
    }

    /// Global barrier: fold per-phase maxima of `F`/`W`/`Q` into the
    /// ledger totals and align all superstep counters to `max + 1`.
    ///
    /// Must be called from a quiescent point: no concurrent `charge_*`
    /// calls may be in flight.
    pub fn fence(&self) {
        debug_assert!(
            !capturing(),
            "Machine::fence inside a capture scope (folds need quiescent, fully-applied state)"
        );
        self.fold();
        let max = self.steps.iter().map(|s| s.load(Relaxed)).max().unwrap_or(0);
        for s in &self.steps {
            s.store(max + 1, Relaxed);
        }
    }

    /// Fold the per-phase maxima accumulated since the previous fold
    /// without advancing supersteps.
    fn fold(&self) {
        let mut dmax_f = 0u64;
        let mut dmax_w = 0u64;
        let mut dmax_q = 0u64;
        let mut active = 0usize;
        for j in 0..self.params.p {
            let df = self.flops[j].load(Relaxed) - self.fence_flops[j].load(Relaxed);
            let dw = self.comm[j].load(Relaxed) - self.fence_comm[j].load(Relaxed);
            let dq = self.vert[j].load(Relaxed) - self.fence_vert[j].load(Relaxed);
            if df + dw + dq > 0 {
                active += 1;
            }
            dmax_f = dmax_f.max(df);
            dmax_w = dmax_w.max(dw);
            dmax_q = dmax_q.max(dq);
        }
        self.folded_flops.fetch_add(dmax_f, Relaxed);
        self.folded_comm.fetch_add(dmax_w, Relaxed);
        self.folded_vert.fetch_add(dmax_q, Relaxed);
        if dmax_f + dmax_w + dmax_q > 0 {
            if let Some(t) = self.trace.lock().unwrap().as_mut() {
                t.push(PhaseRecord {
                    flops: dmax_f,
                    horizontal_words: dmax_w,
                    vertical_words: dmax_q,
                    active_procs: active,
                });
            }
        }
        for j in 0..self.params.p {
            self.fence_flops[j].store(self.flops[j].load(Relaxed), Relaxed);
            self.fence_comm[j].store(self.comm[j].load(Relaxed), Relaxed);
            self.fence_vert[j].store(self.vert[j].load(Relaxed), Relaxed);
        }
    }

    /// Current cost report. Performs a fold (without a barrier) so that
    /// work since the last fence is included. Like [`Machine::fence`],
    /// call only from quiescent points.
    pub fn report(&self) -> Costs {
        debug_assert!(
            !capturing(),
            "Machine::report inside a capture scope (folds need quiescent, fully-applied state)"
        );
        self.fold();
        Costs {
            flops: self.folded_flops.load(Relaxed),
            horizontal_words: self.folded_comm.load(Relaxed),
            vertical_words: self.folded_vert.load(Relaxed),
            supersteps: self.steps.iter().map(|s| s.load(Relaxed)).max().unwrap_or(0),
            peak_memory_words: self
                .peak_mem
                .iter()
                .map(|s| s.load(Relaxed))
                .max()
                .unwrap_or(0),
            total_volume_words: self.comm.iter().map(|s| s.load(Relaxed)).sum(),
            total_flops: self.flops.iter().map(|s| s.load(Relaxed)).sum(),
        }
    }

    /// Snapshot the ledger so a region's costs can be measured with
    /// [`Machine::costs_since`].
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            report: self.report(),
        }
    }

    /// Costs accumulated since `snap` was taken.
    pub fn costs_since(&self, snap: &CostSnapshot) -> Costs {
        self.report().since(&snap.report)
    }

    /// Run `f` and return its result together with the costs the ledger
    /// accumulated while it ran — the snapshot/diff pattern as a scoped
    /// helper. Like [`Machine::report`], both ends of the measurement
    /// fold the ledger, so call from quiescent points only.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, Costs) {
        let snap = self.snapshot();
        let out = f();
        (out, self.costs_since(&snap))
    }

    /// [`Machine::measure`] with a stage tag: returns the closure's
    /// result and a named [`StageRecord`] ready for a per-stage ledger.
    pub fn measure_stage<R>(
        &self,
        name: impl Into<String>,
        f: impl FnOnce() -> R,
    ) -> (R, crate::StageRecord) {
        let (out, costs) = self.measure(f);
        (out, crate::StageRecord::new(name, costs))
    }

    /// Per-processor cumulative horizontal words (diagnostics / load
    /// balance inspection).
    pub fn comm_per_proc(&self) -> Vec<u64> {
        self.comm.iter().map(|s| s.load(Relaxed)).collect()
    }

    /// Per-processor cumulative flops (diagnostics).
    pub fn flops_per_proc(&self) -> Vec<u64> {
        self.flops.iter().map(|s| s.load(Relaxed)).collect()
    }

    /// Per-processor current superstep counters (diagnostics).
    pub fn steps_per_proc(&self) -> Vec<u64> {
        self.steps.iter().map(|s| s.load(Relaxed)).collect()
    }
}

#[cfg(test)]
mod threading_tests {
    use super::*;

    const _: fn() = || {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Machine>();
    };

    #[test]
    fn concurrent_charges_total_exactly() {
        let m = Machine::new(MachineParams::new(8));
        std::thread::scope(|scope| {
            for j in 0..8 {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.charge_flops(j, 3);
                        m.charge_vert(j, 2);
                        m.charge_comm(j, 1);
                        m.alloc(j, 5);
                        m.free(j, 5);
                    }
                });
            }
        });
        m.fence();
        let c = m.report();
        // Every processor did identical work, so the per-phase max is one
        // processor's total and the volume is p times that.
        assert_eq!(c.flops, 3000);
        assert_eq!(c.vertical_words, 2000);
        assert_eq!(c.horizontal_words, 1000);
        assert_eq!(c.total_flops, 8 * 3000);
        assert_eq!(c.total_volume_words, 8 * 1000);
        assert_eq!(c.peak_memory_words, 5);
    }

    #[test]
    fn capture_redirects_and_replay_matches_direct_charging() {
        let direct = Machine::new(MachineParams::new(4));
        let charge = |m: &Machine| {
            m.charge_flops(0, 100);
            m.charge_transfer(0, 1, 8);
            m.charge_vert(2, 5);
            m.alloc(3, 40);
            m.free(3, 16);
            m.alloc(3, 10); // peak 40, now 34
            m.step(&[0, 1], 2);
        };
        charge(&direct);
        direct.fence();
        let want = direct.report();

        let replayed = Machine::new(MachineParams::new(4));
        let ((), log) = Machine::capture(|| charge(&replayed));
        // Nothing reached the live ledger during capture.
        assert_eq!(replayed.report().total_flops, 0);
        assert_eq!(replayed.report().peak_memory_words, 0);
        assert_eq!(log.events().len(), 8); // transfer logs as two Comm events
        replayed.replay(&log);
        replayed.fence();
        assert_eq!(replayed.report(), want);
    }

    #[test]
    fn capture_scopes_nest_and_restore() {
        let m = Machine::new(MachineParams::new(2));
        let ((), outer) = Machine::capture(|| {
            m.charge_flops(0, 1);
            let ((), inner) = Machine::capture(|| m.charge_flops(0, 10));
            assert_eq!(inner.events(), &[ChargeEvent::Flops(0, 10)]);
            m.charge_flops(0, 2);
        });
        assert_eq!(
            outer.events(),
            &[ChargeEvent::Flops(0, 1), ChargeEvent::Flops(0, 2)]
        );
        // Scope fully unwound: charges hit the live ledger again.
        m.charge_flops(0, 7);
        assert_eq!(m.report().total_flops, 7);
    }

    #[test]
    fn replay_preserves_peak_memory_ordering() {
        // Peak memory is order-sensitive: alloc 100 / free 100 / alloc 30
        // peaks at 100, while any reordering that overlaps them peaks
        // higher. Replay must preserve the captured order exactly.
        let m = Machine::new(MachineParams::new(1));
        let ((), log) = Machine::capture(|| {
            m.alloc(0, 100);
            m.free(0, 100);
            m.alloc(0, 30);
        });
        m.replay(&log);
        assert_eq!(m.report().peak_memory_words, 100);
    }

    #[test]
    fn contended_single_processor_charges_are_not_lost() {
        let m = Machine::new(MachineParams::new(2));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..2500 {
                        m.charge_flops(0, 1);
                    }
                });
            }
        });
        assert_eq!(m.report().total_flops, 10_000);
    }
}
