//! The virtual BSP machine: per-processor cost ledger and superstep logic.

use crate::costs::{CostSnapshot, Costs};
use crate::MachineParams;
use std::cell::{Cell, RefCell};

/// One fenced phase's folded maxima — the per-phase profile behind the
/// paper's `Σᵢ maxⱼ` sums, recordable for diagnostics (see
/// [`Machine::enable_phase_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Max flops by any processor during the phase.
    pub flops: u64,
    /// Max horizontal words by any processor during the phase.
    pub horizontal_words: u64,
    /// Max vertical words by any processor during the phase.
    pub vertical_words: u64,
    /// Processors that did any work or communication in the phase.
    pub active_procs: usize,
}

/// Identifier of a virtual processor, in `0..p`.
pub type ProcId = usize;

/// A virtual BSP machine of `p` processors with a metered cost ledger.
///
/// The machine does not store application data itself — distributed
/// containers (see `ca-pla`) own per-processor buffers and report every
/// word they move and every flop they execute through the `charge_*`
/// methods. The machine is deliberately single-threaded (`Cell`-based
/// interior mutability) so simulations are deterministic; heavy *local*
/// kernels may still use real shared-memory parallelism internally since
/// they do not touch the ledger concurrently.
///
/// ```
/// use ca_bsp::{Machine, MachineParams};
///
/// let m = Machine::new(MachineParams::new(4));
/// m.charge_flops(0, 100);          // processor 0 computes
/// m.charge_transfer(0, 1, 8);      // 8 words move 0 → 1
/// m.fence();                       // end of the superstep
/// let costs = m.report();
/// assert_eq!(costs.flops, 100);    // per-superstep max, summed
/// assert_eq!(costs.horizontal_words, 8);
/// assert_eq!(costs.supersteps, 1);
/// ```
///
/// ## Supersteps and fences
///
/// * [`Machine::step`] advances the private superstep counter of a
///   *subgroup* of processors — used when disjoint groups communicate
///   concurrently (BSP permits independent subgroup exchanges to share
///   global supersteps, so each group's count advances independently).
/// * [`Machine::fence`] is a global barrier: it (1) folds the paper's
///   per-superstep maxima for `F`/`W`/`Q` over the phase that just ended,
///   and (2) aligns every processor's superstep counter to the global
///   maximum plus one.
pub struct Machine {
    params: MachineParams,
    /// Cumulative flops per processor.
    flops: Vec<Cell<u64>>,
    /// Cumulative words sent+received per processor.
    comm: Vec<Cell<u64>>,
    /// Cumulative vertical (memory<->cache) words per processor.
    vert: Vec<Cell<u64>>,
    /// Private superstep counter per processor.
    steps: Vec<Cell<u64>>,
    /// Current allocated words per processor.
    mem: Vec<Cell<u64>>,
    /// Peak allocated words per processor.
    peak_mem: Vec<Cell<u64>>,
    /// Per-processor counter values at the last fence (for phase maxima).
    fence_flops: Vec<Cell<u64>>,
    fence_comm: Vec<Cell<u64>>,
    fence_vert: Vec<Cell<u64>>,
    /// Folded sums of per-phase maxima (the paper's Σᵢ maxⱼ).
    folded_flops: Cell<u64>,
    folded_comm: Cell<u64>,
    folded_vert: Cell<u64>,
    /// Optional per-phase trace (None until enabled).
    trace: RefCell<Option<Vec<PhaseRecord>>>,
}

impl Machine {
    /// Create a machine with the given parameters; all counters zero.
    pub fn new(params: MachineParams) -> Self {
        let p = params.p;
        assert!(p > 0, "machine must have at least one processor");
        let zeros = || (0..p).map(|_| Cell::new(0u64)).collect::<Vec<_>>();
        Self {
            params,
            flops: zeros(),
            comm: zeros(),
            vert: zeros(),
            steps: zeros(),
            mem: zeros(),
            peak_mem: zeros(),
            fence_flops: zeros(),
            fence_comm: zeros(),
            fence_vert: zeros(),
            folded_flops: Cell::new(0),
            folded_comm: Cell::new(0),
            folded_vert: Cell::new(0),
            trace: RefCell::new(None),
        }
    }

    /// Start recording a [`PhaseRecord`] at every fold (fence/report).
    /// Used by the timeline diagnostics; has no effect on the costs.
    pub fn enable_phase_trace(&self) {
        let mut t = self.trace.borrow_mut();
        if t.is_none() {
            *t = Some(Vec::new());
        }
    }

    /// The recorded phase trace so far (empty if tracing is off).
    pub fn phase_trace(&self) -> Vec<PhaseRecord> {
        self.trace.borrow().clone().unwrap_or_default()
    }

    /// Number of processors `p`.
    pub fn p(&self) -> usize {
        self.params.p
    }

    /// Cache size `H` in words.
    pub fn cache_words(&self) -> u64 {
        self.params.cache_words
    }

    /// The architectural parameters this machine was built with.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Charge `f` floating point operations to processor `j`.
    #[inline]
    pub fn charge_flops(&self, j: ProcId, f: u64) {
        let c = &self.flops[j];
        c.set(c.get() + f);
    }

    /// Charge `w` words of horizontal traffic (sent or received) to
    /// processor `j`.
    #[inline]
    pub fn charge_comm(&self, j: ProcId, w: u64) {
        let c = &self.comm[j];
        c.set(c.get() + w);
    }

    /// Charge a point-to-point transfer of `w` words: `w` is charged to
    /// both endpoints (each processor's `Wⱼ` counts words sent *and*
    /// received, per §II). A self-transfer charges nothing.
    #[inline]
    pub fn charge_transfer(&self, from: ProcId, to: ProcId, w: u64) {
        if from != to {
            self.charge_comm(from, w);
            self.charge_comm(to, w);
        }
    }

    /// Charge `q` words of vertical (memory↔cache) traffic to processor `j`.
    #[inline]
    pub fn charge_vert(&self, j: ProcId, q: u64) {
        let c = &self.vert[j];
        c.set(c.get() + q);
    }

    /// Record an allocation of `words` on processor `j` (memory tracking).
    pub fn alloc(&self, j: ProcId, words: u64) {
        let m = &self.mem[j];
        m.set(m.get() + words);
        if m.get() > self.peak_mem[j].get() {
            self.peak_mem[j].set(m.get());
        }
    }

    /// Record a deallocation of `words` on processor `j`.
    pub fn free(&self, j: ProcId, words: u64) {
        let m = &self.mem[j];
        debug_assert!(m.get() >= words, "freeing more than allocated on {j}");
        m.set(m.get().saturating_sub(words));
    }

    /// Advance the superstep counter of every processor in `group` by
    /// `count`. Used by collectives executed on a (possibly proper)
    /// subgroup; disjoint subgroups stepping concurrently share global
    /// supersteps, which this per-processor accounting captures.
    pub fn step(&self, group: &[ProcId], count: u64) {
        for &j in group {
            let s = &self.steps[j];
            s.set(s.get() + count);
        }
    }

    /// Global barrier: fold per-phase maxima of `F`/`W`/`Q` into the
    /// ledger totals and align all superstep counters to `max + 1`.
    pub fn fence(&self) {
        self.fold();
        let max = self.steps.iter().map(Cell::get).max().unwrap_or(0);
        for s in &self.steps {
            s.set(max + 1);
        }
    }

    /// Fold the per-phase maxima accumulated since the previous fold
    /// without advancing supersteps.
    fn fold(&self) {
        let mut dmax_f = 0u64;
        let mut dmax_w = 0u64;
        let mut dmax_q = 0u64;
        let mut active = 0usize;
        for j in 0..self.params.p {
            let df = self.flops[j].get() - self.fence_flops[j].get();
            let dw = self.comm[j].get() - self.fence_comm[j].get();
            let dq = self.vert[j].get() - self.fence_vert[j].get();
            if df + dw + dq > 0 {
                active += 1;
            }
            dmax_f = dmax_f.max(df);
            dmax_w = dmax_w.max(dw);
            dmax_q = dmax_q.max(dq);
        }
        self.folded_flops.set(self.folded_flops.get() + dmax_f);
        self.folded_comm.set(self.folded_comm.get() + dmax_w);
        self.folded_vert.set(self.folded_vert.get() + dmax_q);
        if dmax_f + dmax_w + dmax_q > 0 {
            if let Some(t) = self.trace.borrow_mut().as_mut() {
                t.push(PhaseRecord {
                    flops: dmax_f,
                    horizontal_words: dmax_w,
                    vertical_words: dmax_q,
                    active_procs: active,
                });
            }
        }
        for j in 0..self.params.p {
            self.fence_flops[j].set(self.flops[j].get());
            self.fence_comm[j].set(self.comm[j].get());
            self.fence_vert[j].set(self.vert[j].get());
        }
    }

    /// Current cost report. Performs a fold (without a barrier) so that
    /// work since the last fence is included.
    pub fn report(&self) -> Costs {
        self.fold();
        Costs {
            flops: self.folded_flops.get(),
            horizontal_words: self.folded_comm.get(),
            vertical_words: self.folded_vert.get(),
            supersteps: self.steps.iter().map(Cell::get).max().unwrap_or(0),
            peak_memory_words: self.peak_mem.iter().map(Cell::get).max().unwrap_or(0),
            total_volume_words: self.comm.iter().map(Cell::get).sum(),
            total_flops: self.flops.iter().map(Cell::get).sum(),
        }
    }

    /// Snapshot the ledger so a region's costs can be measured with
    /// [`Machine::costs_since`].
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            report: self.report(),
        }
    }

    /// Costs accumulated since `snap` was taken.
    pub fn costs_since(&self, snap: &CostSnapshot) -> Costs {
        self.report().since(&snap.report)
    }

    /// Per-processor cumulative horizontal words (diagnostics / load
    /// balance inspection).
    pub fn comm_per_proc(&self) -> Vec<u64> {
        self.comm.iter().map(Cell::get).collect()
    }

    /// Per-processor cumulative flops (diagnostics).
    pub fn flops_per_proc(&self) -> Vec<u64> {
        self.flops.iter().map(Cell::get).collect()
    }

    /// Per-processor current superstep counters (diagnostics).
    pub fn steps_per_proc(&self) -> Vec<u64> {
        self.steps.iter().map(Cell::get).collect()
    }
}
