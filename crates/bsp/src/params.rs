//! Machine parameters of the architectural model (§II of the paper).

use serde::{Deserialize, Serialize};

/// Architectural parameters of the simulated machine.
///
/// The paper's model is characterized by `p` processors on a fully
/// connected network, each owning `M` words of main memory and `H` words
/// of cache, with per-word/per-op times `γ` (flop), `β` (horizontal word),
/// `ν` (vertical word) and `α` (global synchronization).
///
/// The time parameters do not influence *what* the simulator executes —
/// they only weight the metered quantities when converting a [`crate::Costs`]
/// record into a modeled execution time via [`crate::Costs::time`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Number of (virtual) processors, `p`.
    pub p: usize,
    /// Words of cache per processor, `H`. Vertical-traffic charges for
    /// local kernels depend on whether their working sets fit in `H`.
    pub cache_words: u64,
    /// Time to compute a floating point operation, `γ`.
    pub gamma: f64,
    /// Time to send or receive a word, `β`.
    pub beta: f64,
    /// Time to move a word between cache and memory, `ν`.
    pub nu: f64,
    /// Time to perform a (global) synchronization, `α`.
    pub alpha: f64,
}

impl MachineParams {
    /// A machine with `p` processors, a 1 Mi-word cache, and time
    /// parameters in the regime assumed by the paper's analysis
    /// (`γ ≤ β`, `ν ≤ β`, `ν ≤ γ·√H`): flops are cheap, horizontal words
    /// are expensive, synchronization is very expensive.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            cache_words: 1 << 20,
            gamma: 1e-3,
            beta: 1.0,
            nu: 0.25,
            alpha: 1e4,
        }
    }

    /// Override the cache size `H` (in words).
    pub fn with_cache_words(mut self, h: u64) -> Self {
        self.cache_words = h;
        self
    }

    /// Override the time parameters `(γ, β, ν, α)`.
    pub fn with_times(mut self, gamma: f64, beta: f64, nu: f64, alpha: f64) -> Self {
        self.gamma = gamma;
        self.beta = beta;
        self.nu = nu;
        self.alpha = alpha;
        self
    }
}
