use crate::{Machine, MachineParams};

fn machine(p: usize) -> Machine {
    Machine::new(MachineParams::new(p))
}

#[test]
fn fresh_machine_has_zero_costs() {
    let m = machine(4);
    let c = m.report();
    assert_eq!(c.flops, 0);
    assert_eq!(c.horizontal_words, 0);
    assert_eq!(c.vertical_words, 0);
    assert_eq!(c.supersteps, 0);
    assert_eq!(c.peak_memory_words, 0);
}

#[test]
fn flops_fold_takes_max_per_phase() {
    let m = machine(4);
    m.charge_flops(0, 10);
    m.charge_flops(1, 30);
    m.fence();
    m.charge_flops(0, 50);
    m.charge_flops(2, 20);
    m.fence();
    // Phase 1 max = 30, phase 2 max = 50.
    assert_eq!(m.report().flops, 80);
    assert_eq!(m.report().total_flops, 110);
}

#[test]
fn report_includes_unfenced_work() {
    let m = machine(2);
    m.charge_comm(1, 7);
    let c = m.report();
    assert_eq!(c.horizontal_words, 7);
    // A second report must not double count.
    assert_eq!(m.report().horizontal_words, 7);
}

#[test]
fn transfer_charges_both_endpoints() {
    let m = machine(3);
    m.charge_transfer(0, 2, 5);
    assert_eq!(m.comm_per_proc(), vec![5, 0, 5]);
    assert_eq!(m.report().total_volume_words, 10);
}

#[test]
fn self_transfer_is_free() {
    let m = machine(3);
    m.charge_transfer(1, 1, 100);
    assert_eq!(m.report().total_volume_words, 0);
}

#[test]
fn subgroup_steps_share_global_supersteps() {
    let m = machine(4);
    // Two disjoint groups each perform 3 subgroup exchanges "concurrently".
    m.step(&[0, 1], 3);
    m.step(&[2, 3], 3);
    m.fence();
    // 3 concurrent subgroup supersteps + the fence itself.
    assert_eq!(m.report().supersteps, 4);
}

#[test]
fn unbalanced_subgroup_steps_take_max() {
    let m = machine(4);
    m.step(&[0], 10);
    m.step(&[1, 2, 3], 2);
    m.fence();
    assert_eq!(m.report().supersteps, 11);
}

#[test]
fn memory_high_water_mark() {
    let m = machine(2);
    m.alloc(0, 100);
    m.alloc(0, 50);
    m.free(0, 120);
    m.alloc(1, 60);
    let c = m.report();
    assert_eq!(c.peak_memory_words, 150);
}

#[test]
fn snapshot_diffs_measure_regions() {
    let m = machine(2);
    m.charge_flops(0, 5);
    m.fence();
    let snap = m.snapshot();
    m.charge_flops(1, 11);
    m.charge_comm(0, 3);
    m.fence();
    let d = m.costs_since(&snap);
    assert_eq!(d.flops, 11);
    assert_eq!(d.horizontal_words, 3);
    assert_eq!(d.supersteps, 1);
}

#[test]
fn modeled_time_weights_costs() {
    let params = MachineParams::new(2).with_times(2.0, 3.0, 5.0, 7.0);
    let m = Machine::new(params);
    m.charge_flops(0, 1);
    m.charge_comm(0, 1);
    m.charge_vert(0, 1);
    m.fence();
    let t = m.report().time(m.params());
    assert_eq!(t.compute, 2.0);
    assert_eq!(t.horizontal, 3.0);
    assert_eq!(t.vertical, 5.0);
    assert_eq!(t.synchronization, 7.0);
    assert_eq!(t.total(), 17.0);
}

#[test]
fn fence_aligns_stragglers() {
    let m = machine(3);
    m.step(&[0], 5);
    m.fence();
    // All processors now sit at superstep 6; further subgroup work starts there.
    m.step(&[1], 1);
    m.fence();
    assert_eq!(m.report().supersteps, 8);
}

#[test]
fn phase_trace_records_folded_maxima() {
    let m = machine(3);
    m.enable_phase_trace();
    m.charge_flops(0, 10);
    m.charge_comm(1, 4);
    m.fence();
    m.charge_vert(2, 7);
    m.fence();
    let t = m.phase_trace();
    assert_eq!(t.len(), 2);
    assert_eq!(t[0].flops, 10);
    assert_eq!(t[0].horizontal_words, 4);
    assert_eq!(t[0].active_procs, 2);
    assert_eq!(t[1].vertical_words, 7);
    assert_eq!(t[1].active_procs, 1);
}

#[test]
fn phase_trace_skips_empty_phases() {
    let m = machine(2);
    m.enable_phase_trace();
    m.fence();
    m.fence();
    assert!(m.phase_trace().is_empty());
}

#[test]
fn trace_does_not_change_costs() {
    let run = |trace: bool| {
        let m = machine(4);
        if trace {
            m.enable_phase_trace();
        }
        m.charge_flops(1, 5);
        m.charge_comm(2, 9);
        m.fence();
        m.report()
    };
    assert_eq!(run(false), run(true));
}
