//! # ca-bsp — a virtual Bulk Synchronous Parallel machine with cost accounting
//!
//! This crate implements the theoretical cost model of §II of
//! *"A Communication-Avoiding Parallel Algorithm for the Symmetric
//! Eigenvalue Problem"* (Solomonik, Ballard, Demmel, Hoefler, SPAA'17).
//!
//! The model is a BSP machine of `p` processors augmented with a two-level
//! memory hierarchy per processor (main memory of `M` words and a cache of
//! `H` words). Four quantities are metered while an algorithm executes:
//!
//! * `F` — local floating point operations (computation cost),
//! * `W` — words moved between processors (horizontal communication),
//! * `Q` — words moved between main memory and cache (vertical
//!   communication),
//! * `S` — BSP supersteps (synchronization cost),
//!
//! and the modeled BSP execution time is
//! `T = γ·F + β·W + ν·Q + α·S`.
//!
//! The paper defines each of `F`, `W`, `Q` as a *sum over supersteps of the
//! per-superstep maximum over processors* (§II). The [`Machine`] tracks
//! per-processor cumulative counters and folds the per-superstep maxima at
//! *fences* ([`Machine::fence`]); independent processor subgroups may
//! advance their private superstep counters between fences, which models
//! concurrent subgroup activity (e.g. the pipelined bulge chases of
//! Algorithm IV.2) without serializing their synchronization costs.
//!
//! Nothing in this crate knows about matrices: higher layers (`ca-pla`)
//! route every word of data motion through the charging primitives here,
//! so the ledger is a faithful record of what the executed algorithm did.

mod costs;
mod machine;
mod params;

pub use costs::{BspTime, CostSnapshot, Costs, StageRecord};
pub use machine::{ChargeEvent, ChargeLog, Machine, PhaseRecord, ProcId};
pub use params::MachineParams;

#[cfg(test)]
mod tests;
