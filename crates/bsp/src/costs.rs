//! Cost records produced by the [`crate::Machine`] ledger.

use crate::MachineParams;
use serde::{Deserialize, Serialize};

/// The four metered quantities of the paper's cost model, plus memory.
///
/// `F`, `W` and `Q` are sums over fenced phases of the per-phase maximum
/// over processors (the paper's per-superstep maxima, folded at fence
/// granularity); `S` is the maximum per-processor superstep count; `M`
/// is the per-processor peak memory footprint in words.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Costs {
    /// `F`: local floating point operations (per-phase max, summed).
    pub flops: u64,
    /// `W`: words sent + received between processors (per-phase max, summed).
    pub horizontal_words: u64,
    /// `Q`: words moved between main memory and cache (per-phase max, summed).
    pub vertical_words: u64,
    /// `S`: BSP supersteps (max over processors).
    pub supersteps: u64,
    /// `M`: peak per-processor memory footprint in words (max over processors).
    pub peak_memory_words: u64,
    /// Total words communicated summed over *all* processors (volume, not
    /// critical path). Useful as a sanity check on load balance:
    /// a perfectly balanced algorithm has
    /// `total_volume_words ≈ p · horizontal_words`.
    pub total_volume_words: u64,
    /// Total flops summed over all processors.
    pub total_flops: u64,
}

impl Costs {
    /// Modeled BSP execution time `T = γ·F + β·W + ν·Q + α·S` under the
    /// given machine parameters.
    pub fn time(&self, params: &MachineParams) -> BspTime {
        BspTime {
            compute: params.gamma * self.flops as f64,
            horizontal: params.beta * self.horizontal_words as f64,
            vertical: params.nu * self.vertical_words as f64,
            synchronization: params.alpha * self.supersteps as f64,
        }
    }

    /// Element-wise difference `self − earlier`; panics if any counter of
    /// `earlier` exceeds the corresponding counter of `self`. Peak memory
    /// is *not* differenced (it is a high-water mark) and is carried from
    /// `self`.
    pub fn since(&self, earlier: &Costs) -> Costs {
        Costs {
            flops: self.flops - earlier.flops,
            horizontal_words: self.horizontal_words - earlier.horizontal_words,
            vertical_words: self.vertical_words - earlier.vertical_words,
            supersteps: self.supersteps - earlier.supersteps,
            peak_memory_words: self.peak_memory_words,
            total_volume_words: self.total_volume_words - earlier.total_volume_words,
            total_flops: self.total_flops - earlier.total_flops,
        }
    }
}

/// Breakdown of the modeled execution time into the four α–β–γ–ν terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BspTime {
    /// `γ·F`
    pub compute: f64,
    /// `β·W`
    pub horizontal: f64,
    /// `ν·Q`
    pub vertical: f64,
    /// `α·S`
    pub synchronization: f64,
}

impl BspTime {
    /// Total modeled time.
    pub fn total(&self) -> f64 {
        self.compute + self.horizontal + self.vertical + self.synchronization
    }
}

/// An opaque snapshot of the ledger, used to measure the cost of a code
/// region: take a snapshot, run the region, and ask the machine for the
/// [`Costs`] accumulated since the snapshot.
#[derive(Debug, Clone)]
pub struct CostSnapshot {
    pub(crate) report: Costs,
}

impl CostSnapshot {
    /// The absolute ledger totals captured when the snapshot was taken.
    /// Exposed so harnesses can serialize or diff snapshots directly
    /// rather than only through [`crate::Machine::costs_since`].
    pub fn costs(&self) -> Costs {
        self.report
    }
}

/// A named region of ledger activity: the stage tag plus the costs
/// accumulated while it ran. This is the unit both the solver's
/// per-stage breakdown and the conformance harness's per-stage sweeps
/// are built from, and it serializes directly into the machine-readable
/// reports (`CONFORMANCE.json`, `results/*.jsonl`).
#[derive(Debug, Clone, Serialize)]
pub struct StageRecord {
    /// Human-readable stage tag, e.g. `"full-to-band (b=16)"`. Tags are
    /// prefix-matchable: consumers aggregate repeated stages (the
    /// band-to-band chain, CA-SBR halvings) by name prefix.
    pub name: String,
    /// Costs accumulated between the stage's begin and end snapshots.
    pub costs: Costs,
}

impl StageRecord {
    /// Build a record from a tag and measured costs.
    pub fn new(name: impl Into<String>, costs: Costs) -> Self {
        Self {
            name: name.into(),
            costs,
        }
    }
}
