//! Algorithm IV.3: the complete **2.5D-Symmetric-Eigensolver**.
//!
//! Composition (with `δ` implied by the replication factor `c`):
//!
//! 1. `B ← 2.5D-Full-to-Band(A)` at `b = n / max(p^{2−3δ}, log₂ p)`;
//! 2. while `b > n/pᵟ`: `B ← 2.5D-Band-to-Band(B)` halvings on a
//!    shrinking processor prefix `Π[1 : p/k^{iζ}]`, `ζ = (1−δ)/δ` —
//!    chosen so the per-stage `β·n·b/pᵟ` term stays constant across
//!    stages; the final pass reduces straight to `n/pᵟ` (ratio `< 4`)
//!    instead of overshooting it;
//! 3. while `b > n/p`: CA-SBR halvings on `pᵟ` processors;
//! 4. gather the `n/p`-band matrix on one processor and compute its
//!    eigenvalues sequentially.
//!
//! Every stage's `F/W/Q/S` delta is recorded in [`StageCosts`], which is
//! what the Table-I harness prints.

use crate::ca_sbr::ca_sbr;
use crate::error::EigenError;
use crate::full_to_band::full_to_band;
use crate::params::EigenParams;
use ca_bsp::{Costs, Machine};
use ca_dla::Matrix;
use ca_pla::coll;
use ca_pla::grid::Grid;

/// Per-stage cost record of one eigensolver run.
///
/// Each entry is a [`ca_bsp::StageRecord`] whose `name` starts with the
/// stage's kind — `"full-to-band"`, `"band-to-band"`, `"ca-sbr"`,
/// `"sequential eigensolve"` or `"back-transformation"` — followed by
/// the stage's parameters (band-widths, active processors). Consumers
/// that need per-kind totals (the conformance harness, the Table-I
/// printer) aggregate by prefix with [`StageCosts::aggregate`].
#[derive(Debug, Clone, Default)]
pub struct StageCosts {
    /// Stage records in execution order.
    pub stages: Vec<ca_bsp::StageRecord>,
    /// Measured wall-clock seconds per stage, parallel to `stages`.
    /// Diagnostic only: not part of the cost ledger or the conformance
    /// claims (those stay model-derived), but the stage-time bench
    /// harness reads it to attribute end-to-end time to stages.
    pub wall_secs: Vec<f64>,
}

impl StageCosts {
    fn push(&mut self, name: &str, c: Costs, secs: f64) {
        self.stages.push(ca_bsp::StageRecord::new(name, c));
        self.wall_secs.push(secs);
    }

    /// Open a measured stage: snapshots the ledger, starts the wall
    /// clock, and opens a `ca_obs` span under the *same name* the
    /// [`StageRecord`](ca_bsp::StageRecord) will carry — so a trace's
    /// per-stage wall totals and cost deltas agree with this struct by
    /// construction, not by parallel bookkeeping.
    fn begin<'m>(&mut self, machine: &'m Machine, name: String) -> StageScope<'m> {
        let span = ca_obs::span(&name);
        StageScope {
            machine,
            name,
            span,
            snap: machine.snapshot(),
            t0: std::time::Instant::now(),
        }
    }

    /// Summed measured wall-clock seconds over every stage whose name
    /// starts with `prefix` (`""` sums everything).
    pub fn wall_seconds(&self, prefix: &str) -> f64 {
        self.stages
            .iter()
            .zip(&self.wall_secs)
            .filter(|(s, _)| s.name.starts_with(prefix))
            .map(|(_, w)| *w)
            .sum()
    }

    /// Total costs over all stages.
    pub fn total(&self) -> Costs {
        self.aggregate("")
    }

    /// Summed costs over every stage whose name starts with `prefix`
    /// (`""` aggregates everything). Peak memory is a high-water mark,
    /// not a sum, and is maxed instead.
    pub fn aggregate(&self, prefix: &str) -> Costs {
        let mut t = Costs::default();
        for s in self.stages.iter().filter(|s| s.name.starts_with(prefix)) {
            let c = &s.costs;
            t.flops += c.flops;
            t.horizontal_words += c.horizontal_words;
            t.vertical_words += c.vertical_words;
            t.supersteps += c.supersteps;
            t.total_volume_words += c.total_volume_words;
            t.total_flops += c.total_flops;
            t.peak_memory_words = t.peak_memory_words.max(c.peak_memory_words);
        }
        t
    }

    /// Number of stages whose name starts with `prefix`.
    pub fn count(&self, prefix: &str) -> usize {
        self.stages.iter().filter(|s| s.name.starts_with(prefix)).count()
    }
}

/// An open measured stage (see [`StageCosts::begin`]): [`StageScope::end`]
/// reads the ledger delta and elapsed wall time once and feeds the one
/// reading to both the [`StageCosts`] record and the trace span.
struct StageScope<'m> {
    machine: &'m Machine,
    name: String,
    span: ca_obs::SpanGuard,
    snap: ca_bsp::CostSnapshot,
    t0: std::time::Instant,
}

impl StageScope<'_> {
    fn end(mut self, costs: &mut StageCosts) {
        let c = self.machine.costs_since(&self.snap);
        let secs = self.t0.elapsed().as_secs_f64();
        self.span
            .set_costs(c.flops, c.horizontal_words, c.vertical_words, c.supersteps);
        costs.push(&self.name, c, secs);
        // `self.span` drops here, stamping the span's end time.
    }
}

/// Compute the eigenvalues of the symmetric matrix `a` with the
/// communication-avoiding 2.5D algorithm. Returns the ascending
/// eigenvalues and the per-stage cost breakdown.
///
/// ```
/// use ca_bsp::{Machine, MachineParams};
/// use ca_eigen::{symm_eigen_25d, EigenParams};
/// use ca_dla::gen;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let spectrum = gen::linspace_spectrum(32, -1.0, 1.0);
/// let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
///
/// let machine = Machine::new(MachineParams::new(4));
/// let (eigenvalues, stages) = symm_eigen_25d(&machine, &EigenParams::new(4, 1), &a);
///
/// assert!(ca_dla::tridiag::spectrum_distance(&eigenvalues, &spectrum) < 1e-8);
/// assert!(stages.total().horizontal_words > 0); // every word was metered
/// ```
pub fn symm_eigen_25d(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> (Vec<f64>, StageCosts) {
    try_symm_eigen_25d(machine, params, a).unwrap_or_else(|e| panic!("{e}"))
}

/// [`symm_eigen_25d`] with typed input validation: malformed requests
/// (non-square or asymmetric `a`, `n < 2`, inconsistent grid
/// parameters) come back as `Err(EigenError)` instead of aborting the
/// process — the entry point a serving layer should call.
pub fn try_symm_eigen_25d(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> Result<(Vec<f64>, StageCosts), EigenError> {
    validate_input(params, a)?;
    let (ev, costs, _) = solve_impl(machine, params, a, false)?;
    Ok((ev, costs))
}

/// Eigenvalues *and eigenvectors*: the §IV.C extension. Records every
/// stage's Householder transforms and back-applies them to the
/// tridiagonal eigenvectors (`V = Q₁⋯Q_m·Z`, columns orthonormal,
/// `A·V = V·diag(λ)`). Costs the paper attributes to
/// back-transformation (`O(n³)` per intermediate band-width, `O(n²)`
/// transform memory per stage) appear in the final stage's record.
pub fn symm_eigen_25d_vectors(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> (Vec<f64>, Matrix, StageCosts) {
    try_symm_eigen_25d_vectors(machine, params, a).unwrap_or_else(|e| panic!("{e}"))
}

/// [`symm_eigen_25d_vectors`] with typed input validation (see
/// [`try_symm_eigen_25d`]).
pub fn try_symm_eigen_25d_vectors(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> Result<(Vec<f64>, Matrix, StageCosts), EigenError> {
    validate_input(params, a)?;
    let (ev, costs, v) = solve_impl(machine, params, a, true)?;
    Ok((ev, v.expect("vectors requested"), costs))
}

/// Shared request validation for the `Result` entry points: grid
/// invariants, squareness, minimum size, symmetry. Runs before any
/// cost is charged, so a rejected request leaves the ledger untouched.
fn validate_input(params: &EigenParams, a: &Matrix) -> Result<(), EigenError> {
    params.revalidate()?;
    if a.rows() != a.cols() {
        return Err(EigenError::NonSquareInput {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if a.rows() < 2 {
        return Err(EigenError::TooSmall { n: a.rows() });
    }
    // Before the symmetry check: NaN entries compare false against the
    // tolerance, so an all-NaN matrix would otherwise sail through and
    // surface much later as a convergence failure.
    if let Some(idx) = a.data().iter().position(|v| !v.is_finite()) {
        return Err(EigenError::NonFiniteInput {
            row: idx / a.cols(),
            col: idx % a.cols(),
        });
    }
    let scale = a.norm_max().max(1.0);
    if a.asymmetry() >= 1e-10 * scale {
        return Err(EigenError::AsymmetricInput {
            asymmetry: a.asymmetry() / scale,
        });
    }
    Ok(())
}

fn solve_impl(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    want_vectors: bool,
) -> Result<(Vec<f64>, StageCosts, Option<Matrix>), EigenError> {
    let n = a.rows();
    let p = params.p;
    let mut costs = StageCosts::default();

    let mut log = crate::transforms::TransformLog::default();

    // Stage 1: full → band at b = n / max(p^{2−3δ}, log₂ p).
    let b0 = params.initial_bandwidth(n);
    let scope = costs.begin(machine, format!("full-to-band (b={b0})"));
    let (mut band, _) = if want_vectors {
        crate::full_to_band::full_to_band_logged(
            machine,
            params,
            a,
            b0,
            log.stage(&format!("full-to-band (b={b0})")),
        )
    } else {
        full_to_band(machine, params, a, b0)
    };
    scope.end(&mut costs);

    // Stage 2: successive band reductions on shrinking prefixes until
    // b ≤ n/pᵟ. Arbitrary n: the target is the exact ceiling division
    // (no power-of-two snapping), intermediate band-widths may be odd,
    // and the generalized chase plan reduces to any explicit target.
    let target_mid = n.div_ceil(params.p_delta().max(1)).max(2);
    let zeta = {
        let d = params.delta();
        (1.0 - d) / d
    };
    let mut stage = 0usize;
    while band.bandwidth() > target_mid && band.bandwidth() >= 4 {
        let shrink = 2f64.powf(zeta * stage as f64);
        let active = ((p as f64 / shrink).round() as usize).clamp(1, p);
        let grid = Grid::all(p).prefix(active);
        // Halve — unless a plain halving would overshoot `n/pᵟ`, in
        // which case this pass reduces straight to the target (ratio in
        // `[2, 4)`). For arbitrary `n` the chain `b₀ → ⌈b₀/2⌉ → …`
        // rarely lands on `n/pᵟ` exactly, and splitting the tail into
        // two passes pays the chain's most expensive step twice: a
        // pass's per-processor traffic is `O(n²/p̂) = O(n³/(p·b))`,
        // growing as `b` shrinks, and is nearly independent of how far
        // the pass reduces.
        let bw = band.bandwidth();
        let target = if bw.div_ceil(4) >= target_mid {
            bw.div_ceil(2)
        } else {
            target_mid
        };
        // Gather B onto the active prefix (line 6). Ceiling division:
        // the straggler holding the ragged remainder sets the cost.
        // Inside the stage snapshot, so the stage records cover the
        // ledger exactly.
        let scope = costs.begin(
            machine,
            format!("band-to-band (b={bw}→{target}, p̄={active})"),
        );
        coll::gather(
            machine,
            &Grid::all(p),
            0,
            ((n * (band.bandwidth() + 1)) as u64).div_ceil(p as u64),
        );
        let v_mem = params.p_2m3d();
        let (next, _) = if want_vectors {
            crate::band_to_band::band_to_band_to_logged(
                machine,
                &grid,
                &band,
                target,
                v_mem,
                log.stage(&format!("band-to-band (b={})", band.bandwidth())),
            )
        } else {
            crate::band_to_band::band_to_band_to(machine, &grid, &band, target, v_mem)
        };
        scope.end(&mut costs);
        band = next;
        stage += 1;
    }

    // Stage 3: CA-SBR halvings (b → ⌈b/2⌉) on pᵟ processors until
    // b ≤ ⌈n/p⌉.
    let target_low = n.div_ceil(p).max(1);
    let sbr_procs = params.p_delta().clamp(1, p);
    let sbr_grid = Grid::all(p).prefix(sbr_procs);
    while band.bandwidth() > target_low && band.bandwidth() >= 2 {
        let scope = costs.begin(
            machine,
            format!(
                "ca-sbr (b={}→{})",
                band.bandwidth(),
                band.bandwidth().div_ceil(2)
            ),
        );
        let next = if want_vectors {
            crate::ca_sbr::ca_sbr_logged(
                machine,
                &sbr_grid,
                &band,
                log.stage(&format!("ca-sbr (b={})", band.bandwidth())),
            )
        } else {
            ca_sbr(machine, &sbr_grid, &band)
        };
        scope.end(&mut costs);
        band = next;
    }

    // Stage 4: gather and solve sequentially (line 11).
    let scope = costs.begin(machine, "sequential eigensolve".to_string());
    let bw = band.bandwidth();
    coll::gather(
        machine,
        &Grid::all(p),
        0,
        ((n * (bw + 1)) as u64).div_ceil(p as u64),
    );
    // Sequential band → tridiagonal + eigensolve, charged to
    // processor 0 under the active engine's cost model: the fused
    // rank-1 sweep is ≈ 6nb² flops either way, but divide-and-conquer
    // replaces QL's ~30n² dependent rotations with secular solves and
    // 2×m·m row-carrier merge GEMMs (≈ 16n² with typical deflation).
    let seq_flops = if ca_dla::tune::dnc_enabled() {
        6 * (n as u64) * (bw as u64).pow(2) + 16 * (n as u64).pow(2)
    } else {
        6 * (n as u64) * (bw as u64).pow(2) + 30 * (n as u64).pow(2)
    };
    machine.charge_flops(machine_proc0(), seq_flops);
    machine.charge_vert(machine_proc0(), (n * (bw + 1)) as u64);

    if !want_vectors {
        let ev = ca_dla::tridiag::try_banded_eigenvalues(&band)?;
        machine.fence();
        scope.end(&mut costs);
        return Ok((ev, costs, None));
    }

    // Vectors path: record the final band → tridiagonal reduction,
    // solve the tridiagonal with eigenvector accumulation, and
    // back-transform through every stage.
    let work = if bw > 1 {
        let cap = (2 * bw).min(n - 1);
        let mut rehoused = ca_dla::BandedSym::zeros(n, bw, cap);
        for j in 0..n {
            for i in j..n.min(j + bw + 1) {
                rehoused.set(i, j, band.get(i, j));
            }
        }
        if ca_dla::tune::dnc_enabled() {
            // Recorded halvings down to the fused-sweep floor (fat
            // compact-WY reflectors at matrix–matrix rates), then the
            // fused rank-1 sweep whose reflectors are single
            // Householder columns (k = 1 fast path in back_transform).
            let floor = ca_dla::tune::halve_floor();
            while rehoused.bandwidth() > floor && rehoused.bandwidth() >= 2 {
                let b = rehoused.bandwidth();
                let stage = log.stage(&format!("sequential band halving (b={b})"));
                for op in ca_dla::bulge::chase_plan(n, b, 2) {
                    let row0 = op.qr_rows.0;
                    let (u, t) = ca_dla::bulge::execute_chase_recording(&mut rehoused, &op);
                    stage.push(crate::transforms::Reflectors { row0, u, t });
                }
                rehoused.set_bandwidth(b.div_ceil(2));
            }
            let stage = log.stage("sequential band→tridiagonal (fused sweep)");
            for (row0, u, tau) in ca_dla::bulge::sweep_to_tridiagonal_recording(&mut rehoused) {
                let rows = u.len();
                stage.push(crate::transforms::Reflectors {
                    row0,
                    u: Matrix::from_vec(rows, 1, u),
                    t: Matrix::from_vec(1, 1, vec![tau]),
                });
            }
        } else {
            let stage = log.stage("sequential band→tridiagonal");
            for op in ca_dla::bulge::chase_plan(n, bw, bw) {
                let row0 = op.qr_rows.0;
                let (u, t) = ca_dla::bulge::execute_chase_recording(&mut rehoused, &op);
                stage.push(crate::transforms::Reflectors { row0, u, t });
            }
        }
        rehoused
    } else {
        band
    };
    let (d, e) = work.tridiagonal();
    let (ev, z) = if ca_dla::tune::dnc_enabled() && n > ca_dla::tune::dnc_leaf() {
        ca_dla::dnc::dnc_eigen(&d, &e)?
    } else {
        ca_dla::tridiag::try_tridiag_eigen(&d, &e)?
    };
    machine.charge_flops(machine_proc0(), (6 * (n as u64).pow(3)).div_ceil(p as u64));
    machine.fence();
    scope.end(&mut costs);

    // Back-transformation (§IV.C): V = Q₁⋯Q_m·Z, O(n³) per stage.
    let scope = costs.begin(machine, "back-transformation".to_string());
    let v = crate::transforms::back_transform(machine, &Grid::all(p), &log, &z);
    scope.end(&mut costs);

    Ok((ev, costs, Some(v)))
}

#[inline]
fn machine_proc0() -> ca_bsp::ProcId {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::spectrum_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(n: usize, p: usize, c: usize, seed: u64) -> (f64, Costs) {
        let m = Machine::new(MachineParams::new(p));
        let params = EigenParams::new(p, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let spectrum = gen::linspace_spectrum(n, -5.0, 5.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let (ev, stages) = symm_eigen_25d(&m, &params, &a);
        let d = spectrum_distance(&ev, &spectrum);
        (d, stages.total())
    }

    #[test]
    fn eigenvalues_correct_2d() {
        let (d, _) = run(64, 4, 1, 300);
        assert!(d < 1e-7, "spectrum drifted {d}");
    }

    #[test]
    fn eigenvalues_correct_25d() {
        let (d, _) = run(64, 8, 2, 301);
        assert!(d < 1e-7, "spectrum drifted {d}");
    }

    #[test]
    fn eigenvalues_correct_full_replication() {
        // δ = 2/3 exactly: p = 64, c = 4.
        let (d, _) = run(32, 64, 4, 302);
        assert!(d < 1e-7, "spectrum drifted {d}");
    }

    #[test]
    fn single_processor_degenerate() {
        let (d, _) = run(32, 1, 1, 303);
        assert!(d < 1e-7, "spectrum drifted {d}");
    }

    #[test]
    fn eigenvectors_diagonalize_the_input() {
        use ca_dla::gemm::{matmul, Trans};
        for (n, p, c, seed) in [(32usize, 4usize, 1usize, 310u64), (64, 16, 1, 311), (32, 8, 2, 312)] {
            let m = Machine::new(MachineParams::new(p));
            let params = EigenParams::new(p, c);
            let mut rng = StdRng::seed_from_u64(seed);
            let spectrum = gen::linspace_spectrum(n, -3.0, 3.0);
            let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
            let (ev, v, costs) = symm_eigen_25d_vectors(&m, &params, &a);
            assert!(spectrum_distance(&ev, &spectrum) < 1e-8 * n as f64);
            // V orthonormal.
            let vtv = matmul(&v, Trans::T, &v, Trans::N);
            assert!(
                vtv.max_diff(&Matrix::identity(n)) < 1e-8,
                "p={p} c={c}: VᵀV deviates by {}",
                vtv.max_diff(&Matrix::identity(n))
            );
            // A·V = V·Λ.
            let av = matmul(&a, Trans::N, &v, Trans::N);
            let mut vl = v.clone();
            for i in 0..n {
                for j in 0..n {
                    vl.set(i, j, v.get(i, j) * ev[j]);
                }
            }
            assert!(
                av.max_diff(&vl) < 1e-7 * n as f64,
                "p={p} c={c}: residual {}",
                av.max_diff(&vl)
            );
            // The back-transformation stage is recorded and charged.
            let last = costs.stages.last().expect("stages");
            assert!(last.name.starts_with("back-transformation"));
            assert!(last.costs.flops > 0);
        }
    }

    #[test]
    fn stage_costs_cover_all_phases() {
        let m = Machine::new(MachineParams::new(4));
        let params = EigenParams::new(4, 1);
        let mut rng = StdRng::seed_from_u64(304);
        let a = gen::random_symmetric(&mut rng, 64);
        let (_, stages) = symm_eigen_25d(&m, &params, &a);
        let names: Vec<&str> = stages.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names[0].starts_with("full-to-band"));
        assert!(names.last().unwrap().starts_with("sequential"));
        // Stage totals match the machine ledger.
        let total = stages.total();
        let ledger = m.report();
        assert_eq!(total.horizontal_words, ledger.horizontal_words);
        assert_eq!(total.supersteps, ledger.supersteps);
        // Every stage carries a measured wall-clock sample.
        assert_eq!(stages.wall_secs.len(), stages.stages.len());
        assert!(stages.wall_secs.iter().all(|w| *w >= 0.0));
        assert!(stages.wall_seconds("") >= stages.wall_seconds("full-to-band"));
    }

    #[test]
    fn replication_reduces_full_solver_communication() {
        // Within the paper's regime (c ≤ p^{1/3}; here c = p^{1/3}
        // exactly), the end-to-end solver moves fewer words with
        // replication than without.
        let (_, c1) = run(128, 64, 1, 305);
        let (_, c4) = run(128, 64, 4, 305);
        assert!(
            c4.horizontal_words < c1.horizontal_words,
            "c=4 W {} !< c=1 W {}",
            c4.horizontal_words,
            c1.horizontal_words
        );
    }
}
