//! Algorithm IV.1: **2.5D-Full-to-Band** — reduce a dense symmetric
//! matrix to band-width `b`, preserving eigenvalues.
//!
//! The algorithm is *left-looking with aggregation*: the trailing matrix
//! is never updated in place. Instead the two-sided transformations are
//! accumulated as growing panels `U⁽⁰⁾`, `V⁽⁰⁾` with
//! `A̅ = A + U⁽⁰⁾V⁽⁰⁾ᵀ + V⁽⁰⁾U⁽⁰⁾ᵀ` (Eqn. IV.1), and every product
//! against `A` or the aggregates is a *replicated* multiplication
//! (Algorithm III.1 / Lemma III.3) on the `q × q × c` grid — which is
//! where the `Θ(√c)` communication saving materializes.
//!
//! Per panel (matching the pseudocode line numbers):
//! * line 5 — update the current column panel from the aggregates,
//! * line 7 — QR of the sub-diagonal panel `A̅₂₁` on `z·pᵟ` processors
//!   ([`ca_pla::rect_qr`]),
//! * line 8 — `W = A₂₂U₁ + U₂⁽⁰⁾(V₂⁽⁰⁾ᵀU₁) + V₂⁽⁰⁾(U₂⁽⁰⁾ᵀU₁)`
//!   (three streaming multiplies),
//! * line 9 — `V₁ = ½U₁(Tᵀ(U₁ᵀ(W·T))) − W·T` (Lemma III.2 multiplies
//!   with `v = p^{2−3δ}`),
//! * line 10 — replicate `U₁`, `V₁` and append to the aggregates.

use crate::params::EigenParams;
use ca_bsp::Machine;
use ca_dla::gemm::Trans;
use ca_dla::{BandedSym, Matrix};
use ca_pla::carma::{carma_spread, carma_spread_into};
use ca_pla::dag::{TaskCell, TaskGraph, TaskId};
use ca_pla::dist::DistMatrix;
use ca_pla::exec;
use ca_pla::grid::Grid;
use ca_pla::kern;
use ca_pla::rect_qr::rect_qr;
use ca_pla::streaming::{streaming_mm_dense, streaming_mm_view_into};
use std::sync::{Mutex, RwLock};

/// Structural trace of the reduction, used by the Figure-1 regeneration
/// binary and by tests.
#[derive(Debug, Clone, Default)]
pub struct FullToBandTrace {
    /// One record per eliminated panel.
    pub panels: Vec<PanelTrace>,
}

/// What Algorithm IV.1 did for one panel (cf. Figure 1's depiction of
/// two consecutive recursive steps).
#[derive(Debug, Clone)]
pub struct PanelTrace {
    /// Panel index (0-based recursion depth).
    pub step: usize,
    /// Global offset of the panel (`A₁₁` starts here).
    pub offset: usize,
    /// Rows remaining in the trailing problem (dimension of `A`).
    pub remaining: usize,
    /// Aggregate width `m` before this panel (`U⁽⁰⁾`/`V⁽⁰⁾` columns).
    pub agg_cols: usize,
    /// Processors used for the panel QR (`z·pᵟ`).
    pub qr_procs: usize,
}

/// Reduce the symmetric `a` to a banded matrix of band-width `b` with
/// the same eigenvalues (Algorithm IV.1). Requires `1 ≤ b < n`; `n`
/// need not be a multiple of `b` — the final panel is simply shorter
/// (its sub-diagonal block has fewer than `b` rows, factored by a
/// local wide QR).
pub fn full_to_band(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
) -> (BandedSym, FullToBandTrace) {
    try_full_to_band(machine, params, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// [`full_to_band`] with typed input validation: malformed requests
/// (non-square or asymmetric `a`, band-width outside `1 ≤ b < n`,
/// inconsistent grid parameters) come back as `Err(EigenError)` with
/// the ledger untouched.
pub fn try_full_to_band(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
) -> Result<(BandedSym, FullToBandTrace), crate::EigenError> {
    use crate::EigenError;
    params.revalidate()?;
    let n = a.rows();
    if n != a.cols() {
        return Err(EigenError::NonSquareInput {
            rows: n,
            cols: a.cols(),
        });
    }
    if a.asymmetry() >= 1e-10 * a.norm_max().max(1.0) {
        return Err(EigenError::AsymmetricInput {
            asymmetry: a.asymmetry() / a.norm_max().max(1.0),
        });
    }
    if b < 1 || b >= n {
        return Err(EigenError::InvalidBandwidth { n, b });
    }
    Ok(full_to_band_impl(machine, params, a, b, None))
}

/// [`full_to_band`] with transform recording for eigenvector
/// back-transformation: each panel's `(U₁, T)` is appended to `rec` in
/// application order.
pub fn full_to_band_logged(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
    rec: &mut Vec<crate::transforms::Reflectors>,
) -> (BandedSym, FullToBandTrace) {
    full_to_band_impl(machine, params, a, b, Some(rec))
}

fn full_to_band_impl(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, FullToBandTrace) {
    let _span = ca_obs::kernel_span("driver.full_to_band");
    let n = a.rows();
    assert_eq!(n, a.cols(), "input must be square");
    assert!(a.asymmetry() < 1e-10 * a.norm_max().max(1.0), "input must be symmetric");
    assert!(b >= 1 && b < n, "band-width must satisfy 1 ≤ b < n");

    if ca_obs::knobs::lookahead() {
        full_to_band_dag(machine, params, a, b, rec)
    } else {
        full_to_band_barrier(machine, params, a, b, rec)
    }
}

/// Superstep-barrier driver: the straight-line Algorithm IV.1 schedule,
/// one `fence` per panel. This is the reference path the task-graph
/// driver ([`full_to_band_dag`]) must match bit-for-bit in output,
/// eigenvector record and ledger.
fn full_to_band_barrier(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
    mut rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, FullToBandTrace) {
    let n = a.rows();
    let grid3 = params.grid3();
    let w_depth = params.stream_depth(n, b);
    let v_mem = params.p_2m3d();
    let all = Grid::all(params.p);
    // Per-processor share of a `words`-sized object, rounded up: the
    // straggler holding the ragged remainder sets the BSP cost, so
    // truncating here would under-count whenever p ∤ words.
    let per_proc = |words: usize| (words as u64).div_ceil(params.p.max(1) as u64);

    // Replicate A over the c layers (the Require block of Alg IV.1).
    // The dense copy below is the numerical stand-in for the per-layer
    // distributed copies; all charges flow through the replicate call.
    let rep = ca_pla::streaming::Replicated::replicate(machine, &grid3, a);

    let mut out = BandedSym::zeros(n, b, b);
    let mut trace = FullToBandTrace::default();

    // Aggregates, preallocated at full height with *global* row
    // alignment (row r of the aggregate is global row r) and the final
    // column count: panels append in place via `set_block` and every
    // product takes an offset block spec, instead of the seed's
    // per-panel O(n²) reallocate-and-copy rebuild. Rows above the
    // current trailing range and columns beyond `m_agg` are never read.
    let total_agg: usize = {
        let mut total = 0usize;
        let mut oo = 0usize;
        while n - oo > b {
            total += (n - oo - b).min(b);
            oo += b;
        }
        total
    };
    let mut u_agg = Matrix::zeros(n, total_agg);
    let mut v_agg = Matrix::zeros(n, total_agg);
    let mut m_agg = 0usize;

    let mut o = 0usize;
    let mut step = 0usize;
    while n - o > b {
        let rem = n - o;
        trace.panels.push(PanelTrace {
            step,
            offset: o,
            remaining: rem,
            agg_cols: m_agg,
            qr_procs: params.panel_qr_procs(n, b),
        });

        // Line 5: update the current panel from the aggregates. The two
        // products are independent — the executor runs them concurrently
        // (both only charge commutative ledger entries).
        let mut panel = a.block(o, o, rem, b);
        if m_agg > 0 {
            let (upd1, upd2) = exec::join(
                || {
                    let v1_0t = v_agg.block(o, 0, b, m_agg).transpose();
                    streaming_mm_dense(
                        machine, &grid3, &u_agg, (o, 0, rem, m_agg), false, &v1_0t, w_depth,
                    )
                },
                || {
                    let u1_0t = u_agg.block(o, 0, b, m_agg).transpose();
                    streaming_mm_dense(
                        machine, &grid3, &v_agg, (o, 0, rem, m_agg), false, &u1_0t, w_depth,
                    )
                },
            );
            panel.axpy(1.0, &upd1);
            panel.axpy(1.0, &upd2);
            for &pid in all.procs() {
                machine.charge_flops(pid, 2 * per_proc(rem * b));
            }
        }

        // The diagonal block A̅₁₁ goes straight into the output band.
        let mut a11 = panel.block(0, 0, b, b);
        a11.symmetrize();
        write_diag_block(&mut out, o, &a11);

        // Line 7: QR of A̅₂₁ on z·pᵟ processors. A ragged n leaves the
        // final panel's sub-diagonal block wide (fewer than b rows);
        // rect_qr requires m ≥ n, so that block is factored locally on
        // the group leader with the factors re-spread — the same
        // small-block fallback Algorithm IV.2's executor uses.
        let qr_procs = params.panel_qr_procs(n, b).min(rem - b).max(1);
        let a21 = panel.block(b, 0, rem - b, b);
        let (u1, t1, r1) = if rem - b >= b {
            let qr_group = Grid::new_2d((0..qr_procs).collect(), qr_procs, 1);
            let da21 = DistMatrix::from_dense(machine, &qr_group, &a21);
            let f = rect_qr(machine, &da21);
            da21.release(machine);
            let u1 = f.u.assemble_unchecked();
            f.u.release(machine);
            (u1, f.t, f.r)
        } else {
            let f = kern::local_qr(machine, all.proc(0), &a21);
            let factor_words = (f.u.len() + f.t.len() + f.r.len()) as u64;
            for &pid in all.procs() {
                machine.charge_comm(pid, 2 * factor_words.div_ceil(params.p as u64));
            }
            machine.step(all.procs(), 1);
            (f.u, f.t, f.r)
        };

        // R is the sub-diagonal block of the band (upper-trapezoidal
        // when the panel is ragged).
        write_subdiag_block(&mut out, o, &r1);

        // Line 8: W = A₂₂·U₁ + U₂⁽⁰⁾(V₂⁽⁰⁾ᵀU₁) + V₂⁽⁰⁾(U₂⁽⁰⁾ᵀU₁).
        if let Some(r) = rec.as_deref_mut() {
            r.push(crate::transforms::Reflectors {
                row0: o + b,
                u: u1.clone(),
                t: t1.clone(),
            });
        }
        let mut w = streaming_mm_dense(
            machine, &grid3, a, (o + b, o + b, rem - b, rem - b), false, &u1, w_depth,
        );
        if m_agg > 0 {
            // The U₂⁽⁰⁾(V₂⁽⁰⁾ᵀU₁) and V₂⁽⁰⁾(U₂⁽⁰⁾ᵀU₁) chains are
            // independent of each other — run them concurrently. The
            // U₂⁽⁰⁾/V₂⁽⁰⁾ sub-panels are addressed by block spec, no
            // copies.
            let (w2, w3) = exec::join(
                || {
                    let vtu = streaming_mm_dense(
                        machine, &grid3, &v_agg, (o + b, 0, rem - b, m_agg), true, &u1, w_depth,
                    );
                    streaming_mm_dense(
                        machine, &grid3, &u_agg, (o + b, 0, rem - b, m_agg), false, &vtu, w_depth,
                    )
                },
                || {
                    let utu = streaming_mm_dense(
                        machine, &grid3, &u_agg, (o + b, 0, rem - b, m_agg), true, &u1, w_depth,
                    );
                    streaming_mm_dense(
                        machine, &grid3, &v_agg, (o + b, 0, rem - b, m_agg), false, &utu, w_depth,
                    )
                },
            );
            w.axpy(1.0, &w2);
            w.axpy(1.0, &w3);
            for &pid in all.procs() {
                machine.charge_flops(pid, 2 * per_proc((rem - b) * b));
            }
        }

        // Line 9: V₁ = ½U₁(Tᵀ(U₁ᵀ(W·T))) − W·T, via Lemma III.2
        // multiplies with v = p^{2−3δ} (right to left, as the
        // Lemma IV.1 proof prescribes).
        let wt = carma_spread(machine, &all, &w, &t1, v_mem);
        let u1t = u1.transpose();
        let utwt = carma_spread(machine, &all, &u1t, &wt, 1);
        let tt = t1.transpose();
        let t_utwt = carma_spread(machine, &all, &tt, &utwt, 1);
        let corr = carma_spread(machine, &all, &u1, &t_utwt, v_mem);
        let mut v1 = wt;
        v1.scale(-1.0);
        v1.axpy(0.5, &corr);
        for &pid in all.procs() {
            machine.charge_flops(pid, 2 * per_proc((rem - b) * b));
        }

        // Line 10: replicate U₁ and V₁ over the layers and append. A
        // ragged final panel contributes only k = min(rem − b, b)
        // reflector columns.
        let kk = u1.cols();
        let rep_words = 2 * (rem - b) * kk;
        for &pid in grid3.procs() {
            machine.charge_comm(pid, 2 * (rep_words as u64).div_ceil(params.p as u64));
            machine.alloc(pid, (rep_words as u64).div_ceil((params.q * params.q) as u64));
        }
        machine.step(grid3.procs(), 2);

        u_agg.set_block(o + b, m_agg, &u1);
        v_agg.set_block(o + b, m_agg, &v1);
        m_agg += kk;

        o += b;
        step += 1;
        machine.fence();
    }

    // Base case (lines 1–2): the final b×b block.
    let rem = n - o;
    let mut last = a.block(o, o, rem, rem);
    if m_agg > 0 {
        let (upd1, upd2) = exec::join(
            || {
                let vt = v_agg.block(o, 0, rem, m_agg).transpose();
                streaming_mm_dense(machine, &grid3, &u_agg, (o, 0, rem, m_agg), false, &vt, w_depth)
            },
            || {
                let ut = u_agg.block(o, 0, rem, m_agg).transpose();
                streaming_mm_dense(machine, &grid3, &v_agg, (o, 0, rem, m_agg), false, &ut, w_depth)
            },
        );
        last.axpy(1.0, &upd1);
        last.axpy(1.0, &upd2);
        for &pid in all.procs() {
            machine.charge_flops(pid, 2 * per_proc(rem * rem));
        }
    }
    last.symmetrize();
    write_diag_block(&mut out, o, &last);

    rep.release(machine);
    machine.fence();
    (out, trace)
}

/// Task-graph (`CA_LOOKAHEAD`) driver for Algorithm IV.1.
///
/// Builds one dependency-driven task per pseudocode line and panel —
/// the two line-5 aggregate products, the panel combine, the diagonal
/// band write, the panel QR (line 7), the three W terms (line 8), the
/// V₁ chain (line 9) and the aggregate append (line 10) — and hands the
/// graph to [`ca_pla::dag::TaskGraph`]. Data dependencies replace the
/// barrier path's lockstep schedule: independent tasks (the line-5
/// pair, the two aggregate W chains, the band writes vs. the QR) may
/// overlap, and panel `k`'s band writes may run concurrently with panel
/// `k+1`. Cross-panel QR lookahead is bounded at depth 1 by the
/// algorithm itself: panel `k+1`'s line 5 reads the aggregates through
/// panel `k` (DESIGN.md §6g).
///
/// Output and ledger are bit-identical to [`full_to_band_barrier`]:
/// * task bodies perform the barrier path's arithmetic through the
///   zero-copy `_into` kernels, which are bitwise-equal to their
///   copy-path counterparts (see the `ca_pla::{carma, streaming}`
///   equivalence tests);
/// * every BSP charge is captured per task and replayed in the barrier
///   path's program order with the per-panel fences restored as replay
///   markers (`ca_pla::dag` module docs give the determinism argument).
fn full_to_band_dag(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, FullToBandTrace) {
    let n = a.rows();
    let grid3 = params.grid3();
    let w_depth = params.stream_depth(n, b);
    let v_mem = params.p_2m3d();
    let all = Grid::all(params.p);
    let p = params.p;
    let q = params.q;
    let per_proc = move |words: usize| (words as u64).div_ceil(p.max(1) as u64);

    // Replication happens live, before the graph: its charges open the
    // same ledger phase that panel 0's replayed charges complete.
    let rep = ca_pla::streaming::Replicated::replicate(machine, &grid3, a);

    // Static panel schedule — offsets, trailing sizes, aggregate widths
    // and reflector counts are all data-independent, so the whole graph
    // is built up front.
    struct PanelSpec {
        o: usize,
        rem: usize,
        m_agg: usize,
        kk: usize,
        qr_procs: usize,
    }
    let mut trace = FullToBandTrace::default();
    let mut specs: Vec<PanelSpec> = Vec::new();
    {
        let mut o = 0usize;
        let mut m_agg = 0usize;
        let mut step = 0usize;
        while n - o > b {
            let rem = n - o;
            trace.panels.push(PanelTrace {
                step,
                offset: o,
                remaining: rem,
                agg_cols: m_agg,
                qr_procs: params.panel_qr_procs(n, b),
            });
            let kk = (rem - b).min(b);
            specs.push(PanelSpec {
                o,
                rem,
                m_agg,
                kk,
                qr_procs: params.panel_qr_procs(n, b).min(rem - b).max(1),
            });
            m_agg += kk;
            o += b;
            step += 1;
        }
    }
    let total_agg: usize = specs.iter().map(|s| s.kk).sum();
    let m_agg_final = specs.last().map_or(0, |s| s.m_agg + s.kk);
    let o_final = specs.len() * b;

    // Shared state the tasks hand each other. Locks never contend on a
    // value's bits — the dependency edges serialize every write against
    // every read — they only make the sharing safe across worker
    // threads.
    let out_slot = Mutex::new(BandedSym::zeros(n, b, b));
    let u_agg = RwLock::new(Matrix::zeros(n, total_agg));
    let v_agg = RwLock::new(Matrix::zeros(n, total_agg));
    let rec = Mutex::new(rec);

    #[derive(Default)]
    struct PanelCells {
        /// Updated panel A̅(o.., o..o+b) (only built when m_agg > 0).
        panel: TaskCell<Matrix>,
        upd1: TaskCell<Matrix>,
        upd2: TaskCell<Matrix>,
        /// (U₁, T, R) from the line-7 QR.
        qr: TaskCell<(Matrix, Matrix, Matrix)>,
        w: TaskCell<Matrix>,
        w2: TaskCell<Matrix>,
        w3: TaskCell<Matrix>,
    }
    let cells: Vec<PanelCells> = specs.iter().map(|_| PanelCells::default()).collect();
    let base_upd1 = TaskCell::<Matrix>::new();
    let base_upd2 = TaskCell::<Matrix>::new();

    let a_ref = a;
    let grid3 = &grid3;
    let all = &all;
    let out = &out_slot;
    let u_agg = &u_agg;
    let v_agg = &v_agg;
    let rec = &rec;
    let cells = &cells;
    let base_upd1 = &base_upd1;
    let base_upd2 = &base_upd2;

    let mut graph = TaskGraph::new(machine);
    // Tail of the previous panel (its aggregate append): insertion
    // order == barrier program order, so replaying the per-task logs in
    // insertion order reproduces the barrier ledger exactly.
    let mut prev_tail: Option<TaskId> = None;
    for (k, s) in specs.iter().enumerate() {
        let (o, rem, m_agg, kk) = (s.o, s.rem, s.m_agg, s.kk);
        let qr_procs = s.qr_procs;
        let c = &cells[k];
        let deps_prev: Vec<TaskId> = prev_tail.into_iter().collect();

        // Line 5: the two aggregate products are independent tasks; the
        // combine joins them. The transposed aggregate blocks are read
        // in place (`transpose_b`) instead of being materialized.
        let combine = if m_agg > 0 {
            let t5a = graph.add_task("f2b.line5a", &deps_prev, move || {
                let ug = u_agg.read().unwrap();
                let vg = v_agg.read().unwrap();
                let mut buf = Matrix::zeros(rem, b);
                streaming_mm_view_into(
                    machine,
                    grid3,
                    &ug.view(),
                    (o, 0, rem, m_agg),
                    false,
                    &vg.subview(o, 0, b, m_agg),
                    true,
                    w_depth,
                    &mut buf.view_mut(),
                );
                c.upd1.set(buf);
            });
            let t5b = graph.add_task("f2b.line5b", &deps_prev, move || {
                let ug = u_agg.read().unwrap();
                let vg = v_agg.read().unwrap();
                let mut buf = Matrix::zeros(rem, b);
                streaming_mm_view_into(
                    machine,
                    grid3,
                    &vg.view(),
                    (o, 0, rem, m_agg),
                    false,
                    &ug.subview(o, 0, b, m_agg),
                    true,
                    w_depth,
                    &mut buf.view_mut(),
                );
                c.upd2.set(buf);
            });
            let comb = graph.add_task("f2b.panel", &[t5a, t5b], move || {
                let mut panel = a_ref.block(o, o, rem, b);
                panel.axpy(1.0, &c.upd1.take());
                panel.axpy(1.0, &c.upd2.take());
                for &pid in all.procs() {
                    machine.charge_flops(pid, 2 * per_proc(rem * b));
                }
                c.panel.set(panel);
            });
            Some(comb)
        } else {
            None
        };
        let panel_deps: Vec<TaskId> = combine.into_iter().collect();

        // The diagonal block A̅₁₁ goes straight into the output band,
        // symmetrized in flight (`½(aᵢⱼ + aⱼᵢ)` with the lower-triangle
        // element first — `Matrix::symmetrize`'s exact expression).
        graph.add_task("f2b.diag", &panel_deps, move || {
            let mut band = out.lock().unwrap();
            let mut write = |get: &dyn Fn(usize, usize) -> f64| {
                for j in 0..b {
                    for i in j..b {
                        let v = if i == j {
                            get(i, i)
                        } else {
                            0.5 * (get(i, j) + get(j, i))
                        };
                        band.set(o + i, o + j, v);
                    }
                }
            };
            if m_agg > 0 {
                c.panel.with_ref(|pm| write(&|i, j| pm.get(i, j)));
            } else {
                write(&|i, j| a_ref.get(o + i, o + j));
            }
        });

        // Line 7: panel QR (and the eigenvector record, whose push
        // order the dependency chain keeps identical to the barrier
        // path's panel order).
        let qr_id = graph.add_task("f2b.qr", &panel_deps, move || {
            let a21 = if m_agg > 0 {
                c.panel.with_ref(|pm| pm.block(b, 0, rem - b, b))
            } else {
                a_ref.block(o + b, o, rem - b, b)
            };
            let factors = if rem - b >= b {
                let qr_group = Grid::new_2d((0..qr_procs).collect(), qr_procs, 1);
                let da21 = DistMatrix::from_dense(machine, &qr_group, &a21);
                let f = rect_qr(machine, &da21);
                da21.release(machine);
                let u1 = f.u.assemble_unchecked();
                f.u.release(machine);
                (u1, f.t, f.r)
            } else {
                let f = kern::local_qr(machine, all.proc(0), &a21);
                let factor_words = (f.u.len() + f.t.len() + f.r.len()) as u64;
                for &pid in all.procs() {
                    machine.charge_comm(pid, 2 * factor_words.div_ceil(p as u64));
                }
                machine.step(all.procs(), 1);
                (f.u, f.t, f.r)
            };
            if let Some(r) = rec.lock().unwrap().as_deref_mut() {
                r.push(crate::transforms::Reflectors {
                    row0: o + b,
                    u: factors.0.clone(),
                    t: factors.1.clone(),
                });
            }
            c.qr.set(factors);
        });

        graph.add_task("f2b.subdiag", &[qr_id], move || {
            let mut band = out.lock().unwrap();
            c.qr.with_ref(|(_, _, r1)| write_subdiag_block(&mut band, o, r1));
        });

        // Line 8: W = A₂₂·U₁ + U₂⁽⁰⁾(V₂⁽⁰⁾ᵀU₁) + V₂⁽⁰⁾(U₂⁽⁰⁾ᵀU₁); the
        // three terms are independent tasks.
        let w_id = graph.add_task("f2b.w", &[qr_id], move || {
            c.qr.with_ref(|(u1, _, _)| {
                let mut buf = Matrix::zeros(rem - b, kk);
                streaming_mm_view_into(
                    machine,
                    grid3,
                    &a_ref.view(),
                    (o + b, o + b, rem - b, rem - b),
                    false,
                    &u1.view(),
                    false,
                    w_depth,
                    &mut buf.view_mut(),
                );
                c.w.set(buf);
            });
        });
        let w_tail = if m_agg > 0 {
            let w2_id = graph.add_task("f2b.w2", &[qr_id], move || {
                let ug = u_agg.read().unwrap();
                let vg = v_agg.read().unwrap();
                c.qr.with_ref(|(u1, _, _)| {
                    let mut vtu = Matrix::zeros(m_agg, kk);
                    streaming_mm_view_into(
                        machine,
                        grid3,
                        &vg.view(),
                        (o + b, 0, rem - b, m_agg),
                        true,
                        &u1.view(),
                        false,
                        w_depth,
                        &mut vtu.view_mut(),
                    );
                    let mut buf = Matrix::zeros(rem - b, kk);
                    streaming_mm_view_into(
                        machine,
                        grid3,
                        &ug.view(),
                        (o + b, 0, rem - b, m_agg),
                        false,
                        &vtu.view(),
                        false,
                        w_depth,
                        &mut buf.view_mut(),
                    );
                    c.w2.set(buf);
                });
            });
            let w3_id = graph.add_task("f2b.w3", &[qr_id], move || {
                let ug = u_agg.read().unwrap();
                let vg = v_agg.read().unwrap();
                c.qr.with_ref(|(u1, _, _)| {
                    let mut utu = Matrix::zeros(m_agg, kk);
                    streaming_mm_view_into(
                        machine,
                        grid3,
                        &ug.view(),
                        (o + b, 0, rem - b, m_agg),
                        true,
                        &u1.view(),
                        false,
                        w_depth,
                        &mut utu.view_mut(),
                    );
                    let mut buf = Matrix::zeros(rem - b, kk);
                    streaming_mm_view_into(
                        machine,
                        grid3,
                        &vg.view(),
                        (o + b, 0, rem - b, m_agg),
                        false,
                        &utu.view(),
                        false,
                        w_depth,
                        &mut buf.view_mut(),
                    );
                    c.w3.set(buf);
                });
            });
            graph.add_task("f2b.wsum", &[w_id, w2_id, w3_id], move || {
                c.w.with_mut(|w| {
                    w.axpy(1.0, &c.w2.take());
                    w.axpy(1.0, &c.w3.take());
                });
                for &pid in all.procs() {
                    machine.charge_flops(pid, 2 * per_proc((rem - b) * b));
                }
            })
        } else {
            w_id
        };

        // Line 9: V₁ = ½U₁(Tᵀ(U₁ᵀ(W·T))) − W·T, written straight into
        // the aggregate; the U₁ᵀ/Tᵀ operands are read in place.
        let v_id = graph.add_task("f2b.v1", &[w_tail], move || {
            c.qr.with_ref(|(u1, t1, _)| {
                let w = c.w.take();
                let mut wt = Matrix::zeros(rem - b, kk);
                carma_spread_into(
                    machine, all, &w.view(), Trans::N, &t1.view(), v_mem,
                    &mut wt.view_mut(),
                );
                let mut utwt = Matrix::zeros(kk, kk);
                carma_spread_into(
                    machine, all, &u1.view(), Trans::T, &wt.view(), 1,
                    &mut utwt.view_mut(),
                );
                let mut t_utwt = Matrix::zeros(kk, kk);
                carma_spread_into(
                    machine, all, &t1.view(), Trans::T, &utwt.view(), 1,
                    &mut t_utwt.view_mut(),
                );
                let mut corr = Matrix::zeros(rem - b, kk);
                carma_spread_into(
                    machine, all, &u1.view(), Trans::N, &t_utwt.view(), v_mem,
                    &mut corr.view_mut(),
                );
                // Fused `v1 = -wt; v1 += ½·corr` (the barrier path's
                // scale-then-axpy, expression for expression — the
                // `* -1.0` spelling is the scale's exact arithmetic).
                let mut vg = v_agg.write().unwrap();
                let mut dst = vg.subview_mut(o + b, m_agg, rem - b, kk);
                #[allow(clippy::neg_multiply)]
                for j in 0..kk {
                    for i in 0..rem - b {
                        dst.set(i, j, wt.get(i, j) * -1.0 + 0.5 * corr.get(i, j));
                    }
                }
                drop(vg);
                for &pid in all.procs() {
                    machine.charge_flops(pid, 2 * per_proc((rem - b) * b));
                }
            });
        });

        // Line 10: replicate-and-append charges, then the U₁ append.
        let append_id = graph.add_task("f2b.append", &[v_id], move || {
            let rep_words = 2 * (rem - b) * kk;
            for &pid in grid3.procs() {
                machine.charge_comm(pid, 2 * (rep_words as u64).div_ceil(p as u64));
                machine.alloc(pid, (rep_words as u64).div_ceil((q * q) as u64));
            }
            machine.step(grid3.procs(), 2);
            c.qr.with_ref(|(u1, _, _)| {
                u_agg.write().unwrap().set_block(o + b, m_agg, u1);
            });
        });
        graph.add_fence();
        prev_tail = Some(append_id);
    }

    // Base case (lines 1–2): the final block, updated from the full
    // aggregates and symmetrized into the band.
    let (o, rem, m_agg) = (o_final, n - o_final, m_agg_final);
    let base_deps: Vec<TaskId> = prev_tail.into_iter().collect();
    let base_id = if m_agg > 0 {
        let b5a = graph.add_task("f2b.base5a", &base_deps, move || {
            let ug = u_agg.read().unwrap();
            let vg = v_agg.read().unwrap();
            let mut buf = Matrix::zeros(rem, rem);
            streaming_mm_view_into(
                machine,
                grid3,
                &ug.view(),
                (o, 0, rem, m_agg),
                false,
                &vg.subview(o, 0, rem, m_agg),
                true,
                w_depth,
                &mut buf.view_mut(),
            );
            base_upd1.set(buf);
        });
        let b5b = graph.add_task("f2b.base5b", &base_deps, move || {
            let ug = u_agg.read().unwrap();
            let vg = v_agg.read().unwrap();
            let mut buf = Matrix::zeros(rem, rem);
            streaming_mm_view_into(
                machine,
                grid3,
                &vg.view(),
                (o, 0, rem, m_agg),
                false,
                &ug.subview(o, 0, rem, m_agg),
                true,
                w_depth,
                &mut buf.view_mut(),
            );
            base_upd2.set(buf);
        });
        graph.add_task("f2b.base", &[b5a, b5b], move || {
            let mut last = a_ref.block(o, o, rem, rem);
            last.axpy(1.0, &base_upd1.take());
            last.axpy(1.0, &base_upd2.take());
            for &pid in all.procs() {
                machine.charge_flops(pid, 2 * per_proc(rem * rem));
            }
            last.symmetrize();
            let mut band = out.lock().unwrap();
            write_diag_block(&mut band, o, &last);
        })
    } else {
        graph.add_task("f2b.base", &base_deps, move || {
            let mut band = out.lock().unwrap();
            for j in 0..rem {
                for i in j..rem {
                    let v = if i == j {
                        a_ref.get(o + i, o + i)
                    } else {
                        0.5 * (a_ref.get(o + i, o + j) + a_ref.get(o + j, o + i))
                    };
                    band.set(o + i, o + j, v);
                }
            }
        })
    };
    graph.add_task("f2b.release", &[base_id], move || rep.release(machine));
    graph.add_fence();
    graph.run();

    (out_slot.into_inner().unwrap(), trace)
}

/// Write a symmetric `b×b` diagonal block into the band at offset `o`.
fn write_diag_block(out: &mut BandedSym, o: usize, blk: &Matrix) {
    let b = blk.rows();
    for j in 0..b {
        for i in j..b {
            out.set(o + i, o + j, blk.get(i, j));
        }
    }
}

/// Write the upper-triangular `R` as the sub-diagonal block: the band
/// rows `o+b..o+2b` of columns `o..o+b` receive `R` (line 13's
/// `[A̅₁₁, Rᵀ; R, B₂]` structure).
fn write_subdiag_block(out: &mut BandedSym, o: usize, r: &Matrix) {
    let b = r.cols();
    for j in 0..b {
        for i in 0..r.rows().min(b) {
            if i <= j {
                out.set(o + b + i, o + j, r.get(i, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::{banded_eigenvalues, spectrum_distance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check_reduction(n: usize, b: usize, p: usize, c: usize, seed: u64) {
        let m = machine(p);
        let params = EigenParams::new(p, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let spectrum = gen::linspace_spectrum(n, -3.0, 5.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let (band, trace) = full_to_band(&m, &params, &a, b);
        assert!(band.measured_bandwidth(1e-9) <= b);
        assert_eq!(trace.panels.len(), n.div_ceil(b) - 1);
        let ev = banded_eigenvalues(&band);
        let d = spectrum_distance(&ev, &spectrum);
        assert!(
            d < 1e-8 * (n as f64),
            "n={n} b={b} p={p} c={c}: spectrum drifted by {d}"
        );
    }

    #[test]
    fn reduces_and_preserves_spectrum_2d() {
        check_reduction(32, 4, 4, 1, 200);
    }

    #[test]
    fn reduces_and_preserves_spectrum_25d() {
        check_reduction(32, 8, 8, 2, 201);
    }

    #[test]
    fn reduces_with_full_replication() {
        // c = p^{1/3} exactly (δ = 2/3): p = 64, c = 4.
        check_reduction(32, 4, 64, 4, 202);
    }

    #[test]
    fn single_processor_machine() {
        check_reduction(16, 4, 1, 1, 203);
    }

    #[test]
    fn wide_band_single_panel() {
        check_reduction(16, 8, 4, 1, 204);
    }

    #[test]
    fn ragged_dimension_short_final_panel() {
        // b ∤ n: the last panel's sub-diagonal block is wide
        // (rem − b < b) and takes the local-QR fallback.
        check_reduction(37, 6, 4, 1, 207);
        check_reduction(50, 8, 8, 2, 208);
        check_reduction(65, 16, 16, 1, 209);
    }

    #[test]
    fn ragged_dimension_odd_and_prime() {
        check_reduction(29, 4, 4, 1, 217);
        check_reduction(53, 7, 1, 1, 218);
    }

    #[test]
    fn tiny_dimensions_reduce_to_tridiagonal() {
        // n < 4 forces b = 1 (direct tridiagonalization shape).
        for (n, seed) in [(2usize, 230u64), (3, 231)] {
            let m = machine(1);
            let params = EigenParams::new(1, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let spectrum = gen::linspace_spectrum(n, -1.0, 1.0);
            let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
            let (band, _) = full_to_band(&m, &params, &a, 1);
            let ev = banded_eigenvalues(&band);
            assert!(spectrum_distance(&ev, &spectrum) < 1e-9);
        }
    }

    #[test]
    fn replication_reduces_communication() {
        // Θ(√c) claim: at fixed p, measured W drops as c grows.
        let n = 96;
        let b = 8;
        let mut ws = Vec::new();
        for c in [1usize, 4] {
            let p = 64;
            let m = machine(p);
            let params = EigenParams::new(p, c);
            let mut rng = StdRng::seed_from_u64(205);
            let a = gen::random_symmetric(&mut rng, n);
            let snap = m.snapshot();
            let _ = full_to_band(&m, &params, &a, b);
            ws.push(m.costs_since(&snap).horizontal_words as f64);
        }
        assert!(
            ws[1] < ws[0],
            "W did not drop with replication: c=1 → {}, c=4 → {}",
            ws[0],
            ws[1]
        );
    }

    #[test]
    fn trace_records_growing_aggregates() {
        let m = machine(4);
        let params = EigenParams::new(4, 1);
        let mut rng = StdRng::seed_from_u64(206);
        let a = gen::random_symmetric(&mut rng, 24);
        let (_, trace) = full_to_band(&m, &params, &a, 4);
        for (s, p) in trace.panels.iter().enumerate() {
            assert_eq!(p.step, s);
            assert_eq!(p.offset, s * 4);
            assert_eq!(p.agg_cols, s * 4);
        }
    }
}
