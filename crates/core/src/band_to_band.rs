//! Algorithm IV.2: **2.5D-Band-to-Band** — reduce a symmetric banded
//! matrix from band-width `b` to any target `h < b` (the paper's
//! `h = b/k`, generalized to non-divisor targets for arbitrary `n`) by
//! pipelined bulge chasing.
//!
//! The chase schedule comes from [`ca_dla::bulge::chase_plan`] (the
//! paper's exact index ranges); iterations with equal `2i + j` run
//! concurrently on disjoint processor groups `Π̂ⱼ` of `p̂ = p·b/n`
//! processors (Figure 2), which the ledger's per-processor superstep
//! counters capture. Each chase:
//!
//! 1. gathers its `O(b)×O(b)` window onto the group
//!    (`O(b²/p̂)` words per processor, as in the Lemma IV.3 proof),
//! 2. QR-factors the `(≤b)×h` bulge block on `p·h/n` processors
//!    (line 16, [`ca_pla::rect_qr`]),
//! 3. applies the two-sided update of lines 17–22 with Lemma III.2
//!    multiplies (`v = p̂^{2−3δ}/(k−1)`),
//! 4. scatters the window back.
//!
//! A fence closes every pipeline phase, folding the per-superstep maxima
//! exactly at the granularity the paper's cost expressions sum over.

use ca_bsp::Machine;
use ca_dla::bulge::{chase_plan_to, ChaseOp};
use ca_dla::gemm::Trans;
use ca_dla::{BandedSym, Matrix};
use ca_pla::dist::DistMatrix;
use ca_pla::exec;
use ca_pla::grid::Grid;
use ca_pla::kern;
use ca_pla::ops;
use ca_pla::rect_qr::rect_qr;

/// Trace of the pipeline schedule (consumed by the Figure-2 binary).
#[derive(Debug, Clone, Default)]
pub struct BandToBandTrace {
    /// `(phase, i, j, qr_rows, qr_cols, up_cols, group_index)` per chase.
    pub chases: Vec<ChaseRecord>,
}

/// One executed chase and where it ran.
#[derive(Debug, Clone)]
pub struct ChaseRecord {
    /// Pipeline phase `2i + j`.
    pub phase: usize,
    /// The chase operation (paper index ranges).
    pub op: ChaseOp,
    /// Which processor group `Π̂ⱼ` executed it.
    pub group_index: usize,
    /// Processors used for the QR (line 16's `Π̂ⱼ[1 : p·h/n]`).
    pub qr_procs: usize,
}

/// Reduce `bmat` from band-width `b` to `⌈b/k⌉` on the processors of
/// `grid` (1D), charging per Algorithm IV.2. `v_mem` is the Lemma III.2
/// memory parameter for the update multiplies. `k` need not divide `b`
/// (odd band-widths arise for arbitrary `n`); the target rounds up.
pub fn band_to_band(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    k: usize,
    v_mem: usize,
) -> (BandedSym, BandToBandTrace) {
    try_band_to_band(machine, grid, bmat, k, v_mem).unwrap_or_else(|e| panic!("{e}"))
}

/// [`band_to_band`] with typed input validation: a reduction factor
/// outside `1 ≤ k ≤ b` comes back as `Err(EigenError)` with the ledger
/// untouched.
pub fn try_band_to_band(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    k: usize,
    v_mem: usize,
) -> Result<(BandedSym, BandToBandTrace), crate::EigenError> {
    if k < 1 || k > bmat.bandwidth() {
        return Err(crate::EigenError::InvalidReductionFactor {
            b: bmat.bandwidth(),
            k,
        });
    }
    let h = bmat.bandwidth().div_ceil(k);
    Ok(band_to_band_impl(machine, grid, bmat, h, v_mem, None))
}

/// [`band_to_band`] with an explicit target band-width `h` (any
/// `1 ≤ h ≤ b`) instead of a divisor `k` — the solver's schedule for
/// arbitrary `n` clamps the last halving to `n/pᵟ` rather than
/// overshooting it, and such targets are not expressible as `⌈b/k⌉`.
pub fn band_to_band_to(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    h: usize,
    v_mem: usize,
) -> (BandedSym, BandToBandTrace) {
    band_to_band_impl(machine, grid, bmat, h, v_mem, None)
}

/// [`band_to_band_to`] with transform recording: each chase's `(U, T)`
/// is appended to `rec` in execution (pipeline-phase) order.
pub fn band_to_band_to_logged(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    h: usize,
    v_mem: usize,
    rec: &mut Vec<crate::transforms::Reflectors>,
) -> (BandedSym, BandToBandTrace) {
    band_to_band_impl(machine, grid, bmat, h, v_mem, Some(rec))
}

fn band_to_band_impl(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    h: usize,
    v_mem: usize,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, BandToBandTrace) {
    let _span = ca_obs::kernel_span("driver.band_to_band");
    if ca_obs::knobs::lookahead() {
        band_to_band_dag(machine, grid, bmat, h, v_mem, rec)
    } else {
        band_to_band_barrier(machine, grid, bmat, h, v_mem, rec)
    }
}

/// Superstep-barrier driver: phase-by-phase execution with one `fence`
/// per pipeline phase. This is the reference path the task-graph driver
/// ([`band_to_band_dag`]) must match bit-for-bit in output, reflector
/// record and ledger.
fn band_to_band_barrier(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    h: usize,
    v_mem: usize,
    mut rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, BandToBandTrace) {
    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(h >= 1 && h <= b, "need 1 ≤ h ≤ band-width");
    let p = grid.len();

    // Working copy with bulge capacity.
    let cap = (2 * b).min(n - 1);
    let mut work = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work.set(i, j, bmat.get(i, j));
        }
    }

    let mut trace = BandToBandTrace::default();
    if h == b {
        work.set_bandwidth(h);
        return (work, trace);
    }

    // Processor groups Π̂ⱼ: ⌈n/b⌉ groups of p̂ = p·b/n processors
    // (clamped to the machine we actually have).
    let n_groups = n.div_ceil(b).clamp(1, p);
    let p_hat = (p / n_groups).max(1);
    let groups: Vec<Grid> = (0..n_groups)
        .map(|g| Grid::new_1d(grid.procs()[g * p_hat..(g + 1) * p_hat].to_vec()))
        .collect();

    // Phase-ordered plan (ties by ascending i — the pipeline handoff
    // order, verified bitwise-equivalent to the sequential order in
    // ca-dla's tests), chunked into pipeline phases: chases with equal
    // 2i + j run concurrently on their disjoint groups Π̂ⱼ.
    let mut plan = chase_plan_to(n, b, h);
    plan.sort_by_key(|op| (op.phase(), op.i));
    let mut phases: Vec<Vec<ChaseOp>> = Vec::new();
    for op in plan {
        match phases.last_mut() {
            Some(cur) if cur[0].phase() == op.phase() => cur.push(op),
            _ => phases.push(vec![op]),
        }
    }

    let mut last_window: Vec<Option<(usize, usize)>> = vec![None; n_groups];
    for (pi, ops) in phases.into_iter().enumerate() {
        if pi > 0 {
            machine.fence();
        }
        // Serial prologue: residency charges (stateful per group) and
        // trace records, in pipeline handoff order.
        let mut assignments = Vec::with_capacity(ops.len());
        for op in &ops {
            let gidx = (op.j - 1) % n_groups;
            let group = &groups[gidx];
            let qr_procs = ((p * h) / n).clamp(1, group.len());
            trace.chases.push(ChaseRecord {
                phase: op.phase(),
                op: op.clone(),
                group_index: gidx,
                qr_procs,
            });
            charge_window_residency(machine, group, op, work.capacity(), &mut last_window[gidx]);
            assignments.push((gidx, qr_procs));
        }

        // A phase's chases may run on real threads only when their
        // windows are pairwise disjoint and no group is assigned twice
        // (groups recycle when n/b > p); otherwise the phase falls back
        // to in-order execution with identical results.
        let disjoint = {
            let mut spans: Vec<(usize, usize, usize)> = ops
                .iter()
                .zip(&assignments)
                .map(|(op, &(gidx, _))| {
                    let (lo, hi) = op.window();
                    (lo, hi, gidx)
                })
                .collect();
            spans.sort_unstable();
            spans
                .windows(2)
                .all(|w| w[0].1 <= w[1].0 && w[0].2 != w[1].2)
        };

        if disjoint {
            let windows: Vec<Matrix> = ops
                .iter()
                .map(|op| {
                    let (lo, hi) = op.window();
                    work.window(lo, hi)
                })
                .collect();
            let capacity = work.capacity();
            let results = exec::par_ranks(ops.len(), |idx| {
                let (gidx, qr_procs) = assignments[idx];
                let mut d = windows[idx].clone();
                let (u, t) = chase_compute(
                    machine, &groups[gidx], qr_procs, &mut d, &ops[idx], v_mem, capacity,
                );
                (d, u, t)
            });
            for (op, (d, u, t)) in ops.iter().zip(results) {
                work.set_window(op.window().0, &d);
                if let Some(r) = rec.as_deref_mut() {
                    r.push(crate::transforms::Reflectors {
                        row0: op.qr_rows.0,
                        u,
                        t,
                    });
                }
            }
        } else {
            for (op, &(gidx, qr_procs)) in ops.iter().zip(&assignments) {
                let (lo, hi) = op.window();
                let mut d = work.window(lo, hi);
                let (u, t) = chase_compute(
                    machine,
                    &groups[gidx],
                    qr_procs,
                    &mut d,
                    op,
                    v_mem,
                    work.capacity(),
                );
                work.set_window(lo, &d);
                if let Some(r) = rec.as_deref_mut() {
                    r.push(crate::transforms::Reflectors {
                        row0: op.qr_rows.0,
                        u,
                        t,
                    });
                }
            }
        }
    }
    machine.fence();
    work.set_bandwidth(h);
    (work, trace)
}

/// Task-graph driver: the same chase plan as [`band_to_band_barrier`],
/// but each chase is a [`TaskGraph`] node depending only on the earlier
/// chases whose windows overlap its own — the diagonal-wavefront
/// pipeline of Figure 2. A chase of phase `φ+1` whose window is clear
/// of a straggling phase-`φ` window becomes ready without waiting for
/// the phase barrier. Charges are captured per task and replayed in the
/// barrier path's program order (residency prologue, then chases, with
/// the fence markers between phases), so values, reflector record and
/// ledger are bitwise the barrier path's.
fn band_to_band_dag(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    h: usize,
    v_mem: usize,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> (BandedSym, BandToBandTrace) {
    use ca_pla::dag::{TaskCell, TaskGraph, TaskId};
    use std::sync::Mutex;

    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(h >= 1 && h <= b, "need 1 ≤ h ≤ band-width");
    let p = grid.len();

    let cap = (2 * b).min(n - 1);
    let mut work0 = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work0.set(i, j, bmat.get(i, j));
        }
    }

    let mut trace = BandToBandTrace::default();
    if h == b {
        work0.set_bandwidth(h);
        return (work0, trace);
    }
    let capacity = work0.capacity();

    let n_groups = n.div_ceil(b).clamp(1, p);
    let p_hat = (p / n_groups).max(1);
    let groups: Vec<Grid> = (0..n_groups)
        .map(|g| Grid::new_1d(grid.procs()[g * p_hat..(g + 1) * p_hat].to_vec()))
        .collect();

    let mut plan = chase_plan_to(n, b, h);
    plan.sort_by_key(|op| (op.phase(), op.i));
    let mut phases: Vec<Vec<ChaseOp>> = Vec::new();
    for op in plan {
        match phases.last_mut() {
            Some(cur) if cur[0].phase() == op.phase() => cur.push(op),
            _ => phases.push(vec![op]),
        }
    }

    // Shared state and per-chase reflector slots (collected out of
    // completion order, appended to `rec` in plan order afterwards).
    let work_slot = Mutex::new(work0);
    let total_chases: usize = phases.iter().map(|ops| ops.len()).sum();
    let factor_cells: Vec<TaskCell<(Matrix, Matrix)>> =
        (0..total_chases).map(|_| TaskCell::new()).collect();

    let work = &work_slot;
    let groups_ref = &groups;
    let cells = &factor_cells;

    let mut graph = TaskGraph::new(machine);
    // (window, task id) of every chase inserted so far — the overlap
    // scan that yields the wavefront dependency structure.
    let mut placed: Vec<(usize, usize, TaskId)> = Vec::new();
    let mut last_window: Vec<Option<(usize, usize)>> = vec![None; n_groups];
    let mut chase_idx = 0usize;

    for (pi, ops) in phases.into_iter().enumerate() {
        if pi > 0 {
            graph.add_fence();
        }
        // Residency prologue: the per-group window-slide state is pure
        // schedule data, so the words are computed here at build time
        // and one task per phase charges them in op order.
        let mut residency: Vec<(usize, u64)> = Vec::with_capacity(ops.len());
        let mut assignments = Vec::with_capacity(ops.len());
        for op in &ops {
            let gidx = (op.j - 1) % n_groups;
            let qr_procs = ((p * h) / n).clamp(1, groups[gidx].len());
            trace.chases.push(ChaseRecord {
                phase: op.phase(),
                op: op.clone(),
                group_index: gidx,
                qr_procs,
            });
            residency.push((
                gidx,
                window_residency_words(op, capacity, &mut last_window[gidx]),
            ));
            assignments.push((gidx, qr_procs));
        }
        graph.add_task("b2b.residency", &[], move || {
            for (gidx, win_words) in residency {
                let group = &groups_ref[gidx];
                for &pid in group.procs() {
                    machine.charge_comm(pid, 2 * win_words.div_ceil(group.len() as u64));
                }
                machine.step(group.procs(), 1);
            }
        });

        for (op, (gidx, qr_procs)) in ops.into_iter().zip(assignments) {
            let (lo, hi) = op.window();
            let deps: Vec<TaskId> = placed
                .iter()
                .filter(|&&(plo, phi, _)| plo < hi && lo < phi)
                .map(|&(_, _, id)| id)
                .collect();
            let slot = chase_idx;
            let id = graph.add_task("b2b.chase", &deps, move || {
                let mut d = {
                    let w = work.lock().unwrap_or_else(|e| e.into_inner());
                    w.window(lo, hi)
                };
                let (u, t) = chase_compute(
                    machine,
                    &groups_ref[gidx],
                    qr_procs,
                    &mut d,
                    &op,
                    v_mem,
                    capacity,
                );
                let mut w = work.lock().unwrap_or_else(|e| e.into_inner());
                w.set_window(lo, &d);
                drop(w);
                cells[slot].set((u, t));
            });
            placed.push((lo, hi, id));
            chase_idx += 1;
        }
    }
    graph.add_fence();
    graph.run();

    if let Some(r) = rec {
        for (cell, chase) in factor_cells.iter().zip(&trace.chases) {
            let (u, t) = cell.take();
            r.push(crate::transforms::Reflectors {
                row0: chase.op.qr_rows.0,
                u,
                t,
            });
        }
    }

    let mut out = work_slot.into_inner().unwrap_or_else(|e| e.into_inner());
    out.set_bandwidth(h);
    (out, trace)
}

/// Fresh words entering a group's window for one chase (line 2 of Alg
/// IV.2): the window slides by `h` between a group's consecutive
/// chases, so only the freshly entered columns plus the boundary region
/// updated by the adjacent group move — `O(h·b/p̂)` words per processor
/// per chase, matching Lemma IV.3's per-iteration traffic. Pure in the
/// schedule (stateful only through `last_window`), so the task-graph
/// driver can evaluate it at build time.
fn window_residency_words(
    op: &ChaseOp,
    capacity: usize,
    last_window: &mut Option<(usize, usize)>,
) -> u64 {
    let (lo, hi) = op.window();
    let h = op.h();
    let height = (capacity + 1).min(hi - lo);
    let fresh_cols = match *last_window {
        Some((plo, phi)) if lo >= plo && lo < phi => (hi.saturating_sub(phi)) + h,
        _ => hi - lo, // first chase of this group, or a disjoint jump
    };
    *last_window = Some((lo, hi));
    (fresh_cols * height) as u64
}

/// Window residency charging: [`window_residency_words`] applied to the
/// live ledger — the barrier path's serial per-phase prologue.
fn charge_window_residency(
    machine: &Machine,
    group: &Grid,
    op: &ChaseOp,
    capacity: usize,
    last_window: &mut Option<(usize, usize)>,
) {
    let win_words = window_residency_words(op, capacity, last_window);
    for &pid in group.procs() {
        machine.charge_comm(pid, 2 * win_words.div_ceil(group.len() as u64));
    }
    machine.step(group.procs(), 1);
}

/// One chase's compute on its gathered window `d`: parallel QR →
/// Lemma III.2 updates → boundary handoff. Mirrors
/// `ca_dla::bulge::chase_window_update` with every product and word
/// charged. Fold-free (charges and steps only), so same-phase chases on
/// disjoint groups may run on real threads concurrently.
#[allow(clippy::too_many_arguments)]
fn chase_compute(
    machine: &Machine,
    group: &Grid,
    qr_procs: usize,
    d: &mut Matrix,
    op: &ChaseOp,
    v_mem: usize,
    capacity: usize,
) -> (Matrix, Matrix) {
    let (lo, hi) = op.window();
    let nr = op.nr();
    let h = op.h();
    let nc = op.nc();
    let qr_r = op.qr_rows.0 - lo;
    let qr_c = op.qr_cols.0 - lo;
    let up_c = op.up_cols.0 - lo;
    let p_hat = group.len() as u64;
    let height = (capacity + 1).min(hi - lo);

    // Line 16: parallel QR of the bulge block. Blocks too small to
    // amortize the distributed machinery (a real implementation's
    // sequential threshold) run locally on the group leader, with the
    // factors broadcast to the group.
    const LOCAL_QR_WORDS: usize = 1 << 14;
    let block = d.block(qr_r, qr_c, nr, h);
    let (u, t, r) = if nr >= h && qr_procs > 1 && nr * h > LOCAL_QR_WORDS {
        let qr_group = group.prefix(qr_procs);
        let dist = DistMatrix::from_dense(machine, &qr_group, &block);
        let f = rect_qr(machine, &dist);
        dist.release(machine);
        let u = f.u.assemble_unchecked();
        f.u.release(machine);
        (u, f.t, f.r)
    } else {
        let f = kern::local_qr(machine, group.proc(0), &block);
        // Re-spread the factors over the group (they stay distributed
        // for the update multiplies — the lemma never replicates them).
        let factor_words = (f.u.len() + f.t.len() + f.r.len()) as u64;
        for &pid in group.procs() {
            machine.charge_comm(pid, 2 * factor_words.div_ceil(p_hat));
        }
        machine.step(group.procs(), 1);
        (f.u, f.t, f.r)
    };
    let kk = u.cols();

    // Line 17: B[I_qr.rs, I_qr.cs] = [R; 0] and mirror.
    let mut r_full = Matrix::zeros(nr, h);
    r_full.set_block(0, 0, &r);
    d.set_block(qr_r, qr_c, &r_full);
    d.set_block(qr_c, qr_r, &r_full.transpose());

    // Line 19: W = B[I_up.cs, I_qr.rs]·U·T, V = −W. Operands are
    // resident on the group (the window gather above paid for them), so
    // these charge Lemma III.2's reduction terms only — exactly how the
    // Lemma IV.3 proof prices the per-iteration multiplies.
    let bup = d.block(up_c, qr_r, nc, nr);
    let bu = ops::resident_mm(machine, group, &bup, Trans::N, &u, Trans::N, v_mem);
    let w = ops::resident_mm(machine, group, &bu, Trans::N, &t, Trans::N, 1);
    // Fused V = −W (one pass, no clone-then-scale; −x ≡ x·(−1) bitwise).
    let mut v = Matrix::from_fn(w.rows(), w.cols(), |i, j| -w.get(i, j));

    // Line 20: V[I_v.rs, :] += ½·U·(Tᵀ·(Uᵀ·W[I_v.rs, :])).
    let w_sym = w.block(op.ov, 0, nr, kk);
    let utw = ops::resident_mm(machine, group, &u, Trans::T, &w_sym, Trans::N, 1);
    let ttutw = ops::resident_mm(machine, group, &t, Trans::T, &utw, Trans::N, 1);
    let corr = ops::resident_mm(machine, group, &u, Trans::N, &ttutw, Trans::N, 1);
    for a in 0..nr {
        for c in 0..kk {
            v.add_to(op.ov + a, c, 0.5 * corr.get(a, c));
        }
    }
    for &pid in group.procs() {
        machine.charge_flops(pid, ((nr * kk) as u64).div_ceil(p_hat));
    }

    // Lines 21–22: the symmetric rank-2h update (resident operands).
    let uvt = ops::resident_mm(machine, group, &u, Trans::N, &v, Trans::T, v_mem);
    d.add_block(qr_r, up_c, &uvt, 1.0);
    // Transposed accumulate of the mirror, no block/axpy/set_block
    // round-trip (`+= 1.0·s` ≡ `+= s` bitwise).
    for i in 0..nc {
        for j in 0..nr {
            d.add_to(up_c + i, qr_r + j, uvt.get(j, i));
        }
    }
    for &pid in group.procs() {
        machine.charge_flops(pid, 2 * ((nr * nc) as u64).div_ceil(p_hat));
    }

    // Hand the boundary region off to the adjacent group (the window
    // stays resident otherwise).
    let boundary_words = (h * height) as u64;
    for &pid in group.procs() {
        machine.charge_comm(pid, 2 * boundary_words.div_ceil(p_hat));
    }
    machine.step(group.procs(), 1);
    (u, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::{banded_eigenvalues, spectrum_distance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    fn check(n: usize, b: usize, k: usize, p: usize, seed: u64) {
        let m = machine(p);
        let grid = Grid::all(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let reference = banded_eigenvalues(&bm);
        let (out, trace) = band_to_band(&m, &grid, &bm, k, 1);
        assert!(
            out.measured_bandwidth(1e-9) <= b / k,
            "n={n} b={b} k={k} p={p}: bandwidth {} > {}",
            out.measured_bandwidth(1e-9),
            b / k
        );
        let ev = banded_eigenvalues(&out);
        let dist = spectrum_distance(&ev, &reference);
        assert!(
            dist < 1e-8 * n as f64,
            "n={n} b={b} k={k} p={p}: spectrum drifted {dist}"
        );
        assert!(!trace.chases.is_empty());
        // Phases are non-decreasing in execution order.
        for w in trace.chases.windows(2) {
            assert!(w[0].phase <= w[1].phase);
        }
    }

    #[test]
    fn halves_band_small_machine() {
        check(48, 8, 2, 4, 210);
    }

    #[test]
    fn quarter_reduction() {
        check(64, 8, 4, 8, 211);
    }

    #[test]
    fn to_tridiagonal() {
        check(32, 4, 4, 4, 212);
    }

    #[test]
    fn single_processor() {
        check(32, 4, 2, 1, 213);
    }

    #[test]
    fn more_groups_than_processors() {
        // n/b = 16 groups but only 2 processors: groups recycle.
        check(64, 4, 2, 2, 214);
    }

    #[test]
    fn k_equals_one_is_identity() {
        let m = machine(2);
        let mut rng = StdRng::seed_from_u64(215);
        let dense = gen::random_banded(&mut rng, 16, 4);
        let bm = BandedSym::from_dense(&dense, 4, 4);
        let (out, trace) = band_to_band(&m, &Grid::all(2), &bm, 1, 1);
        assert_eq!(out.bandwidth(), 4);
        assert!(trace.chases.is_empty());
        assert!(out.to_dense().max_diff(&dense) < 1e-14);
    }

    #[test]
    fn concurrent_groups_share_supersteps() {
        // With a wide machine, same-phase chases on disjoint groups must
        // not inflate S linearly in the number of concurrent chases:
        // compare S for p=2 vs p=16 on the same problem.
        let mut steps = Vec::new();
        for p in [2usize, 16] {
            let m = machine(p);
            let mut rng = StdRng::seed_from_u64(216);
            let dense = gen::random_banded(&mut rng, 128, 8);
            let bm = BandedSym::from_dense(&dense, 8, 8);
            let _ = band_to_band(&m, &Grid::all(p), &bm, 2, 1);
            steps.push(m.report().supersteps);
        }
        assert!(
            steps[1] < steps[0],
            "pipelining did not reduce supersteps: {steps:?}"
        );
    }
}
