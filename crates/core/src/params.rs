//! Parameterization of the 2.5D eigensolver.
//!
//! The paper parameterizes its algorithms by `δ ∈ [1/2, 2/3]`, with a
//! `q × q × c` processor grid where `q = p^{1−δ}` and `c = p^{2δ−1}`
//! (the replication factor). In an executable setting the natural free
//! parameter is `c` (a small power of two) with `q = √(p/c)`; `δ` is
//! then implied by `c = p^{2δ−1}`.

use ca_pla::Grid;

/// Grid/replication parameters for the 2.5D algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenParams {
    /// Total processors `p = q²·c`.
    pub p: usize,
    /// Per-layer grid side `q = p^{1−δ}`.
    pub q: usize,
    /// Replication factor `c = p^{2δ−1}` (number of layers).
    pub c: usize,
}

impl EigenParams {
    /// Build parameters from a processor count and replication factor;
    /// `p/c` must be a perfect square (`q² = p/c`), mirroring the
    /// paper's `q × q × c` grid requirement.
    pub fn new(p: usize, c: usize) -> Self {
        assert!(c >= 1 && p.is_multiple_of(c), "c must divide p");
        let q2 = p / c;
        let q = (q2 as f64).sqrt().round() as usize;
        assert_eq!(q * q, q2, "p/c = {q2} must be a perfect square");
        assert!(
            c * c * c <= p,
            "c = {c} exceeds the paper's c ≤ p^{{1/3}} regime for p = {p}"
        );
        Self { p, q, c }
    }

    /// Build parameters without enforcing `c ≤ p^{1/3}` — for sweeps
    /// that deliberately leave the paper's regime (e.g. the c-sweep
    /// experiment, which shows communication *rising* again once the
    /// replication cost `n²c/p` overtakes the `√c` streaming saving).
    pub fn new_unchecked(p: usize, c: usize) -> Self {
        assert!(c >= 1 && p.is_multiple_of(c), "c must divide p");
        let q2 = p / c;
        let q = (q2 as f64).sqrt().round() as usize;
        assert_eq!(q * q, q2, "p/c = {q2} must be a perfect square");
        Self { p, q, c }
    }

    /// The implied `δ = (1 + log_p c)/2 ∈ [1/2, 2/3]`.
    pub fn delta(&self) -> f64 {
        if self.p <= 1 {
            return 0.5;
        }
        0.5 * (1.0 + (self.c as f64).ln() / (self.p as f64).ln())
    }

    /// `p^δ = q·c` — the denominator of the headline `W = O(n²/pᵟ)`.
    pub fn p_delta(&self) -> usize {
        self.q * self.c
    }

    /// `p^{2−3δ} = q/c` rounded up to at least 1 — used both for the
    /// band-width choice of Algorithm IV.3 and the memory parameter `v`
    /// of the Lemma III.2 multiplies.
    pub fn p_2m3d(&self) -> usize {
        (self.q / self.c).max(1)
    }

    /// The full `q × q × c` grid over processors `0..p`.
    pub fn grid3(&self) -> Grid {
        Grid::new_3d((0..self.p).collect(), self.q, self.q, self.c)
    }

    /// The streaming depth `w = max(1, b·p^{2−3δ}/n)` used by
    /// Algorithm IV.1's Lemma III.3 multiplies.
    pub fn stream_depth(&self, n: usize, b: usize) -> usize {
        (b * self.p_2m3d()).div_ceil(n).max(1)
    }

    /// Number of processors for the panel QR of Algorithm IV.1:
    /// `z·pᵟ = p·(b/n)^{(1−δ)/δ}` clamped to `[1, p]`.
    pub fn panel_qr_procs(&self, n: usize, b: usize) -> usize {
        let delta = self.delta();
        let zeta = (1.0 - delta) / delta;
        let frac = (b as f64 / n as f64).powf(zeta);
        ((self.p as f64 * frac).round() as usize).clamp(1, self.p)
    }

    /// Algorithm IV.3's initial band-width
    /// `b = n / max(p^{2−3δ}, log₂ p)`, rounded down to a power of two
    /// and clamped to `[2, n/2]`.
    pub fn initial_bandwidth(&self, n: usize) -> usize {
        let log_p = (usize::BITS - (self.p.max(2) - 1).leading_zeros()) as usize;
        let denom = self.p_2m3d().max(log_p).max(1);
        let raw = (n / denom).max(2).min(n / 2);
        raw.next_power_of_two() >> if raw.is_power_of_two() { 0 } else { 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_endpoints() {
        // c = 1 ⇒ δ = 1/2 (pure 2D).
        let p2d = EigenParams::new(16, 1);
        assert!((p2d.delta() - 0.5).abs() < 1e-12);
        assert_eq!(p2d.q, 4);
        // c = p^{1/3} ⇒ δ = 2/3 (full 3D): p = 64, c = 4, q = 4.
        let p3d = EigenParams::new(64, 4);
        assert!((p3d.delta() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p3d.p_delta(), 16);
    }

    #[test]
    fn grid_shape_matches() {
        let p = EigenParams::new(32, 2);
        assert_eq!(p.grid3().shape(), (4, 4, 2));
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn rejects_non_square_layers() {
        let _ = EigenParams::new(24, 2);
    }

    #[test]
    fn initial_bandwidth_is_reasonable() {
        let p = EigenParams::new(16, 1);
        let b = p.initial_bandwidth(256);
        assert!((2..=128).contains(&b));
        assert!(b.is_power_of_two());
        // δ = 1/2: p^{2−3δ} = p^{1/2} = 4, log₂16 = 4 → b = 256/4 = 64.
        assert_eq!(b, 64);
    }

    #[test]
    fn stream_depth_grows_with_bandwidth() {
        let p = EigenParams::new(16, 1);
        assert_eq!(p.stream_depth(256, 16), 1);
        assert!(p.stream_depth(256, 128) >= 2);
    }

    #[test]
    fn single_processor_machine_is_legal() {
        let p = EigenParams::new(1, 1);
        assert_eq!(p.q, 1);
        assert_eq!(p.p_delta(), 1);
        assert_eq!(p.grid3().len(), 1);
        assert!(p.initial_bandwidth(32) >= 2);
    }

    #[test]
    fn p_delta_equals_q_times_c() {
        for (p, c) in [(16usize, 1usize), (64, 4), (256, 4)] {
            let params = EigenParams::new(p, c);
            // p^δ = p^{(1+log_p c)/2} = √(p·c) = q·c.
            let analytic = ((p * c) as f64).sqrt();
            assert!(
                (params.p_delta() as f64 - analytic).abs() < 1e-9,
                "p={p} c={c}"
            );
        }
    }

    #[test]
    fn panel_qr_procs_shrink_with_thin_panels() {
        let p = EigenParams::new(64, 4);
        let all = p.panel_qr_procs(256, 256);
        let thin = p.panel_qr_procs(256, 8);
        assert_eq!(all, 64);
        assert!(thin < all && thin >= 1);
    }
}
