//! Parameterization of the 2.5D eigensolver.
//!
//! The paper parameterizes its algorithms by `δ ∈ [1/2, 2/3]`, with a
//! `q × q × c` processor grid where `q = p^{1−δ}` and `c = p^{2δ−1}`
//! (the replication factor). In an executable setting the natural free
//! parameter is `c` (a small power of two) with `q = √(p/c)`; `δ` is
//! then implied by `c = p^{2δ−1}`.

use crate::error::EigenError;
use ca_pla::Grid;

/// Grid/replication parameters for the 2.5D algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenParams {
    /// Total processors `p = q²·c`.
    pub p: usize,
    /// Per-layer grid side `q = p^{1−δ}`.
    pub q: usize,
    /// Replication factor `c = p^{2δ−1}` (number of layers).
    pub c: usize,
}

impl EigenParams {
    /// The shared validated constructor behind every public entry
    /// point: checks `p ≥ 1`, `c | p`, and `p/c` a perfect square, and
    /// optionally the paper's `c ≤ p^{1/3}` regime.
    fn validated(p: usize, c: usize, enforce_regime: bool) -> Result<Self, EigenError> {
        if p == 0 {
            return Err(EigenError::NoProcessors);
        }
        if c == 0 || !p.is_multiple_of(c) {
            return Err(EigenError::ReplicationMismatch { p, c });
        }
        let q2 = p / c;
        let q = (q2 as f64).sqrt().round() as usize;
        if q * q != q2 {
            return Err(EigenError::NonSquareGrid { p, c });
        }
        if enforce_regime && c * c * c > p {
            return Err(EigenError::ReplicationOutOfRegime { p, c });
        }
        Ok(Self { p, q, c })
    }

    /// Build parameters from a processor count and replication factor;
    /// `p/c` must be a perfect square (`q² = p/c`), mirroring the
    /// paper's `q × q × c` grid requirement. Rejects invalid
    /// combinations as a typed [`EigenError`] instead of panicking.
    pub fn try_new(p: usize, c: usize) -> Result<Self, EigenError> {
        Self::validated(p, c, true)
    }

    /// [`Self::try_new`] without enforcing `c ≤ p^{1/3}` — for sweeps
    /// that deliberately leave the paper's regime (e.g. the c-sweep
    /// experiment, which shows communication *rising* again once the
    /// replication cost `n²c/p` overtakes the `√c` streaming saving).
    pub fn try_new_unchecked(p: usize, c: usize) -> Result<Self, EigenError> {
        Self::validated(p, c, false)
    }

    /// Panicking shim over [`Self::try_new`] for callers that treat a
    /// bad grid as a programming error (tests, examples, benches).
    pub fn new(p: usize, c: usize) -> Self {
        Self::try_new(p, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking shim over [`Self::try_new_unchecked`].
    pub fn new_unchecked(p: usize, c: usize) -> Self {
        Self::try_new_unchecked(p, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Re-check the struct's invariants (fields are public, so a
    /// hand-rolled value can be inconsistent): used by the solver's
    /// `Result` entry points before any work is charged.
    pub fn revalidate(&self) -> Result<(), EigenError> {
        let checked = Self::validated(self.p, self.c, false)?;
        if checked.q != self.q {
            return Err(EigenError::NonSquareGrid { p: self.p, c: self.c });
        }
        Ok(())
    }

    /// The implied `δ = (1 + log_p c)/2 ∈ [1/2, 2/3]`.
    pub fn delta(&self) -> f64 {
        if self.p <= 1 {
            return 0.5;
        }
        0.5 * (1.0 + (self.c as f64).ln() / (self.p as f64).ln())
    }

    /// `p^δ = q·c` — the denominator of the headline `W = O(n²/pᵟ)`.
    pub fn p_delta(&self) -> usize {
        self.q * self.c
    }

    /// `p^{2−3δ} = q/c` rounded up to at least 1 — used both for the
    /// band-width choice of Algorithm IV.3 and the memory parameter `v`
    /// of the Lemma III.2 multiplies.
    pub fn p_2m3d(&self) -> usize {
        (self.q / self.c).max(1)
    }

    /// The full `q × q × c` grid over processors `0..p`.
    pub fn grid3(&self) -> Grid {
        Grid::new_3d((0..self.p).collect(), self.q, self.q, self.c)
    }

    /// The streaming depth `w = max(1, b·p^{2−3δ}/n)` used by
    /// Algorithm IV.1's Lemma III.3 multiplies.
    pub fn stream_depth(&self, n: usize, b: usize) -> usize {
        (b * self.p_2m3d()).div_ceil(n).max(1)
    }

    /// Number of processors for the panel QR of Algorithm IV.1:
    /// `z·pᵟ = p·(b/n)^{(1−δ)/δ}` clamped to `[1, p]`.
    pub fn panel_qr_procs(&self, n: usize, b: usize) -> usize {
        let delta = self.delta();
        let zeta = (1.0 - delta) / delta;
        let frac = (b as f64 / n as f64).powf(zeta);
        ((self.p as f64 * frac).round() as usize).clamp(1, self.p)
    }

    /// Algorithm IV.3's initial band-width
    /// `b = n / max(p^{2−3δ}, log₂ p)`, clamped to `[2, n/2]` (to `1`
    /// for `n < 4`, where the only valid band-width is tridiagonal).
    /// The paper states the schedule for arbitrary `n`; no power-of-two
    /// snapping is applied.
    pub fn initial_bandwidth(&self, n: usize) -> usize {
        let log_p = (usize::BITS - (self.p.max(2) - 1).leading_zeros()) as usize;
        let denom = self.p_2m3d().max(log_p).max(1);
        let hi = (n / 2).max(1);
        (n / denom).clamp(2.min(hi), hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_endpoints() {
        // c = 1 ⇒ δ = 1/2 (pure 2D).
        let p2d = EigenParams::new(16, 1);
        assert!((p2d.delta() - 0.5).abs() < 1e-12);
        assert_eq!(p2d.q, 4);
        // c = p^{1/3} ⇒ δ = 2/3 (full 3D): p = 64, c = 4, q = 4.
        let p3d = EigenParams::new(64, 4);
        assert!((p3d.delta() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p3d.p_delta(), 16);
    }

    #[test]
    fn grid_shape_matches() {
        let p = EigenParams::new(32, 2);
        assert_eq!(p.grid3().shape(), (4, 4, 2));
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn rejects_non_square_layers() {
        let _ = EigenParams::new(24, 2);
    }

    #[test]
    fn initial_bandwidth_is_reasonable() {
        let p = EigenParams::new(16, 1);
        let b = p.initial_bandwidth(256);
        assert!((2..=128).contains(&b));
        // δ = 1/2: p^{2−3δ} = p^{1/2} = 4, log₂16 = 4 → b = 256/4 = 64.
        assert_eq!(b, 64);
    }

    #[test]
    fn stream_depth_grows_with_bandwidth() {
        let p = EigenParams::new(16, 1);
        assert_eq!(p.stream_depth(256, 16), 1);
        assert!(p.stream_depth(256, 128) >= 2);
    }

    #[test]
    fn single_processor_machine_is_legal() {
        let p = EigenParams::new(1, 1);
        assert_eq!(p.q, 1);
        assert_eq!(p.p_delta(), 1);
        assert_eq!(p.grid3().len(), 1);
        assert!(p.initial_bandwidth(32) >= 2);
    }

    #[test]
    fn p_delta_equals_q_times_c() {
        for (p, c) in [(16usize, 1usize), (64, 4), (256, 4)] {
            let params = EigenParams::new(p, c);
            // p^δ = p^{(1+log_p c)/2} = √(p·c) = q·c.
            let analytic = ((p * c) as f64).sqrt();
            assert!(
                (params.p_delta() as f64 - analytic).abs() < 1e-9,
                "p={p} c={c}"
            );
        }
    }

    #[test]
    fn try_new_rejects_bad_grids_with_typed_errors() {
        use crate::error::EigenError;
        assert_eq!(EigenParams::try_new(0, 1), Err(EigenError::NoProcessors));
        assert_eq!(
            EigenParams::try_new(10, 3),
            Err(EigenError::ReplicationMismatch { p: 10, c: 3 })
        );
        assert_eq!(
            EigenParams::try_new(24, 2),
            Err(EigenError::NonSquareGrid { p: 24, c: 2 })
        );
        assert_eq!(
            EigenParams::try_new(16, 4),
            Err(EigenError::ReplicationOutOfRegime { p: 16, c: 4 })
        );
        // new_unchecked admits the out-of-regime case but not the rest.
        assert!(EigenParams::try_new_unchecked(16, 4).is_ok());
        assert!(EigenParams::try_new_unchecked(24, 2).is_err());
    }

    #[test]
    fn panicking_shims_agree_with_try_constructors() {
        for (p, c) in [(1usize, 1usize), (4, 1), (8, 2), (64, 4)] {
            assert_eq!(EigenParams::new(p, c), EigenParams::try_new(p, c).unwrap());
        }
        assert_eq!(
            EigenParams::new_unchecked(16, 4),
            EigenParams::try_new_unchecked(16, 4).unwrap()
        );
    }

    #[test]
    fn revalidate_catches_inconsistent_fields() {
        let good = EigenParams::new(16, 1);
        assert!(good.revalidate().is_ok());
        let bad = EigenParams { p: 16, q: 3, c: 1 };
        assert!(bad.revalidate().is_err());
    }

    #[test]
    fn initial_bandwidth_handles_arbitrary_n() {
        let p = EigenParams::new(16, 1);
        // No power-of-two snapping: n = 300 → 300/4 = 75 exactly.
        assert_eq!(p.initial_bandwidth(300), 75);
        for n in [2usize, 3, 5, 7, 48, 65, 100, 129, 200] {
            let b = p.initial_bandwidth(n);
            assert!(b >= 1 && b < n, "n={n}: b={b} out of range");
            if n >= 4 {
                assert!((2..=n / 2).contains(&b), "n={n}: b={b}");
            }
        }
    }

    #[test]
    fn panel_qr_procs_shrink_with_thin_panels() {
        let p = EigenParams::new(64, 4);
        let all = p.panel_qr_procs(256, 256);
        let thin = p.panel_qr_procs(256, 8);
        assert_eq!(all, 64);
        assert!(thin < all && thin >= 1);
    }
}
