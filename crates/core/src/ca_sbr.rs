//! CA-SBR band halving (Lemma IV.2; Ballard–Demmel–Knight \[12\]).
//!
//! For thin bands (`b ≤ n/p`) the matrix is laid out 1D over columns
//! (`O(nb/p)` words per processor) and each processor chases the bulges
//! that live in its column range, exchanging only window boundaries with
//! its neighbour. Work (`F`), horizontal words (`W`) and vertical words
//! (`Q`) are charged physically per chase; the superstep count is
//! charged per the *aggregated* schedule analyzed in \[12\]
//! (`S = O(p)` parallel steps per halving) — our executor runs the
//! chases in dependency order rather than reproducing CA-SBR's exact
//! wavefront, so op-level stepping would overcount `S`
//! (recorded deviation, DESIGN.md §8).

use ca_bsp::Machine;
use ca_dla::bulge::{chase_plan, execute_chase};
use ca_dla::costs;
use ca_dla::BandedSym;
use ca_pla::grid::Grid;

/// Halve the band-width of `bmat` (`b → ⌈b/2⌉`) on the processors of
/// `grid` (1D column layout). Odd band-widths (which arise for
/// arbitrary `n`) round the target up.
pub fn ca_sbr(machine: &Machine, grid: &Grid, bmat: &BandedSym) -> BandedSym {
    ca_sbr_impl(machine, grid, bmat, None)
}

/// [`ca_sbr`] with transform recording for eigenvector
/// back-transformation.
pub fn ca_sbr_logged(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    rec: &mut Vec<crate::transforms::Reflectors>,
) -> BandedSym {
    ca_sbr_impl(machine, grid, bmat, Some(rec))
}

fn ca_sbr_impl(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> BandedSym {
    let _span = ca_obs::kernel_span("driver.ca_sbr");
    if ca_obs::knobs::lookahead() {
        ca_sbr_dag(machine, grid, bmat, rec)
    } else {
        ca_sbr_barrier(machine, grid, bmat, rec)
    }
}

/// Sequential-sweep driver: chases execute in plan order on the shared
/// band. This is the reference path the task-graph driver
/// ([`ca_sbr_dag`]) must match bit-for-bit in output, reflector record
/// and ledger.
fn ca_sbr_barrier(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    mut rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> BandedSym {
    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(b >= 2, "cannot halve a band-width below 2");
    let p = grid.len();
    let cols_per_proc = n.div_ceil(p);

    // Redistribution from any starting layout: O(nb/p) words each
    // (the lemma's O(β·nb) total term; ceiling division — the straggler
    // with the ragged remainder sets the cost).
    for &pid in grid.procs() {
        machine.charge_comm(pid, ((n * (b + 1)) as u64).div_ceil(p as u64) * 2);
    }
    machine.step(grid.procs(), 1);

    let cap = (2 * b).min(n - 1);
    let mut work = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work.set(i, j, bmat.get(i, j));
        }
    }

    let h_cache = machine.cache_words();
    for op in chase_plan(n, b, 2) {
        let (lo, hi) = op.window();
        let owner_idx = (lo / cols_per_proc).min(p - 1);
        let owner = grid.proc(owner_idx);
        let h = op.h();
        let (nr, nc) = (op.nr(), op.nc());

        // Flops: the QR of the bulge block plus the W/V/update products
        // (Lemma III.1/III.4 counts).
        let f = costs::qr_flops(nr, h)
            + costs::gemm_flops(nc, nr, h)       // B·U
            + 2 * costs::gemm_flops(h, h, h)     // T chains
            + costs::gemm_flops(nr, h, h)        // correction
            + 2 * costs::gemm_flops(nr, h, nc); // rank-2h update
        machine.charge_flops(owner, f);
        // Vertical traffic: the O(b²) window per chase (Lemma IV.2's
        // ν·n²/p total over the n²/(p·b²)-per-processor chases).
        let win_words = ((hi - lo) * (cap + 1).min(hi - lo)) as u64;
        machine.charge_vert(owner, win_words.min(h_cache.max(1)) + win_words.saturating_sub(h_cache));

        // Boundary exchange when the window spans processors: only the
        // bulge hand-off region (h columns of band data) moves, giving
        // the lemma's O(β·nb) total per halving.
        let last_idx = ((hi - 1) / cols_per_proc).min(p - 1);
        if last_idx != owner_idx {
            let boundary = h * (b + 1);
            machine.charge_transfer(owner, grid.proc(last_idx), 2 * boundary as u64);
        }

        if let Some(r) = rec.as_deref_mut() {
            let (u, t) = ca_dla::bulge::execute_chase_recording(&mut work, &op);
            r.push(crate::transforms::Reflectors {
                row0: op.qr_rows.0,
                u,
                t,
            });
        } else {
            execute_chase(&mut work, &op);
        }
    }

    // Aggregated pipeline schedule of [12]: O(p) parallel steps per
    // halving (charged analytically — see module docs).
    machine.step(grid.procs(), p as u64);
    machine.fence();

    work.set_bandwidth(b.div_ceil(2));
    work
}

/// Task-graph driver: one node per chase, depending only on the earlier
/// chases whose windows overlap its own — the diagonal-wavefront
/// dependency structure of the SBR pipeline, freed from sweep order.
/// Charges are captured per task and replayed in plan order, so the
/// F/W/Q/S ledger (including the aggregated `O(p)` superstep charge
/// issued after the graph) is bitwise the sequential driver's, as are
/// the band values and the reflector record.
fn ca_sbr_dag(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> BandedSym {
    use ca_pla::dag::{TaskCell, TaskGraph, TaskId};
    use std::sync::Mutex;

    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(b >= 2, "cannot halve a band-width below 2");
    let p = grid.len();
    let cols_per_proc = n.div_ceil(p);

    // Redistribution happens live, before the graph: its charges open
    // the ledger phase the replayed chase charges complete.
    for &pid in grid.procs() {
        machine.charge_comm(pid, ((n * (b + 1)) as u64).div_ceil(p as u64) * 2);
    }
    machine.step(grid.procs(), 1);

    let cap = (2 * b).min(n - 1);
    let mut work0 = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work0.set(i, j, bmat.get(i, j));
        }
    }

    let recording = rec.is_some();
    let h_cache = machine.cache_words();
    let plan = chase_plan(n, b, 2);
    let work_slot = Mutex::new(work0);
    let factor_cells: Vec<TaskCell<(ca_dla::Matrix, ca_dla::Matrix)>> = if recording {
        (0..plan.len()).map(|_| TaskCell::new()).collect()
    } else {
        Vec::new()
    };

    let work = &work_slot;
    let cells = &factor_cells;
    let mut graph = TaskGraph::new(machine);
    let mut placed: Vec<(usize, usize, TaskId)> = Vec::new();
    let mut row0s: Vec<usize> = Vec::with_capacity(plan.len());

    for (slot, op) in plan.into_iter().enumerate() {
        let (lo, hi) = op.window();
        row0s.push(op.qr_rows.0);
        let deps: Vec<TaskId> = placed
            .iter()
            .filter(|&&(plo, phi, _)| plo < hi && lo < phi)
            .map(|&(_, _, id)| id)
            .collect();
        let id = graph.add_task("sbr.chase", &deps, move || {
            let owner_idx = (lo / cols_per_proc).min(p - 1);
            let owner = grid.proc(owner_idx);
            let h = op.h();
            let (nr, nc) = (op.nr(), op.nc());
            let f = costs::qr_flops(nr, h)
                + costs::gemm_flops(nc, nr, h)
                + 2 * costs::gemm_flops(h, h, h)
                + costs::gemm_flops(nr, h, h)
                + 2 * costs::gemm_flops(nr, h, nc);
            machine.charge_flops(owner, f);
            let win_words = ((hi - lo) * (cap + 1).min(hi - lo)) as u64;
            machine
                .charge_vert(owner, win_words.min(h_cache.max(1)) + win_words.saturating_sub(h_cache));
            let last_idx = ((hi - 1) / cols_per_proc).min(p - 1);
            if last_idx != owner_idx {
                let boundary = h * (b + 1);
                machine.charge_transfer(owner, grid.proc(last_idx), 2 * boundary as u64);
            }

            let mut w = work.lock().unwrap_or_else(|e| e.into_inner());
            if recording {
                let (u, t) = ca_dla::bulge::execute_chase_recording(&mut w, &op);
                drop(w);
                cells[slot].set((u, t));
            } else {
                execute_chase(&mut w, &op);
            }
        });
        placed.push((lo, hi, id));
    }
    graph.run();

    if let Some(r) = rec {
        for (cell, row0) in factor_cells.iter().zip(row0s) {
            let (u, t) = cell.take();
            r.push(crate::transforms::Reflectors { row0, u, t });
        }
    }

    machine.step(grid.procs(), p as u64);
    machine.fence();

    let mut out = work_slot.into_inner().unwrap_or_else(|e| e.into_inner());
    out.set_bandwidth(b.div_ceil(2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::{banded_eigenvalues, spectrum_distance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn halves_and_preserves_spectrum() {
        let (n, b, p) = (64usize, 8usize, 4usize);
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(220);
        let dense = gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let reference = banded_eigenvalues(&bm);
        let out = ca_sbr(&m, &Grid::all(p), &bm);
        assert_eq!(out.bandwidth(), b / 2);
        assert!(out.measured_bandwidth(1e-9) <= b / 2);
        let ev = banded_eigenvalues(&out);
        assert!(spectrum_distance(&ev, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn repeated_halving_reaches_tridiagonal() {
        let (n, p) = (32usize, 2usize);
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(221);
        let dense = gen::random_banded(&mut rng, n, 8);
        let mut bm = BandedSym::from_dense(&dense, 8, 8);
        let reference = banded_eigenvalues(&bm);
        while bm.bandwidth() > 1 {
            bm = ca_sbr(&m, &Grid::all(p), &bm);
        }
        assert!(bm.measured_bandwidth(1e-9) <= 1);
        let ev = banded_eigenvalues(&bm);
        assert!(spectrum_distance(&ev, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn supersteps_charged_per_schedule() {
        let p = 4;
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(222);
        let dense = gen::random_banded(&mut rng, 40, 4);
        let bm = BandedSym::from_dense(&dense, 4, 4);
        let _ = ca_sbr(&m, &Grid::all(p), &bm);
        let s = m.report().supersteps;
        // Redistribution (1) + aggregated pipeline (p) + fence.
        assert_eq!(s, 1 + p as u64 + 1);
    }

    #[test]
    fn work_is_spread_over_owners() {
        let p = 4;
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(223);
        let dense = gen::random_banded(&mut rng, 64, 4);
        let bm = BandedSym::from_dense(&dense, 4, 4);
        let _ = ca_sbr(&m, &Grid::all(p), &bm);
        let f = m.flops_per_proc();
        // Every processor owns some chases.
        assert!(f.iter().all(|&x| x > 0), "{f:?}");
    }
}
