//! CA-SBR band halving (Lemma IV.2; Ballard–Demmel–Knight \[12\]).
//!
//! For thin bands (`b ≤ n/p`) the matrix is laid out 1D over columns
//! (`O(nb/p)` words per processor) and each processor chases the bulges
//! that live in its column range, exchanging only window boundaries with
//! its neighbour. Work (`F`), horizontal words (`W`) and vertical words
//! (`Q`) are charged physically per chase; the superstep count is
//! charged per the *aggregated* schedule analyzed in \[12\]
//! (`S = O(p)` parallel steps per halving) — our executor runs the
//! chases in dependency order rather than reproducing CA-SBR's exact
//! wavefront, so op-level stepping would overcount `S`
//! (recorded deviation, DESIGN.md §8).

use ca_bsp::Machine;
use ca_dla::bulge::{chase_plan, execute_chase};
use ca_dla::costs;
use ca_dla::BandedSym;
use ca_pla::grid::Grid;

/// Halve the band-width of `bmat` (`b → ⌈b/2⌉`) on the processors of
/// `grid` (1D column layout). Odd band-widths (which arise for
/// arbitrary `n`) round the target up.
pub fn ca_sbr(machine: &Machine, grid: &Grid, bmat: &BandedSym) -> BandedSym {
    ca_sbr_impl(machine, grid, bmat, None)
}

/// [`ca_sbr`] with transform recording for eigenvector
/// back-transformation.
pub fn ca_sbr_logged(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    rec: &mut Vec<crate::transforms::Reflectors>,
) -> BandedSym {
    ca_sbr_impl(machine, grid, bmat, Some(rec))
}

fn ca_sbr_impl(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    mut rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> BandedSym {
    let _span = ca_obs::kernel_span("driver.ca_sbr");
    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(b >= 2, "cannot halve a band-width below 2");
    let p = grid.len();
    let cols_per_proc = n.div_ceil(p);

    // Redistribution from any starting layout: O(nb/p) words each
    // (the lemma's O(β·nb) total term; ceiling division — the straggler
    // with the ragged remainder sets the cost).
    for &pid in grid.procs() {
        machine.charge_comm(pid, ((n * (b + 1)) as u64).div_ceil(p as u64) * 2);
    }
    machine.step(grid.procs(), 1);

    let cap = (2 * b).min(n - 1);
    let mut work = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work.set(i, j, bmat.get(i, j));
        }
    }

    let h_cache = machine.cache_words();
    for op in chase_plan(n, b, 2) {
        let (lo, hi) = op.window();
        let owner_idx = (lo / cols_per_proc).min(p - 1);
        let owner = grid.proc(owner_idx);
        let h = op.h();
        let (nr, nc) = (op.nr(), op.nc());

        // Flops: the QR of the bulge block plus the W/V/update products
        // (Lemma III.1/III.4 counts).
        let f = costs::qr_flops(nr, h)
            + costs::gemm_flops(nc, nr, h)       // B·U
            + 2 * costs::gemm_flops(h, h, h)     // T chains
            + costs::gemm_flops(nr, h, h)        // correction
            + 2 * costs::gemm_flops(nr, h, nc); // rank-2h update
        machine.charge_flops(owner, f);
        // Vertical traffic: the O(b²) window per chase (Lemma IV.2's
        // ν·n²/p total over the n²/(p·b²)-per-processor chases).
        let win_words = ((hi - lo) * (cap + 1).min(hi - lo)) as u64;
        machine.charge_vert(owner, win_words.min(h_cache.max(1)) + win_words.saturating_sub(h_cache));

        // Boundary exchange when the window spans processors: only the
        // bulge hand-off region (h columns of band data) moves, giving
        // the lemma's O(β·nb) total per halving.
        let last_idx = ((hi - 1) / cols_per_proc).min(p - 1);
        if last_idx != owner_idx {
            let boundary = h * (b + 1);
            machine.charge_transfer(owner, grid.proc(last_idx), 2 * boundary as u64);
        }

        if let Some(r) = rec.as_deref_mut() {
            let (u, t) = ca_dla::bulge::execute_chase_recording(&mut work, &op);
            r.push(crate::transforms::Reflectors {
                row0: op.qr_rows.0,
                u,
                t,
            });
        } else {
            execute_chase(&mut work, &op);
        }
    }

    // Aggregated pipeline schedule of [12]: O(p) parallel steps per
    // halving (charged analytically — see module docs).
    machine.step(grid.procs(), p as u64);
    machine.fence();

    work.set_bandwidth(b.div_ceil(2));
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::{banded_eigenvalues, spectrum_distance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn halves_and_preserves_spectrum() {
        let (n, b, p) = (64usize, 8usize, 4usize);
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(220);
        let dense = gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let reference = banded_eigenvalues(&bm);
        let out = ca_sbr(&m, &Grid::all(p), &bm);
        assert_eq!(out.bandwidth(), b / 2);
        assert!(out.measured_bandwidth(1e-9) <= b / 2);
        let ev = banded_eigenvalues(&out);
        assert!(spectrum_distance(&ev, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn repeated_halving_reaches_tridiagonal() {
        let (n, p) = (32usize, 2usize);
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(221);
        let dense = gen::random_banded(&mut rng, n, 8);
        let mut bm = BandedSym::from_dense(&dense, 8, 8);
        let reference = banded_eigenvalues(&bm);
        while bm.bandwidth() > 1 {
            bm = ca_sbr(&m, &Grid::all(p), &bm);
        }
        assert!(bm.measured_bandwidth(1e-9) <= 1);
        let ev = banded_eigenvalues(&bm);
        assert!(spectrum_distance(&ev, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn supersteps_charged_per_schedule() {
        let p = 4;
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(222);
        let dense = gen::random_banded(&mut rng, 40, 4);
        let bm = BandedSym::from_dense(&dense, 4, 4);
        let _ = ca_sbr(&m, &Grid::all(p), &bm);
        let s = m.report().supersteps;
        // Redistribution (1) + aggregated pipeline (p) + fence.
        assert_eq!(s, 1 + p as u64 + 1);
    }

    #[test]
    fn work_is_spread_over_owners() {
        let p = 4;
        let m = machine(p);
        let mut rng = StdRng::seed_from_u64(223);
        let dense = gen::random_banded(&mut rng, 64, 4);
        let bm = BandedSym::from_dense(&dense, 4, 4);
        let _ = ca_sbr(&m, &Grid::all(p), &bm);
        let f = m.flops_per_proc();
        // Every processor owns some chases.
        assert!(f.iter().all(|&x| x > 0), "{f:?}");
    }
}
