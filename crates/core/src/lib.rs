//! # ca-eigen — the communication-avoiding 2.5D symmetric eigensolver
//!
//! The primary contribution of Solomonik, Ballard, Demmel & Hoefler,
//! *"A Communication-Avoiding Parallel Algorithm for the Symmetric
//! Eigenvalue Problem"* (SPAA'17), implemented on the `ca-bsp` virtual
//! machine with the building blocks of `ca-pla`:
//!
//! * [`full_to_band`] — Algorithm IV.1, **2.5D-Full-to-Band**: reduce a
//!   dense symmetric matrix to band-width `b` with replicated storage
//!   (`c = p^{2δ−1}` copies) and left-looking *aggregated* two-sided
//!   updates (Eqns. IV.1/IV.2), so that all trailing-matrix work runs
//!   through the Streaming-MM of Algorithm III.1 at
//!   `W = O(n²/pᵟ)` communication.
//! * [`band_to_band`] — Algorithm IV.2, **2.5D-Band-to-Band**: reduce
//!   band-width `b → b/k` by pipelined bulge chasing, each chase a
//!   parallel rectangular QR plus Lemma III.2 updates on a processor
//!   group `Π̂ⱼ` of `p·b/n` processors, with concurrent groups sharing
//!   supersteps (phases `2i + j = const`, Figure 2).
//! * [`ca_sbr`] — the CA-SBR band halving of Ballard–Demmel–Knight \[12\]
//!   (Lemma IV.2), used once the band is thin (`b ≤ n/pᵟ`).
//! * [`solver`] — Algorithm IV.3, the complete
//!   **2.5D-Symmetric-Eigensolver**: full→band at
//!   `b = n / max(p^{2−3δ}, log p)`, `O(log p)` band halvings on
//!   shrinking processor sets (`ζ = (1−δ)/δ`), CA-SBR down to `n/p`,
//!   then a sequential banded eigensolve.
//! * [`baselines`] — the comparison rows of Table I: a ScaLAPACK-style
//!   direct tridiagonalization (per-column trailing matvecs) and an
//!   ELPA-style two-stage reduction (2D full→band, 1D band→tridiagonal).
//!
//! Every algorithm returns its eigenvalues from real floating-point
//! execution *and* leaves the full `F/W/Q/S/M` cost record in the
//! machine ledger, which the `ca-bench` harness uses to regenerate the
//! paper's Table I and Figures 1–2.

// Index-heavy numerical code: range loops over several arrays at once
// are the clearer idiom here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod band_to_band;
pub mod baselines;
pub mod ca_sbr;
pub mod error;
pub mod full_to_band;
pub mod job;
pub mod lang;
pub mod model;
pub mod params;
pub mod solver;
pub mod svd;
pub mod transforms;
pub mod tuning;

pub use band_to_band::{band_to_band, band_to_band_to, band_to_band_to_logged, try_band_to_band};
pub use ca_sbr::{ca_sbr, ca_sbr_logged};
pub use error::EigenError;
pub use full_to_band::{full_to_band, full_to_band_logged, try_full_to_band, FullToBandTrace};
pub use job::{solve_job, Engine, JobResult, SymmEigenJob};
pub use lang::lang_band_to_tridiagonal;
pub use params::EigenParams;
pub use solver::{
    symm_eigen_25d, symm_eigen_25d_vectors, try_symm_eigen_25d, try_symm_eigen_25d_vectors,
    StageCosts,
};
pub use svd::{singular_values, svd, try_singular_values, try_svd, Svd};
pub use transforms::{back_transform, Reflectors, TransformLog};
