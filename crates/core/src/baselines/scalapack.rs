//! ScaLAPACK-style direct tridiagonalization (`pdsytrd` shape, \[15\]).
//!
//! Householder tridiagonalization applied column by column on a 2D
//! `q × q` grid: computing each reflector requires a symmetric
//! matrix–vector product with the full trailing matrix, so the trailing
//! matrix streams through every processor's memory hierarchy `n` times
//! (`Q = O(n³/p)` — Table I's vertical-communication entry) and every
//! column costs a constant number of collectives (`S = Θ(n)`).
//! Horizontal communication is the classic 2D `W = O(n²/√p)`.
//!
//! The numerics are the textbook two-sided update
//! `T ← T − v·wᵀ − w·vᵀ` with `w = τ·T·v − (τ²/2)(vᵀTv)·v`.

use ca_bsp::Machine;
use ca_dla::qr::house_gen;
use ca_dla::Matrix;
use ca_pla::coll;
use ca_pla::grid::Grid;

/// Tridiagonalize the symmetric `a` on a 2D grid; returns `(d, e)` —
/// the diagonal and sub-diagonal of the similar tridiagonal matrix.
pub fn scalapack_tridiag(machine: &Machine, grid: &Grid, a: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    assert_eq!(n, a.cols());
    let (q0, q1, _) = grid.shape();
    let p = grid.len() as u64;
    let q = q0.max(q1);

    let mut t = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n.saturating_sub(1)];

    for j in 0..n.saturating_sub(2) {
        let rem = n - 1 - j;
        // Column extraction + Householder generation: a reduction over
        // the grid column owning it (norm), then scalar broadcast.
        let col: Vec<f64> = (j + 1..n).map(|i| t.get(i, j)).collect();
        for gc in 0..q1 {
            let group = grid.dim0_group(gc, 0);
            coll::allreduce(machine, &group, 2);
        }
        let (v, tau, beta) = house_gen(&col);
        d[j] = t.get(j, j);
        e[j] = beta;

        if tau != 0.0 {
            // Broadcast v along grid rows and columns (rem/q words per
            // processor — the 2D W = O(n²/√p) term accumulates here).
            for gr in 0..q0 {
                let group = grid.dim1_group(gr, 0);
                coll::bcast(machine, &group, 0, (rem / q.max(1)) as u64 + 1);
            }
            for gc in 0..q1 {
                let group = grid.dim0_group(gc, 0);
                coll::bcast(machine, &group, 0, (rem / q.max(1)) as u64 + 1);
            }

            // y = τ·T₂₂·v — the trailing symmetric matvec. Every
            // processor reads its share of the trailing matrix from
            // memory: F += 2·rem²/p, Q += rem²/p per processor.
            for &pid in grid.procs() {
                machine.charge_flops(pid, 2 * (rem as u64).pow(2) / p);
                machine.charge_vert(pid, (rem as u64).pow(2) / p);
            }
            let mut y = vec![0.0; rem];
            for r in 0..rem {
                let mut acc = 0.0;
                for c in 0..rem {
                    acc += t.get(j + 1 + r, j + 1 + c) * v[c];
                }
                y[r] = tau * acc;
            }
            // Reduce y across the grid (dual of the broadcast).
            for gr in 0..q0 {
                let group = grid.dim1_group(gr, 0);
                coll::reduce(machine, &group, 0, (rem / q.max(1)) as u64 + 1);
            }

            // w = y − (τ/2)(vᵀy)·v.
            let vty: f64 = v.iter().zip(&y).map(|(a, b)| a * b).sum();
            let alpha = 0.5 * tau * vty;
            let w: Vec<f64> = y.iter().zip(&v).map(|(yi, vi)| yi - alpha * vi).collect();

            // Rank-2 update T₂₂ ← T₂₂ − v·wᵀ − w·vᵀ.
            for &pid in grid.procs() {
                machine.charge_flops(pid, 4 * (rem as u64).pow(2) / p);
                machine.charge_vert(pid, (rem as u64).pow(2) / p);
            }
            for r in 0..rem {
                for c in 0..rem {
                    let upd = v[r] * w[c] + w[r] * v[c];
                    t.add_to(j + 1 + r, j + 1 + c, -upd);
                }
            }
        }
        machine.fence();
    }
    // The trailing 2×2 block.
    if n >= 2 {
        d[n - 2] = t.get(n - 2, n - 2);
        d[n - 1] = t.get(n - 1, n - 1);
        e[n - 2] = t.get(n - 1, n - 2);
    } else if n == 1 {
        d[0] = t.get(0, 0);
    }
    (d, e)
}

/// Full baseline: tridiagonalize and solve (eigenvalues gathered and
/// computed on one processor, as the final stage).
pub fn scalapack_eigenvalues(machine: &Machine, grid: &Grid, a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    let (d, e) = scalapack_tridiag(machine, grid, a);
    coll::gather(machine, grid, 0, ((2 * n) as u64).div_ceil(grid.len().max(1) as u64));
    machine.charge_flops(grid.proc(0), 30 * (n as u64).pow(2));
    machine.fence();
    ca_dla::tridiag::tridiag_eigenvalues(&d, &e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::spectrum_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn recovers_prescribed_spectrum() {
        let n = 24;
        let m = machine(4);
        let grid = Grid::new_2d((0..4).collect(), 2, 2);
        let mut rng = StdRng::seed_from_u64(230);
        let spectrum = gen::linspace_spectrum(n, -2.0, 2.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let ev = scalapack_eigenvalues(&m, &grid, &a);
        assert!(spectrum_distance(&ev, &spectrum) < 1e-9 * n as f64);
    }

    #[test]
    fn supersteps_scale_linearly_with_n() {
        let mut steps = Vec::new();
        for n in [16usize, 32] {
            let m = machine(4);
            let grid = Grid::new_2d((0..4).collect(), 2, 2);
            let mut rng = StdRng::seed_from_u64(231);
            let a = gen::random_symmetric(&mut rng, n);
            let _ = scalapack_tridiag(&m, &grid, &a);
            steps.push(m.report().supersteps as f64);
        }
        let ratio = steps[1] / steps[0];
        assert!(ratio > 1.7 && ratio < 2.4, "S ratio {ratio} not ~2");
    }

    #[test]
    fn vertical_traffic_is_cubic() {
        // Q ≈ n³/p: doubling n should increase Q by ~8×.
        let mut qs = Vec::new();
        for n in [16usize, 32] {
            let m = machine(4);
            let grid = Grid::new_2d((0..4).collect(), 2, 2);
            let mut rng = StdRng::seed_from_u64(232);
            let a = gen::random_symmetric(&mut rng, n);
            let _ = scalapack_tridiag(&m, &grid, &a);
            qs.push(m.report().vertical_words as f64);
        }
        let ratio = qs[1] / qs[0];
        assert!(ratio > 5.5 && ratio < 10.0, "Q ratio {ratio} not ~8");
    }

    #[test]
    fn tiny_matrices() {
        let m = machine(1);
        let grid = Grid::new_2d(vec![0], 1, 1);
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (d, e) = scalapack_tridiag(&m, &grid, &a);
        assert_eq!(d, vec![2.0, 2.0]);
        assert_eq!(e, vec![1.0]);
    }
}
