//! Baseline symmetric eigensolvers — the comparison rows of Table I.
//!
//! * [`scalapack`] — direct blocked tridiagonalization in the style of
//!   ScaLAPACK's `pdsytrd` \[15\]: every column's Householder vector
//!   requires a matrix–vector product with the *trailing matrix*, which
//!   is what pins the baseline at `W = O(n²/√p)`, `Q = O(n³/p)` and
//!   `S = O(n·polylog)` (§IV's motivation for banded intermediates).
//! * [`elpa`] — a two-stage reduction in the style of ELPA \[13\]:
//!   2D (non-replicated) full→band, then a pipelined 1D
//!   band→tridiagonal, giving `W = O(n²/√p)` with far smaller `Q`.

pub mod elpa;
pub mod scalapack;

pub use elpa::elpa_two_stage;
pub use scalapack::scalapack_tridiag;
