//! ELPA-style two-stage symmetric eigensolver \[13\], \[37\].
//!
//! Stage 1 reduces the dense matrix to band-width `b = n/q` on a 2D
//! grid — implemented as Algorithm IV.1 with replication factor `c = 1`
//! (the 2.5D algorithm *degenerates* to the classic two-stage first
//! phase when nothing is replicated, which is exactly the relationship
//! the paper describes). Stage 2 reduces the band to tridiagonal with an
//! `h = 1` bulge-chasing pipeline (Lang's algorithm \[36\] shape),
//! realized by [`crate::lang`]'s dedicated h = 1 pipeline. The
//! eigenvalues of the tridiagonal matrix are then computed on one
//! processor.

use crate::full_to_band::full_to_band;
use crate::lang::lang_band_to_tridiagonal;
use crate::params::EigenParams;
use ca_bsp::Machine;
use ca_dla::Matrix;
use ca_pla::coll;
use ca_pla::grid::Grid;

/// Two-stage eigenvalue computation; `p` must have an integer square
/// root (2D grid). Returns the eigenvalues in ascending order.
pub fn elpa_two_stage(machine: &Machine, p: usize, a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    let params = EigenParams::new(p, 1);
    // Intermediate band-width: n/q clamped to [2, n/2] (arbitrary n —
    // no power-of-two snapping; ELPA picks the band to make stage-1
    // BLAS-3 and stage-2 cheap).
    let hi = (n / 2).max(1);
    let b = (n / params.q.max(1)).clamp(2.min(hi), hi);

    // Stage 1: 2D full → band (no replication).
    let (band, _) = full_to_band(machine, &params, a, b);

    // Stage 2: band → tridiagonal via Lang's algorithm [36].
    let grid = Grid::all(p);
    let tri = lang_band_to_tridiagonal(machine, &grid, &band);

    // Gather the tridiagonal and solve sequentially.
    let (d, e) = tri.tridiagonal();
    coll::gather(machine, &grid, 0, ((2 * n) as u64).div_ceil(p.max(1) as u64));
    machine.charge_flops(grid.proc(0), 30 * (n as u64).pow(2));
    machine.fence();
    ca_dla::tridiag::tridiag_eigenvalues(&d, &e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::spectrum_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_prescribed_spectrum() {
        let n = 32;
        let p = 4;
        let m = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(240);
        let spectrum = gen::linspace_spectrum(n, -1.0, 7.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let ev = elpa_two_stage(&m, p, &a);
        assert!(spectrum_distance(&ev, &spectrum) < 1e-8 * n as f64);
    }

    #[test]
    fn stage_one_vertical_traffic_beats_direct_tridiagonalization() {
        // The paper's §IV motivation for banded intermediates: the
        // full-to-band stage updates the trailing matrix with BLAS-3
        // panel products (Q ≈ n³/(b·p)) instead of per-column matvecs
        // that stream the trailing matrix from memory n times
        // (Q ≈ n³/p). (Our executor does not model the cache-resident
        // sliding window of Lang's stage-2 — recorded in DESIGN.md §8 —
        // so the end-to-end Q comparison is made per stage.)
        let n = 64;
        let p = 4;
        let mut rng = StdRng::seed_from_u64(241);
        let a = gen::random_symmetric(&mut rng, n);

        let m1 = Machine::new(MachineParams::new(p));
        let params = EigenParams::new(p, 1);
        let _ = full_to_band(&m1, &params, &a, 16);
        let q_stage1 = m1.report().vertical_words;

        let m2 = Machine::new(MachineParams::new(p));
        let grid = Grid::new_2d((0..p).collect(), 2, 2);
        let _ = crate::baselines::scalapack::scalapack_tridiag(&m2, &grid, &a);
        let q_direct = m2.report().vertical_words;

        assert!(
            q_stage1 < q_direct,
            "full-to-band Q ({q_stage1}) should beat direct Q ({q_direct})"
        );
    }
}
