//! Closed-form cost models: the paper's asymptotic expressions as
//! evaluatable formulas.
//!
//! Each function returns the *dominant-term* prediction (unit constants)
//! of a lemma or theorem. They serve three purposes: (1) the
//! `model_check` harness compares them against the measured ledger,
//! (2) tests pin the measured/model ratio into a band so accounting
//! regressions are caught, and (3) downstream users can evaluate the
//! tuning space (`p`, `c`, `b`) without running a simulation.

use crate::params::EigenParams;

/// Predicted costs (dominant terms, unit constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelCosts {
    /// Computation `F`.
    pub flops: f64,
    /// Horizontal words `W`.
    pub horizontal_words: f64,
    /// Vertical words `Q`.
    pub vertical_words: f64,
    /// Supersteps `S`.
    pub supersteps: f64,
    /// Memory per processor `M`.
    pub memory_words: f64,
}

/// Lemma III.2: rectangular matrix multiplication of `m×k · k×n` on `p`
/// processors with memory parameter `v`.
pub fn mm_rectangular(m: usize, k: usize, n: usize, p: usize, v: usize) -> ModelCosts {
    let (m, k, n, p, v) = (m as f64, k as f64, n as f64, p as f64, v.max(1) as f64);
    let operands = (m * k + k * n + m * n) / p;
    ModelCosts {
        flops: 2.0 * m * k * n / p,
        horizontal_words: operands + v.cbrt() * (m * k * n / p).powf(2.0 / 3.0),
        vertical_words: operands,
        supersteps: v * p.log2().max(1.0),
        memory_words: operands + (m * k * n / (v * p)).powf(2.0 / 3.0),
    }
}

/// Lemma III.3: Streaming-MM of a replicated `m×n` against `n×k` on a
/// `q×q×c` grid with streaming depth `w`.
pub fn mm_streaming(m: usize, n: usize, k: usize, q: usize, c: usize, w: usize) -> ModelCosts {
    let (mf, nf, kf) = (m as f64, n as f64, k as f64);
    let p = (q * q * c) as f64;
    let p_delta = (q * c) as f64;
    ModelCosts {
        flops: 2.0 * mf * nf * kf / p,
        horizontal_words: (mf * kf + nf * kf) / p_delta,
        vertical_words: (mf * kf + nf * kf) / p_delta,
        supersteps: 2.0 * w as f64 + 2.0,
        memory_words: mf * nf / ((q * q) as f64) + (mf * kf + nf * kf) / (w as f64 * p_delta),
    }
}

/// Theorem III.6 (+ Cor. III.7): rectangular QR of `m×n` (`m ≥ n`) on
/// `p` processors at the given `δ`.
pub fn qr_rectangular(m: usize, n: usize, p: usize, delta: f64) -> ModelCosts {
    let (mf, nf, pf) = (m as f64, n as f64, p as f64);
    ModelCosts {
        flops: 2.0 * mf * nf * nf / pf,
        horizontal_words: mf.powf(delta) * nf.powf(2.0 - delta) / pf.powf(delta) + mf * nf / pf,
        vertical_words: mf * nf / pf,
        supersteps: (nf * pf / mf).max(1.0).powf(delta) * pf.log2().max(1.0).powi(2),
        memory_words: (nf.powf(delta) * mf.powf(1.0 - delta) / pf.powf(1.0 - delta)).powi(2),
    }
}

/// Lemma IV.1: 2.5D full→band reduction of an `n×n` matrix to
/// band-width `b`.
pub fn full_to_band(n: usize, b: usize, params: &EigenParams) -> ModelCosts {
    let (nf, _bf) = (n as f64, b as f64);
    let p = params.p as f64;
    let p_delta = params.p_delta() as f64;
    let q2 = (params.q * params.q) as f64;
    ModelCosts {
        flops: nf.powi(3) / p,
        horizontal_words: nf * nf / p_delta,
        vertical_words: nf * nf / p_delta,
        supersteps: p_delta * p.log2().max(1.0).powi(2),
        memory_words: nf * nf / q2,
    }
}

/// Lemma IV.2: one CA-SBR halving of an `n×n` band-`b` matrix on `p̂`
/// processors (`b ≤ n/p̂`).
pub fn ca_sbr_halving(n: usize, b: usize, p_hat: usize) -> ModelCosts {
    let (nf, bf, pf) = (n as f64, b as f64, p_hat as f64);
    ModelCosts {
        flops: nf * nf * bf / pf,
        horizontal_words: nf * bf / pf, // per-processor share of the O(nb) total
        vertical_words: nf * nf / pf,
        supersteps: pf,
        memory_words: nf * bf / pf,
    }
}

/// Lemma IV.3: one 2.5D band-to-band reduction `b → b/k` on `p`
/// processors at the given `δ`.
pub fn band_to_band(n: usize, b: usize, k: usize, p: usize, delta: f64) -> ModelCosts {
    let (nf, bf, kf, pf) = (n as f64, b as f64, k as f64, p as f64);
    ModelCosts {
        flops: nf * nf * bf / pf,
        horizontal_words: nf.powf(1.0 + delta) * bf.powf(1.0 - delta) / pf.powf(delta),
        vertical_words: nf.powf(1.0 + delta) * bf.powf(1.0 - delta) / pf.powf(delta),
        supersteps: kf.powf(delta) * nf.powf(1.0 - delta) * pf.powf(delta) / bf.powf(1.0 - delta)
            * pf.log2().max(1.0),
        memory_words: (nf.powf(1.0 - delta) * bf.powf(delta) / pf.powf(1.0 - delta)).powi(2),
    }
}

/// Theorem IV.4: the complete 2.5D symmetric eigensolver.
pub fn eigensolver(n: usize, params: &EigenParams) -> ModelCosts {
    let nf = n as f64;
    let p = params.p as f64;
    let p_delta = params.p_delta() as f64;
    let lg = p.log2().max(1.0);
    ModelCosts {
        flops: nf.powi(3) / p,
        horizontal_words: nf * nf / p_delta,
        vertical_words: nf * nf * lg / p_delta,
        supersteps: p_delta * lg * lg,
        memory_words: nf * nf / ((params.q * params.q) as f64),
    }
}

/// Table-I baselines: direct (ScaLAPACK-style) tridiagonalization.
pub fn scalapack_direct(n: usize, p: usize) -> ModelCosts {
    let (nf, pf) = (n as f64, p as f64);
    ModelCosts {
        flops: nf.powi(3) / pf,
        horizontal_words: nf * nf / pf.sqrt(),
        vertical_words: nf.powi(3) / pf,
        supersteps: nf * pf.log2().max(1.0),
        memory_words: nf * nf / pf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_model_halves_with_c() {
        let a = mm_streaming(256, 256, 16, 4, 1, 1);
        let b = mm_streaming(256, 256, 16, 4, 2, 1);
        assert!((a.horizontal_words / b.horizontal_words - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eigensolver_model_scales_with_delta() {
        // W at δ = 2/3 (p = 64, c = 4) is half of δ = 1/2 (c = 1).
        let w1 = eigensolver(1024, &EigenParams::new(64, 1)).horizontal_words;
        let w4 = eigensolver(1024, &EigenParams::new(64, 4)).horizontal_words;
        assert!((w1 / w4 - 2.0).abs() < 1e-12); // p^δ = qc: 8 vs 16
    }

    #[test]
    fn direct_vertical_dominates_banded() {
        let direct = scalapack_direct(4096, 64);
        let banded = eigensolver(4096, &EigenParams::new(64, 1));
        assert!(direct.vertical_words > 10.0 * banded.vertical_words);
    }

    #[test]
    fn qr_model_tall_is_cheap() {
        let tall = qr_rectangular(1 << 16, 32, 64, 0.5);
        let square = qr_rectangular(2048, 1024, 64, 0.5);
        assert!(tall.horizontal_words < square.horizontal_words);
    }

    #[test]
    fn measured_full_to_band_tracks_model() {
        use ca_bsp::{Machine, MachineParams};
        use ca_dla::gen;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 128;
        let p = 16;
        let params = EigenParams::new(p, 1);
        let b = params.initial_bandwidth(n);
        let mut rng = StdRng::seed_from_u64(700);
        let a = gen::random_symmetric(&mut rng, n);
        let m = Machine::new(MachineParams::new(p));
        let _ = crate::full_to_band(&m, &params, &a, b);
        let measured = m.report();
        let model = full_to_band(n, b, &params);
        // Ratios within an order of magnitude (unit-constant model).
        let rw = measured.horizontal_words as f64 / model.horizontal_words;
        let rf = measured.flops as f64 / model.flops;
        assert!((0.5..60.0).contains(&rw), "W ratio {rw}");
        assert!((0.5..60.0).contains(&rf), "F ratio {rf}");
    }
}
