//! Singular values via the symmetric eigensolver — the application
//! direction the paper's conclusion points at ("our innovations should
//! pave the path for practical improvements in scalability of
//! applications computing singular values or eigenvalues of matrices",
//! §V).
//!
//! We use the Jordan–Wielandt embedding: for `A ∈ ℝ^{m×n}` the
//! symmetric matrix
//!
//! ```text
//!        ⎡ 0   Aᵀ ⎤
//!  J  =  ⎢        ⎥   ∈ ℝ^{(m+n)×(m+n)}
//!        ⎣ A   0  ⎦
//! ```
//!
//! has eigenvalues `±σᵢ(A)` (plus `|m−n|` zeros), and its eigenvectors
//! stack the right/left singular vectors as `(vᵢ, uᵢ)/√2`. Building `J`
//! and running the communication-avoiding eigensolver therefore computes
//! the SVD with the paper's communication profile — no new reduction
//! machinery, exact singular values (no `AᵀA` squaring of the condition
//! number).

use crate::error::EigenError;
use crate::params::EigenParams;
use crate::solver::{try_symm_eigen_25d, try_symm_eigen_25d_vectors, StageCosts};
use ca_bsp::Machine;
use ca_dla::Matrix;

/// The singular value decomposition `A = U·diag(σ)·Vᵀ` (thin form).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// `m × k` left singular vectors (columns), `k = min(m, n)`.
    pub u: Matrix,
    /// `n × k` right singular vectors (columns).
    pub v: Matrix,
}

/// Build the Jordan–Wielandt matrix `[0, Aᵀ; A, 0]` at its exact order
/// `m + n` — the solver accepts arbitrary dimensions, so no
/// power-of-two padding (which inflated the embedded problem by up to
/// ~8× in work) is needed.
fn jordan_wielandt(a: &Matrix) -> (Matrix, usize) {
    let (m, n) = (a.rows(), a.cols());
    let dim = m + n;
    let mut j = Matrix::zeros(dim, dim);
    for i in 0..m {
        for c in 0..n {
            j.set(n + i, c, a.get(i, c));
            j.set(c, n + i, a.get(i, c));
        }
    }
    (j, dim)
}

/// Singular values of `a` (descending), computed with the 2.5D
/// eigensolver on the embedded symmetric matrix.
pub fn singular_values(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> (Vec<f64>, StageCosts) {
    try_singular_values(machine, params, a).unwrap_or_else(|e| panic!("{e}"))
}

/// [`singular_values`] with typed input validation (see
/// [`crate::solver::try_symm_eigen_25d`]).
pub fn try_singular_values(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> Result<(Vec<f64>, StageCosts), EigenError> {
    let k = a.rows().min(a.cols());
    let (j, _) = jordan_wielandt(a);
    let (ev, costs) = try_symm_eigen_25d(machine, params, &j)?;
    // The top-k eigenvalues are +σ, descending once reversed.
    let mut sigma: Vec<f64> = ev.iter().rev().take(k).map(|l| l.max(0.0)).collect();
    // Guard against −0.0 noise on rank-deficient inputs.
    for s in &mut sigma {
        if *s < 0.0 {
            *s = 0.0;
        }
    }
    Ok((sigma, costs))
}

/// Full thin SVD via the eigenvector extension: the top-`k`
/// eigenvectors of the embedding are `(vᵢ, uᵢ)/√2`.
pub fn svd(machine: &Machine, params: &EigenParams, a: &Matrix) -> (Svd, StageCosts) {
    try_svd(machine, params, a).unwrap_or_else(|e| panic!("{e}"))
}

/// [`svd`] with typed input validation (see
/// [`crate::solver::try_symm_eigen_25d`]).
pub fn try_svd(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
) -> Result<(Svd, StageCosts), EigenError> {
    let (m, n) = (a.rows(), a.cols());
    let k = m.min(n);
    let (j, dim) = jordan_wielandt(a);
    let (ev, vecs, costs) = try_symm_eigen_25d_vectors(machine, params, &j)?;

    let mut sigma = Vec::with_capacity(k);
    let mut u = Matrix::zeros(m, k);
    let mut v = Matrix::zeros(n, k);
    let s2 = 2f64.sqrt();
    for idx in 0..k {
        let col = dim - 1 - idx; // largest eigenvalues last (ascending order)
        sigma.push(ev[col].max(0.0));
        for r in 0..n {
            v.set(r, idx, vecs.get(r, col) * s2);
        }
        for r in 0..m {
            u.set(r, idx, vecs.get(n + r, col) * s2);
        }
    }
    // Zero-σ directions: the embedding's null-space eigenvectors need
    // not split into paired (v, u)/√2 halves, so those columns are not
    // automatically unit vectors. Re-orthonormalize them against the
    // earlier (well-defined) columns so UᵀU = VᵀV = I always holds.
    let tol = sigma.first().copied().unwrap_or(0.0) * 1e-12 + f64::MIN_POSITIVE;
    for idx in 0..k {
        if sigma[idx] > tol {
            continue;
        }
        orthonormalize_column(&mut u, idx);
        orthonormalize_column(&mut v, idx);
    }
    Ok((Svd { sigma, u, v }, costs))
}

/// Modified Gram–Schmidt of column `idx` against columns `0..idx`,
/// falling back to a fresh basis direction when the residual vanishes.
fn orthonormalize_column(m: &mut Matrix, idx: usize) {
    let rows = m.rows();
    for pass in 0..=rows {
        // Project out earlier columns.
        for j in 0..idx {
            let dot: f64 = (0..rows).map(|r| m.get(r, idx) * m.get(r, j)).sum();
            for r in 0..rows {
                m.add_to(r, idx, -dot * m.get(r, j));
            }
        }
        let norm: f64 = (0..rows).map(|r| m.get(r, idx).powi(2)).sum::<f64>().sqrt();
        if norm > 1e-8 {
            for r in 0..rows {
                m.set(r, idx, m.get(r, idx) / norm);
            }
            return;
        }
        // Residual vanished: seed with the `pass`-th basis vector and retry.
        for r in 0..rows {
            m.set(r, idx, if r == pass.min(rows - 1) { 1.0 } else { 0.0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gemm::{matmul, Trans};
    use ca_dla::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineParams::new(p))
    }

    #[test]
    fn singular_values_of_diagonal_matrix() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (4 - i) as f64 } else { 0.0 });
        let m = machine(4);
        let (sigma, _) = singular_values(&m, &EigenParams::new(4, 1), &a);
        for (i, s) in sigma.iter().enumerate() {
            assert!((s - (4 - i) as f64).abs() < 1e-8, "σ_{i} = {s}");
        }
    }

    #[test]
    fn singular_values_match_gram_spectrum() {
        // σ(A)² are the eigenvalues of AᵀA.
        let mut rng = StdRng::seed_from_u64(900);
        let a = gen::random_matrix(&mut rng, 12, 8);
        let m = machine(4);
        let (sigma, _) = singular_values(&m, &EigenParams::new(4, 1), &a);
        let gram = matmul(&a, Trans::T, &a, Trans::N);
        let gram_band = ca_dla::BandedSym::from_dense(&gram, 7, 7);
        let mut gram_ev = ca_dla::tridiag::banded_eigenvalues(&gram_band);
        gram_ev.reverse();
        for (s, g) in sigma.iter().zip(&gram_ev) {
            assert!((s * s - g).abs() < 1e-7 * (1.0 + g.abs()), "σ²={} vs λ={}", s * s, g);
        }
    }

    #[test]
    fn thin_svd_reconstructs_matrix() {
        let mut rng = StdRng::seed_from_u64(901);
        for (mrows, ncols) in [(10usize, 6usize), (6, 10), (8, 8)] {
            let a = gen::random_matrix(&mut rng, mrows, ncols);
            let m = machine(4);
            let (f, _) = svd(&m, &EigenParams::new(4, 1), &a);
            // A = U·Σ·Vᵀ.
            let mut us = f.u.clone();
            for i in 0..mrows {
                for j in 0..f.sigma.len() {
                    us.set(i, j, f.u.get(i, j) * f.sigma[j]);
                }
            }
            let recon = matmul(&us, Trans::N, &f.v, Trans::T);
            assert!(
                recon.max_diff(&a) < 1e-7 * (mrows + ncols) as f64,
                "{mrows}×{ncols}: ‖UΣVᵀ − A‖ = {}",
                recon.max_diff(&a)
            );
            // Orthonormal columns.
            let utu = matmul(&f.u, Trans::T, &f.u, Trans::N);
            let vtv = matmul(&f.v, Trans::T, &f.v, Trans::N);
            let k = f.sigma.len();
            assert!(utu.max_diff(&Matrix::identity(k)) < 1e-7);
            assert!(vtv.max_diff(&Matrix::identity(k)) < 1e-7);
            // Descending σ ≥ 0.
            for w in f.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-10);
            }
            assert!(f.sigma.iter().all(|s| *s >= 0.0));
        }
    }

    #[test]
    fn rank_deficient_svd_keeps_orthonormal_factors() {
        // Zero-σ columns come from the embedding's null space and are
        // re-orthonormalized: UᵀU = VᵀV = I must hold even below rank.
        let x = Matrix::from_fn(6, 1, |i, _| (i + 1) as f64);
        let y = Matrix::from_fn(1, 5, |_, j| (j + 1) as f64);
        let a = matmul(&x, Trans::N, &y, Trans::N); // rank 1
        let m = machine(4);
        let (f, _) = svd(&m, &EigenParams::new(4, 1), &a);
        let k = f.sigma.len();
        let utu = matmul(&f.u, Trans::T, &f.u, Trans::N);
        let vtv = matmul(&f.v, Trans::T, &f.v, Trans::N);
        assert!(
            utu.max_diff(&Matrix::identity(k)) < 1e-7,
            "UᵀU deviates by {}",
            utu.max_diff(&Matrix::identity(k))
        );
        assert!(
            vtv.max_diff(&Matrix::identity(k)) < 1e-7,
            "VᵀV deviates by {}",
            vtv.max_diff(&Matrix::identity(k))
        );
        // Reconstruction still exact (zero σ annihilate those columns).
        let mut us = f.u.clone();
        for i in 0..6 {
            for j in 0..k {
                us.set(i, j, f.u.get(i, j) * f.sigma[j]);
            }
        }
        let recon = matmul(&us, Trans::N, &f.v, Trans::T);
        assert!(recon.max_diff(&a) < 1e-7 * 11.0);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_sigmas() {
        // Rank-1 outer product.
        let x = Matrix::from_fn(6, 1, |i, _| (i + 1) as f64);
        let y = Matrix::from_fn(1, 5, |_, j| (j + 1) as f64);
        let a = matmul(&x, Trans::N, &y, Trans::N);
        let m = machine(4);
        let (sigma, _) = singular_values(&m, &EigenParams::new(4, 1), &a);
        assert!(sigma[0] > 1.0);
        for s in &sigma[1..] {
            assert!(s.abs() < 1e-7, "trailing σ = {s}");
        }
    }
}
