//! Parameter tuning: choose `(c, b)` for a given machine and problem
//! from the closed-form cost models.
//!
//! The paper frames `c` as new tuning freedom ("the flexibility offered
//! by the parameter c increases the dimensionality of the tuning space
//! for symmetric eigensolver implementations", §I) and notes that large
//! `c` pays off on bandwidth-constrained machines. This module walks the
//! legal configurations (`p/c` a perfect square, `c ≤ p^{1/3}`, memory
//! within budget) and ranks them by the modeled BSP time under the
//! machine's `γ/β/ν/α`.

use crate::model;
use crate::params::EigenParams;
use ca_bsp::MachineParams;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningChoice {
    /// Replication factor.
    pub c: usize,
    /// Implied `δ`.
    pub delta: f64,
    /// Initial band-width the solver would pick.
    pub b: usize,
    /// Modeled BSP time (γF + βW + νQ + αS).
    pub modeled_time: f64,
    /// Modeled per-processor memory (words).
    pub memory_words: f64,
}

/// Legal replication factors for `p` (perfect-square layers, within the
/// paper's `c ≤ p^{1/3}` regime).
pub fn legal_replications(p: usize) -> Vec<usize> {
    (0..=p.ilog2())
        .map(|e| 1usize << e)
        .filter(|&c| {
            p.is_multiple_of(c) && c * c * c <= p && {
                let q2 = p / c;
                let q = (q2 as f64).sqrt().round() as usize;
                q * q == q2
            }
        })
        .collect()
}

/// Rank every legal `c` for solving an `n×n` problem on `machine`,
/// cheapest modeled time first. Configurations whose modeled memory
/// exceeds `memory_budget_words` (if given) are excluded.
pub fn rank_configurations(
    n: usize,
    machine: &MachineParams,
    memory_budget_words: Option<f64>,
) -> Vec<TuningChoice> {
    let p = machine.p;
    let mut out = Vec::new();
    for c in legal_replications(p) {
        let params = EigenParams::new(p, c);
        let m = model::eigensolver(n, &params);
        let mem = m.memory_words;
        if let Some(budget) = memory_budget_words {
            if mem > budget {
                continue;
            }
        }
        let time = machine.gamma * m.flops
            + machine.beta * m.horizontal_words
            + machine.nu * m.vertical_words
            + machine.alpha * m.supersteps;
        out.push(TuningChoice {
            c,
            delta: params.delta(),
            b: params.initial_bandwidth(n),
            modeled_time: time,
            memory_words: mem,
        });
    }
    out.sort_by(|a, b| a.modeled_time.partial_cmp(&b.modeled_time).expect("finite"));
    out
}

/// The single best configuration (None when nothing fits the budget).
pub fn best_configuration(
    n: usize,
    machine: &MachineParams,
    memory_budget_words: Option<f64>,
) -> Option<TuningChoice> {
    rank_configurations(n, machine, memory_budget_words)
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_replications_respect_regime() {
        assert_eq!(legal_replications(16), vec![1]);
        assert_eq!(legal_replications(64), vec![1, 4]);
        assert_eq!(legal_replications(256), vec![1, 4]);
        assert_eq!(legal_replications(4096), vec![1, 4, 16]);
    }

    #[test]
    fn bandwidth_bound_machines_prefer_replication() {
        // Expensive words, free sync: c = max wins.
        let m = MachineParams::new(64).with_times(1e-6, 1.0, 0.1, 0.0);
        let best = best_configuration(4096, &m, None).expect("choices");
        assert_eq!(best.c, 4, "bandwidth-bound machine should replicate");
    }

    #[test]
    fn latency_bound_machines_avoid_replication() {
        // Free words, very expensive synchronization: c = 1 wins
        // (replication buys W at the price of S).
        let m = MachineParams::new(64).with_times(1e-6, 1e-9, 0.0, 1e6);
        let best = best_configuration(4096, &m, None).expect("choices");
        assert_eq!(best.c, 1, "latency-bound machine should not replicate");
    }

    #[test]
    fn memory_budget_excludes_replication() {
        let machine = MachineParams::new(64).with_times(1e-6, 1.0, 0.1, 0.0);
        let n = 4096;
        // Budget just below the c = 4 footprint (n²/q² with q = 4).
        let c4_mem = (n * n) as f64 / 16.0;
        let best = best_configuration(n, &machine, Some(c4_mem * 0.9)).expect("choices");
        assert_eq!(best.c, 1, "budget should force c = 1");
        // With room, c = 4 returns.
        let best = best_configuration(n, &machine, Some(c4_mem * 1.1)).expect("choices");
        assert_eq!(best.c, 4);
    }

    #[test]
    fn ranking_is_sorted() {
        let m = MachineParams::new(4096);
        let ranked = rank_configurations(8192, &m, None);
        assert!(ranked.len() >= 3);
        for w in ranked.windows(2) {
            assert!(w[0].modeled_time <= w[1].modeled_time);
        }
    }
}
