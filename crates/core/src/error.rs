//! Typed validation errors for the solver's public entry points.
//!
//! The seed implementation `panic!`ed on every malformed input (shape,
//! symmetry, grid), which is fine for a research harness but means a
//! serving layer cannot reject a bad request without catching unwinds.
//! Every input-validation failure now surfaces as an [`EigenError`];
//! the original panicking entry points remain as thin shims that
//! `unwrap` the `Result` (so existing callers and tests are
//! unaffected).

use std::fmt;

/// Why an eigensolver request failed: input validation (rejected
/// before any work ran), a convergence failure, or — for jobs routed
/// through the `ca-service` scheduler — an admission-control or
/// deadline outcome.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EigenError {
    /// The input matrix is not square.
    NonSquareInput {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The problem dimension is below the solver's minimum (`n ≥ 2`).
    TooSmall {
        /// The offending dimension.
        n: usize,
    },
    /// The input matrix is not symmetric (relative asymmetry above
    /// tolerance).
    AsymmetricInput {
        /// Measured `max |A − Aᵀ|` relative to `max |A|`.
        asymmetry: f64,
    },
    /// The input matrix contains a NaN or infinity. Checked up front:
    /// NaN compares false against every tolerance, so it would
    /// otherwise pass the symmetry gate and die deep in the reduction.
    NonFiniteInput {
        /// Row of the first non-finite entry.
        row: usize,
        /// Column of the first non-finite entry.
        col: usize,
    },
    /// `p = 0`: at least one processor is required.
    NoProcessors,
    /// The replication factor does not divide the processor count
    /// (`c ∤ p`, or `c = 0`).
    ReplicationMismatch {
        /// Processor count.
        p: usize,
        /// Replication factor.
        c: usize,
    },
    /// `p/c` is not a perfect square, so no `q × q × c` grid exists.
    NonSquareGrid {
        /// Processor count.
        p: usize,
        /// Replication factor.
        c: usize,
    },
    /// The replication factor leaves the paper's `c ≤ p^{1/3}` regime.
    ReplicationOutOfRegime {
        /// Processor count.
        p: usize,
        /// Replication factor.
        c: usize,
    },
    /// A band-width outside `1 ≤ b < n` was requested from
    /// `full_to_band`.
    InvalidBandwidth {
        /// Problem dimension.
        n: usize,
        /// The offending band-width.
        b: usize,
    },
    /// A reduction factor outside `1 ≤ k ≤ b` was requested from
    /// `band_to_band`.
    InvalidReductionFactor {
        /// Current band-width.
        b: usize,
        /// The offending factor.
        k: usize,
    },
    /// A service job missed its deadline: it spent longer in the
    /// admission queue than its timeout allowed and was never started.
    /// Deadlines bound *scheduling* delay — once a worker begins a
    /// solve it runs to completion, so a returned result is never
    /// discarded on wall-clock grounds (which would make outcomes
    /// timing-dependent).
    Deadline {
        /// The job's timeout budget, in milliseconds.
        timeout_ms: u64,
        /// How long the job had actually waited when it was cancelled,
        /// in milliseconds.
        waited_ms: u64,
    },
    /// Admission control rejected the job: the service's bounded queue
    /// was at capacity. Back off and resubmit, or raise
    /// `CA_QUEUE_CAP`.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The job was submitted to a service that is shutting down (or
    /// already shut down).
    ServiceShutdown,
    /// The sequential tridiagonal eigensolver failed to converge —
    /// unreachable for finite symmetric input (the implicit-shift QL
    /// iteration is globally convergent), but non-finite data reaching
    /// the finale surfaces here instead of aborting the process.
    ConvergenceFailure {
        /// Which solver gave up (`"tridiag_eigenvalues"`,
        /// `"tridiag_eigen"`).
        solver: &'static str,
        /// Eigenvalue index being iterated when the budget ran out.
        index: usize,
    },
}

impl From<ca_dla::tridiag::NoConvergence> for EigenError {
    fn from(e: ca_dla::tridiag::NoConvergence) -> Self {
        Self::ConvergenceFailure { solver: e.solver, index: e.index }
    }
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonSquareInput { rows, cols } => {
                write!(f, "input must be square (got {rows} × {cols})")
            }
            Self::TooSmall { n } => {
                write!(f, "matrix dimension must be at least 2 (got n = {n})")
            }
            Self::AsymmetricInput { asymmetry } => {
                write!(f, "input must be symmetric (relative asymmetry {asymmetry:.3e})")
            }
            Self::NonFiniteInput { row, col } => {
                write!(f, "input must be finite (non-finite entry at ({row}, {col}))")
            }
            Self::NoProcessors => write!(f, "at least one processor is required (p = 0)"),
            Self::ReplicationMismatch { p, c } => {
                write!(f, "c must divide p (got p = {p}, c = {c})")
            }
            Self::NonSquareGrid { p, c } => {
                write!(
                    f,
                    "p/c = {} must be a perfect square (got p = {p}, c = {c})",
                    if *c == 0 { 0 } else { p / c }
                )
            }
            Self::ReplicationOutOfRegime { p, c } => {
                write!(
                    f,
                    "c = {c} exceeds the paper's c ≤ p^{{1/3}} regime for p = {p}"
                )
            }
            Self::InvalidBandwidth { n, b } => {
                write!(f, "band-width must satisfy 1 ≤ b < n (got b = {b}, n = {n})")
            }
            Self::InvalidReductionFactor { b, k } => {
                write!(
                    f,
                    "reduction factor must satisfy 1 ≤ k ≤ band-width (got k = {k}, b = {b})"
                )
            }
            Self::Deadline { timeout_ms, waited_ms } => {
                write!(
                    f,
                    "job missed its deadline (timeout {timeout_ms} ms, waited {waited_ms} ms in queue)"
                )
            }
            Self::QueueFull { capacity } => {
                write!(f, "service queue is full (capacity {capacity}); resubmit later")
            }
            Self::ServiceShutdown => write!(f, "service is shut down"),
            Self::ConvergenceFailure { solver, index } => {
                write!(
                    f,
                    "sequential eigensolve did not converge ({solver}, eigenvalue index {index}) — \
                     is the input finite?"
                )
            }
        }
    }
}

impl std::error::Error for EigenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offending_values() {
        let cases: Vec<(EigenError, &str)> = vec![
            (EigenError::NonSquareInput { rows: 3, cols: 4 }, "3 × 4"),
            (EigenError::TooSmall { n: 1 }, "n = 1"),
            (
                EigenError::NonFiniteInput { row: 2, col: 5 },
                "non-finite entry at (2, 5)",
            ),
            (EigenError::NoProcessors, "p = 0"),
            (EigenError::ReplicationMismatch { p: 10, c: 3 }, "c must divide p"),
            (EigenError::NonSquareGrid { p: 24, c: 2 }, "perfect square"),
            (
                EigenError::ReplicationOutOfRegime { p: 8, c: 4 },
                "c ≤ p^{1/3}",
            ),
            (
                EigenError::ConvergenceFailure { solver: "tridiag_eigen", index: 7 },
                "did not converge",
            ),
            (
                EigenError::Deadline { timeout_ms: 5, waited_ms: 9 },
                "timeout 5 ms, waited 9 ms",
            ),
            (EigenError::QueueFull { capacity: 4 }, "capacity 4"),
            (EigenError::ServiceShutdown, "shut down"),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EigenError::NoProcessors);
    }
}
