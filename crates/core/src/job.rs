//! Job and result types for batched / multi-tenant serving.
//!
//! A [`SymmEigenJob`] packages one independent eigenproblem — the
//! matrix, grid parameters, engine choice, whether eigenvectors are
//! wanted, and an optional scheduling deadline — into a value that can
//! be queued, moved across threads, and solved anywhere.
//! [`solve_job`] is the *one* execution path for a job: the
//! `ca-service` scheduler calls it from its worker threads, and a solo
//! (unbatched, unscheduled) reference run is the same function called
//! directly. Bit-identity between service and solo results is therefore
//! structural: both run byte-for-byte the same code under the same
//! pinned [`KnobSnapshot`], and the solver itself is deterministic
//! (serial ↔ parallel equivalence is pinned by the determinism suites).

use crate::error::EigenError;
use crate::params::EigenParams;
use crate::solver::{try_symm_eigen_25d, try_symm_eigen_25d_vectors, StageCosts};
use ca_bsp::{Machine, MachineParams};
use ca_dla::tune::{self, KnobSnapshot};
use ca_dla::Matrix;
use std::time::Duration;

/// Which sequential-finale engine a job requests.
///
/// The engines differ in schedule (QL rotations vs divide-and-conquer
/// secular solves) but both return the full spectrum; `Auto` defers to
/// the configuration snapshot in effect (the `CA_DNC` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Use whatever the active [`KnobSnapshot`] says (`CA_DNC`).
    #[default]
    Auto,
    /// Force the implicit-shift QL finale (`CA_DNC=0` semantics).
    Ql,
    /// Force the divide-and-conquer finale.
    Dnc,
}

impl Engine {
    /// The knob snapshot this engine choice executes under, given the
    /// service's (or process's) base snapshot.
    pub fn apply(self, base: KnobSnapshot) -> KnobSnapshot {
        match self {
            Engine::Auto => base,
            Engine::Ql => KnobSnapshot { dnc_enabled: false, ..base },
            Engine::Dnc => KnobSnapshot { dnc_enabled: true, ..base },
        }
    }

    /// Display name (`"auto"` / `"ql"` / `"dnc"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Auto => "auto",
            Engine::Ql => "ql",
            Engine::Dnc => "dnc",
        }
    }
}

/// One independent symmetric eigenproblem, ready to be queued.
#[derive(Debug, Clone)]
pub struct SymmEigenJob {
    /// The symmetric input matrix (validated at solve time).
    pub a: Matrix,
    /// Virtual machine / grid parameters for this job.
    pub params: EigenParams,
    /// Whether eigenvectors are wanted (the §IV.C extension) or
    /// eigenvalues only.
    pub want_vectors: bool,
    /// Sequential-finale engine selection.
    pub engine: Engine,
    /// Optional scheduling deadline: if the job is still queued when
    /// this much time has passed since submission, it is cancelled with
    /// [`EigenError::Deadline`] instead of being started. `None` waits
    /// indefinitely.
    pub timeout: Option<Duration>,
}

impl SymmEigenJob {
    /// A values-only job on a `p`-processor machine with replication
    /// factor `c` (panics on invalid grid parameters, like
    /// [`EigenParams::new`]).
    pub fn values(a: Matrix, p: usize, c: usize) -> Self {
        Self {
            a,
            params: EigenParams::new(p, c),
            want_vectors: false,
            engine: Engine::Auto,
            timeout: None,
        }
    }

    /// A values-and-vectors job (see [`SymmEigenJob::values`]).
    pub fn with_vectors(a: Matrix, p: usize, c: usize) -> Self {
        Self { want_vectors: true, ..Self::values(a, p, c) }
    }

    /// Set the engine, by value (builder style).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the scheduling deadline, by value (builder style).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.a.rows()
    }
}

/// The completed output of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Ascending eigenvalues.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors when the job asked for them.
    pub vectors: Option<Matrix>,
    /// Per-stage cost record of the solve (each job runs on its own
    /// fresh virtual machine, so ledgers never mix across tenants).
    pub costs: StageCosts,
    /// The exact knob configuration the solve executed under.
    pub knobs: KnobSnapshot,
}

/// Solve one job under the given configuration snapshot.
///
/// Creates a fresh [`Machine`] for the job (ledger isolation between
/// tenants), pins `knobs` (adjusted by the job's [`Engine`] choice) for
/// the duration via [`tune::with_knobs`], and dispatches to the
/// values-only or vectors solver. This function is deliberately the
/// only way jobs are executed — see the module docs for the
/// determinism argument.
pub fn solve_job(job: &SymmEigenJob, knobs: KnobSnapshot) -> Result<JobResult, EigenError> {
    let knobs = job.engine.apply(knobs);
    tune::with_knobs(knobs, || {
        let machine = Machine::new(MachineParams::new(job.params.p));
        if job.want_vectors {
            let (eigenvalues, vectors, costs) =
                try_symm_eigen_25d_vectors(&machine, &job.params, &job.a)?;
            Ok(JobResult { eigenvalues, vectors: Some(vectors), costs, knobs })
        } else {
            let (eigenvalues, costs) = try_symm_eigen_25d(&machine, &job.params, &job.a)?;
            Ok(JobResult { eigenvalues, vectors: None, costs, knobs })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_dla::gen;
    use ca_dla::tridiag::spectrum_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_job(n: usize, vectors: bool) -> (SymmEigenJob, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let spectrum = gen::linspace_spectrum(n, -2.0, 2.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let job = if vectors {
            SymmEigenJob::with_vectors(a, 4, 1)
        } else {
            SymmEigenJob::values(a, 4, 1)
        };
        (job, spectrum)
    }

    #[test]
    fn solve_job_matches_direct_solver_call() {
        let (job, spectrum) = test_job(32, false);
        let out = solve_job(&job, KnobSnapshot::capture()).expect("solve");
        assert!(spectrum_distance(&out.eigenvalues, &spectrum) < 1e-8);
        assert!(out.vectors.is_none());
        assert!(out.costs.total().flops > 0);

        let machine = Machine::new(MachineParams::new(4));
        let (direct, _) = try_symm_eigen_25d(&machine, &job.params, &job.a).expect("direct");
        assert_eq!(
            out.eigenvalues
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "solve_job must be bit-identical to a direct solver call"
        );
    }

    #[test]
    fn engine_choice_pins_the_finale() {
        let (job, spectrum) = test_job(48, true);
        let base = KnobSnapshot::capture();
        let ql = solve_job(&job.clone().engine(Engine::Ql), base).expect("ql");
        let dnc = solve_job(&job.clone().engine(Engine::Dnc), base).expect("dnc");
        assert!(!ql.knobs.dnc_enabled);
        assert!(dnc.knobs.dnc_enabled);
        for out in [&ql, &dnc] {
            assert!(spectrum_distance(&out.eigenvalues, &spectrum) < 1e-8);
            assert!(out.vectors.is_some());
        }
        // Engine selection through the job must match flipping the
        // global knob by hand.
        let was = tune::dnc_enabled();
        tune::set_dnc_enabled(false);
        let global_ql = solve_job(&job.clone().engine(Engine::Auto), KnobSnapshot::capture());
        tune::set_dnc_enabled(was);
        let global_ql = global_ql.expect("global ql");
        assert_eq!(
            ql.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            global_ql
                .eigenvalues
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn invalid_jobs_surface_typed_errors() {
        let job = SymmEigenJob::values(Matrix::from_vec(2, 3, vec![0.0; 6]), 4, 1);
        assert!(matches!(
            solve_job(&job, KnobSnapshot::capture()),
            Err(EigenError::NonSquareInput { rows: 2, cols: 3 })
        ));
    }
}
