//! Lang's parallel band→tridiagonal reduction \[36\] — ELPA's second
//! stage ("ELPA employs the parallel banded-to-tridiagonal algorithm
//! introduced by \[36\]", §IV).
//!
//! Structure: `h = 1` bulge chasing (one column eliminated per sweep by
//! a length-`b` Householder reflector, the bulge chased down the band),
//! parallelized over a 1D column layout with owner-computes chases and
//! neighbour hand-offs — the same pipeline skeleton as CA-SBR but with
//! single-column sweeps, giving the `Θ(n)` supersteps of Table I's ELPA
//! row (one pipeline phase per eliminated column) in exchange for no
//! intermediate band-widths.

use ca_bsp::Machine;
use ca_dla::bulge::{chase_plan, execute_chase, execute_chase_recording};
use ca_dla::costs;
use ca_dla::BandedSym;
use ca_pla::grid::Grid;

/// Reduce a symmetric band-`b` matrix to tridiagonal (Lang's algorithm
/// shape). Returns the tridiagonal as a [`BandedSym`] of band-width 1.
pub fn lang_band_to_tridiagonal(machine: &Machine, grid: &Grid, bmat: &BandedSym) -> BandedSym {
    lang_impl(machine, grid, bmat, None)
}

/// [`lang_band_to_tridiagonal`] with transform recording.
pub fn lang_band_to_tridiagonal_logged(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    rec: &mut Vec<crate::transforms::Reflectors>,
) -> BandedSym {
    lang_impl(machine, grid, bmat, Some(rec))
}

fn lang_impl(
    machine: &Machine,
    grid: &Grid,
    bmat: &BandedSym,
    mut rec: Option<&mut Vec<crate::transforms::Reflectors>>,
) -> BandedSym {
    let n = bmat.n();
    let b = bmat.bandwidth();
    if b <= 1 {
        return bmat.clone();
    }
    let p = grid.len();
    let cols_per_proc = n.div_ceil(p);

    // 1D redistribution (O(nb/p) words each).
    for &pid in grid.procs() {
        machine.charge_comm(pid, 2 * ((n * (b + 1)) as u64).div_ceil(p as u64));
    }
    machine.step(grid.procs(), 1);

    let cap = (2 * b).min(n - 1);
    let mut work = BandedSym::zeros(n, b, cap);
    for j in 0..n {
        for i in j..n.min(j + b + 1) {
            work.set(i, j, bmat.get(i, j));
        }
    }

    // h = 1 chase plan, executed in pipeline-phase order: one phase per
    // sweep step, owners charged per chase, neighbour hand-offs when a
    // window crosses a processor boundary.
    let mut plan = chase_plan(n, b, b);
    plan.sort_by_key(|op| (op.phase(), op.i));

    let mut current_phase = usize::MAX;
    for op in plan {
        if op.phase() != current_phase {
            if current_phase != usize::MAX {
                machine.fence();
            }
            current_phase = op.phase();
        }
        let (lo, hi) = op.window();
        let owner_idx = (lo / cols_per_proc).min(p - 1);
        let owner = grid.proc(owner_idx);
        let (nr, nc, h) = (op.nr(), op.nc(), op.h());

        machine.charge_flops(
            owner,
            costs::qr_flops(nr, h)
                + costs::gemm_flops(nc, nr, h)
                + 2 * costs::gemm_flops(nr, h, nc),
        );
        machine.charge_vert(owner, ((hi - lo) * (b + 1)) as u64);

        let last_idx = ((hi - 1) / cols_per_proc).min(p - 1);
        if last_idx != owner_idx {
            // Boundary hand-off happens within the phase's superstep
            // (the per-phase fence below accounts for it).
            machine.charge_transfer(owner, grid.proc(last_idx), 2 * (h * (b + 1)) as u64);
        }

        if let Some(r) = rec.as_deref_mut() {
            let row0 = op.qr_rows.0;
            let (u, t) = execute_chase_recording(&mut work, &op);
            r.push(crate::transforms::Reflectors { row0, u, t });
        } else {
            execute_chase(&mut work, &op);
        }
    }
    machine.fence();
    work.set_bandwidth(1);
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::gen;
    use ca_dla::tridiag::{banded_eigenvalues, spectrum_distance, tridiag_eigenvalues};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduces_to_tridiagonal_preserving_spectrum() {
        let (n, b, p) = (48usize, 6usize, 4usize);
        let m = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(620);
        let dense = gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let reference = banded_eigenvalues(&bm);
        let tri = lang_band_to_tridiagonal(&m, &Grid::all(p), &bm);
        assert!(tri.measured_bandwidth(1e-9) <= 1);
        let (d, e) = tri.tridiagonal();
        let ev = tridiag_eigenvalues(&d, &e);
        assert!(spectrum_distance(&ev, &reference) < 1e-8 * n as f64);
    }

    #[test]
    fn supersteps_scale_linearly_with_n() {
        let (b, p) = (4usize, 4usize);
        let mut s = Vec::new();
        for n in [32usize, 64] {
            let m = Machine::new(MachineParams::new(p));
            let mut rng = StdRng::seed_from_u64(621);
            let dense = gen::random_banded(&mut rng, n, b);
            let bm = BandedSym::from_dense(&dense, b, b);
            let _ = lang_band_to_tridiagonal(&m, &Grid::all(p), &bm);
            s.push(m.report().supersteps as f64);
        }
        let ratio = s[1] / s[0];
        assert!((1.6..2.5).contains(&ratio), "S ratio {ratio} not ~2 (Θ(n) phases)");
    }

    #[test]
    fn recorded_transforms_reconstruct_eigenvectors() {
        use ca_dla::gemm::{matmul, Trans};
        let (n, b, p) = (24usize, 4usize, 2usize);
        let m = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(622);
        let dense = gen::random_banded(&mut rng, n, b);
        let bm = BandedSym::from_dense(&dense, b, b);
        let mut log = crate::transforms::TransformLog::default();
        let tri = lang_band_to_tridiagonal_logged(&m, &Grid::all(p), &bm, log.stage("lang"));
        let (d, e) = tri.tridiagonal();
        let (lam, z) = ca_dla::tridiag::tridiag_eigen(&d, &e);
        let v = crate::transforms::back_transform(&m, &Grid::all(p), &log, &z);
        let av = matmul(&dense, Trans::N, &v, Trans::N);
        let mut vl = v.clone();
        for i in 0..n {
            for j in 0..n {
                vl.set(i, j, v.get(i, j) * lam[j]);
            }
        }
        assert!(av.max_diff(&vl) < 1e-8 * n as f64);
    }

    #[test]
    fn tridiagonal_input_is_passthrough() {
        let m = Machine::new(MachineParams::new(2));
        let a = gen::laplacian_2d(8, 1);
        let bm = BandedSym::from_dense(&a, 1, 1);
        let out = lang_band_to_tridiagonal(&m, &Grid::all(2), &bm);
        assert!(out.to_dense().max_diff(&a) < 1e-15);
        assert_eq!(m.report().horizontal_words, 0);
    }
}
