//! Transform logging and eigenvector back-transformation — the paper's
//! §IV.C extension ("a disadvantage of this multi-stage approach arises
//! when eigenvectors are required … the cost of the back-transformations
//! scales linearly with the number of band-reduction stages").
//!
//! Every reduction stage is a product of two-sided Householder
//! similarities `B ← QᵀBQ` with `Q = I − U·T·Uᵀ` acting on a
//! contiguous row range. Recording each `(row₀, U, T)` lets us recover
//! the dense matrix's eigenvectors from the tridiagonal ones:
//! `A = (Q₁Q₂⋯Q_m)·B·(⋯)ᵀ`, so `V_A = Q₁Q₂⋯Q_m·Z` — the reflectors are
//! applied to `Z` in *reverse* recording order.
//!
//! The back-transformation is charged per the paper's observation:
//! `O(n³)` work per intermediate band-width (each stage's reflectors
//! total `O(n·b)` rows×columns and are applied to all `n` eigenvector
//! columns), parallelized trivially over eigenvector columns
//! (`n/p` columns per processor; each reflector's `(U, T)` broadcast).

use ca_bsp::Machine;
use ca_dla::gemm::{gemm, matmul, Trans};
use ca_dla::Matrix;
use ca_pla::grid::Grid;
use rayon::prelude::*;

/// One two-sided Householder transform: `Q = I − U·T·Uᵀ` acting on
/// rows `row0 .. row0 + U.rows()`.
#[derive(Debug, Clone)]
pub struct Reflectors {
    /// First global row the transform acts on.
    pub row0: usize,
    /// Unit-lower-trapezoidal Householder vectors.
    pub u: Matrix,
    /// Upper-triangular compact-WY factor.
    pub t: Matrix,
}

/// The ordered record of every similarity applied during a reduction
/// (stage granularity is informational; application order is the flat
/// concatenation).
#[derive(Debug, Clone, Default)]
pub struct TransformLog {
    /// `(stage name, transforms in application order)`.
    pub stages: Vec<(String, Vec<Reflectors>)>,
}

impl TransformLog {
    /// Open a new stage and return a handle to push its reflectors into.
    pub fn stage(&mut self, name: &str) -> &mut Vec<Reflectors> {
        self.stages.push((name.to_string(), Vec::new()));
        &mut self.stages.last_mut().expect("just pushed").1
    }

    /// Total recorded reflectors.
    pub fn len(&self) -> usize {
        self.stages.iter().map(|(_, v)| v.len()).sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Words held by the log (diagnostics; the paper's `O(n²)` memory
    /// per stage).
    pub fn words(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(|r| r.u.len() + r.t.len())
            .sum()
    }
}

/// Column-panel width of the parallel application. Narrow enough that
/// a full eigenvector matrix splits across every worker, wide enough
/// that the compact-WY GEMMs stay in their blocked regime.
const PANEL: usize = 64;

/// Back-transform tridiagonal eigenvectors `z` (columns) through the
/// recorded reductions: returns `V = Q₁Q₂⋯Q_m·Z`, the eigenvectors of
/// the original dense matrix.
///
/// Charged as a column-parallel application on `grid`: each processor
/// owns `n/p` eigenvector columns; every reflector's `(U, T)` is
/// broadcast (two-phase) and applied locally. The execution mirrors the
/// charge model: the columns split into [`PANEL`]-wide panels, each
/// panel running the full reverse reflector chain independently on a
/// rayon worker (`CA_SERIAL=1` runs the same panels in order — the
/// per-panel arithmetic is identical, so both orders are bit-identical).
/// Rank-1 reflectors (the fused sweep's records) take a two-pass scalar
/// path with no per-reflector temporaries.
pub fn back_transform(machine: &Machine, grid: &Grid, log: &TransformLog, z: &Matrix) -> Matrix {
    let _span = ca_obs::kernel_span("driver.back_transform");
    let n = z.rows();
    let p = grid.len() as u64;
    let ncols = z.cols();

    // Charging pass: the ledger is identical whatever the worker count.
    for (_, stage) in log.stages.iter().rev() {
        for refl in stage.iter().rev() {
            let rows = refl.u.rows();
            let k = refl.u.cols();
            assert!(refl.row0 + rows <= n, "reflector out of range");
            let words = (refl.u.len() + refl.t.len()) as u64;
            ca_pla::coll::bcast(machine, grid, 0, words);
            for &pid in grid.procs() {
                machine.charge_flops(
                    pid,
                    ca_dla::costs::apply_q_flops(rows, k, ncols).div_ceil(p),
                );
                machine.charge_vert(pid, ((rows * ncols) as u64).div_ceil(p) + words);
            }
        }
        machine.fence();
    }
    if log.is_empty() || ncols == 0 {
        return z.clone();
    }

    // Numeric pass, panel-parallel over columns.
    let starts: Vec<usize> = (0..ncols).step_by(PANEL).collect();
    let mut panels: Vec<Matrix> = starts
        .iter()
        .map(|&c0| z.block(0, c0, n, PANEL.min(ncols - c0)))
        .collect();
    let run = |xp: &mut Matrix| {
        let mut s = vec![0.0f64; xp.cols()];
        for (_, stage) in log.stages.iter().rev() {
            for refl in stage.iter().rev() {
                apply_reflector(refl, xp, &mut s);
            }
        }
    };
    if ca_dla::tune::serial() || panels.len() == 1 {
        for xp in panels.iter_mut() {
            run(xp);
        }
    } else {
        panels.par_iter_mut().for_each(run);
    }
    let mut x = Matrix::zeros(n, ncols);
    for (&c0, xp) in starts.iter().zip(&panels) {
        x.set_block(0, c0, xp);
    }
    x
}

/// `X[rows] ← (I − U·T·Uᵀ)·X[rows]` on one column panel. `s` is caller
/// scratch of at least `xp.cols()` entries (used by the rank-1 path).
fn apply_reflector(refl: &Reflectors, xp: &mut Matrix, s: &mut [f64]) {
    let rows = refl.u.rows();
    let k = refl.u.cols();
    let w = xp.cols();
    if k == 1 {
        // x ← x − τ·u·(uᵀx): two row-major passes, no temporaries.
        let tau = refl.t.get(0, 0);
        let s = &mut s[..w];
        s.fill(0.0);
        for r in 0..rows {
            let ur = refl.u.get(r, 0);
            let xr = xp.row(refl.row0 + r);
            for c in 0..w {
                s[c] += ur * xr[c];
            }
        }
        for r in 0..rows {
            let h = tau * refl.u.get(r, 0);
            let xr = xp.row_mut(refl.row0 + r);
            for c in 0..w {
                xr[c] -= h * s[c];
            }
        }
    } else {
        let xr = xp.block(refl.row0, 0, rows, w);
        let utx = matmul(&refl.u, Trans::T, &xr, Trans::N);
        let tutx = matmul(&refl.t, Trans::N, &utx, Trans::N);
        let mut upd = xr;
        gemm(-1.0, &refl.u, Trans::N, &tutx, Trans::N, 1.0, &mut upd);
        xp.set_block(refl.row0, 0, &upd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bsp::MachineParams;
    use ca_dla::bulge::{chase_plan, execute_chase_recording};
    use ca_dla::tridiag::tridiag_eigen;
    use ca_dla::{gen, BandedSym};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reduce a banded matrix to tridiagonal with recording, solve, back
    /// transform, and verify the full eigen decomposition of the input.
    #[test]
    fn banded_eigen_decomposition_via_back_transform() {
        let (n, b) = (24usize, 4usize);
        let mut rng = StdRng::seed_from_u64(600);
        let dense = gen::random_banded(&mut rng, n, b);
        let mut bm = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));

        let mut log = TransformLog::default();
        let stage = log.stage("band→tridiag");
        for op in chase_plan(n, b, b) {
            let row0 = op.qr_rows.0;
            let (u, t) = execute_chase_recording(&mut bm, &op);
            stage.push(Reflectors { row0, u, t });
        }
        assert!(bm.measured_bandwidth(1e-9) <= 1);

        let (d, e) = bm.tridiagonal();
        let (lam, z) = tridiag_eigen(&d, &e);

        let machine = Machine::new(MachineParams::new(4));
        let v = back_transform(&machine, &Grid::all(4), &log, &z);

        // VᵀV = I.
        let vtv = matmul(&v, Trans::T, &v, Trans::N);
        assert!(
            vtv.max_diff(&Matrix::identity(n)) < 1e-9,
            "V not orthonormal: {}",
            vtv.max_diff(&Matrix::identity(n))
        );
        // A·V = V·Λ.
        let av = matmul(&dense, Trans::N, &v, Trans::N);
        let mut vl = v.clone();
        for i in 0..n {
            for j in 0..n {
                vl.set(i, j, v.get(i, j) * lam[j]);
            }
        }
        assert!(
            av.max_diff(&vl) < 1e-8 * n as f64,
            "A·V ≠ V·Λ: {}",
            av.max_diff(&vl)
        );
        // And V·Λ·Vᵀ reconstructs A.
        let recon = matmul(&vl, Trans::N, &v, Trans::T);
        assert!(recon.max_diff(&dense) < 1e-8 * n as f64);
    }

    #[test]
    fn empty_log_is_identity() {
        let machine = Machine::new(MachineParams::new(2));
        let z = Matrix::identity(5);
        let log = TransformLog::default();
        let v = back_transform(&machine, &Grid::all(2), &log, &z);
        assert!(v.max_diff(&z) < 1e-15);
        assert!(log.is_empty());
    }

    #[test]
    fn back_transform_charges_costs() {
        let (n, b) = (16usize, 2usize);
        let mut rng = StdRng::seed_from_u64(601);
        let dense = gen::random_banded(&mut rng, n, b);
        let mut bm = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));
        let mut log = TransformLog::default();
        let stage = log.stage("s");
        for op in chase_plan(n, b, b) {
            let row0 = op.qr_rows.0;
            let (u, t) = execute_chase_recording(&mut bm, &op);
            stage.push(Reflectors { row0, u, t });
        }
        let machine = Machine::new(MachineParams::new(4));
        let z = Matrix::identity(n);
        let _ = back_transform(&machine, &Grid::all(4), &log, &z);
        let c = machine.report();
        assert!(c.flops > 0);
        assert!(c.horizontal_words > 0, "reflector broadcasts must be charged");
        assert!(log.words() > 0);
    }
}
