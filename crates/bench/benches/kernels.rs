//! E-W1: wall-clock Criterion benchmarks of the sequential kernels —
//! the real compute performance underneath the simulated machine.

use ca_dla::bulge::{chase_plan, execute_chase, execute_chase_reference, reduce_band};
use ca_dla::gemm::{matmul, Trans};
use ca_dla::qr::qr_factor;
use ca_dla::tridiag::tridiag_eigenvalues;
use ca_dla::{gen, BandedSym};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(matmul(&a, Trans::N, &b, Trans::N)));
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_panel");
    for (m, n) in [(256usize, 32usize), (512, 32), (512, 64)] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen::random_matrix(&mut rng, m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |bench, _| {
                bench.iter(|| black_box(qr_factor(&a, 32)));
            },
        );
    }
    group.finish();
}

fn bench_band_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_halving");
    for (n, b) in [(256usize, 16usize), (512, 16)] {
        let mut rng = StdRng::seed_from_u64(3);
        let dense = gen::random_banded(&mut rng, n, b);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_b{b}")),
            &(n, b),
            |bench, _| {
                bench.iter(|| {
                    let mut bm = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));
                    reduce_band(&mut bm, 2);
                    black_box(bm)
                });
            },
        );
    }
    group.finish();
}

/// One steady-state chase window, zero-copy engine vs. the seed
/// copy-based reference (both pay the same matrix clone per iteration).
fn bench_chase_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_window_update");
    for (n, b, k) in [(512usize, 32usize, 2usize), (512, 64, 2)] {
        let mut rng = StdRng::seed_from_u64(4);
        let dense = gen::random_banded(&mut rng, n, b);
        let mut base = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));
        // Replay the plan up to the second sweep so the benched op sees
        // steady-state fill, then bench that op alone.
        let plan = chase_plan(n, b, k);
        let at = plan
            .iter()
            .position(|op| op.i == 2)
            .expect("plan reaches sweep 2");
        for op in &plan[..at] {
            execute_chase(&mut base, op);
        }
        let op = &plan[at];
        for (engine, reference) in [("zero_copy", false), ("reference", true)] {
            group.bench_with_input(
                BenchmarkId::new(engine, format!("n{n}_b{b}")),
                &reference,
                |bench, &reference| {
                    bench.iter(|| {
                        let mut m = base.clone();
                        if reference {
                            execute_chase_reference(&mut m, op);
                        } else {
                            execute_chase(&mut m, op);
                        }
                        black_box(m)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Unblocked panel factorization (`nb = 1` routes everything through
/// the vectorized `geqr2` + `form_t` micro-kernels).
fn bench_geqr2(c: &mut Criterion) {
    let mut group = c.benchmark_group("geqr2");
    for (m, n) in [(256usize, 32usize), (512, 64)] {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gen::random_matrix(&mut rng, m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |bench, _| {
                bench.iter(|| black_box(qr_factor(&a, 1)));
            },
        );
    }
    group.finish();
}

fn bench_tridiag_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("tridiag_ql");
    for n in [256usize, 1024] {
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(tridiag_eigenvalues(&d, &e)));
        });
    }
    group.finish();
}

fn bench_dnc_values(c: &mut Criterion) {
    // Divide-and-conquer on the same Laplacian as `tridiag_ql` — the
    // direct competitor for the eigenvalue-only finale.
    let mut group = c.benchmark_group("tridiag_dnc");
    for n in [256usize, 1024] {
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(ca_dla::dnc::dnc_eigenvalues(&d, &e).unwrap()));
        });
    }
    group.finish();
}

fn bench_secular_solve(c: &mut Criterion) {
    // Deflation scan + all secular roots of diag(d) + ρzzᵀ. Spread
    // poles and O(1) weights defeat deflation, so the timing is pure
    // root-finding (the merge's serial fraction).
    let mut group = c.benchmark_group("dnc_secular");
    for m in [128usize, 256] {
        let d: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let z: Vec<f64> = (0..m).map(|i| 0.3 + (i % 7) as f64 * 0.1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                black_box(ca_dla::dnc::bench_hooks::secular_merge_values(&d, &z, 0.5))
            });
        });
    }
    group.finish();
}

fn bench_merge_gemm(c: &mut Criterion) {
    // The eigenvector half of a D&C merge: kept carrier columns (n×m)
    // times the m×m secular coefficient matrix — one dense GEMM.
    let mut group = c.benchmark_group("dnc_merge_gemm");
    for (n, m) in [(256usize, 128usize), (512, 256)] {
        let mut rng = StdRng::seed_from_u64(6);
        let q = gen::random_matrix(&mut rng, n, m);
        let u = gen::random_matrix(&mut rng, m, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &(n, m),
            |bench, _| {
                bench.iter(|| black_box(matmul(&q, Trans::N, &u, Trans::N)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_qr, bench_band_reduction, bench_chase_window,
        bench_geqr2, bench_tridiag_eigen, bench_dnc_values, bench_secular_solve,
        bench_merge_gemm
}
criterion_main!(kernels);
