//! E-W1: wall-clock Criterion benchmarks of the sequential kernels —
//! the real compute performance underneath the simulated machine.

use ca_dla::bulge::reduce_band;
use ca_dla::gemm::{matmul, Trans};
use ca_dla::qr::qr_factor;
use ca_dla::tridiag::tridiag_eigenvalues;
use ca_dla::{gen, BandedSym};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(matmul(&a, Trans::N, &b, Trans::N)));
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_panel");
    for (m, n) in [(256usize, 32usize), (512, 32), (512, 64)] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen::random_matrix(&mut rng, m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |bench, _| {
                bench.iter(|| black_box(qr_factor(&a, 32)));
            },
        );
    }
    group.finish();
}

fn bench_band_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_halving");
    for (n, b) in [(256usize, 16usize), (512, 16)] {
        let mut rng = StdRng::seed_from_u64(3);
        let dense = gen::random_banded(&mut rng, n, b);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_b{b}")),
            &(n, b),
            |bench, _| {
                bench.iter(|| {
                    let mut bm = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));
                    reduce_band(&mut bm, 2);
                    black_box(bm)
                });
            },
        );
    }
    group.finish();
}

fn bench_tridiag_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("tridiag_ql");
    for n in [256usize, 1024] {
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(tridiag_eigenvalues(&d, &e)));
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_qr, bench_band_reduction, bench_tridiag_eigen
}
criterion_main!(kernels);
