//! Criterion wall-clock of the Table-I eigensolver simulations (the cost
//! *numbers* for the table come from `--bin table1`; this bench tracks
//! how long each simulated algorithm takes to execute end to end, which
//! is dominated by the real floating-point reduction work).

use ca_bench::{run_eigensolver, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_simulation");
    let n = 128;
    let p = 16;
    for alg in [
        Algorithm::ScaLapack,
        Algorithm::Elpa,
        Algorithm::CaSbr,
        Algorithm::TwoPointFiveD { c: 1 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(alg.name()),
            &alg,
            |bench, alg| {
                bench.iter(|| black_box(run_eigensolver(*alg, n, p, 42)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = table1;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(table1);
