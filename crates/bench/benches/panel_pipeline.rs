//! PR-10 micro-benchmark: barriered vs lookahead panel factorization.
//!
//! Pits the two `full_to_band` drivers against each other at fixed
//! panel widths b ∈ {32, 64}: the `barrier` leg materializes every
//! superstep (`CA_LOOKAHEAD=off`, the seed path), the `lookahead` leg
//! runs the task-graph executor with zero-copy task bodies and its
//! engine kernels. Both legs compute bit-identical bands and charge the
//! identical F/W/Q/S ledger (`tests/dag_equivalence.rs`); only the
//! wall-clock per panel pipeline differs.

use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::full_to_band::full_to_band;
use ca_eigen::params::EigenParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_panel_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("panel_pipeline");
    let (n, p) = (256usize, 4usize);
    for b in [32usize, 64] {
        let mut rng = StdRng::seed_from_u64(10 + b as u64);
        let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -1.0, 1.0));
        let machine = Machine::new(MachineParams::new(p));
        let params = EigenParams::new(p, 1);
        for (leg, enabled) in [("barrier", false), ("lookahead", true)] {
            group.bench_with_input(
                BenchmarkId::new(leg, format!("n{n}_b{b}")),
                &b,
                |bench, &b| {
                    ca_obs::knobs::set_lookahead_enabled(enabled);
                    bench.iter(|| black_box(full_to_band(&machine, &params, &a, b)));
                },
            );
        }
    }
    ca_obs::knobs::reset_lookahead();
    group.finish();
}

criterion_group!(benches, bench_panel_pipeline);
criterion_main!(benches);
