//! Wall-clock Criterion benchmarks of the simulated distributed
//! building blocks (orchestration + real numerics per virtual machine).

use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_pla::carma::carma;
use ca_pla::dist::DistMatrix;
use ca_pla::grid::Grid;
use ca_pla::rect_qr::rect_qr;
use ca_pla::streaming::{streaming_mm, Replicated};
use ca_pla::summa::summa;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_summa(c: &mut Criterion) {
    let mut group = c.benchmark_group("summa_sim");
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let m = Machine::new(MachineParams::new(16));
                let g = Grid::new_2d((0..16).collect(), 4, 4);
                let da = DistMatrix::from_dense(&m, &g, &a);
                let db = DistMatrix::from_dense(&m, &g, &b);
                let mut dc = DistMatrix::zeros(&m, &g, n, n);
                summa(&m, 1.0, &da, &db, 0.0, &mut dc);
                black_box(dc.assemble_unchecked())
            });
        });
    }
    group.finish();
}

fn bench_carma(c: &mut Criterion) {
    let mut group = c.benchmark_group("carma_sim");
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n / 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let m = Machine::new(MachineParams::new(16));
                black_box(carma(&m, &Grid::all(16), &a, &b, 1))
            });
        });
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_sim");
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n / 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let m = Machine::new(MachineParams::new(16));
                let g3 = Grid::new_3d((0..16).collect(), 2, 2, 4);
                let rep = Replicated::replicate(&m, &g3, &a);
                black_box(streaming_mm(&m, &rep, (0, 0, n, n), false, &b, 1))
            });
        });
    }
    group.finish();
}

fn bench_rect_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("rect_qr_sim");
    for (m_dim, n_dim) in [(512usize, 32usize), (1024, 32)] {
        let mut rng = StdRng::seed_from_u64(4);
        let a = gen::random_matrix(&mut rng, m_dim, n_dim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m_dim}x{n_dim}")),
            &m_dim,
            |bench, _| {
                bench.iter(|| {
                    let m = Machine::new(MachineParams::new(8));
                    let g = Grid::new_2d((0..8).collect(), 8, 1);
                    let da = DistMatrix::from_dense(&m, &g, &a);
                    black_box(rect_qr(&m, &da).r)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = distributed;
    config = Criterion::default().sample_size(10);
    targets = bench_summa, bench_carma, bench_streaming, bench_rect_qr
}
criterion_main!(distributed);
