//! Shared infrastructure for the experiment harness.
//!
//! Every experiment binary (Table I, Figures 1–2, the lemma-shape
//! sweeps and the ablations — see DESIGN.md §4) uses these helpers to
//! run an eigensolver configuration on a fresh virtual machine, collect
//! the `F/W/Q/S/M` ledger, fit scaling exponents, and emit both a
//! human-readable table and a JSON-lines record under `results/`.

// Index-heavy numerical code: range loops over several arrays at once
// are the clearer idiom here.
#![allow(clippy::needless_range_loop)]

use ca_bsp::{Machine, MachineParams};
use ca_dla::{gen, Matrix};
use ca_eigen::baselines::{elpa_two_stage, scalapack::scalapack_eigenvalues};
use ca_eigen::{ca_sbr, symm_eigen_25d, EigenParams};
use ca_pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Which eigensolver to run for a comparison row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Direct blocked tridiagonalization (Table I row "ScaLAPACK").
    ScaLapack,
    /// Two-stage 2D reduction (Table I row "ELPA").
    Elpa,
    /// Full-to-band (2D) + CA-SBR halvings (Table I row "CA-SBR").
    CaSbr,
    /// The paper's algorithm (Table I row "Theorem IV.4") with
    /// replication factor `c`.
    TwoPointFiveD { c: usize },
}

impl Algorithm {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Algorithm::ScaLapack => "scalapack-style".into(),
            Algorithm::Elpa => "elpa-style".into(),
            Algorithm::CaSbr => "ca-sbr".into(),
            Algorithm::TwoPointFiveD { c } => format!("2.5d (c={c})"),
        }
    }
}

/// Outcome of one solver run: measured costs plus the eigenvalue error
/// against the prescribed spectrum (every experiment doubles as a
/// correctness check).
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    pub algorithm: String,
    pub n: usize,
    pub p: usize,
    pub flops: u64,
    pub horizontal_words: u64,
    pub vertical_words: u64,
    pub supersteps: u64,
    pub peak_memory_words: u64,
    pub spectrum_error: f64,
}

/// Run `alg` on an `n×n` matrix with prescribed spectrum on `p` virtual
/// processors; panics if the computed eigenvalues are wrong.
pub fn run_eigensolver(alg: Algorithm, n: usize, p: usize, seed: u64) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let machine = Machine::new(MachineParams::new(p));

    let ev = match alg {
        Algorithm::ScaLapack => {
            let g = Grid::all(p).squarest_2d();
            scalapack_eigenvalues(&machine, &g, &a)
        }
        Algorithm::Elpa => elpa_two_stage(&machine, p, &a),
        Algorithm::CaSbr => casbr_eigensolver(&machine, p, &a),
        Algorithm::TwoPointFiveD { c } => {
            let params = EigenParams::new(p, c);
            symm_eigen_25d(&machine, &params, &a).0
        }
    };
    let err = ca_dla::tridiag::spectrum_distance(&ev, &spectrum);
    assert!(
        err < 1e-6 * n as f64,
        "{} n={n} p={p}: spectrum error {err}",
        alg.name()
    );
    let costs = machine.report();
    RunResult {
        algorithm: alg.name(),
        n,
        p,
        flops: costs.flops,
        horizontal_words: costs.horizontal_words,
        vertical_words: costs.vertical_words,
        supersteps: costs.supersteps,
        peak_memory_words: costs.peak_memory_words,
        spectrum_error: err,
    }
}

/// The Table-I "CA-SBR" row: a 2D full→band reduction followed by
/// successive CA-SBR halvings to band-width `n/p`, then a sequential
/// solve (the successive-band-reduction eigensolver of \[12\]).
pub fn casbr_eigensolver(machine: &Machine, p: usize, a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    let params = EigenParams::new(p, 1);
    let b = params.initial_bandwidth(n);
    let (mut band, _) = ca_eigen::full_to_band(machine, &params, a, b);
    let grid = Grid::all(p);
    let target = (n / p).max(1);
    while band.bandwidth() > target && band.bandwidth() >= 2 {
        // Lemma IV.2 is valid for b ≤ n/p̂: use at most n/b processors
        // per halving (the 1D pipeline cannot use more anyway).
        let active = grid.prefix((n / band.bandwidth()).clamp(1, p));
        band = ca_sbr(machine, &active, &band);
    }
    ca_pla::coll::gather(
        machine,
        &grid,
        0,
        ((n * (band.bandwidth() + 1)) as u64).div_ceil(p as u64),
    );
    machine.charge_flops(0, 6 * (n as u64) * (band.bandwidth() as u64).pow(2) + 30 * (n as u64).pow(2));
    machine.fence();
    ca_dla::tridiag::banded_eigenvalues(&band)
}

/// Least-squares slope of `log y` against `log x` — the measured scaling
/// exponent of a sweep.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.max(1e-300).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    cov / var
}

/// Append a JSON record to `results/<file>.jsonl` (creating `results/`).
pub fn emit_json<T: Serialize>(file: &str, record: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{file}.jsonl"));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open results file");
    writeln!(f, "{}", serde_json::to_string(record).expect("serialize")).expect("write record");
}

/// Print a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Parse `--quick` / `--n <val>` style flags from `std::env::args`.
pub fn flag_present(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of `--<name> <v>` if present.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_fit_recovers_slope() {
        let xs = [2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.powf(-0.5)).collect();
        let e = fit_exponent(&xs, &ys);
        assert!((e + 0.5).abs() < 1e-10);
    }

    #[test]
    fn quick_run_all_algorithms() {
        for alg in [
            Algorithm::ScaLapack,
            Algorithm::Elpa,
            Algorithm::CaSbr,
            Algorithm::TwoPointFiveD { c: 1 },
        ] {
            let r = run_eigensolver(alg, 32, 4, 99);
            assert!(r.horizontal_words > 0);
            assert!(r.flops > 0);
        }
    }
}
