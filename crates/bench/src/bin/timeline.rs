#![allow(clippy::needless_range_loop)]
//! **Timeline diagnostic**: render the per-phase communication profile
//! of an eigensolver run — what the `Σᵢ maxⱼ Wᵢⱼ` sums of §II actually
//! look like phase by phase. The full-to-band panels show as a train of
//! roughly equal bursts; the band-to-band pipeline as many small
//! phases; CA-SBR as a few redistribution spikes.
//!
//! Usage: `cargo run --release -p ca-bench --bin timeline [--n N] [--p P] [--c C]`

use ca_bench::flag_value;
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::{symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(128);
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(16);
    let c: usize = flag_value("--c").map(|v| v.parse().unwrap()).unwrap_or(1);

    let machine = Machine::new(MachineParams::new(p));
    machine.enable_phase_trace();
    let params = EigenParams::new(p, c);
    let mut rng = StdRng::seed_from_u64(3);
    let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let (ev, _) = symm_eigen_25d(&machine, &params, &a);
    assert!(ca_dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-7 * n as f64);

    let trace = machine.phase_trace();
    let total = machine.report();
    println!(
        "phase profile: n = {n}, p = {p}, c = {c} — {} recorded phases, total W = {}",
        trace.len(),
        total.horizontal_words
    );
    println!();

    // Downsample to ≤ 96 buckets and render W per bucket as a bar chart.
    let buckets = 96.min(trace.len().max(1));
    let per = trace.len().div_ceil(buckets).max(1);
    let mut bars: Vec<(u64, usize)> = Vec::new();
    for chunk in trace.chunks(per) {
        let w: u64 = chunk.iter().map(|r| r.horizontal_words).sum();
        let act = chunk.iter().map(|r| r.active_procs).max().unwrap_or(0);
        bars.push((w, act));
    }
    let max_w = bars.iter().map(|(w, _)| *w).max().unwrap_or(1).max(1);
    let height = 12usize;
    for level in (1..=height).rev() {
        let mut line = String::from("  ");
        for (w, _) in &bars {
            let h = ((*w as f64 / max_w as f64) * height as f64).ceil() as usize;
            line.push(if h >= level { '█' } else { ' ' });
        }
        println!("{line}");
    }
    let mut axis = String::from("  ");
    for _ in &bars {
        axis.push('─');
    }
    println!("{axis}");
    let mut activity = String::from("  ");
    for (_, act) in &bars {
        let frac = *act as f64 / p as f64;
        activity.push(match (frac * 4.0).round() as usize {
            0 => '·',
            1 => '▂',
            2 => '▄',
            3 => '▆',
            _ => '█',
        });
    }
    println!("{activity}  ← fraction of processors active");
    println!();
    println!(
        "max phase W = {max_w} words/proc ({} phases per column); the burst train on",
        per
    );
    println!("the left is the full-to-band panel loop, the tail is band reduction.");
}
