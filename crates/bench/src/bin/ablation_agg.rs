#![allow(clippy::needless_range_loop)]
//! **E-A1 — ablation: left-looking aggregation** (§V lists "alternating
//! between left-looking partial updates and complete trailing matrix
//! updates" as a tuning dimension; Algorithm IV.1 is fully left-looking).
//!
//! Compares Algorithm IV.1 (aggregated, left-looking) against an *eager*
//! variant that applies every panel's two-sided update to the (replicated)
//! trailing matrix immediately. With `c` replicated copies the eager
//! variant must apply each update to every copy — redundant flops and
//! `(n/b)·n²/q²` vertical traffic — which is exactly the overhead the
//! paper's aggregation avoids.
//!
//! Usage: `cargo run --release -p ca-bench --bin ablation_agg [--n N]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gemm::{gemm, Trans};
use ca_dla::{gen, BandedSym, Matrix};
use ca_eigen::{full_to_band, EigenParams};
use ca_pla::dist::DistMatrix;
use ca_pla::grid::Grid;
use ca_pla::rect_qr::rect_qr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct AggRecord {
    variant: String,
    n: usize,
    p: usize,
    c: usize,
    flops: u64,
    total_flops: u64,
    w: u64,
    q: u64,
    s: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(128);
    let p = 16;
    let b = 16;

    println!("E-A1: left-looking aggregation vs eager trailing updates, n = {n}, p = {p}, b = {b}");
    println!();
    let mut rows = Vec::new();
    for c in [1usize, 4] {
        let params = EigenParams::new_unchecked(p, c);
        let mut rng = StdRng::seed_from_u64(77);
        let spectrum = gen::linspace_spectrum(n, -3.0, 3.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let reference = {
            let tmp = BandedSym::from_dense(&a, n - 1, n - 1);
            ca_dla::tridiag::banded_eigenvalues(&tmp)
        };

        for eager in [false, true] {
            let machine = Machine::new(MachineParams::new(p));
            let band = if eager {
                full_to_band_eager(&machine, &params, &a, b)
            } else {
                full_to_band(&machine, &params, &a, b).0
            };
            let ev = ca_dla::tridiag::banded_eigenvalues(&band);
            let err = ca_dla::tridiag::spectrum_distance(&ev, &reference);
            assert!(err < 1e-7 * n as f64, "eager={eager} err {err}");
            let cst = machine.report();
            let rec = AggRecord {
                variant: if eager { "eager" } else { "aggregated" }.into(),
                n,
                p,
                c,
                flops: cst.flops,
                total_flops: cst.total_flops,
                w: cst.horizontal_words,
                q: cst.vertical_words,
                s: cst.supersteps,
            };
            emit_json("ablation_agg", &rec);
            rows.push(vec![
                rec.variant.clone(),
                c.to_string(),
                rec.flops.to_string(),
                rec.total_flops.to_string(),
                rec.w.to_string(),
                rec.q.to_string(),
                rec.s.to_string(),
            ]);
        }
    }
    print_table(&["variant", "c", "F (max/proc)", "F (total volume)", "W", "Q", "S"], &rows);
    println!();
    println!("Eager reads *and writes* the trailing matrix every panel (2(n/b)·n²/q²");
    println!("vertical words) and, with c replicas, its total flop volume grows ∝ c");
    println!("(every copy applies every update redundantly); the aggregated variant's");
    println!("total work is c-independent, which is what makes replication affordable.");
}

/// The ablation variant: identical panel pipeline, but every panel's
/// two-sided update is applied to the trailing matrix immediately on
/// every replica.
fn full_to_band_eager(
    machine: &Machine,
    params: &EigenParams,
    a: &Matrix,
    b: usize,
) -> BandedSym {
    let n = a.rows();
    let q2 = (params.q * params.q) as u64;
    let grid3 = params.grid3();
    let mut work = a.clone();
    let mut out = BandedSym::zeros(n, b, b);

    // Replicate A once (same as the aggregated variant).
    for &pid in grid3.procs() {
        machine.charge_comm(pid, 2 * (n as u64 * n as u64).div_ceil(params.p as u64));
        machine.alloc(pid, (n as u64 * n as u64) / q2);
    }
    machine.step(grid3.procs(), 2);

    let mut o = 0usize;
    while n - o > b {
        let rem = n - o;
        // Diagonal block out, panel QR (same as aggregated).
        let mut a11 = work.block(o, o, b, b);
        a11.symmetrize();
        for j in 0..b {
            for i in j..b {
                out.set(o + i, o + j, a11.get(i, j));
            }
        }
        let qr_procs = params.panel_qr_procs(n, b).min(rem - b).max(1);
        let qr_group = Grid::new_2d((0..qr_procs).collect(), qr_procs, 1);
        let a21 = work.block(o + b, o, rem - b, b);
        let da21 = DistMatrix::from_dense(machine, &qr_group, &a21);
        let f = rect_qr(machine, &da21);
        da21.release(machine);
        for j in 0..b {
            for i in 0..=j {
                out.set(o + b + i, o + j, f.r.get(i, j));
            }
        }
        let u1 = f.u.assemble_unchecked();
        f.u.release(machine);

        // Eager: W = A₂₂U₁ computed per layer from the replicated copy,
        // then the rank-2b update applied to EVERY copy.
        let m_t = rem - b;
        let a22 = work.block(o + b, o + b, m_t, m_t);
        let au = ca_dla::gemm::matmul(&a22, Trans::N, &u1, Trans::N);
        let w = ca_dla::gemm::matmul(&au, Trans::N, &f.t, Trans::N);
        let utw = ca_dla::gemm::matmul(&u1, Trans::T, &w, Trans::N);
        let ttutw = ca_dla::gemm::matmul(&f.t.transpose(), Trans::N, &utw, Trans::N);
        let mut v1 = w.clone();
        v1.scale(-1.0);
        v1.axpy(0.5, &ca_dla::gemm::matmul(&u1, Trans::N, &ttutw, Trans::N));

        // Charges: every layer's processors redundantly compute the
        // product and apply the update to their copy. The trailing
        // matrix is both read and written back each panel (2·m²/q²
        // vertical words), and U₁ must be gathered within each layer for
        // the product (streaming-shaped communication).
        for &pid in grid3.procs() {
            machine.charge_flops(
                pid,
                (2 * m_t as u64 * m_t as u64 * b as u64 + 4 * m_t as u64 * m_t as u64 * b as u64)
                    / q2,
            );
            machine.charge_vert(pid, 2 * (m_t as u64 * m_t as u64) / q2);
            machine.charge_comm(
                pid,
                4 * (m_t * b) as u64 / params.p_delta() as u64
                    + 2 * ((2 * m_t * b) as u64).div_ceil(params.p as u64),
            );
        }
        machine.step(grid3.procs(), 2);
        machine.fence();

        // Apply to the (single numerical) trailing matrix.
        let mut a22_new = a22;
        gemm(1.0, &u1, Trans::N, &v1, Trans::T, 1.0, &mut a22_new);
        gemm(1.0, &v1, Trans::N, &u1, Trans::T, 1.0, &mut a22_new);
        work.set_block(o + b, o + b, &a22_new);

        o += b;
    }
    let mut last = work.block(o, o, n - o, n - o);
    last.symmetrize();
    for j in 0..(n - o) {
        for i in j..(n - o) {
            out.set(o + i, o + j, last.get(i, j));
        }
    }
    machine.fence();
    out
}
