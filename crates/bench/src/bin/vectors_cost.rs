#![allow(clippy::needless_range_loop)]
//! **E-V1 — the §IV.C back-transformation cost**: "A disadvantage of
//! this multi-stage approach arises when eigenvectors are required in
//! addition to eigenvalues. The cost of the back-transformations scales
//! linearly with the number of band-reduction stages (each stage
//! requires O(n²) memory and O(n³) computation)."
//!
//! We run the eigenvector-enabled solver across configurations with
//! different stage counts and report, per configuration: the number of
//! recorded reduction stages, the transform-log memory (the O(n²) per
//! stage), and the back-transformation flops — checking the linear
//! relationship the paper states, and quantifying the eigenvector
//! surcharge over the eigenvalue-only solve.
//!
//! Usage: `cargo run --release -p ca-bench --bin vectors_cost [--n N]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::{symm_eigen_25d, symm_eigen_25d_vectors, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct VecCostRecord {
    n: usize,
    p: usize,
    c: usize,
    stages: usize,
    backtransform_flops: u64,
    backtransform_total_flops: u64,
    backtransform_words: u64,
    eigenvalue_only_flops: u64,
    vectors_total_flops: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(128);

    println!("E-V1: back-transformation cost vs reduction stages (§IV.C), n = {n}");
    println!();

    let mut rows = Vec::new();
    for (p, c) in [(4usize, 1usize), (16, 1), (64, 1), (64, 4)] {
        let params = EigenParams::new(p, c);
        let mut rng = StdRng::seed_from_u64(55);
        let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);

        // Eigenvalue-only baseline.
        let m0 = Machine::new(MachineParams::new(p));
        let (_, costs0) = symm_eigen_25d(&m0, &params, &a);
        let f0 = costs0.total().flops;

        // With eigenvectors.
        let m1 = Machine::new(MachineParams::new(p));
        let (ev, v, costs1) = symm_eigen_25d_vectors(&m1, &params, &a);
        assert!(ca_dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-7 * n as f64);
        assert_eq!(v.rows(), n);

        let bt = costs1
            .stages
            .iter()
            .find(|s| s.name.starts_with("back-transformation"))
            .expect("back-transformation stage");
        // Reduction stages = everything before the sequential solve.
        let stage_count = costs1.stages.len().saturating_sub(2);

        let rec = VecCostRecord {
            n,
            p,
            c,
            stages: stage_count,
            backtransform_flops: bt.costs.flops,
            backtransform_total_flops: bt.costs.total_flops,
            backtransform_words: bt.costs.horizontal_words,
            eigenvalue_only_flops: f0,
            vectors_total_flops: costs1.total().flops,
        };
        emit_json("vectors_cost", &rec);
        rows.push(vec![
            p.to_string(),
            c.to_string(),
            rec.stages.to_string(),
            rec.backtransform_total_flops.to_string(),
            format!("{:.2e}", rec.backtransform_total_flops as f64 / rec.stages as f64),
            rec.backtransform_flops.to_string(),
            rec.backtransform_words.to_string(),
            format!("{:.2}", rec.vectors_total_flops as f64 / rec.eigenvalue_only_flops as f64),
        ]);
    }
    print_table(
        &["p", "c", "stages", "back-xf F volume", "volume/stage", "F max/proc", "W", "vec/val F"],
        &rows,
    );
    println!();
    println!("§IV.C check: total back-transformation volume per stage stays O(n³)");
    println!("(the volume/stage column), so volume grows linearly with the stage");
    println!("count; per-processor F divides by p (columns split across the machine)");
    println!("while W grows with stages (every stage's reflectors are broadcast) —");
    println!("the trade-off §V's larger-k proposal aims to soften.");
}
