#![allow(clippy::needless_range_loop)]
//! **E-Q6 — Theorem III.6 shape check**: communication of the
//! rectangular QR across aspect ratios.
//!
//! Theorem III.6: `W = O(mᵟn^{2−δ}/pᵟ + mn/p)`. For very tall matrices
//! the `mn/p` term dominates (TSQR regime: each processor touches its
//! rows once, plus `O(n² log p)` tree traffic); toward square shapes the
//! `mᵟn^{2−δ}/pᵟ` term takes over. We sweep `m/n` at fixed area `m·n`
//! and print measured `W`/`S` against both terms.
//!
//! Usage: `cargo run --release -p ca-bench --bin rect_qr_sweep [--p P]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_pla::dist::DistMatrix;
use ca_pla::grid::Grid;
use ca_pla::rect_qr::rect_qr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct QrRecord {
    m: usize,
    n: usize,
    p: usize,
    w: u64,
    s: u64,
    term_tall: u64,
    term_square: u64,
}

fn main() {
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(16);
    // Fixed area m·n = 2^18, aspect m/n from 4096:1 down to 4:1.
    let shapes: Vec<(usize, usize)> = vec![
        (32768, 8),
        (8192, 32),
        (4096, 64),
        (2048, 128),
        (1024, 256),
    ];

    println!("E-Q6: rect-QR W/S vs aspect ratio at fixed m·n, p = {p}");
    println!();
    let mut rows = Vec::new();
    for (m, n) in shapes {
        let machine = Machine::new(MachineParams::new(p));
        let grid = Grid::new_2d((0..p).collect(), p, 1);
        let mut rng = StdRng::seed_from_u64(55);
        let a = gen::random_matrix(&mut rng, m, n);
        let da = DistMatrix::from_dense(&machine, &grid, &a);
        let snap = machine.snapshot();
        let f = rect_qr(&machine, &da);
        machine.fence();
        assert_eq!(f.r.cols(), n);
        let c = machine.costs_since(&snap);

        // Theorem III.6 terms at δ = 1/2.
        let term_tall = (m * n / p) as u64;
        let term_square = (((m as f64).sqrt() * (n as f64).powf(1.5)) / (p as f64).sqrt()) as u64;
        let rec = QrRecord {
            m,
            n,
            p,
            w: c.horizontal_words,
            s: c.supersteps,
            term_tall,
            term_square,
        };
        emit_json("rect_qr_sweep", &rec);
        rows.push(vec![
            format!("{m}×{n}"),
            c.horizontal_words.to_string(),
            c.supersteps.to_string(),
            term_tall.to_string(),
            term_square.to_string(),
            format!("{:.1}", c.horizontal_words as f64 / (term_tall + term_square) as f64),
        ]);
    }
    print_table(
        &["shape", "W", "S", "mn/p", "√m·n^1.5/√p", "W / (sum of terms)"],
        &rows,
    );
    println!();
    println!("Theorem III.6 predicts W = O(mᵟn^(2−δ)/pᵟ + mn/p): the last column");
    println!("(measured over predicted) should stay O(1)·polylog across the sweep.");
}
