#![allow(clippy::needless_range_loop)]
//! **E-Q6b — rect-QR variant comparison**: the paper's Algorithm III.2
//! row-reduction tree (verbatim) vs the column-recursive formulation
//! §III.B sanctions as an alternative. Both must produce the same
//! factorization; their cost profiles differ in the predicted way
//! (the row tree excels for tall panels, column recursion for square-ish
//! shapes, and `q_max` trades base-case parallelism for latency).
//!
//! Usage: `cargo run --release -p ca-bench --bin qr_variants [--p P]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_pla::dist::DistMatrix;
use ca_pla::grid::Grid;
use ca_pla::rect_qr::{rect_qr_tree, rect_qr_with_base};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct VariantRecord {
    variant: String,
    m: usize,
    n: usize,
    p: usize,
    q_max: usize,
    w: u64,
    s: u64,
    f: u64,
}

fn main() {
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(8);
    println!("E-Q6b: Algorithm III.2 row tree vs column-recursive rect-QR, p = {p}");
    println!();

    let mut rows = Vec::new();
    for (m_dim, n_dim) in [(4096usize, 16usize), (1024, 64), (256, 128)] {
        let mut rng = StdRng::seed_from_u64(900);
        let a = gen::random_matrix(&mut rng, m_dim, n_dim);

        // Column-recursive (the default used by the eigensolver).
        let machine = Machine::new(MachineParams::new(p));
        let grid = Grid::new_2d((0..p).collect(), p, 1);
        let da = DistMatrix::from_dense(&machine, &grid, &a);
        let snap = machine.snapshot();
        let f = rect_qr_with_base(&machine, &da, 32);
        machine.fence();
        let col = machine.costs_since(&snap);
        let r_col = f.r.clone();

        rows.push(vec![
            format!("{m_dim}×{n_dim}"),
            "column-recursive".into(),
            "-".into(),
            col.horizontal_words.to_string(),
            col.supersteps.to_string(),
            col.flops.to_string(),
        ]);
        emit_json(
            "qr_variants",
            &VariantRecord {
                variant: "column".into(),
                m: m_dim,
                n: n_dim,
                p,
                q_max: 0,
                w: col.horizontal_words,
                s: col.supersteps,
                f: col.flops,
            },
        );

        // Row tree at two q_max settings (Theorem III.6's base-case cap).
        for q_max in [1usize, p] {
            let machine = Machine::new(MachineParams::new(p));
            let da = DistMatrix::from_dense(&machine, &grid, &a);
            let snap = machine.snapshot();
            let (q, r) = rect_qr_tree(&machine, &da, q_max);
            machine.fence();
            let tree = machine.costs_since(&snap);
            // Same factorization up to row signs.
            for i in 0..n_dim {
                for j in 0..n_dim {
                    assert!(
                        (r.get(i, j).abs() - r_col.get(i, j).abs()).abs()
                            < 1e-7 * (1.0 + r_col.get(i, j).abs()),
                        "variants disagree on R at ({i},{j})"
                    );
                }
            }
            q.release(&machine);
            rows.push(vec![
                format!("{m_dim}×{n_dim}"),
                "row tree (Alg III.2)".into(),
                q_max.to_string(),
                tree.horizontal_words.to_string(),
                tree.supersteps.to_string(),
                tree.flops.to_string(),
            ]);
            emit_json(
                "qr_variants",
                &VariantRecord {
                    variant: "tree".into(),
                    m: m_dim,
                    n: n_dim,
                    p,
                    q_max,
                    w: tree.horizontal_words,
                    s: tree.supersteps,
                    f: tree.flops,
                },
            );
        }
    }
    print_table(&["shape", "variant", "q_max", "W", "S", "F"], &rows);
    println!();
    println!("Both variants produce identical |R| (asserted). The row tree reflects");
    println!("Algorithm III.2's structure: W-competitive on tall panels, with q_max");
    println!("trading base-case parallelism against synchronization as in Thm III.6.");
}
