#![allow(clippy::needless_range_loop)]
//! **E-M1 — analytic-model validation**: compare every measured cost
//! against the paper's closed-form dominant terms (`ca-eigen::model`).
//!
//! A reproduction is only as credible as its accounting: this harness
//! runs each algorithm/lemma and prints measured ÷ model ratios. Unit
//! constants mean ratios of O(1)–O(10·polylog) are expected; what must
//! NOT happen is a ratio that drifts with `n` or `p` (that would mean
//! the implementation has the wrong exponent).
//!
//! Usage: `cargo run --release -p ca-bench --bin model_check`

use ca_bench::print_table;
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::{model, symm_eigen_25d, EigenParams};
use ca_pla::grid::Grid;
use ca_pla::streaming::{streaming_mm, Replicated};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E-M1: measured / model ratios (dominant terms, unit constants)");
    println!();
    let mut rows = Vec::new();

    // Streaming-MM vs Lemma III.3, across c.
    for c in [1usize, 4] {
        let (n, k, q, w) = (256usize, 16usize, 4usize, 1usize);
        let p = q * q * c;
        let m = Machine::new(MachineParams::new(p));
        let g3 = Grid::new_3d((0..p).collect(), q, q, c);
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, k);
        let rep = Replicated::replicate(&m, &g3, &a);
        let snap = m.snapshot();
        let _ = streaming_mm(&m, &rep, (0, 0, n, n), false, &b, w);
        m.fence();
        let meas = m.costs_since(&snap);
        let mdl = model::mm_streaming(n, n, k, q, c, w);
        rows.push(row(
            &format!("streaming-mm (c={c})"),
            meas.horizontal_words as f64 / mdl.horizontal_words,
            meas.flops as f64 / mdl.flops,
            meas.supersteps as f64 / mdl.supersteps,
        ));
    }

    // Full eigensolver vs Theorem IV.4, across (n, p, c).
    for (n, p, c) in [(128usize, 16usize, 1usize), (256, 16, 1), (256, 64, 1), (256, 64, 4)] {
        let m = Machine::new(MachineParams::new(p));
        let params = EigenParams::new(p, c);
        let mut rng = StdRng::seed_from_u64(2);
        let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let (_, _) = symm_eigen_25d(&m, &params, &a);
        let meas = m.report();
        let mdl = model::eigensolver(n, &params);
        rows.push(row(
            &format!("eigensolver (n={n}, p={p}, c={c})"),
            meas.horizontal_words as f64 / mdl.horizontal_words,
            meas.flops as f64 / mdl.flops,
            meas.supersteps as f64 / mdl.supersteps,
        ));
    }

    // Direct baseline vs the Table-I model.
    for (n, p) in [(128usize, 16usize), (256, 16)] {
        let m = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen::random_symmetric(&mut rng, n);
        let _ = ca_eigen::baselines::scalapack::scalapack_tridiag(
            &m,
            &Grid::all(p).squarest_2d(),
            &a,
        );
        let meas = m.report();
        let mdl = model::scalapack_direct(n, p);
        rows.push(row(
            &format!("scalapack-style (n={n}, p={p})"),
            meas.horizontal_words as f64 / mdl.horizontal_words,
            meas.flops as f64 / mdl.flops,
            meas.supersteps as f64 / mdl.supersteps,
        ));
    }

    print_table(&["configuration", "W ratio", "F ratio", "S ratio"], &rows);
    println!();
    println!("Ratios should be stable across rows of the same family (exponent check);");
    println!("absolute levels reflect implementation constants over unit-constant models.");
}

fn row(name: &str, w: f64, f: f64, s: f64) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{w:.2}"),
        format!("{f:.2}"),
        format!("{s:.2}"),
    ]
}
