#![allow(clippy::needless_range_loop)]
//! **E-F2 — regenerate Figure 2** of the paper: "QR factorizations and
//! updates in iterations (i,j) ∈ {(3,1),(2,3),(1,5)} (left) and
//! (i,j) ∈ {(3,2),(2,4),(1,6)} (right) of [Algorithm IV.2] with k = 2.
//! These two sets of iterations are executed concurrently by processor
//! groups Π̂₁, Π̂₃, Π̂₅ (left) and Π̂₂, Π̂₄, Π̂₆ (right)."
//!
//! We run the real 2.5D band-to-band reduction, group its chase trace by
//! pipeline phase, verify that the paper's two concurrent sets appear as
//! phases `2i+j = 7` and `2i+j = 8`, print every chase's QR/update index
//! ranges, and render band-sparsity snapshots showing the bulges mid
//! flight.
//!
//! Usage: `cargo run --release -p ca-bench --bin figure2 [--n N] [--b B]`

use ca_bench::{flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::bulge::{chase_plan, execute_chase};
use ca_dla::{gen, BandedSym};
use ca_eigen::band_to_band;
use ca_pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(64);
    let b: usize = flag_value("--b").map(|v| v.parse().unwrap()).unwrap_or(8);
    let k = 2;
    let p = 8;

    println!("E-F2 / Figure 2: Algorithm IV.2 pipeline, n = {n}, b = {b}, k = {k}, p = {p}");
    println!();

    // Run the real distributed reduction and collect its trace.
    let machine = Machine::new(MachineParams::new(p));
    let mut rng = StdRng::seed_from_u64(11);
    let dense = gen::random_banded(&mut rng, n, b);
    let bm = BandedSym::from_dense(&dense, b, b);
    let (out, trace) = band_to_band(&machine, &Grid::all(p), &bm, k, 1);
    assert!(out.measured_bandwidth(1e-9) <= b / k);

    // The paper's two concurrent iteration sets.
    println!("the paper's concurrent sets and their pipeline phases (2i + j):");
    for set in [[(3, 1), (2, 3), (1, 5)], [(3, 2), (2, 4), (1, 6)]] {
        let phases: Vec<usize> = set.iter().map(|(i, j)| 2 * i + j).collect();
        println!("  {set:?}  →  phases {phases:?} (equal ⇒ concurrent)");
        assert!(phases.windows(2).all(|w| w[0] == w[1]));
    }
    println!();

    // Print the executed schedule around those phases.
    println!("executed chases at phases 7 and 8 (QR block and update ranges, 0-based):");
    let mut rows = Vec::new();
    for rec in trace.chases.iter().filter(|r| r.phase == 7 || r.phase == 8) {
        rows.push(vec![
            rec.phase.to_string(),
            format!("({}, {})", rec.op.i, rec.op.j),
            format!("Π̂{}", rec.group_index + 1),
            format!("{:?}", rec.op.qr_rows),
            format!("{:?}", rec.op.qr_cols),
            format!("{:?}", rec.op.up_cols),
            rec.qr_procs.to_string(),
        ]);
    }
    print_table(
        &["phase", "(i, j)", "group", "I_qr rows", "I_qr cols", "I_up cols", "QR procs"],
        &rows,
    );
    println!();

    // Sparsity snapshots: replay the plan sequentially and render the
    // band right after the phase-7 ops have run.
    println!("band sparsity after completing phase 7 (█ band ≤ h, ▒ within old band, ░ bulge):");
    let mut replay = BandedSym::from_dense(&dense, b, (2 * b).min(n - 1));
    let mut plan = chase_plan(n, b, k);
    plan.sort_by_key(|op| (op.phase(), op.i));
    for op in plan.iter().filter(|op| op.phase() <= 7) {
        execute_chase(&mut replay, op);
    }
    render_band(&replay, b, b / k);
}

fn render_band(m: &BandedSym, b_old: usize, h: usize) {
    let n = m.n();
    let step = (n / 64).max(1);
    for i in (0..n).step_by(step) {
        let mut row = String::from("    ");
        for j in (0..n).step_by(step) {
            let v = m.get(i, j).abs();
            let d = i.abs_diff(j);
            let ch = if v < 1e-10 {
                ' '
            } else if d <= h {
                '█'
            } else if d <= b_old {
                '▒'
            } else {
                '░' // the bulge
            };
            row.push(ch);
        }
        println!("{row}");
    }
}
