#![allow(clippy::needless_range_loop)]
//! **E-T1 — regenerate Table I** of the paper: measured communication
//! and synchronization costs of four symmetric eigensolvers on the
//! virtual BSP machine, swept over processor counts.
//!
//! Paper (asymptotic, all with F = O(n³/p)):
//!
//! | Algorithm      | W          | Q              | S                  |
//! |----------------|------------|----------------|--------------------|
//! | ScaLAPACK \[15\] | n²/√p      | n³/p           | n·log p            |
//! | ELPA \[37\]      | n²/√p      | —              | n·log p            |
//! | CA-SBR \[12\]    | n²/√p      | n²·log n/√p    | √p(log²p + log n)  |
//! | Theorem IV.4   | n²/pᵟ      | n²·log p/pᵟ    | pᵟ·log² p          |
//!
//! We report the measured `F/W/Q/S` per algorithm and per `p`, the
//! fitted exponent of each quantity against `p`, and the ratios that
//! should hold by the table (e.g. `W_scalapack / W_2.5d ≈ p^{δ−1/2}`).
//!
//! Usage: `cargo run --release -p ca-bench --bin table1 [--quick] [--n N]`

use ca_bench::{emit_json, fit_exponent, flag_present, flag_value, print_table, run_eigensolver, Algorithm};

fn main() {
    let quick = flag_present("--quick");
    let n: usize = flag_value("--n")
        .map(|v| v.parse().expect("--n must be an integer"))
        .unwrap_or(if quick { 128 } else { 512 });
    let ps: Vec<usize> = if quick { vec![16, 64] } else { vec![16, 64, 256] };

    println!("E-T1 / Table I: measured costs, n = {n}, p ∈ {ps:?}");
    println!();

    let algs = |p: usize| {
        let mut v = vec![Algorithm::ScaLapack, Algorithm::Elpa, Algorithm::CaSbr, Algorithm::TwoPointFiveD { c: 1 }];
        // c = 4 is within the paper's c ≤ p^{1/3} regime for p ≥ 64.
        if p >= 64 && (p / 4) > 0 && is_square(p / 4) {
            v.push(Algorithm::TwoPointFiveD { c: 4 });
        }
        v
    };

    let mut rows = Vec::new();
    let mut per_alg: std::collections::BTreeMap<String, Vec<(f64, f64, f64, f64)>> =
        std::collections::BTreeMap::new();
    for &p in &ps {
        for alg in algs(p) {
            let r = run_eigensolver(alg, n, p, 42);
            emit_json("table1", &r);
            rows.push(vec![
                r.algorithm.clone(),
                p.to_string(),
                r.flops.to_string(),
                r.horizontal_words.to_string(),
                r.vertical_words.to_string(),
                r.supersteps.to_string(),
                format!("{:.1e}", r.spectrum_error),
            ]);
            per_alg.entry(r.algorithm.clone()).or_default().push((
                p as f64,
                r.horizontal_words as f64,
                r.vertical_words as f64,
                r.supersteps as f64,
            ));
        }
    }
    print_table(
        &["algorithm", "p", "F (max/proc)", "W", "Q", "S", "λ err"],
        &rows,
    );

    println!();
    println!("Fitted exponents of W, Q against p (paper predicts W ∝ p^(−1/2) for the");
    println!("baselines, p^(−δ) with δ ∈ [1/2, 2/3] for Theorem IV.4; S grows for the");
    println!("direct method and shrinks relative to it for banded methods):");
    println!();
    let mut fit_rows = Vec::new();
    for (alg, pts) in &per_alg {
        if pts.len() < 2 {
            continue;
        }
        let px: Vec<f64> = pts.iter().map(|t| t.0).collect();
        let w: Vec<f64> = pts.iter().map(|t| t.1).collect();
        let q: Vec<f64> = pts.iter().map(|t| t.2).collect();
        let s: Vec<f64> = pts.iter().map(|t| t.3).collect();
        fit_rows.push(vec![
            alg.clone(),
            format!("{:+.2}", fit_exponent(&px, &w)),
            format!("{:+.2}", fit_exponent(&px, &q)),
            format!("{:+.2}", fit_exponent(&px, &s)),
        ]);
    }
    print_table(&["algorithm", "W ∝ p^", "Q ∝ p^", "S ∝ p^"], &fit_rows);

    // Headline comparisons at the largest p.
    let p_max = *ps.last().unwrap();
    println!();
    println!("Headline checks at p = {p_max} (who wins, by what factor):");
    let get = |name: &str| {
        per_alg
            .get(name)
            .and_then(|v| v.last())
            .map(|t| (t.1, t.2, t.3))
    };
    if let (Some((w_sca, q_sca, s_sca)), Some((w_25, _, _))) =
        (get("scalapack-style"), get("2.5d (c=1)"))
    {
        println!("  W scalapack / W 2.5d(c=1)   = {:.2}", w_sca / w_25);
        if let Some((w_25c4, _, _)) = get("2.5d (c=4)") {
            println!("  W 2.5d(c=1) / W 2.5d(c=4)   = {:.2}  (paper: ≈√c = 2)", w_25 / w_25c4);
        }
        if let Some((_w_elpa, q_elpa, s_elpa)) = get("elpa-style") {
            println!("  Q scalapack / Q elpa-style  = {:.2}  (direct pays n³/p)", q_sca / q_elpa);
            println!("  S scalapack / S elpa-style  = {:.2}", s_sca / s_elpa);
        }
    }
}

fn is_square(x: usize) -> bool {
    let r = (x as f64).sqrt().round() as usize;
    r * r == x
}
