#![allow(clippy::needless_range_loop)]
//! **E-L2 — Lemma III.2 shape check**: the recursive rectangular
//! multiply's communication across the 1D/2D/3D regimes of \[24\].
//!
//! With `d₁ ≤ d₂ ≤ d₃` the sorted dimensions, CARMA's cost cases are:
//!
//! * `p < d₃/d₂` (1D): `W = O(d₁d₂)` — only the small operands move;
//! * `d₃/d₂ ≤ p ≤ d₂d₃/d₁²` (2D): `W = O(√(d₁²d₂d₃/p))`;
//! * `p > d₂d₃/d₁²` (3D): `W = O((mnk/p)^{2/3})`.
//!
//! We sweep shapes of (roughly) constant flop volume across the three
//! regimes and print measured per-processor `W` against each regime's
//! predicted dominant term.
//!
//! Usage: `cargo run --release -p ca-bench --bin mm_regimes [--p P]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_pla::carma::carma;
use ca_pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct MmRecord {
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    regime: String,
    w_measured: u64,
    w_predicted: u64,
}

fn main() {
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(16);
    // Shapes with mnk = 2^24, spanning the regimes.
    let shapes: Vec<(usize, usize, usize)> = vec![
        (16384, 32, 32),  // extreme 1D: p < d3/d2
        (4096, 64, 64),   // 1D
        (1024, 128, 128), // 2D
        (512, 181, 181),  // 2D
        (256, 256, 256),  // 3D-ish: p > d2·d3/d1²? (256·256/256² = 1 < p) ✓
    ];

    println!("E-L2: recursive rectangular MM across CARMA regimes, p = {p}");
    println!();
    let mut rows = Vec::new();
    for (m, k, n) in shapes {
        let machine = Machine::new(MachineParams::new(p));
        let grid = Grid::all(p);
        let mut rng = StdRng::seed_from_u64(33);
        let a = gen::random_matrix(&mut rng, m, k);
        let b = gen::random_matrix(&mut rng, k, n);
        let snap = machine.snapshot();
        let c = carma(&machine, &grid, &a, &b, 1);
        machine.fence();
        assert_eq!(c.rows(), m);
        let w = machine.costs_since(&snap).horizontal_words;

        let mut dims = [m, k, n];
        dims.sort_unstable();
        let (d1, d2, d3) = (dims[0], dims[1], dims[2]);
        // Lemma III.2's full bound: (mn + nk + mk)/p + (mnk/p)^{2/3};
        // the regime label reports which CARMA case the shape falls in.
        let regime = if p < d3 / d2 {
            "1D"
        } else if p <= (d2 * d3) / (d1 * d1).max(1) {
            "2D"
        } else {
            "3D"
        };
        let predicted = ((m * k + k * n + m * n) / p) as u64
            + ((m * n * k / p) as f64).powf(2.0 / 3.0) as u64;
        let rec = MmRecord {
            m,
            k,
            n,
            p,
            regime: regime.to_string(),
            w_measured: w,
            w_predicted: predicted,
        };
        emit_json("mm_regimes", &rec);
        rows.push(vec![
            format!("{m}×{k}×{n}"),
            regime.to_string(),
            w.to_string(),
            predicted.to_string(),
            format!("{:.1}", w as f64 / predicted.max(1) as f64),
        ]);
    }
    print_table(
        &["shape (m×k×n)", "regime", "W measured", "lemma III.2 bound", "ratio"],
        &rows,
    );
    println!();
    println!("The ratio column should stay O(1)·polylog across regimes (shape check,");
    println!("not absolute constants): measured W tracks the regime-appropriate term.");
}
