#![allow(clippy::needless_range_loop)]
//! **E-F1 — regenerate Figure 1** of the paper: "A depiction of matrices
//! used in Algorithm IV.1 for two subsequent recursive steps."
//!
//! We run the real 2.5D full-to-band reduction with its structural trace
//! enabled and render, for two consecutive recursive steps (3 and 4, as
//! in the paper's figure), the block roles of the matrix `A` and the
//! aggregated update panels `U⁽⁰⁾`/`V⁽⁰⁾`:
//!
//! * `#` — rows/columns already reduced to the band (output region),
//! * `D` — the current diagonal block `A̅₁₁`,
//! * `P` — the panel `A̅₂₁` about to be QR-factored,
//! * `.` — the trailing matrix `A₂₂` (never updated in place —
//!   left-looking),
//! * `U`/`V` — the aggregated update panels, one column group per
//!   completed panel.
//!
//! Usage: `cargo run --release -p ca-bench --bin figure1 [--n N] [--b B]`

use ca_bench::{flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::{full_to_band, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(32);
    let b: usize = flag_value("--b").map(|v| v.parse().unwrap()).unwrap_or(4);
    let p = 4;

    println!("E-F1 / Figure 1: Algorithm IV.1 structure, n = {n}, b = {b}, p = {p} (c = 1)");
    println!();

    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let mut rng = StdRng::seed_from_u64(7);
    let a = gen::random_symmetric(&mut rng, n);
    let (band, trace) = full_to_band(&machine, &params, &a, b);

    // The paper's figure shows recursive steps 3 and 4 (1-based).
    for step in [2usize, 3] {
        let t = &trace.panels[step.min(trace.panels.len() - 1)];
        println!(
            "recursive step {} (offset {}, trailing {}×{}, aggregates m = {} cols, panel QR on {} procs):",
            step + 1,
            t.offset,
            t.remaining,
            t.remaining,
            t.agg_cols,
            t.qr_procs
        );
        render_step(n, b, t.offset, t.agg_cols);
        println!();
    }

    // Confirm the run did what the figure depicts.
    let mut rows = Vec::new();
    for t in &trace.panels {
        rows.push(vec![
            (t.step + 1).to_string(),
            t.offset.to_string(),
            format!("{}×{}", t.remaining, t.remaining),
            t.agg_cols.to_string(),
            t.qr_procs.to_string(),
        ]);
    }
    println!("panel trace (every recursive step of Algorithm IV.1):");
    print_table(&["step", "offset", "trailing", "agg cols m", "QR procs"], &rows);
    println!();
    println!(
        "final band-width: {} (target {b}); output is the banded matrix of line 13.",
        band.measured_bandwidth(1e-10)
    );
}

/// Render the block structure at one recursive step, at block (b×b)
/// granularity.
fn render_step(n: usize, b: usize, offset: usize, agg_cols: usize) {
    let nb = n / b;
    let ob = offset / b;
    let ab = agg_cols / b;
    // Matrix A (block granularity) and the aggregates next to it.
    println!("        A (block granularity)          U⁽⁰⁾ / V⁽⁰⁾");
    for i in 0..nb {
        let mut row = String::from("    ");
        for j in 0..nb {
            let ch = if i < ob || j < ob {
                // Completed region: band plus zeros.
                if i.abs_diff(j) <= 1 && i.min(j) < ob {
                    '#'
                } else {
                    ' '
                }
            } else if i == ob && j == ob {
                'D'
            } else if j == ob && i > ob {
                'P'
            } else if i == ob && j > ob {
                'p' // symmetric image of the panel
            } else {
                '.'
            };
            row.push(ch);
            row.push(' ');
        }
        // Aggregates: rows aligned with the trailing range [offset, n).
        row.push_str("   ");
        if i >= ob {
            for _ in 0..ab {
                row.push('U');
            }
            row.push(' ');
            for _ in 0..ab {
                row.push('V');
            }
        }
        println!("{row}");
    }
}
