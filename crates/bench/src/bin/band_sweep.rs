#![allow(clippy::needless_range_loop)]
//! **E-B3 — Lemma IV.3 shape check**: 2.5D band-to-band cost versus the
//! reduction ratio `k` and the starting band-width `b`.
//!
//! Lemma IV.3: reducing band `b → b/k` costs
//! `O(γ·n²b/p + β·n^{1+δ}b^{1−δ}/pᵟ + α·kᵟn^{1−δ}pᵟ/b^{1−δ}·log p)`.
//! Larger `k` does more reduction per invocation at higher
//! synchronization; larger `b` means more flops but relatively less
//! communication per unit of band removed.
//!
//! Usage: `cargo run --release -p ca-bench --bin band_sweep [--n N] [--p P]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::{gen, BandedSym};
use ca_eigen::band_to_band;
use ca_pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct BandRecord {
    n: usize,
    b: usize,
    k: usize,
    p: usize,
    flops: u64,
    w: u64,
    s: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(256);
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(16);

    println!("E-B3: band-to-band costs vs k and b, n = {n}, p = {p}");
    println!();

    // Part 1: fixed b, sweep k.
    println!("sweep k at b = 32 (one invocation reducing 32 → 32/k):");
    let mut rows = Vec::new();
    for k in [2usize, 4, 8] {
        let rec = run_one(n, 32, k, p);
        rows.push(vec![
            k.to_string(),
            rec.flops.to_string(),
            rec.w.to_string(),
            rec.s.to_string(),
        ]);
        emit_json("band_sweep", &rec);
    }
    print_table(&["k", "F", "W", "S"], &rows);
    println!();

    // Part 2: fixed k = 2, sweep b.
    println!("sweep b at k = 2 (cost of one halving):");
    let mut rows = Vec::new();
    for b in [8usize, 16, 32, 64] {
        let rec = run_one(n, b, 2, p);
        rows.push(vec![
            b.to_string(),
            rec.flops.to_string(),
            rec.w.to_string(),
            rec.s.to_string(),
            // Lemma IV.3's W term n^{1+δ}b^{1−δ}/pᵟ at δ = 1/2.
            format!(
                "{:.0}",
                (n as f64).powf(1.5) * (b as f64).sqrt() / (p as f64).sqrt()
            ),
        ]);
        emit_json("band_sweep", &rec);
    }
    print_table(&["b", "F", "W", "S", "lemma W term (δ=1/2)"], &rows);
    println!();
    println!("F grows ∝ b at fixed n (γ·n²b/p) and S falls ∝ 1/b (fewer, larger");
    println!("chases — Lemma IV.3's pᵟ/b^(1−δ) factor). Measured W also falls with b");
    println!("at these sizes: the chase count (∝ n²k/b²) dominates per-chase fixed");
    println!("costs before the lemma's asymptotic b^(1−δ) growth takes over.");
}

fn run_one(n: usize, b: usize, k: usize, p: usize) -> BandRecord {
    let machine = Machine::new(MachineParams::new(p));
    let mut rng = StdRng::seed_from_u64(66);
    let dense = gen::random_banded(&mut rng, n, b);
    let bm = BandedSym::from_dense(&dense, b, b);
    let snap = machine.snapshot();
    let (out, _) = band_to_band(&machine, &Grid::all(p), &bm, k, 1);
    machine.fence();
    assert!(out.measured_bandwidth(1e-9) <= b / k);
    let c = machine.costs_since(&snap);
    BandRecord {
        n,
        b,
        k,
        p,
        flops: c.flops,
        w: c.horizontal_words,
        s: c.supersteps,
    }
}
