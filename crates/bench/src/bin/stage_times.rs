//! Stage-time acceptance benchmark: per-stage wall-clock and model
//! flop-rate of the end-to-end solver, *before* vs *after* one of the
//! repo's engine toggles.
//!
//! Three engine comparisons are available, each from one build with the
//! "before" arithmetic kept alive behind a runtime toggle:
//!
//! * `--engine zero-copy` (PR-6, default output `BENCH_PR6.json`):
//!   seed copy-based chase kernels vs zero-copy workspace kernels
//!   (`set_zero_copy_enabled` — see DESIGN.md, "The kernel engine");
//! * `--engine dnc` (PR-7, default output `BENCH_PR7.json`): the
//!   legacy sequential finale (halve-to-8 chase + implicit QL) vs the
//!   fused rank-1 sweep + divide-and-conquer finale
//!   (`ca_dla::tune::set_dnc_enabled`), zero-copy on in both legs. The
//!   run also reports the tuning knobs in effect
//!   ([`ca_dla::tune::halve_floor`], [`ca_dla::tune::dnc_leaf`]);
//! * `--engine lookahead` (PR-10, default output `BENCH_PR10.json`):
//!   the barrier reduction drivers vs the task-graph (DAG) drivers and
//!   their engine kernels (`ca_obs::knobs::set_lookahead_enabled` —
//!   DESIGN.md §6g), zero-copy and D&C on in both legs. Both legs are
//!   bit-identical in output and ledger (`tests/dag_equivalence.rs`);
//!   only wall-clock may differ.
//!
//! The legacy engines run with the lookahead knob pinned **off** (the
//! state their committed references were recorded under) so their
//! before/after ratios keep measuring only their own toggle;
//! `--lookahead on` re-pins it for an ad-hoc combined run.
//!
//! Stage wall-clock comes from [`StageCosts::wall_secs`]; model flops
//! from the metered ledger.
//!
//! Flags:
//!
//! * `--engine <zero-copy|dnc|lookahead>` — which toggle to compare
//!   (default `zero-copy`);
//! * `--lookahead <on|off>` — pin the `CA_LOOKAHEAD` knob during the
//!   legacy engines' legs (default `off`; ignored under
//!   `--engine lookahead`, where the knob is the compared variable);
//! * `--quick` — n ∈ {256} only (CI-sized; the full grid adds 512);
//! * `--out <path>` — output path (default per engine, above);
//! * `--check <ref.json>` — compare per-stage and end-to-end speedups
//!   against a committed reference and exit nonzero if any entry
//!   regressed by more than 25% — in particular the
//!   `sequential eigensolve` stage gets its own gate this way.
//!   Speedups (ratios of two timings on the same host) are compared
//!   rather than absolute times, so the check is meaningful across
//!   machines of different speeds;
//! * `--trace <path>` — after the benchmark legs, run one solve with
//!   stage tracing on (`ca_obs` level 1 + allocation metering) and
//!   write a chrome-trace JSON to `path` (load in `chrome://tracing` or
//!   Perfetto). The run cross-checks every stage span's wall time
//!   against the same stage's [`StageCosts::wall_secs`] entry (within
//!   1%) and exits nonzero on disagreement, then prints the per-stage
//!   summary table and counter totals.

use ca_bsp::{Machine, MachineParams};
use ca_dla::bulge::set_zero_copy_enabled;
use ca_dla::gen;
use ca_dla::tune;
use ca_eigen::params::EigenParams;
use ca_eigen::solver::{symm_eigen_25d, StageCosts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Counting allocator so traced runs report `alloc.count`/`alloc.bytes`
/// alongside the subsystem counters. Metering is off except inside the
/// `--trace` solve, so the benchmark legs see stock `System` behaviour.
#[global_allocator]
static ALLOC: ca_obs::alloc::CountingAllocator = ca_obs::alloc::CountingAllocator;

/// Stage-name prefixes reported individually (matching
/// [`StageCosts::aggregate`] prefix semantics).
const STAGES: [&str; 4] = ["full-to-band", "band-to-band", "ca-sbr", "sequential eigensolve"];

/// Fractional speedup loss tolerated by `--check` before failing.
const REGRESSION_SLACK: f64 = 0.25;

/// Which engine toggle a benchmark leg selects.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// Copy-based reference chase kernels vs zero-copy workspace kernels.
    ZeroCopy,
    /// QL finale vs fused-sweep + divide-and-conquer finale.
    Dnc,
    /// Barrier reduction drivers vs task-graph drivers + engine kernels.
    Lookahead,
}

/// `--lookahead on|off` pin applied to the *legacy* engines (for
/// `--engine lookahead` the knob is the compared variable). Defaults to
/// off — the state BENCH_PR6/BENCH_PR7 were recorded under.
static LOOKAHEAD_PIN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Configure the process-wide toggles for one leg. Each comparison
/// holds the other engines fixed so it measures only its own toggle:
/// D&C keeps zero-copy on, lookahead keeps zero-copy and D&C on.
fn select_engine(engine: Engine, after: bool) {
    use std::sync::atomic::Ordering::Relaxed;
    match engine {
        Engine::ZeroCopy => {
            set_zero_copy_enabled(after);
            tune::set_dnc_enabled(false);
            ca_obs::knobs::set_lookahead_enabled(LOOKAHEAD_PIN.load(Relaxed));
        }
        Engine::Dnc => {
            set_zero_copy_enabled(true);
            tune::set_dnc_enabled(after);
            ca_obs::knobs::set_lookahead_enabled(LOOKAHEAD_PIN.load(Relaxed));
        }
        Engine::Lookahead => {
            set_zero_copy_enabled(true);
            tune::set_dnc_enabled(true);
            ca_obs::knobs::set_lookahead_enabled(after);
        }
    }
}

/// Run the solver `reps` times with the given engine selection and
/// return the median run (by end-to-end wall time) with its stage
/// breakdown.
fn run_case(n: usize, p: usize, reps: usize, engine: Engine, after: bool) -> (f64, StageCosts) {
    select_engine(engine, after);
    let mut rng = StdRng::seed_from_u64(4096 + n as u64);
    let spectrum = gen::linspace_spectrum(n, -1.0, 1.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    let mut runs: Vec<(f64, StageCosts)> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let (ev, stages) = symm_eigen_25d(&machine, &params, &a);
            black_box(ev);
            (t0.elapsed().as_secs_f64(), stages)
        })
        .collect();
    runs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Extract the number following `"key": ` on `line` (the emitted JSON
/// keeps each record on one line precisely so this scan suffices — the
/// vendored `serde_json` shim serializes but does not parse).
fn num_after(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the quoted string following `"key": "` on `line`.
fn str_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    rest.split('"').next()
}

/// Parse a stage-times JSON into `((n, stage-or-end-to-end) → speedup)`.
/// "end-to-end" is keyed by an empty stage name.
fn parse_speedups(text: &str) -> Vec<(usize, String, f64)> {
    let mut out = Vec::new();
    let mut current_n = 0usize;
    for line in text.lines() {
        if let Some(stage) = str_after(line, "stage") {
            if let Some(s) = num_after(line, "speedup") {
                out.push((current_n, stage.to_string(), s));
            }
        } else if let Some(n) = num_after(line, "n") {
            current_n = n as usize;
            if let Some(s) = num_after(line, "speedup") {
                out.push((current_n, String::new(), s));
            }
        }
    }
    out
}

/// One traced solve (`--trace`): stage spans, subsystem counters and
/// allocation metering on, chrome-trace JSON out, plus the
/// span-vs-`StageCosts` wall-agreement check (1%).
fn run_traced(trace_path: &str, n: usize, p: usize, engine: Engine) {
    select_engine(engine, true);
    let mut rng = StdRng::seed_from_u64(4096 + n as u64);
    let spectrum = gen::linspace_spectrum(n, -1.0, 1.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);

    ca_obs::set_level(1);
    let _ = ca_obs::drain(); // discard anything recorded before this run
    let _ = ca_obs::take_dropped();
    ca_obs::counters::reset();
    ca_obs::alloc::take();
    ca_obs::alloc::set_metering(true);
    let (ev, stages) = symm_eigen_25d(&machine, &params, &a);
    ca_obs::alloc::set_metering(false);
    ca_obs::set_level(0);
    black_box(ev);

    let events = ca_obs::drain();
    let dropped = ca_obs::take_dropped();
    let (alloc_count, alloc_bytes) = ca_obs::alloc::take();
    let mut counters = ca_obs::counters::snapshot();
    counters.push(("alloc.count", alloc_count));
    counters.push(("alloc.bytes", alloc_bytes));
    counters.sort_by_key(|(name, _)| *name);

    let json = ca_obs::export::chrome_trace(&events, &counters, dropped);
    std::fs::write(trace_path, json).unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    println!(
        "wrote {trace_path} ({} spans, {dropped} dropped) — load in chrome://tracing or Perfetto",
        events.len()
    );

    let summary = ca_obs::export::summarize(&events);
    print!("{}", ca_obs::export::render_summary(&summary));
    println!("counters:");
    for (name, value) in &counters {
        println!("  {name:<28} {value}");
    }

    // Cross-check: the trace's per-stage wall totals must agree with
    // the StageCosts the solver returned, grouped by exact stage name
    // (spans are opened under the same names by construction).
    let mut expected: Vec<(String, f64)> = Vec::new();
    for (record, &wall) in stages.stages.iter().zip(&stages.wall_secs) {
        match expected.iter_mut().find(|(name, _)| *name == record.name) {
            Some(e) => e.1 += wall,
            None => expected.push((record.name.clone(), wall)),
        }
    }
    let mut failed = false;
    for (name, wall) in &expected {
        let Some(span) = summary.iter().find(|s| &s.name == name) else {
            eprintln!("TRACE MISMATCH: no span named {name:?}");
            failed = true;
            continue;
        };
        let diff = (span.wall_secs - wall).abs();
        // 1% relative, with a 10 µs floor for stages too short to time.
        let tol = (0.01 * wall).max(10e-6);
        if diff > tol {
            eprintln!(
                "TRACE MISMATCH {name}: span {:.6} s vs stage {:.6} s (|Δ| {diff:.6} s > {tol:.6} s)",
                span.wall_secs, wall
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "trace check: {} stage names agree with StageCosts::wall_secs within 1%",
        expected.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let engine = match flag_value(&args, "--engine") {
        None | Some("zero-copy") => Engine::ZeroCopy,
        Some("dnc") => Engine::Dnc,
        Some("lookahead") => Engine::Lookahead,
        Some(other) => panic!("unknown --engine {other:?} (expected zero-copy, dnc or lookahead)"),
    };
    match flag_value(&args, "--lookahead") {
        None | Some("off") => {}
        Some("on") => LOOKAHEAD_PIN.store(true, std::sync::atomic::Ordering::Relaxed),
        Some(other) => panic!("unknown --lookahead {other:?} (expected on or off)"),
    }
    let default_out = match engine {
        Engine::ZeroCopy => "BENCH_PR6.json",
        Engine::Dnc => "BENCH_PR7.json",
        Engine::Lookahead => "BENCH_PR10.json",
    };
    let out_path = flag_value(&args, "--out").unwrap_or(default_out);
    let check = flag_value(&args, "--check");
    let trace = flag_value(&args, "--trace");
    let sizes: &[usize] = if quick { &[256] } else { &[256, 512] };
    let (p, reps) = (4usize, 5usize);
    if engine == Engine::Dnc {
        println!(
            "engine dnc: halve_floor = {}, dnc_leaf = {} (CA_HALVE_FLOOR / CA_DNC_LEAF to override)",
            tune::halve_floor(),
            tune::dnc_leaf()
        );
    }

    // Load the reference *before* running (and possibly overwriting it,
    // when `--check` and `--out` name the same file).
    let reference: Option<Vec<(usize, String, f64)>> = check.map(|ref_path| {
        let text = std::fs::read_to_string(ref_path)
            .unwrap_or_else(|e| panic!("read reference {ref_path}: {e}"));
        let parsed = parse_speedups(&text);
        assert!(!parsed.is_empty(), "no speedup entries in {ref_path}");
        parsed
    });

    let mut out = match engine {
        Engine::ZeroCopy => String::from("{\n  \"cases\": [\n"),
        Engine::Dnc => format!(
            "{{\n  \"engine\": \"dnc\",\n  \"tuning\": {{\"halve_floor\": {}, \"dnc_leaf\": {}}},\n  \"cases\": [\n",
            tune::halve_floor(),
            tune::dnc_leaf()
        ),
        Engine::Lookahead => String::from("{\n  \"engine\": \"lookahead\",\n  \"cases\": [\n"),
    };
    let mut measured: Vec<(usize, String, f64)> = Vec::new();
    for (ci, &n) in sizes.iter().enumerate() {
        let (t_before, st_before) = run_case(n, p, reps, engine, false);
        let (t_after, st_after) = run_case(n, p, reps, engine, true);
        let speedup = t_before / t_after;
        let legs = match engine {
            Engine::ZeroCopy => ("reference", "zero-copy"),
            Engine::Dnc => ("QL finale", "D&C finale"),
            Engine::Lookahead => ("barrier", "lookahead DAG"),
        };
        println!(
            "solver n={n} p={p}: {} {:.1} ms -> {} {:.1} ms, {speedup:.2}x",
            legs.0,
            t_before * 1e3,
            legs.1,
            t_after * 1e3
        );
        measured.push((n, String::new(), speedup));
        out.push_str(&format!(
            "    {{\"n\": {n}, \"p\": {p}, \"c\": 1, \"before_ms\": {:.3}, \
             \"after_ms\": {:.3}, \"speedup\": {:.3},\n     \"stages\": [\n",
            t_before * 1e3,
            t_after * 1e3,
            speedup
        ));
        let present: Vec<&str> = STAGES
            .iter()
            .copied()
            .filter(|s| st_after.count(s) > 0)
            .collect();
        for (si, stage) in present.iter().enumerate() {
            let wb = st_before.wall_seconds(stage);
            let wa = st_after.wall_seconds(stage);
            let s = wb / wa.max(1e-12);
            let gflop = st_after.aggregate(stage).total_flops as f64 / 1e9;
            let rate = gflop / wa.max(1e-12);
            println!(
                "  {stage:<22} {:>9.1} ms -> {:>8.1} ms  {s:>5.2}x  ({gflop:.3} model Gflop, {rate:.2} GF/s)",
                wb * 1e3,
                wa * 1e3
            );
            measured.push((n, stage.to_string(), s));
            out.push_str(&format!(
                "      {{\"stage\": \"{stage}\", \"before_ms\": {:.3}, \"after_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"model_gflop\": {:.3}, \"after_gflops\": {:.3}}}{}\n",
                wb * 1e3,
                wa * 1e3,
                s,
                gflop,
                rate,
                if si + 1 == present.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if ci + 1 == sizes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(out_path, &out).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(reference) = reference {
        let mut failed = false;
        for (n, stage, got) in &measured {
            let Some((_, _, want)) = reference
                .iter()
                .find(|(rn, rs, _)| rn == n && rs == stage)
            else {
                continue; // reference lacks this grid point (e.g. --quick ref)
            };
            let label = if stage.is_empty() { "end-to-end" } else { stage };
            let floor = want * (1.0 - REGRESSION_SLACK);
            if *got < floor {
                eprintln!(
                    "REGRESSION n={n} {label}: speedup {got:.2}x < {floor:.2}x \
                     (reference {want:.2}x - {:.0}% slack)",
                    REGRESSION_SLACK * 100.0
                );
                failed = true;
            } else {
                println!("check n={n} {label}: {got:.2}x vs reference {want:.2}x ok");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if let Some(trace_path) = trace {
        run_traced(trace_path, sizes[0], p, engine);
    }
}
