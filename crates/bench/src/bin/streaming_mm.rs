#![allow(clippy::needless_range_loop)]
//! **E-L3 — Lemma III.3 vs Lemma III.2**: multiplying against a
//! *pre-replicated* operand (Algorithm III.1's Streaming-MM) beats
//! general-layout multiplication for the panel-shaped products of
//! Algorithm IV.1.
//!
//! For `C = A·B` with `A` n×n and `B` n×k (k ≪ n), Lemma III.3 gives
//! `W = O((nk + nk)/pᵟ)` once `A` is replicated, versus Lemma III.2's
//! general bound that must also move `A`-sized data when no replication
//! exists. We sweep the replication factor `c` (at fixed `p = q²c`) and
//! the streaming depth `w`.
//!
//! Usage: `cargo run --release -p ca-bench --bin streaming_mm [--n N]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_pla::carma::carma;
use ca_pla::grid::Grid;
use ca_pla::streaming::{streaming_mm, Replicated};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct StreamRecord {
    n: usize,
    k: usize,
    q: usize,
    c: usize,
    w_depth: usize,
    w_streaming: u64,
    s_streaming: u64,
    w_carma_same_p: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(256);
    let k = n / 16;
    let q = 4;

    println!("E-L3: Streaming-MM (replicated A) vs recursive MM, n = {n}, k = {k}, q = {q}");
    println!();
    let mut rows = Vec::new();
    for c in [1usize, 2, 4, 8] {
        let p = q * q * c;
        let machine = Machine::new(MachineParams::new(p));
        let grid3 = Grid::new_3d((0..p).collect(), q, q, c);
        let mut rng = StdRng::seed_from_u64(44);
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, k);

        // Replication is a one-time cost; measure the product alone
        // (Algorithm IV.1 reuses the replicated A across all panels).
        let rep = Replicated::replicate(&machine, &grid3, &a);
        for w_depth in [1usize, 2] {
            let snap = machine.snapshot();
            let cmat = streaming_mm(&machine, &rep, (0, 0, n, n), false, &b, w_depth);
            machine.fence();
            assert_eq!(cmat.rows(), n);
            let w_stream = machine.costs_since(&snap).horizontal_words;
            let s_stream = machine.costs_since(&snap).supersteps;

            // The same product with no replication, same p.
            let m2 = Machine::new(MachineParams::new(p));
            let snap2 = m2.snapshot();
            let _ = carma(&m2, &Grid::all(p), &a, &b, 1);
            m2.fence();
            let w_carma = m2.costs_since(&snap2).horizontal_words;

            let rec = StreamRecord {
                n,
                k,
                q,
                c,
                w_depth,
                w_streaming: w_stream,
                s_streaming: s_stream,
                w_carma_same_p: w_carma,
            };
            emit_json("streaming_mm", &rec);
            rows.push(vec![
                c.to_string(),
                p.to_string(),
                w_depth.to_string(),
                w_stream.to_string(),
                s_stream.to_string(),
                w_carma.to_string(),
                format!("{:.2}", w_carma as f64 / w_stream.max(1) as f64),
            ]);
        }
    }
    print_table(
        &["c", "p", "w", "W streaming", "S streaming", "W recursive", "gain"],
        &rows,
    );
    println!();
    println!("Lemma III.3: streaming W ∝ (mk+nk)/(qc) — rows with larger c should show");
    println!("proportionally less W; the w column trades supersteps for buffer memory.");
}
