//! Service soak benchmark: sustained mixed-size load through the
//! [`ca_service::EigenService`] front-end, reporting tail latency and
//! throughput — the PR-9 acceptance artifact (`BENCH_PR9.json`).
//!
//! What one run does:
//!
//! 1. builds a deterministic mixed workload (sizes 8–96, QL and D&C
//!    engines, ~1 in 4 jobs with eigenvectors) and submits it from
//!    several client threads concurrently;
//! 2. records per-job latency (submit → result) and summarizes p50 /
//!    p99 / mean / max plus jobs-per-second throughput;
//! 3. re-solves the same workload sequentially in-process
//!    ([`ca_service::solve_job`] on the main thread) to get a
//!    host-independent *speedup* ratio and a bit-identity spot check
//!    (every 7th job's output bits must match the service's);
//! 4. exits nonzero if **any** job errored, any bits diverged, the run
//!    shrank below 100 jobs, or the `--check` gate failed.
//!
//! Flags:
//!
//! * `--quick` — 120 jobs from 4 clients (CI-sized; the full run is
//!   240 jobs from 8 clients);
//! * `--out <path>` — output path (default `BENCH_PR9.json`);
//! * `--check <ref.json>` — compare the concurrency speedup against a
//!   committed reference and fail on a > 50% relative drop. Speedups
//!   (service wall vs sequential wall on the same host, same build) are
//!   compared rather than absolute times, so the gate is meaningful
//!   across machines; the generous slack absorbs core-count differences
//!   between CI runners.
//!
//! Admission-control knobs (`CA_SERVICE_WORKERS`, `CA_QUEUE_CAP`,
//! `CA_BATCH_FLOOR`) apply as usual via [`EigenService::from_env`]
//! semantics — the soak constructs its config through
//! `ServiceConfig::from_env()` so CI lanes can vary the pool shape.
//! With `CA_SERVICE_WORKERS` unset the pool is floored at **two**
//! workers: the available-parallelism default degenerates to one on
//! single-core hosts, and a one-worker soak never exercises the
//! concurrent claim paths the benchmark exists to cover.

use ca_service::{Engine, EigenService, JobResult, ServiceConfig, SymmEigenJob};
use ca_dla::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Job sizes cycled through the workload; mixed enough that coalescing
/// (below the batch floor) and singleton dispatch both occur.
const SIZES: [usize; 8] = [8, 13, 16, 24, 32, 48, 64, 96];

/// Fractional speedup loss tolerated by `--check` before failing.
const REGRESSION_SLACK: f64 = 0.5;

/// The acceptance floor: a soak run must cover at least this many jobs.
const MIN_JOBS: usize = 100;

/// Deterministic workload: job `i` is fully determined by its index.
fn make_job(i: usize) -> SymmEigenJob {
    let n = SIZES[i % SIZES.len()];
    let mut rng = StdRng::seed_from_u64(0x50AC ^ (i as u64));
    let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(n, -2.0, 2.0));
    let job = if i.is_multiple_of(4) {
        SymmEigenJob::with_vectors(a, 4, 1)
    } else {
        SymmEigenJob::values(a, 4, 1)
    };
    job.engine(if i.is_multiple_of(3) { Engine::Dnc } else { Engine::Ql })
}

/// FNV-1a over a result's exact output bits (eigenvalues then vectors).
fn result_hash(r: &JobResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    r.eigenvalues.iter().copied().for_each(&mut eat);
    if let Some(v) = &r.vectors {
        v.data().iter().copied().for_each(&mut eat);
    }
    h
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Extract the number following `"key": ` on `line` (the emitted JSON
/// keeps each record on one line so this scan suffices — the vendored
/// `serde_json` shim serializes but does not parse).
fn num_after(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Percentile by nearest-rank on a sorted slice.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_PR9.json");
    let check = flag_value(&args, "--check");
    let (clients, jobs_per_client) = if quick { (4usize, 30usize) } else { (8usize, 30usize) };
    let total_jobs = clients * jobs_per_client;
    assert!(total_jobs >= MIN_JOBS, "soak must cover >= {MIN_JOBS} jobs");

    // Load the reference *before* running (and possibly overwriting it,
    // when `--check` and `--out` name the same file).
    let reference_speedup: Option<f64> = check.map(|ref_path| {
        let text = std::fs::read_to_string(ref_path)
            .unwrap_or_else(|e| panic!("read reference {ref_path}: {e}"));
        text.lines()
            .find_map(|l| num_after(l, "speedup"))
            .unwrap_or_else(|| panic!("no \"speedup\" entry in {ref_path}"))
    });

    let mut config = ServiceConfig::from_env();
    // The soak exists to exercise the concurrent pool, but the
    // available-parallelism default degenerates to a single worker on
    // small hosts — BENCH_PR9.json recorded `workers: 1`, so the
    // committed artifact never ran two workers' claim paths at once.
    // Keep the pool multi-worker by default; an explicit
    // CA_SERVICE_WORKERS still pins any size (including 1).
    if ca_obs::knobs::usize_env("CA_SERVICE_WORKERS").is_none() {
        config.workers = config.workers.max(2);
    }
    let service = Arc::new(EigenService::new(config.clone()));
    let workers = service.config().effective_workers();
    println!(
        "soak: {total_jobs} jobs from {clients} clients over {workers} workers \
         (queue {}, batch floor {})",
        service.config().effective_capacity(),
        service.config().batch_floor
    );

    // Warm up each worker's arena and the code paths once, off the clock.
    for r in service.solve_batch((0..workers).map(make_job)) {
        r.expect("warm-up job");
    }

    // ---- Concurrent serving leg --------------------------------------
    let t0 = Instant::now();
    let client_threads: Vec<_> = (0..clients)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(jobs_per_client);
                let mut hashes = Vec::with_capacity(jobs_per_client);
                let mut errors = 0usize;
                for i in (c * jobs_per_client)..((c + 1) * jobs_per_client) {
                    let submitted = Instant::now();
                    match service.submit(make_job(i)).and_then(|t| t.wait()) {
                        Ok(r) => {
                            lat.push(submitted.elapsed().as_secs_f64() * 1e3);
                            hashes.push((i, result_hash(&r)));
                        }
                        Err(e) => {
                            eprintln!("job {i} failed: {e}");
                            errors += 1;
                        }
                    }
                }
                (lat, hashes, errors)
            })
        })
        .collect();

    let mut latencies_ms = Vec::with_capacity(total_jobs);
    let mut hashes = Vec::with_capacity(total_jobs);
    let mut errors = 0usize;
    for t in client_threads {
        let (lat, h, e) = t.join().expect("client thread");
        latencies_ms.extend(lat);
        hashes.extend(h);
        errors += e;
    }
    let service_wall = t0.elapsed().as_secs_f64();

    // ---- Sequential baseline + determinism spot check ----------------
    let knobs = service.knobs();
    let t1 = Instant::now();
    let mut divergent = 0usize;
    let mut seq_done = 0usize;
    for i in 0..total_jobs {
        match ca_service::solve_job(&make_job(i), knobs) {
            Ok(r) => {
                seq_done += 1;
                if i % 7 == 0 {
                    if let Some(&(_, h)) = hashes.iter().find(|(j, _)| *j == i) {
                        if h != result_hash(&r) {
                            eprintln!("DIVERGENCE: job {i} served bits != solo bits");
                            divergent += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("sequential job {i} failed: {e}");
                errors += 1;
            }
        }
    }
    let sequential_wall = t1.elapsed().as_secs_f64();
    let speedup = sequential_wall / service_wall.max(1e-9);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies_ms, 50.0);
    let p99 = percentile(&latencies_ms, 99.0);
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let max = latencies_ms.last().copied().unwrap_or(0.0);
    let throughput = latencies_ms.len() as f64 / service_wall.max(1e-9);
    let stats = service.stats();

    println!(
        "latency: p50 {p50:.2} ms, p99 {p99:.2} ms, mean {mean:.2} ms, max {max:.2} ms"
    );
    println!(
        "throughput: {throughput:.1} jobs/s ({} jobs in {service_wall:.2} s; \
         sequential {sequential_wall:.2} s, speedup {speedup:.2}x)",
        latencies_ms.len()
    );
    println!(
        "scheduler: {} coalesced batches covering {} jobs, queue peak {}",
        stats.batches, stats.batched_jobs, stats.queue_depth_peak
    );

    let out = format!(
        "{{\n  \"workload\": {{\"jobs\": {total_jobs}, \"clients\": {clients}, \
         \"workers\": {workers}, \"quick\": {quick}}},\n  \
         \"latency_ms\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}, \"mean\": {mean:.3}, \"max\": {max:.3}}},\n  \
         \"throughput_jobs_per_s\": {throughput:.2},\n  \
         \"service_wall_s\": {service_wall:.3},\n  \
         \"sequential_wall_s\": {sequential_wall:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"errors\": {errors},\n  \
         \"scheduler\": {{\"batches\": {}, \"batched_jobs\": {}, \"queue_depth_peak\": {}}}\n}}\n",
        stats.batches, stats.batched_jobs, stats.queue_depth_peak
    );
    std::fs::write(out_path, &out).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    // ---- Acceptance gates --------------------------------------------
    let mut failed = false;
    if errors > 0 {
        eprintln!("FAIL: {errors} job(s) errored (acceptance requires zero)");
        failed = true;
    }
    if divergent > 0 {
        eprintln!("FAIL: {divergent} served result(s) diverged from solo bits");
        failed = true;
    }
    if latencies_ms.len() < MIN_JOBS || seq_done < MIN_JOBS {
        eprintln!(
            "FAIL: only {} served / {seq_done} sequential jobs completed (need {MIN_JOBS})",
            latencies_ms.len()
        );
        failed = true;
    }
    if stats.accounted() != stats.submitted {
        eprintln!(
            "FAIL: lost jobs — {} accounted of {} submitted",
            stats.accounted(),
            stats.submitted
        );
        failed = true;
    }
    if let Some(want) = reference_speedup {
        let floor = want * (1.0 - REGRESSION_SLACK);
        if speedup < floor {
            eprintln!(
                "REGRESSION: speedup {speedup:.2}x < {floor:.2}x \
                 (reference {want:.2}x - {:.0}% slack)",
                REGRESSION_SLACK * 100.0
            );
            failed = true;
        } else {
            println!("check: speedup {speedup:.2}x vs reference {want:.2}x ok");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
