#![allow(clippy::needless_range_loop)]
//! **E-A2 — ablation: multi-stage vs single-stage band reduction**
//! (§V: "To reduce the number of band-reduction stages when δ < 2/3,
//! one can use k = p^{2−3δ} with each invocation of 2.5D-Band-to-Band,
//! but this results in a greater synchronization cost.").
//!
//! Reduces the same banded matrix from `b` to `h_target` either by
//! successive `k = 2` halvings (Algorithm IV.3's default) or by one
//! invocation with `k = b/h_target`, and compares `W`, `S` and `F`.
//!
//! Usage: `cargo run --release -p ca-bench --bin ablation_stages [--n N]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::{gen, BandedSym};
use ca_eigen::band_to_band;
use ca_pla::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct StageRecord {
    strategy: String,
    n: usize,
    b: usize,
    h: usize,
    p: usize,
    flops: u64,
    w: u64,
    s: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(256);
    let p = 16;
    let b = 32;
    let h = 4;

    println!("E-A2: k = 2 multi-stage vs single k = {} reduction, n = {n}, b = {b} → {h}, p = {p}", b / h);
    println!();

    let mut rng = StdRng::seed_from_u64(88);
    let dense = gen::random_banded(&mut rng, n, b);
    let bm = BandedSym::from_dense(&dense, b, b);
    let reference = ca_dla::tridiag::banded_eigenvalues(&bm);

    let mut rows = Vec::new();
    for multi in [true, false] {
        let machine = Machine::new(MachineParams::new(p));
        let grid = Grid::all(p);
        let mut band = BandedSym::from_dense(&dense, b, b);
        if multi {
            while band.bandwidth() > h {
                let (next, _) = band_to_band(&machine, &grid, &band, 2, 1);
                band = next;
            }
        } else {
            let (next, _) = band_to_band(&machine, &grid, &band, b / h, 1);
            band = next;
        }
        assert!(band.measured_bandwidth(1e-9) <= h);
        let ev = ca_dla::tridiag::banded_eigenvalues(&band);
        assert!(ca_dla::tridiag::spectrum_distance(&ev, &reference) < 1e-7 * n as f64);

        let c = machine.report();
        let rec = StageRecord {
            strategy: if multi { "k=2 stages" } else { "single k" }.into(),
            n,
            b,
            h,
            p,
            flops: c.flops,
            w: c.horizontal_words,
            s: c.supersteps,
        };
        emit_json("ablation_stages", &rec);
        rows.push(vec![
            rec.strategy.clone(),
            rec.flops.to_string(),
            rec.w.to_string(),
            rec.s.to_string(),
        ]);
    }
    print_table(&["strategy", "F", "W", "S"], &rows);
    println!();
    println!("§V notes single-k trades stage count against synchronization (S per");
    println!("invocation grows ∝ kᵟ while k = 2 staging pays a log₂k stage factor).");
    println!("At these sizes the measured tradeoff favours single-k: kᵟ < 2ᵟ·log₂k for");
    println!("moderate k — the multi-stage default instead buys the solver its");
    println!("processor-shrinking schedule (ζ = (1−δ)/δ) and bounded memory.");
}
