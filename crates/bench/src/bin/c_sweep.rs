#![allow(clippy::needless_range_loop)]
//! **E-C1 — the Θ(√c) claim** (abstract / §I): "Given sufficient memory
//! to store c copies of the symmetric matrix, our algorithm requires
//! Θ(√c) less interprocessor communication than previously known
//! algorithms, for any c ≤ p^{1/3}."
//!
//! Sweeps the replication factor `c` at fixed `p` and reports measured
//! `W` (whole solver and full-to-band stage alone), the ratio to `c = 1`
//! against the predicted `√c`, plus memory (the price paid) and
//! supersteps. Values of `c` beyond `p^{1/3}` are included deliberately
//! to show communication rising again once the replication cost
//! overtakes the streaming saving (the reason for the paper's regime
//! bound).
//!
//! Usage: `cargo run --release -p ca-bench --bin c_sweep [--n N] [--p P]`

use ca_bench::{emit_json, flag_value, print_table};
use ca_bsp::{Machine, MachineParams};
use ca_dla::gen;
use ca_eigen::{full_to_band, symm_eigen_25d, EigenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct CSweepRecord {
    n: usize,
    p: usize,
    c: usize,
    in_regime: bool,
    w_solver: u64,
    w_full_to_band: u64,
    q_solver: u64,
    s_solver: u64,
    peak_memory: u64,
}

fn main() {
    let n: usize = flag_value("--n").map(|v| v.parse().unwrap()).unwrap_or(256);
    let p: usize = flag_value("--p").map(|v| v.parse().unwrap()).unwrap_or(64);

    // All c with p/c a perfect square.
    let cs: Vec<usize> = (0..=p.ilog2())
        .map(|e| 1usize << e)
        .filter(|c| {
            p.is_multiple_of(*c) && {
                let q2 = p / c;
                let q = (q2 as f64).sqrt().round() as usize;
                q * q == q2 && *c <= p / 4 // keep at least a 2×2 layer grid
            }
        })
        .collect();

    println!("E-C1: W vs replication factor c, n = {n}, p = {p}, c ∈ {cs:?}");
    println!("(paper: W drops by √c for c ≤ p^(1/3) = {:.1})", (p as f64).powf(1.0 / 3.0));
    println!();

    let mut rows = Vec::new();
    let mut w1_solver = 0f64;
    let mut w1_ftb = 0f64;
    for &c in &cs {
        let params = EigenParams::new_unchecked(p, c);
        let in_regime = c * c * c <= p;

        // Whole solver.
        let machine = Machine::new(MachineParams::new(p));
        let mut rng = StdRng::seed_from_u64(21);
        let spectrum = gen::linspace_spectrum(n, -4.0, 4.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        let (ev, _) = symm_eigen_25d(&machine, &params, &a);
        assert!(ca_dla::tridiag::spectrum_distance(&ev, &spectrum) < 1e-6 * n as f64);
        let total = machine.report();

        // Full-to-band stage alone (where the √c saving concentrates).
        let m2 = Machine::new(MachineParams::new(p));
        let b = params.initial_bandwidth(n);
        let _ = full_to_band(&m2, &params, &a, b);
        let ftb = m2.report();

        if c == 1 {
            w1_solver = total.horizontal_words as f64;
            w1_ftb = ftb.horizontal_words as f64;
        }
        let rec = CSweepRecord {
            n,
            p,
            c,
            in_regime,
            w_solver: total.horizontal_words,
            w_full_to_band: ftb.horizontal_words,
            q_solver: total.vertical_words,
            s_solver: total.supersteps,
            peak_memory: total.peak_memory_words,
        };
        emit_json("c_sweep", &rec);
        rows.push(vec![
            format!("{c}{}", if in_regime { "" } else { " (!)" }),
            rec.w_solver.to_string(),
            format!("{:.2}", w1_solver / rec.w_solver as f64),
            rec.w_full_to_band.to_string(),
            format!("{:.2}", w1_ftb / rec.w_full_to_band as f64),
            format!("{:.2}", (c as f64).sqrt()),
            rec.s_solver.to_string(),
            rec.peak_memory.to_string(),
        ]);
    }
    print_table(
        &["c", "W solver", "gain", "W full→band", "gain", "√c (paper)", "S", "peak M"],
        &rows,
    );
    println!();
    println!("(!) marks c outside the paper's c ≤ p^(1/3) regime.");
}
