//! PR-1 acceptance benchmark: cache-blocked GEMM vs. the seed kernel,
//! plus an end-to-end solver timing. Writes `BENCH_PR1.json` in the
//! current directory.
//!
//! The seed kernel (pre-blocking `ca_dla::gemm`) is reproduced inline
//! here so the comparison runs from a single build.

use ca_bsp::{Machine, MachineParams};
use ca_dla::gemm::{gemm, set_blocked_enabled, Trans};
use ca_dla::gen;
use ca_dla::Matrix;
use ca_eigen::params::EigenParams;
use ca_eigen::solver::symm_eigen_25d;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// The seed's GEMM: materialize transposes, then a fused `i-l-j` loop.
fn seed_gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    let a_eff = match ta {
        Trans::N => a.clone(),
        Trans::T => a.transpose(),
    };
    let b_eff = match tb {
        Trans::N => b.clone(),
        Trans::T => b.transpose(),
    };
    let (m, k, n) = (a_eff.rows(), a_eff.cols(), b_eff.cols());
    for i in 0..m {
        for j in 0..n {
            let v = c.get(i, j) * beta;
            c.set(i, j, v);
        }
        for l in 0..k {
            let f = alpha * a_eff.get(i, l);
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = c.get(i, j) + f * b_eff.get(l, j);
                c.set(i, j, v);
            }
        }
    }
}

fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut out = String::from("{\n");

    let mut rng = StdRng::seed_from_u64(42);
    out.push_str("  \"gemm\": [\n");
    for (idx, n) in [256usize, 512].into_iter().enumerate() {
        let a = gen::random_matrix(&mut rng, n, n);
        let b = gen::random_matrix(&mut rng, n, n);
        let flops = 2.0 * (n * n * n) as f64;

        let mut c = Matrix::zeros(n, n);
        let t_seed = time_median(5, || {
            seed_gemm(1.0, &a, Trans::N, &b, Trans::N, 0.0, &mut c);
            black_box(&c);
        });
        let mut c2 = Matrix::zeros(n, n);
        let t_new = time_median(5, || {
            gemm(1.0, &a, Trans::N, &b, Trans::N, 0.0, &mut c2);
            black_box(&c2);
        });
        assert!(
            c2.max_diff(&c) < 1e-9 * n as f64,
            "blocked GEMM disagrees with seed kernel at n={n}"
        );

        let speedup = t_seed / t_new;
        println!(
            "gemm n={n}: seed {:.1} ms ({:.2} GF/s) -> blocked {:.1} ms ({:.2} GF/s), {speedup:.2}x",
            t_seed * 1e3,
            flops / t_seed / 1e9,
            t_new * 1e3,
            flops / t_new / 1e9,
        );
        out.push_str(&format!(
            "    {{\"n\": {n}, \"seed_ms\": {:.3}, \"blocked_ms\": {:.3}, \
             \"seed_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \"speedup\": {:.3}}}{}\n",
            t_seed * 1e3,
            t_new * 1e3,
            flops / t_seed / 1e9,
            flops / t_new / 1e9,
            speedup,
            if idx == 0 { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    // End-to-end: eigenvalues of a 512×512 symmetric matrix on a p=4
    // simulated machine — local blocks are large enough (≥ 256²) for
    // the cache-blocked kernel to matter.
    let n = 512;
    let p = 4;
    let spectrum = gen::linspace_spectrum(n, -1.0, 1.0);
    let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
    let machine = Machine::new(MachineParams::new(p));
    let params = EigenParams::new(p, 1);
    set_blocked_enabled(false);
    let t_before = time_median(3, || {
        let (ev, _) = symm_eigen_25d(&machine, &params, &a);
        black_box(ev);
    });
    set_blocked_enabled(true);
    let t_after = time_median(3, || {
        let (ev, _) = symm_eigen_25d(&machine, &params, &a);
        black_box(ev);
    });
    println!(
        "solver n={n} p={p}: unblocked {:.1} ms -> blocked {:.1} ms, {:.2}x",
        t_before * 1e3,
        t_after * 1e3,
        t_before / t_after
    );
    out.push_str(&format!(
        "  \"solver\": {{\"n\": {n}, \"p\": {p}, \"c\": 1, \"unblocked_ms\": {:.3}, \
         \"blocked_ms\": {:.3}, \"speedup\": {:.3}}}\n}}\n",
        t_before * 1e3,
        t_after * 1e3,
        t_before / t_after
    ));

    std::fs::write("BENCH_PR1.json", &out).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");
}
