//! Service configuration and its environment knobs.
//!
//! All env parsing routes through [`ca_obs::knobs`] (the repo-wide
//! parser), so malformed values warn once on stderr and fall back to
//! the defaults instead of being silently ignored:
//!
//! | knob | meaning | default |
//! |---|---|---|
//! | `CA_SERVICE_WORKERS` | worker threads | available parallelism, capped at 8 |
//! | `CA_QUEUE_CAP` | bounded admission-queue capacity | 256 |
//! | `CA_BATCH_FLOOR` | problems with `n` below this coalesce into batched leaf solves | 64 |

/// Construction-time parameters of an [`crate::EigenService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker threads executing jobs (≥ 1).
    pub workers: usize,
    /// Admission-control bound: `submit` returns
    /// [`ca_eigen::EigenError::QueueFull`] once this many jobs are
    /// pending (≥ 1).
    pub queue_capacity: usize,
    /// Problems with `n` below this floor are *coalesced*: a worker
    /// that dequeues one small job claims every other queued job under
    /// the floor (up to [`ServiceConfig::batch_max`]) and solves them
    /// back to back on its warm thread, amortizing per-solve overheads
    /// (thread hand-off, workspace-arena warm-up, span setup) across
    /// the batch. `0` disables coalescing.
    pub batch_floor: usize,
    /// Upper bound on the number of jobs one coalesced batch may claim,
    /// so a burst of small jobs still spreads across workers.
    pub batch_max: usize,
    /// Start with the scheduler paused: jobs are admitted (and counted
    /// against `queue_capacity`) but no worker picks any up until
    /// [`crate::EigenService::resume`]. Used for drain/maintenance
    /// windows and for deterministic queue-state tests.
    pub paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            queue_capacity: 256,
            batch_floor: 64,
            batch_max: 16,
            paused: false,
        }
    }
}

impl ServiceConfig {
    /// The defaults with every `CA_*` service knob applied on top (see
    /// the module docs for the knob table).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(w) = ca_obs::knobs::usize_env("CA_SERVICE_WORKERS") {
            cfg.workers = w;
        }
        if let Some(cap) = ca_obs::knobs::usize_env("CA_QUEUE_CAP") {
            cfg.queue_capacity = cap;
        }
        if let Some(floor) = ca_obs::knobs::usize_env("CA_BATCH_FLOOR") {
            cfg.batch_floor = floor;
        }
        cfg
    }

    /// Number of worker threads, with the ≥ 1 clamp applied.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Queue capacity, with the ≥ 1 clamp applied.
    pub fn effective_capacity(&self) -> usize {
        self.queue_capacity.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.batch_max >= 1);
        assert!(!cfg.paused);
    }

    #[test]
    fn env_overrides_apply() {
        // Serialized through distinct var names is not possible here
        // (the knobs are fixed), so set and remove around the read;
        // sibling tests in this crate do not touch these vars.
        std::env::set_var("CA_SERVICE_WORKERS", "3");
        std::env::set_var("CA_QUEUE_CAP", "11");
        std::env::set_var("CA_BATCH_FLOOR", "17");
        let cfg = ServiceConfig::from_env();
        std::env::remove_var("CA_SERVICE_WORKERS");
        std::env::remove_var("CA_QUEUE_CAP");
        std::env::remove_var("CA_BATCH_FLOOR");
        assert_eq!((cfg.workers, cfg.queue_capacity, cfg.batch_floor), (3, 11, 17));
    }
}
