//! Always-on service metrics plus `ca_obs` counter mirrors.
//!
//! The service keeps its own relaxed atomics (cheap enough to be
//! unconditional — a handful of `fetch_add`s per job next to a solve
//! that runs millions of flops) so `EigenService::stats` works without
//! tracing enabled. When `CA_TRACE ≥ 1`, the same events also feed the
//! process-global [`ca_obs::Counter`] registry, where they appear next
//! to the kernel counters in trace summaries: `service.submitted`,
//! `service.completed`, `service.failed`, `service.queue_rejected`,
//! `service.deadline_missed`, `service.batches`,
//! `service.batched_jobs`, `service.queue_depth_peak`,
//! `service.queue_wait_us`, `service.solve_us`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

static OBS_SUBMITTED: ca_obs::Counter = ca_obs::Counter::new("service.submitted");
static OBS_COMPLETED: ca_obs::Counter = ca_obs::Counter::new("service.completed");
static OBS_FAILED: ca_obs::Counter = ca_obs::Counter::new("service.failed");
static OBS_REJECTED: ca_obs::Counter = ca_obs::Counter::new("service.queue_rejected");
static OBS_DEADLINE: ca_obs::Counter = ca_obs::Counter::new("service.deadline_missed");
static OBS_BATCHES: ca_obs::Counter = ca_obs::Counter::new("service.batches");
static OBS_BATCHED_JOBS: ca_obs::Counter = ca_obs::Counter::new("service.batched_jobs");
static OBS_DEPTH_PEAK: ca_obs::Counter = ca_obs::Counter::new("service.queue_depth_peak");
static OBS_WAIT_US: ca_obs::Counter = ca_obs::Counter::new("service.queue_wait_us");
static OBS_SOLVE_US: ca_obs::Counter = ca_obs::Counter::new("service.solve_us");

/// Internal per-service counters (one instance per [`crate::EigenService`]).
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    deadline_missed: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    queue_depth_peak: AtomicU64,
    queue_wait_us: AtomicU64,
    solve_us: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn record_submit(&self, depth_after: usize) {
        self.submitted.fetch_add(1, Relaxed);
        self.queue_depth_peak.fetch_max(depth_after as u64, Relaxed);
        OBS_SUBMITTED.add(1);
        OBS_DEPTH_PEAK.record_max(depth_after as u64);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Relaxed);
        OBS_REJECTED.add(1);
    }

    pub(crate) fn record_deadline_missed(&self) {
        self.deadline_missed.fetch_add(1, Relaxed);
        OBS_DEADLINE.add(1);
    }

    pub(crate) fn record_wait(&self, waited: Duration) {
        self.queue_wait_us.fetch_add(waited.as_micros() as u64, Relaxed);
        OBS_WAIT_US.add(waited.as_micros() as u64);
    }

    pub(crate) fn record_solve(&self, took: Duration, ok: bool) {
        self.solve_us.fetch_add(took.as_micros() as u64, Relaxed);
        OBS_SOLVE_US.add(took.as_micros() as u64);
        if ok {
            self.completed.fetch_add(1, Relaxed);
            OBS_COMPLETED.add(1);
        } else {
            self.failed.fetch_add(1, Relaxed);
            OBS_FAILED.add(1);
        }
    }

    pub(crate) fn record_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Relaxed);
        OBS_BATCHES.add(1);
        OBS_BATCHED_JOBS.add(jobs as u64);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Relaxed),
            completed: self.completed.load(Relaxed),
            failed: self.failed.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            deadline_missed: self.deadline_missed.load(Relaxed),
            batches: self.batches.load(Relaxed),
            batched_jobs: self.batched_jobs.load(Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Relaxed),
            queue_wait_us: self.queue_wait_us.load(Relaxed),
            solve_us: self.solve_us.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a service's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs whose solve returned `Ok`.
    pub completed: u64,
    /// Jobs whose solve returned a typed error (bad input, convergence).
    pub failed: u64,
    /// Submissions rejected by admission control (queue full).
    pub rejected: u64,
    /// Jobs cancelled because their deadline passed while queued.
    pub deadline_missed: u64,
    /// Coalesced batches executed (each covering ≥ 2 jobs).
    pub batches: u64,
    /// Jobs that ran inside a coalesced batch.
    pub batched_jobs: u64,
    /// High-water mark of the pending-queue depth.
    pub queue_depth_peak: u64,
    /// Summed queue-wait time across started/cancelled jobs, µs.
    pub queue_wait_us: u64,
    /// Summed solve wall time, µs.
    pub solve_us: u64,
}

impl StatsSnapshot {
    /// Every admitted job is accounted for: completed, failed, or
    /// deadline-cancelled. Holds exactly when the service is idle (no
    /// job in flight).
    pub fn accounted(&self) -> u64 {
        self.completed + self.failed + self.deadline_missed
    }
}
