//! # ca-service — batched, multi-tenant eigensolver serving
//!
//! The research driver solves exactly one eigenproblem per process
//! invocation. This crate turns it into a reusable serving substrate:
//! an [`EigenService`] owns a shared pool of worker threads, accepts
//! many independent [`SymmEigenJob`]s (values-only or with vectors,
//! heterogeneous `n`, per-job engine choice), applies admission control
//! over a bounded queue, cancels jobs whose scheduling deadline passes
//! ([`EigenError::Deadline`]), and **coalesces** small problems (below
//! the `CA_BATCH_FLOOR` knob) into batched leaf solves that amortize
//! per-solve overheads across a batch — the amortization the paper's
//! cost model rewards.
//!
//! ## Determinism
//!
//! Results are **bit-identical to solo runs** regardless of
//! concurrency, interleaving, batching, or `CA_SERIAL`, by
//! construction (see DESIGN.md §6f):
//!
//! 1. every job executes through exactly one function,
//!    [`ca_eigen::solve_job`], which a solo reference run calls
//!    directly — the service adds scheduling around it, never
//!    arithmetic;
//! 2. each job gets a **fresh virtual machine** (its own metered
//!    ledger) and the solver shares no mutable numerical state between
//!    jobs — thread-local workspace arenas hand out zero-filled
//!    buffers ([`ca_dla::workspace`] is re-entrant for exactly this
//!    use), so a warm arena is numerically indistinguishable from a
//!    cold one;
//! 3. the configuration knobs are **snapshotted once per service
//!    instance** ([`KnobSnapshot`]) and pinned around every solve via
//!    [`ca_dla::tune::with_knobs`], so a process-global knob flip
//!    mid-batch cannot split a batch's configuration;
//! 4. the solver itself is interleaving-independent: its cost ledger
//!    is commutative-atomic and its parallel schedules are
//!    bit-identical to serial execution (pinned by the repo's
//!    determinism suites).
//!
//! The differential suite (`tests/service_differential.rs`) and the
//! concurrency stress suite (`tests/service_stress.rs`) enforce this
//! end to end.
//!
//! ## Quick start
//!
//! ```
//! use ca_service::{EigenService, ServiceConfig};
//! use ca_eigen::SymmEigenJob;
//! use ca_dla::gen;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let service = EigenService::new(ServiceConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = gen::symmetric_with_spectrum(&mut rng, &gen::linspace_spectrum(32, -1.0, 1.0));
//! let ticket = service.submit(SymmEigenJob::values(a, 4, 1)).unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.eigenvalues.len(), 32);
//! ```

#![warn(missing_docs)]

mod config;
mod stats;

pub use config::ServiceConfig;
pub use stats::StatsSnapshot;

pub use ca_dla::tune::KnobSnapshot;
pub use ca_eigen::{solve_job, Engine, EigenError, JobResult, SymmEigenJob};

use stats::ServiceStats;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One entry waiting in the admission queue.
struct QueuedJob {
    job: SymmEigenJob,
    slot: Arc<Slot>,
    id: u64,
    submitted: Instant,
}

/// The rendezvous cell a [`JobTicket`] waits on.
#[derive(Debug)]
struct Slot {
    cell: Mutex<Option<Result<JobResult, EigenError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self { cell: Mutex::new(None), cv: Condvar::new() })
    }

    fn fulfill(&self, res: Result<JobResult, EigenError>) {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        *cell = Some(res);
        self.cv.notify_all();
    }
}

/// Mutable scheduler state behind the service mutex.
struct State {
    queue: VecDeque<QueuedJob>,
    paused: bool,
    closed: bool,
}

/// State shared between the service handle and its workers.
struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives, the pause flag clears, or the
    /// service closes.
    cv: Condvar,
    config: ServiceConfig,
    knobs: KnobSnapshot,
    stats: ServiceStats,
}

/// Claim ticket for a submitted job; redeem with [`JobTicket::wait`].
#[derive(Debug)]
pub struct JobTicket {
    slot: Arc<Slot>,
    id: u64,
    submitted: Instant,
}

impl JobTicket {
    /// Monotonically increasing submission id (order of admission).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Time since the job was admitted.
    pub fn elapsed(&self) -> std::time::Duration {
        self.submitted.elapsed()
    }

    /// Whether the result is already available (`wait` would not block).
    pub fn is_done(&self) -> bool {
        self.slot
            .cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Block until the job completes and return its result. Never loses
    /// a job: every admitted ticket is eventually fulfilled — with the
    /// solve's output, a typed solve error, [`EigenError::Deadline`],
    /// or [`EigenError::ServiceShutdown`] if the service drops its
    /// queue before the job starts (it does not: shutdown drains).
    pub fn wait(self) -> Result<JobResult, EigenError> {
        let mut cell = self.slot.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(res) = cell.take() {
                return res;
            }
            cell = self.slot.cv.wait(cell).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A batched, multi-tenant eigensolver front-end. See the crate docs.
pub struct EigenService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl EigenService {
    /// A service with the given configuration, snapshotting the engine
    /// knobs (`CA_DNC`, `CA_DNC_LEAF`, `CA_HALVE_FLOOR`, `CA_SERIAL`)
    /// **once, now**: every job this instance ever runs executes under
    /// this frozen configuration, no matter what the process globals do
    /// later.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_knobs(config, KnobSnapshot::capture())
    }

    /// [`EigenService::new`] with an explicit knob snapshot — the
    /// multi-tenant entry point (two tenants can run different frozen
    /// configurations side by side in one process).
    pub fn with_knobs(config: ServiceConfig, knobs: KnobSnapshot) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                paused: config.paused,
                closed: false,
            }),
            cv: Condvar::new(),
            config,
            knobs,
            stats: ServiceStats::default(),
        });
        let workers = (0..shared.config.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ca-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A service configured from the `CA_*` environment knobs (see
    /// [`ServiceConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(ServiceConfig::from_env())
    }

    /// Admit one job. Returns a [`JobTicket`] on admission;
    /// [`EigenError::QueueFull`] when the bounded queue is at capacity,
    /// [`EigenError::ServiceShutdown`] when the service is closing.
    /// Admission is O(1) — input validation runs on the worker, so a
    /// malformed matrix still costs its submitter (not the queue) and
    /// surfaces through the ticket.
    pub fn submit(&self, job: SymmEigenJob) -> Result<JobTicket, EigenError> {
        let slot = Slot::new();
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let submitted = Instant::now();
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.closed {
                return Err(EigenError::ServiceShutdown);
            }
            let cap = self.shared.config.effective_capacity();
            if st.queue.len() >= cap {
                self.shared.stats.record_rejected();
                return Err(EigenError::QueueFull { capacity: cap });
            }
            st.queue.push_back(QueuedJob {
                job,
                slot: Arc::clone(&slot),
                id,
                submitted,
            });
            self.shared.stats.record_submit(st.queue.len());
        }
        self.shared.cv.notify_one();
        Ok(JobTicket { slot, id, submitted })
    }

    /// Submit every job, preserving order; each element is that job's
    /// admission outcome.
    pub fn submit_batch(
        &self,
        jobs: impl IntoIterator<Item = SymmEigenJob>,
    ) -> Vec<Result<JobTicket, EigenError>> {
        jobs.into_iter().map(|j| self.submit(j)).collect()
    }

    /// Submit every job and wait for all results, preserving order —
    /// the synchronous batch entry point.
    pub fn solve_batch(
        &self,
        jobs: impl IntoIterator<Item = SymmEigenJob>,
    ) -> Vec<Result<JobResult, EigenError>> {
        let tickets = self.submit_batch(jobs);
        tickets
            .into_iter()
            .map(|t| t.and_then(JobTicket::wait))
            .collect()
    }

    /// Stop dispatching queued jobs (in-flight solves finish; admission
    /// stays open). Idempotent.
    pub fn pause(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.paused = true;
    }

    /// Resume dispatch after [`EigenService::pause`] (or a paused
    /// construction). Idempotent.
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.paused = false;
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Jobs currently waiting in the admission queue (excludes
    /// in-flight solves).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// The frozen configuration snapshot every job runs under.
    pub fn knobs(&self) -> KnobSnapshot {
        self.shared.knobs
    }

    /// The service's construction-time configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Point-in-time metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: closes admission, lets the workers drain
    /// every already-admitted job (fulfilling all outstanding tickets),
    /// and joins them. Also runs on `Drop`.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.closed = true;
            // A paused service must still drain on shutdown, or the
            // join below would deadlock against workers waiting for
            // `resume`.
            st.paused = false;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for EigenService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Claim the dequeued job's coalesced batch: if `first` is below the
/// batch floor, also claim every other queued sub-floor job (up to
/// `batch_max`), leaving larger jobs queued for other workers. Runs
/// under the state lock.
fn claim_batch(st: &mut State, first: QueuedJob, config: &ServiceConfig) -> Vec<QueuedJob> {
    let mut batch = vec![first];
    if config.batch_floor > 0 && batch[0].job.n() < config.batch_floor {
        let mut i = 0;
        while i < st.queue.len() && batch.len() < config.batch_max.max(1) {
            if st.queue[i].job.n() < config.batch_floor {
                batch.push(st.queue.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
    }
    batch
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !st.paused || st.closed {
                    if let Some(first) = st.queue.pop_front() {
                        break claim_batch(&mut st, first, &shared.config);
                    }
                    if st.closed {
                        return;
                    }
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if batch.len() > 1 {
            shared.stats.record_batch(batch.len());
            let _span = ca_obs::span(&format!("service.batch x{}", batch.len()));
            for q in batch {
                run_one(shared, q);
            }
        } else {
            for q in batch {
                run_one(shared, q);
            }
        }
    }
}

/// Execute (or deadline-cancel) one claimed job and fulfill its ticket.
fn run_one(shared: &Shared, q: QueuedJob) {
    let waited = q.submitted.elapsed();
    shared.stats.record_wait(waited);
    let res = match q.job.timeout {
        // Deadlines bound scheduling delay: a job still queued past its
        // timeout is cancelled *before* any work runs. Once a solve
        // starts it runs to completion — results are never discarded on
        // wall-clock grounds, keeping outcomes timing-independent.
        Some(t) if waited > t => {
            shared.stats.record_deadline_missed();
            Err(EigenError::Deadline {
                timeout_ms: t.as_millis() as u64,
                waited_ms: waited.as_millis() as u64,
            })
        }
        _ => {
            let _span = ca_obs::span(&format!(
                "service.job id={} n={} {}{}",
                q.id,
                q.job.n(),
                q.job.engine.name(),
                if q.job.want_vectors { " +v" } else { "" }
            ));
            let t0 = Instant::now();
            let r = solve_job(&q.job, shared.knobs);
            shared.stats.record_solve(t0.elapsed(), r.is_ok());
            r
        }
    };
    q.slot.fulfill(res);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_dla::gen;
    use ca_dla::tridiag::spectrum_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn job(n: usize, seed: u64) -> (SymmEigenJob, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spectrum = gen::linspace_spectrum(n, -2.0, 2.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        (SymmEigenJob::values(a, 4, 1), spectrum)
    }

    fn small_service(workers: usize, cap: usize) -> EigenService {
        EigenService::new(ServiceConfig {
            workers,
            queue_capacity: cap,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn single_job_roundtrip() {
        let service = small_service(2, 8);
        let (j, spectrum) = job(24, 1);
        let out = service.submit(j).unwrap().wait().unwrap();
        assert!(spectrum_distance(&out.eigenvalues, &spectrum) < 1e-8);
        let stats = service.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
    }

    #[test]
    fn batch_of_mixed_sizes_all_complete() {
        let service = small_service(3, 64);
        let jobs: Vec<_> = (0..12).map(|i| job(8 + 5 * i, 100 + i as u64).0).collect();
        let results = service.solve_batch(jobs);
        assert_eq!(results.len(), 12);
        for (i, r) in results.iter().enumerate() {
            let out = r.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
            assert_eq!(out.eigenvalues.len(), 8 + 5 * i);
        }
        let stats = service.stats();
        assert_eq!(stats.accounted(), 12);
    }

    #[test]
    fn queue_full_is_a_typed_error() {
        // Paused service: nothing is dequeued, so the third submission
        // must hit the capacity-2 bound deterministically.
        let service = EigenService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            paused: true,
            ..ServiceConfig::default()
        });
        let t1 = service.submit(job(8, 2).0).unwrap();
        let t2 = service.submit(job(8, 3).0).unwrap();
        match service.submit(job(8, 4).0) {
            Err(EigenError::QueueFull { capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(service.stats().rejected, 1);
        service.resume();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
    }

    #[test]
    fn expired_deadline_cancels_without_solving() {
        let service = EigenService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            paused: true,
            ..ServiceConfig::default()
        });
        let t = service
            .submit(job(16, 5).0.timeout(Duration::ZERO))
            .unwrap();
        // Let the (zero) deadline pass while the scheduler is paused.
        std::thread::sleep(Duration::from_millis(2));
        service.resume();
        match t.wait() {
            Err(EigenError::Deadline { timeout_ms: 0, .. }) => {}
            other => panic!("expected Deadline, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!((stats.deadline_missed, stats.completed), (1, 0));
    }

    #[test]
    fn coalescing_batches_small_jobs() {
        // Paused service with one worker: queue 6 sub-floor jobs, then
        // resume — the worker must claim them as one coalesced batch.
        let service = EigenService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            batch_floor: 64,
            batch_max: 16,
            paused: true,
        });
        let tickets: Vec<_> = (0..6)
            .map(|i| service.submit(job(10 + i, 20 + i as u64).0).unwrap())
            .collect();
        service.resume();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 1, "6 queued sub-floor jobs → one batch");
        assert_eq!(stats.batched_jobs, 6);
    }

    #[test]
    fn oversize_jobs_bypass_coalescing() {
        let service = EigenService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            batch_floor: 16,
            batch_max: 16,
            paused: true,
        });
        let tickets: Vec<_> = [24usize, 8, 32, 9]
            .into_iter()
            .enumerate()
            .map(|(i, n)| service.submit(job(n, 40 + i as u64).0).unwrap())
            .collect();
        service.resume();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = service.stats();
        // The two sub-floor jobs (8, 9) coalesce when the worker reaches
        // the first of them; the n=24/32 jobs run singly.
        assert_eq!(stats.batched_jobs, 2);
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let service = small_service(2, 32);
        let tickets: Vec<_> = (0..6)
            .map(|i| service.submit(job(12 + i, 60 + i as u64).0).unwrap())
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "shutdown must drain admitted jobs");
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = small_service(1, 4);
        // Close via an aliased handle pattern: shutdown consumes, so
        // emulate late submission by closing the shared state first.
        {
            let mut st = service.shared.state.lock().unwrap();
            st.closed = true;
        }
        match service.submit(job(8, 70).0) {
            Err(EigenError::ServiceShutdown) => {}
            other => panic!("expected ServiceShutdown, got {other:?}"),
        }
        // Reopen so Drop's join sees a consistent (already closed)
        // state; Drop re-closes idempotently.
    }

    #[test]
    fn service_results_are_bit_identical_to_solo() {
        let service = small_service(4, 32);
        let knobs = service.knobs();
        let jobs: Vec<_> = (0..8).map(|i| job(20 + 7 * i, 80 + i as u64).0).collect();
        let solo: Vec<_> = jobs
            .iter()
            .map(|j| solve_job(j, knobs).unwrap().eigenvalues)
            .collect();
        let served = service.solve_batch(jobs);
        for (s, r) in solo.iter().zip(&served) {
            let r = r.as_ref().unwrap();
            assert_eq!(
                s.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                r.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
