//! Symmetric banded matrix storage.
//!
//! Stores only the lower band of a symmetric matrix: entry `(i, j)` with
//! `j ≤ i ≤ j + cap` lives at `data[j·(cap+1) + (i − j)]`. The *capacity*
//! `cap` is chosen larger than the nominal bandwidth so bulge-chasing
//! fill (which transiently extends the band to at most `2b − h` during
//! Algorithm IV.2) fits without reallocation.

use crate::matrix::Matrix;

/// Symmetric banded matrix with lower-band storage and explicit fill
/// capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedSym {
    n: usize,
    /// Nominal bandwidth (entries beyond it may transiently be nonzero
    /// during a reduction, up to `cap`).
    bw: usize,
    /// Storage capacity: entries with `i − j > cap` are identically zero.
    cap: usize,
    /// Column-major band storage, `n` columns of height `cap + 1`.
    data: Vec<f64>,
    /// Running magnitude scale (largest |entry| ever stored), used to
    /// make the out-of-capacity zero-write check scale-relative.
    scale: f64,
}

impl BandedSym {
    /// Zero matrix of order `n` with nominal bandwidth `bw` and fill
    /// capacity `cap ≥ bw`.
    pub fn zeros(n: usize, bw: usize, cap: usize) -> Self {
        assert!(cap >= bw, "capacity must be at least the bandwidth");
        assert!(cap < n.max(1), "capacity must be below the dimension");
        Self {
            n,
            bw,
            cap,
            data: vec![0.0; n * (cap + 1)],
            scale: 0.0,
        }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal bandwidth.
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    /// Fill capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Update the nominal bandwidth (e.g. after a reduction step).
    pub fn set_bandwidth(&mut self, bw: usize) {
        assert!(bw <= self.cap);
        self.bw = bw;
    }

    /// Words of storage used.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// The raw band slab: entry `(i, j)` with `j ≤ i ≤ j + cap` lives at
    /// `bands()[j·(cap+1) + (i−j)]` (column-major lower bands). Exposed
    /// for kernels that stream the bands directly (e.g. the row-sliced
    /// parallel [`crate::sym::symv_banded`]).
    #[inline]
    pub fn bands(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw band slab together with the scale high-water mark,
    /// for crate kernels that stream bands directly (the zero-copy
    /// chase write-back). Callers take over [`BandedSym::set`]'s
    /// contract: raise the scale to cover every value written, and
    /// never store a non-negligible value beyond the capacity.
    #[inline]
    pub(crate) fn bands_mut_scale(&mut self) -> (&mut [f64], &mut f64) {
        (&mut self.data, &mut self.scale)
    }

    /// Entry `(i, j)`; symmetric access (either triangle).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        if hi - lo > self.cap {
            0.0
        } else {
            self.data[lo * (self.cap + 1) + (hi - lo)]
        }
    }

    /// Set entry `(i, j)` (and its mirror). Setting beyond the capacity
    /// is permitted only for (numerically) zero values relative to the
    /// matrix's magnitude — this doubles as a runtime check of the
    /// paper's fill analysis.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        if hi - lo > self.cap {
            assert!(
                v.abs() < 1e-9 * self.scale.max(1.0),
                "write of {v:.3e} outside band capacity at ({i},{j}): fill analysis violated"
            );
            return;
        }
        if v.abs() > self.scale {
            self.scale = v.abs();
        }
        self.data[lo * (self.cap + 1) + (hi - lo)] = v;
    }

    /// Convert a dense symmetric matrix with bandwidth ≤ `bw` into band
    /// storage.
    pub fn from_dense(a: &Matrix, bw: usize, cap: usize) -> Self {
        let n = a.rows();
        assert_eq!(n, a.cols());
        let mut b = Self::zeros(n, bw, cap);
        for j in 0..n {
            for i in j..n.min(j + cap + 1) {
                b.set(i, j, a.get(i, j));
            }
        }
        debug_assert!(
            a.bandwidth(1e-12) <= bw,
            "dense input has bandwidth {} > {}",
            a.bandwidth(1e-12),
            bw
        );
        b
    }

    /// Expand to a dense symmetric matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for i in j..self.n.min(j + self.cap + 1) {
                let v = self.get(i, j);
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        a
    }

    /// Extract the dense symmetric window `lo..hi` (half-open) as a full
    /// (nonsymmetric-storage) matrix.
    pub fn window(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.n);
        let s = hi - lo;
        let mut w = Matrix::zeros(s, s);
        for j in 0..s {
            for i in j..s {
                let v = self.get(lo + i, lo + j);
                w.set(i, j, v);
                w.set(j, i, v);
            }
        }
        w
    }

    /// Write a dense symmetric window back into band storage. Entries of
    /// `w` outside the capacity must be (numerically) zero.
    pub fn set_window(&mut self, lo: usize, w: &Matrix) {
        let s = w.rows();
        assert_eq!(s, w.cols());
        assert!(lo + s <= self.n);
        for j in 0..s {
            for i in j..s {
                self.set(lo + i, lo + j, w.get(i, j));
            }
        }
    }

    /// Largest `i − j` with `|B[i,j]| > tol` (measured bandwidth).
    pub fn measured_bandwidth(&self, tol: f64) -> usize {
        let mut bw = 0;
        for j in 0..self.n {
            for i in j..self.n.min(j + self.cap + 1) {
                if self.get(i, j).abs() > tol {
                    bw = bw.max(i - j);
                }
            }
        }
        bw
    }

    /// Diagonal and first subdiagonal, for handing to the tridiagonal
    /// eigensolver once the bandwidth is 1.
    pub fn tridiagonal(&self) -> (Vec<f64>, Vec<f64>) {
        let d: Vec<f64> = (0..self.n).map(|i| self.get(i, i)).collect();
        let e: Vec<f64> = (1..self.n).map(|i| self.get(i, i - 1)).collect();
        (d, e)
    }

    /// Frobenius norm (accounting for symmetry).
    pub fn norm_fro(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.n {
            for i in j..self.n.min(j + self.cap + 1) {
                let v = self.get(i, j);
                s += if i == j { v * v } else { 2.0 * v * v };
            }
        }
        s.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_roundtrip() {
        let mut rng = StdRng::seed_from_u64(30);
        let a = gen::random_banded(&mut rng, 12, 3);
        let b = BandedSym::from_dense(&a, 3, 5);
        assert!(b.to_dense().max_diff(&a) < 1e-15);
        assert_eq!(b.measured_bandwidth(1e-14), 3);
    }

    #[test]
    fn symmetric_get_set() {
        let mut b = BandedSym::zeros(6, 2, 3);
        b.set(4, 2, 7.5);
        assert_eq!(b.get(4, 2), 7.5);
        assert_eq!(b.get(2, 4), 7.5);
        b.set(1, 3, -2.0);
        assert_eq!(b.get(3, 1), -2.0);
    }

    #[test]
    fn out_of_capacity_reads_zero() {
        let b = BandedSym::zeros(8, 1, 2);
        assert_eq!(b.get(7, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fill analysis violated")]
    fn out_of_capacity_nonzero_write_panics() {
        let mut b = BandedSym::zeros(8, 1, 2);
        b.set(7, 0, 1.0);
    }

    #[test]
    fn window_roundtrip() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = gen::random_banded(&mut rng, 10, 2);
        let mut b = BandedSym::from_dense(&a, 2, 4);
        let w = b.window(3, 8);
        assert_eq!(w.rows(), 5);
        assert_eq!(w.get(1, 0), a.get(4, 3));
        assert_eq!(w.asymmetry(), 0.0);
        b.set_window(3, &w);
        assert!(b.to_dense().max_diff(&a) < 1e-15);
    }

    #[test]
    fn tridiagonal_extraction() {
        let a = gen::laplacian_2d(5, 1); // 1D laplacian: tridiagonal
        let b = BandedSym::from_dense(&a, 1, 1);
        let (d, e) = b.tridiagonal();
        assert_eq!(d, vec![4.0; 5]);
        assert_eq!(e, vec![-1.0; 4]);
    }

    #[test]
    fn norm_fro_matches_dense() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = gen::random_banded(&mut rng, 15, 4);
        let b = BandedSym::from_dense(&a, 4, 6);
        assert!((b.norm_fro() - a.norm_fro()).abs() < 1e-12);
    }
}
