//! Reusable per-thread scratch arenas for the hot sequential kernels.
//!
//! A [`Workspace`] is a pool of `Vec<f64>` buffers with checkout/return
//! semantics: [`Workspace::take`] hands out a zeroed buffer (reusing a
//! pooled allocation with sufficient capacity when one exists) and
//! [`Workspace::put`] returns it. After a warm-up pass over a kernel's
//! buffer-size profile the pool's capacities converge and steady-state
//! execution performs **zero heap allocations** — the property the
//! bulge-chase pipeline needs, since it runs `O(n²/bh)` ops each wanting
//! half a dozen scratch panels.
//!
//! One arena lives in thread-local storage ([`with_ws`]); every real
//! thread — including each thread `ca-pla`'s superstep executor spawns —
//! therefore owns exactly one arena, and no synchronization is ever
//! needed. Entry points acquire the arena once via [`with_ws`] and pass
//! `&mut Workspace` down the call tree; nested `with_ws` from inside such
//! a scope would panic on the `RefCell`, which is exactly the discipline
//! check we want.
//!
//! Determinism: buffer reuse never changes numerics — [`Workspace::take`]
//! zero-fills, so a kernel sees bitwise the same initial state as with a
//! fresh allocation.

use std::cell::RefCell;

// Trace counters (live only when `CA_TRACE ≥ 1`; otherwise one relaxed
// load each — the steady-state allocation tests run with tracing off
// and still see zero heap traffic here).
static WS_CHECKOUTS: ca_obs::Counter = ca_obs::Counter::new("workspace.checkouts");
static WS_GROWS: ca_obs::Counter = ca_obs::Counter::new("workspace.grows");
static WS_HIGH_WATER: ca_obs::Counter = ca_obs::Counter::new("workspace.high_water_words");

/// Checkout counters exposed for the steady-state allocation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total number of `take` calls.
    pub checkouts: u64,
    /// Number of `take` calls that had to allocate or grow a buffer.
    /// Constant across repeated identical workloads ⇒ steady state is
    /// allocation-free.
    pub grows: u64,
    /// Buffers currently sitting in the pool.
    pub pooled: usize,
}

/// A bump-style pool of reusable `f64` buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    checkouts: u64,
    grows: u64,
}

impl Workspace {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a zeroed buffer of exactly `len` elements. Prefers the
    /// pooled buffer with the smallest sufficient capacity; if none
    /// fits, grows the largest pooled buffer (or allocates afresh when
    /// the pool is empty), counting a `grow`.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        self.checkouts += 1;
        WS_CHECKOUTS.add(1);
        WS_HIGH_WATER.record_max(len as u64);
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        let mut largest: Option<(usize, usize)> = None;
        for (idx, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((idx, cap));
            }
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        let mut buf = match best.or(largest) {
            Some((idx, _)) => self.pool.swap_remove(idx),
            None => Vec::new(),
        };
        if buf.capacity() < len {
            self.grows += 1;
            WS_GROWS.add(1);
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Current counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            checkouts: self.checkouts,
            grows: self.grows,
            pooled: self.pool.len(),
        }
    }
}

thread_local! {
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Run `f` with exclusive access to this thread's arena.
///
/// Only *entry points* may call this; helpers below them must thread the
/// `&mut Workspace` through instead (a nested `with_ws` panics on the
/// `RefCell` borrow, deliberately).
pub fn with_ws<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|cell| f(&mut cell.borrow_mut()))
}

/// Counters of this thread's arena (for tests and diagnostics).
pub fn thread_ws_stats() -> WorkspaceStats {
    THREAD_WS.with(|cell| cell.borrow().stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_and_reuses() {
        let mut ws = Workspace::new();
        let mut a = ws.take(16);
        a.iter_mut().for_each(|v| *v = 3.0);
        ws.put(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer not zeroed");
        assert_eq!(ws.stats().grows, 1, "second take must reuse the first buffer");
        ws.put(b);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warm-up pass over a mixed size profile.
        for &len in &[32usize, 7, 64, 15] {
            let b = ws.take(len);
            ws.put(b);
        }
        let grows_after_warmup = ws.stats().grows;
        // Steady state: the same profile must not grow anything.
        for _ in 0..10 {
            for &len in &[32usize, 7, 64, 15] {
                let b = ws.take(len);
                ws.put(b);
            }
        }
        assert_eq!(ws.stats().grows, grows_after_warmup);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let big = ws.take(100);
        let small = ws.take(10);
        ws.put(big);
        ws.put(small);
        let got = ws.take(5);
        assert!(got.capacity() < 100, "best-fit should pick the small buffer");
        ws.put(got);
    }

    #[test]
    fn thread_local_arena_accumulates() {
        let before = thread_ws_stats().checkouts;
        with_ws(|ws| {
            let b = ws.take(4);
            ws.put(b);
        });
        assert_eq!(thread_ws_stats().checkouts, before + 1);
    }
}
