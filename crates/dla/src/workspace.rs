//! Reusable per-thread scratch arenas for the hot sequential kernels.
//!
//! A [`Workspace`] is a pool of `Vec<f64>` buffers with checkout/return
//! semantics: [`Workspace::take`] hands out a zeroed buffer (reusing a
//! pooled allocation with sufficient capacity when one exists) and
//! [`Workspace::put`] returns it. After a warm-up pass over a kernel's
//! buffer-size profile the pool's capacities converge and steady-state
//! execution performs **zero heap allocations** — the property the
//! bulge-chase pipeline needs, since it runs `O(n²/bh)` ops each wanting
//! half a dozen scratch panels.
//!
//! Arenas live in a thread-local *checkout stack* ([`with_ws`]); every
//! real thread — including each thread `ca-pla`'s superstep executor
//! spawns, and each worker thread of the `ca-service` job scheduler —
//! owns its own stack, so no synchronization is ever needed. Entry
//! points acquire an arena via [`with_ws`] and pass `&mut Workspace`
//! down the call tree. The checkout is **re-entrant**: a nested
//! [`with_ws`] (an entry point reached from inside another entry
//! point's scope — e.g. a coalesced batch solve running whole solver
//! invocations on one long-lived service worker thread) checks out its
//! own arena from the stack instead of panicking on a `RefCell` borrow
//! as the pre-service implementation did. Arenas return to the stack
//! LIFO, so repeated workloads at any nesting depth reuse the same warm
//! arenas and steady-state execution stays allocation-free.
//!
//! Determinism: buffer reuse never changes numerics — [`Workspace::take`]
//! zero-fills, so a kernel sees bitwise the same initial state as with a
//! fresh allocation.

use std::cell::RefCell;

// Trace counters (live only when `CA_TRACE ≥ 1`; otherwise one relaxed
// load each — the steady-state allocation tests run with tracing off
// and still see zero heap traffic here).
static WS_CHECKOUTS: ca_obs::Counter = ca_obs::Counter::new("workspace.checkouts");
static WS_GROWS: ca_obs::Counter = ca_obs::Counter::new("workspace.grows");
static WS_HIGH_WATER: ca_obs::Counter = ca_obs::Counter::new("workspace.high_water_words");

/// Checkout counters exposed for the steady-state allocation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total number of `take` calls.
    pub checkouts: u64,
    /// Number of `take` calls that had to allocate or grow a buffer.
    /// Constant across repeated identical workloads ⇒ steady state is
    /// allocation-free.
    pub grows: u64,
    /// Buffers currently sitting in the pool.
    pub pooled: usize,
}

/// A bump-style pool of reusable `f64` buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    checkouts: u64,
    grows: u64,
}

impl Workspace {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a zeroed buffer of exactly `len` elements. Prefers the
    /// pooled buffer with the smallest sufficient capacity; if none
    /// fits, grows the largest pooled buffer (or allocates afresh when
    /// the pool is empty), counting a `grow`.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        self.checkouts += 1;
        WS_CHECKOUTS.add(1);
        WS_HIGH_WATER.record_max(len as u64);
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        let mut largest: Option<(usize, usize)> = None;
        for (idx, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((idx, cap));
            }
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        let mut buf = match best.or(largest) {
            Some((idx, _)) => self.pool.swap_remove(idx),
            None => Vec::new(),
        };
        if buf.capacity() < len {
            self.grows += 1;
            WS_GROWS.add(1);
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Current counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            checkouts: self.checkouts,
            grows: self.grows,
            pooled: self.pool.len(),
        }
    }
}

thread_local! {
    /// Parked arenas available for checkout on this thread (LIFO).
    /// Depth > 1 only materializes under nested [`with_ws`] scopes; the
    /// common case is a single arena parked between entry points.
    static THREAD_WS: RefCell<Vec<Workspace>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with exclusive access to an arena checked out from this
/// thread's stack.
///
/// Entry points call this; helpers below them must thread the
/// `&mut Workspace` through instead (each nested `with_ws` checks out a
/// *separate* arena, so scratch buffers pooled by the outer scope are
/// invisible to the inner one — correct, but it forfeits the warm-pool
/// reuse that makes steady state allocation-free within one scope).
/// The checkout is re-entrant and panic-safe: if `f` unwinds, the
/// arena is dropped rather than returned, and the next checkout simply
/// starts cold.
pub fn with_ws<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    let mut ws = THREAD_WS
        .with(|cell| cell.borrow_mut().pop())
        .unwrap_or_default();
    let r = f(&mut ws);
    THREAD_WS.with(|cell| cell.borrow_mut().push(ws));
    r
}

/// Summed counters over every arena currently parked on this thread's
/// stack (for tests and diagnostics). Arenas inside an active
/// [`with_ws`] scope are counted once they return to the stack.
pub fn thread_ws_stats() -> WorkspaceStats {
    THREAD_WS.with(|cell| {
        let mut agg = WorkspaceStats::default();
        for ws in cell.borrow().iter() {
            let s = ws.stats();
            agg.checkouts += s.checkouts;
            agg.grows += s.grows;
            agg.pooled += s.pooled;
        }
        agg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_and_reuses() {
        let mut ws = Workspace::new();
        let mut a = ws.take(16);
        a.iter_mut().for_each(|v| *v = 3.0);
        ws.put(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer not zeroed");
        assert_eq!(ws.stats().grows, 1, "second take must reuse the first buffer");
        ws.put(b);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warm-up pass over a mixed size profile.
        for &len in &[32usize, 7, 64, 15] {
            let b = ws.take(len);
            ws.put(b);
        }
        let grows_after_warmup = ws.stats().grows;
        // Steady state: the same profile must not grow anything.
        for _ in 0..10 {
            for &len in &[32usize, 7, 64, 15] {
                let b = ws.take(len);
                ws.put(b);
            }
        }
        assert_eq!(ws.stats().grows, grows_after_warmup);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let big = ws.take(100);
        let small = ws.take(10);
        ws.put(big);
        ws.put(small);
        let got = ws.take(5);
        assert!(got.capacity() < 100, "best-fit should pick the small buffer");
        ws.put(got);
    }

    #[test]
    fn thread_local_arena_accumulates() {
        let before = thread_ws_stats().checkouts;
        with_ws(|ws| {
            let b = ws.take(4);
            ws.put(b);
        });
        assert_eq!(thread_ws_stats().checkouts, before + 1);
    }

    #[test]
    fn nested_checkout_is_reentrant_and_isolated() {
        with_ws(|outer| {
            let a = outer.take(32);
            // A nested entry point (e.g. a whole solver invocation
            // running inside a service batch scope) must get its own
            // arena, not panic and not see the outer pool.
            let inner_pooled = with_ws(|inner| {
                let b = inner.take(16);
                assert!(b.iter().all(|&v| v == 0.0));
                inner.put(b);
                inner.stats().pooled
            });
            assert_eq!(inner_pooled, 1);
            outer.put(a);
        });
        // Both arenas parked again; a fresh checkout reuses the warm
        // one pushed last (the outer arena) without growing.
        with_ws(|ws| {
            let grows = ws.stats().grows;
            let buf = ws.take(32);
            assert_eq!(ws.stats().grows, grows, "warm arena must not grow for 32");
            ws.put(buf);
        });
    }

    #[test]
    fn steady_state_across_scopes_reuses_one_arena() {
        // Repeated non-nested scopes (the service worker-loop shape)
        // keep hitting the same warm arena: grows stay constant after
        // the first pass.
        for _ in 0..3 {
            with_ws(|ws| {
                let b = ws.take(64);
                ws.put(b);
            });
        }
        let grows = thread_ws_stats().grows;
        for _ in 0..10 {
            with_ws(|ws| {
                let b = ws.take(64);
                ws.put(b);
            });
        }
        assert_eq!(thread_ws_stats().grows, grows);
    }
}
