//! Zero-copy strided views over row-major `f64` storage.
//!
//! A view is `(data, rows, cols, stride)` with `stride ≥ cols`: row `i`
//! occupies `data[i·stride .. i·stride + cols]`. Views let the hot
//! kernels (blocked QR panels, bulge-chase windows, GEMM operands and
//! accumulation targets) operate directly on sub-blocks of a [`Matrix`]
//! or on [`crate::workspace`] buffers instead of `block()`/`set_block()`
//! round-trips.
//!
//! ## Invariants
//!
//! * `stride ≥ cols`, and for a non-empty view the backing slice holds
//!   at least `(rows − 1)·stride + cols` elements (checked at
//!   construction).
//! * A view never aliases another *mutable* view: sub-views borrow the
//!   parent, so the borrow checker enforces exclusivity. Kernels that
//!   need two disjoint windows of one matrix take them sequentially.
//! * Element identity: view entry `(i, j)` *is* parent entry
//!   `(r0 + i, c0 + j)` — kernels running on views therefore perform
//!   bitwise the same arithmetic as on extracted copies.

use crate::matrix::Matrix;

/// Immutable row-major strided matrix view.
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    stride: usize,
}

/// Number of backing elements a `rows × cols` view with `stride` spans.
#[inline]
fn span(rows: usize, cols: usize, stride: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        (rows - 1) * stride + cols
    }
}

impl<'a> MatrixView<'a> {
    /// View over a raw slice; `data` must hold at least
    /// `(rows−1)·stride + cols` elements (for a non-empty shape).
    pub fn new(data: &'a [f64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "view stride below column count");
        assert!(data.len() >= span(rows, cols, stride), "view data too short");
        Self { data, rows, cols, stride }
    }

    /// Full view of a contiguous buffer interpreted as `rows × cols`.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize) -> Self {
        Self::new(data, rows, cols, cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backing slice (starting at this view's `(0, 0)`).
    #[inline]
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Row `i` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Sub-view of rows `r0..r0+nr`, columns `c0..c0+nc`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub-view out of range");
        let start = if nr == 0 || nc == 0 { 0 } else { r0 * self.stride + c0 };
        MatrixView::new(&self.data[start..], nr, nc, self.stride)
    }

    /// Copy into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(self.row(i));
        }
        out
    }
}

/// Mutable row-major strided matrix view.
pub struct MatrixViewMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> MatrixViewMut<'a> {
    /// Mutable view over a raw slice; same length requirement as
    /// [`MatrixView::new`].
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "view stride below column count");
        assert!(data.len() >= span(rows, cols, stride), "view data too short");
        Self { data, rows, cols, stride }
    }

    /// Full mutable view of a contiguous buffer as `rows × cols`.
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize) -> Self {
        Self::new(data, rows, cols, cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backing slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j] = v;
    }

    /// Row `i` as an immutable slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Immutable view of the same region.
    #[inline]
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView::new(self.data, self.rows, self.cols, self.stride)
    }

    /// Immutable sub-view of rows `r0..r0+nr`, columns `c0..c0+nc`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'_> {
        self.as_view().sub(r0, c0, nr, nc)
    }

    /// Mutable sub-view of rows `r0..r0+nr`, columns `c0..c0+nc`
    /// (reborrows `self`).
    pub fn sub_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub-view out of range");
        let start = if nr == 0 || nc == 0 { 0 } else { r0 * self.stride + c0 };
        MatrixViewMut::new(&mut self.data[start..], nr, nc, self.stride)
    }

    /// Set every entry to `v` (row-wise `fill`).
    pub fn fill(&mut self, v: f64) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Overwrite this view with `other`'s entries (same shape) — the
    /// view analogue of [`Matrix::set_block`].
    pub fn copy_from(&mut self, other: &MatrixView) {
        assert_eq!((self.rows, self.cols), (other.rows(), other.cols()), "copy_from shape mismatch");
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(other.row(i));
        }
    }

    /// `self += alpha·other` (same shape) — per-entry `d += alpha * s`,
    /// exactly the arithmetic of [`Matrix::axpy`]/[`Matrix::add_block`],
    /// so an accumulation routed through views is bitwise the one routed
    /// through extracted copies.
    pub fn add_scaled(&mut self, alpha: f64, other: &MatrixView) {
        assert_eq!((self.rows, self.cols), (other.rows(), other.cols()), "add_scaled shape mismatch");
        for i in 0..self.rows {
            for (d, s) in self.row_mut(i).iter_mut().zip(other.row(i)) {
                *d += alpha * s;
            }
        }
    }
}

impl Matrix {
    /// Immutable zero-copy view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.data(), self.rows(), self.cols(), self.cols())
    }

    /// Immutable zero-copy view of the sub-block `rows r0..r0+nr`,
    /// `cols c0..c0+nc` (the view analogue of [`Matrix::block`]).
    pub fn subview(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'_> {
        self.view().sub(r0, c0, nr, nc)
    }

    /// Mutable zero-copy view of the whole matrix.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_> {
        let (rows, cols) = (self.rows(), self.cols());
        MatrixViewMut::new(self.data_mut(), rows, cols, cols)
    }

    /// Mutable zero-copy view of the sub-block `rows r0..r0+nr`,
    /// `cols c0..c0+nc` — in-place update without the
    /// `block`/`set_block` round-trip.
    pub fn subview_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_> {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(r0 + nr <= rows && c0 + nc <= cols, "sub-view out of range");
        let start = if nr == 0 || nc == 0 { 0 } else { r0 * cols + c0 };
        MatrixViewMut::new(&mut self.data_mut()[start..], nr, nc, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_indexes_match_matrix() {
        let a = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f64);
        let v = a.subview(1, 2, 3, 2);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.stride(), 4);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(v.get(i, j), a.get(1 + i, 2 + j));
            }
        }
        assert_eq!(v.row(2), &[a.get(3, 2), a.get(3, 3)]);
    }

    #[test]
    fn sub_of_sub_composes() {
        let a = Matrix::from_fn(6, 6, |i, j| (10 * i + j) as f64);
        let v = a.subview(1, 1, 4, 4).sub(1, 2, 2, 2);
        assert_eq!(v.get(0, 0), a.get(2, 3));
        assert_eq!(v.get(1, 1), a.get(3, 4));
    }

    #[test]
    fn mut_view_writes_through() {
        let mut a = Matrix::zeros(4, 3);
        {
            let mut v = a.subview_mut(1, 1, 2, 2);
            v.set(0, 0, 5.0);
            v.row_mut(1)[1] = 7.0;
        }
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(2, 2), 7.0);
    }

    #[test]
    fn to_matrix_round_trips_block() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * 3 + j) as f64).sin());
        assert_eq!(a.subview(1, 2, 3, 2).to_matrix(), a.block(1, 2, 3, 2));
    }

    #[test]
    fn empty_views_are_fine() {
        let a = Matrix::zeros(3, 3);
        let v = a.subview(3, 0, 0, 3);
        assert_eq!(v.rows(), 0);
        let w = a.subview(0, 3, 3, 0);
        assert_eq!(w.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_subview_panics() {
        let a = Matrix::zeros(3, 3);
        let _ = a.subview(1, 1, 3, 3);
    }
}
