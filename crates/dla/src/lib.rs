//! # ca-dla — sequential dense & banded linear algebra kernels
//!
//! From-scratch implementations of every local kernel the
//! communication-avoiding symmetric eigensolver of Solomonik et al.
//! (SPAA'17) relies on:
//!
//! * dense matrices and blocked GEMM ([`matrix`], [`gemm`]) — the paper's
//!   Lemma III.1 building block,
//! * blocked Householder QR with compact-WY `(U, T)` representation
//!   ([`qr`]) — Lemma III.4,
//! * non-pivoted LU and triangular solves ([`lu`]) — the substrate for
//!   Householder reconstruction (Corollary III.7),
//! * symmetric banded storage and the bulge-chasing elimination kernel
//!   with the exact index ranges of Algorithm IV.2 ([`band`], [`bulge`]),
//! * symmetric tridiagonal eigensolvers: implicit-shift QL,
//!   Sturm-sequence bisection, and GEMM-rich divide-and-conquer
//!   ([`tridiag`], [`sturm`], [`dnc`]), with runtime-tunable kernel
//!   crossovers ([`tune`]),
//! * reproducible matrix generators with prescribed spectra ([`gen`]),
//! * analytic flop / vertical-traffic cost formulas ([`costs`]) used by
//!   the virtual-BSP layer to charge local work,
//! * zero-copy strided views and per-thread scratch arenas ([`view`],
//!   [`workspace`]) that let the hot kernels run in place with no
//!   steady-state heap allocation (see DESIGN.md §"kernel engine").
//!
//! All kernels are pure (no dependency on the cost model); the `ca-pla`
//! crate wraps them with cost charging when they run on a virtual
//! processor.

// Index-heavy numerical code: range loops over several arrays at once
// are the clearer idiom here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod band;
pub mod bulge;
pub mod costs;
pub mod dnc;
pub mod gemm;
pub mod gen;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod sturm;
pub mod sym;
pub mod tridiag;
pub mod tune;
pub mod view;
pub mod workspace;

pub use band::BandedSym;
pub use gemm::{gemm, matmul, Trans};
pub use matrix::Matrix;
pub use qr::QrFactors;
pub use view::{MatrixView, MatrixViewMut};
pub use workspace::Workspace;
