//! Non-pivoted LU factorization and triangular solves.
//!
//! The paper uses non-pivoted LU in exactly one place: Householder
//! reconstruction (Corollary III.7, after Ballard et al. \[26\]), where the
//! matrix `Q₁ − S` (orthonormal-columns block minus a diagonal sign
//! matrix) is diagonally dominant by construction, so pivoting is not
//! required for stability.

use crate::matrix::Matrix;

/// Which triangle a triangular-solve operand occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower-triangular operand.
    Lower,
    /// Upper-triangular operand.
    Upper,
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Implicit unit diagonal (not stored).
    Unit,
    /// Explicit diagonal entries.
    NonUnit,
}

/// Non-pivoted LU factorization `A = L·U` of a square matrix.
///
/// Returns `(L, U)` with `L` unit lower-triangular and `U`
/// upper-triangular. Panics if a zero (or exactly-zero) pivot is
/// encountered; callers must supply matrices for which non-pivoted LU is
/// stable (diagonally dominant, as in the reconstruction use-case).
pub fn lu_nopivot(a: &Matrix) -> (Matrix, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU requires a square matrix");
    let mut w = a.clone();
    for k in 0..n {
        let pivot = w.get(k, k);
        assert!(
            pivot != 0.0,
            "lu_nopivot: zero pivot at {k}; matrix is not non-pivoted-LU factorizable"
        );
        for i in k + 1..n {
            let m = w.get(i, k) / pivot;
            w.set(i, k, m);
            if m != 0.0 {
                for j in k + 1..n {
                    w.add_to(i, j, -m * w.get(k, j));
                }
            }
        }
    }
    let mut l = Matrix::identity(n);
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if j < i {
                l.set(i, j, w.get(i, j));
            } else {
                u.set(i, j, w.get(i, j));
            }
        }
    }
    (l, u)
}

/// Non-pivoted LU with on-the-fly diagonal sign subtraction, the
/// Householder-reconstruction variant of Ballard et al. \[26\]: factors
/// `A − S = L·U` where `S = diag(s)` is chosen during elimination as
/// `sᵢ = −sgn(pivotᵢ)`, which makes every pivot at least 1 in magnitude
/// when `A` has orthonormal columns. Returns `(L, U, s)`.
pub fn lu_nopivot_signed(a: &Matrix) -> (Matrix, Matrix, Vec<f64>) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU requires a square matrix");
    let mut w = a.clone();
    let mut signs = Vec::with_capacity(n);
    for k in 0..n {
        let s = if w.get(k, k) >= 0.0 { -1.0 } else { 1.0 };
        signs.push(s);
        w.add_to(k, k, -s);
        let pivot = w.get(k, k);
        for i in k + 1..n {
            let mult = w.get(i, k) / pivot;
            w.set(i, k, mult);
            if mult != 0.0 {
                for j in k + 1..n {
                    w.add_to(i, j, -mult * w.get(k, j));
                }
            }
        }
    }
    let mut l = Matrix::identity(n);
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if j < i {
                l.set(i, j, w.get(i, j));
            } else {
                u.set(i, j, w.get(i, j));
            }
        }
    }
    (l, u, signs)
}

/// Solve `op(T)·X = B` in place where `T` is triangular (left-sided
/// triangular solve, `X` overwrites `b`).
pub fn trsm_left(t: &Matrix, tri: Triangle, diag: Diag, transposed: bool, b: &mut Matrix) {
    let n = t.rows();
    assert_eq!(n, t.cols());
    assert_eq!(b.rows(), n);
    let nrhs = b.cols();
    // Effective triangle after an optional transpose.
    let eff_lower = matches!(
        (tri, transposed),
        (Triangle::Lower, false) | (Triangle::Upper, true)
    );
    let get = |i: usize, j: usize| -> f64 {
        if transposed {
            t.get(j, i)
        } else {
            t.get(i, j)
        }
    };
    for c in 0..nrhs {
        if eff_lower {
            for i in 0..n {
                let mut v = b.get(i, c);
                for j in 0..i {
                    v -= get(i, j) * b.get(j, c);
                }
                if matches!(diag, Diag::NonUnit) {
                    v /= get(i, i);
                }
                b.set(i, c, v);
            }
        } else {
            for i in (0..n).rev() {
                let mut v = b.get(i, c);
                for j in i + 1..n {
                    v -= get(i, j) * b.get(j, c);
                }
                if matches!(diag, Diag::NonUnit) {
                    v /= get(i, i);
                }
                b.set(i, c, v);
            }
        }
    }
}

/// Solve `X·op(T) = B` in place (right-sided triangular solve).
pub fn trsm_right(t: &Matrix, tri: Triangle, diag: Diag, transposed: bool, b: &mut Matrix) {
    // X·op(T) = B  ⇔  op(T)ᵀ·Xᵀ = Bᵀ.
    let mut bt = b.transpose();
    trsm_left(t, tri, diag, !transposed, &mut bt);
    *b = bt.transpose();
}

/// Explicit inverse of a triangular matrix.
pub fn tri_inverse(t: &Matrix, tri: Triangle, diag: Diag) -> Matrix {
    let n = t.rows();
    let mut inv = Matrix::identity(n);
    trsm_left(t, tri, diag, false, &mut inv);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diag_dominant(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = gen::random_matrix(&mut rng, n, n);
        for i in 0..n {
            a.set(i, i, n as f64 + a.get(i, i));
        }
        a
    }

    #[test]
    fn lu_reconstructs() {
        let a = diag_dominant(9, 20);
        let (l, u) = lu_nopivot(&a);
        let la = matmul(&l, Trans::N, &u, Trans::N);
        assert!(la.max_diff(&a) < 1e-10);
        // L unit lower, U upper.
        for i in 0..9 {
            assert_eq!(l.get(i, i), 1.0);
            for j in i + 1..9 {
                assert_eq!(l.get(i, j), 0.0);
                assert_eq!(u.get(j, i), 0.0);
            }
        }
    }

    #[test]
    fn trsm_left_lower_solves() {
        let a = diag_dominant(7, 21);
        let (l, _) = lu_nopivot(&a);
        let mut rng = StdRng::seed_from_u64(22);
        let x = gen::random_matrix(&mut rng, 7, 3);
        let mut b = matmul(&l, Trans::N, &x, Trans::N);
        trsm_left(&l, Triangle::Lower, Diag::Unit, false, &mut b);
        assert!(b.max_diff(&x) < 1e-10);
    }

    #[test]
    fn trsm_left_upper_transposed_solves() {
        let a = diag_dominant(6, 23);
        let (_, u) = lu_nopivot(&a);
        let mut rng = StdRng::seed_from_u64(24);
        let x = gen::random_matrix(&mut rng, 6, 2);
        let mut b = matmul(&u, Trans::T, &x, Trans::N);
        trsm_left(&u, Triangle::Upper, Diag::NonUnit, true, &mut b);
        assert!(b.max_diff(&x) < 1e-9);
    }

    #[test]
    fn trsm_right_solves() {
        let a = diag_dominant(5, 25);
        let (_, u) = lu_nopivot(&a);
        let mut rng = StdRng::seed_from_u64(26);
        let x = gen::random_matrix(&mut rng, 3, 5);
        let mut b = matmul(&x, Trans::N, &u, Trans::N);
        trsm_right(&u, Triangle::Upper, Diag::NonUnit, false, &mut b);
        assert!(b.max_diff(&x) < 1e-9);
    }

    #[test]
    fn tri_inverse_inverts() {
        let a = diag_dominant(8, 27);
        let (l, u) = lu_nopivot(&a);
        let li = tri_inverse(&l, Triangle::Lower, Diag::Unit);
        let ui = tri_inverse(&u, Triangle::Upper, Diag::NonUnit);
        assert!(matmul(&l, Trans::N, &li, Trans::N).max_diff(&Matrix::identity(8)) < 1e-10);
        assert!(matmul(&u, Trans::N, &ui, Trans::N).max_diff(&Matrix::identity(8)) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn zero_pivot_panics() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let _ = lu_nopivot(&a);
    }
}
