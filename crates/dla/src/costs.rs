//! Analytic cost formulas for local kernels, used by the virtual-BSP
//! layer to charge `F` (flops) and `Q` (vertical words) when a kernel
//! runs on a virtual processor.
//!
//! The vertical-traffic formulas implement Lemma III.1 (matrix multiply)
//! and Lemma III.4 (QR) of the paper: with a cache of `H` words, a
//! cache-oblivious blocked kernel moves `O(operand sizes)` words plus the
//! classical `O(flops/√H)` term; the paper's simplified accounting drops
//! the `flops/√H` term under the assumption `ν ≤ γ·√H`, but we expose it
//! so the full `Q` bound (`O(ν·(F/√H + W))`, §II) can be reconstructed.

/// Flops of an `m×n · n×k` matrix multiplication (multiply–add pairs).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Vertical words moved by a blocked `m×n · n×k` multiply with cache `H`
/// (Lemma III.1): the three operands, plus the `mnk/√H` term when the
/// working set exceeds the cache.
pub fn gemm_vert(m: usize, n: usize, k: usize, h: u64) -> u64 {
    let operands = (m * n + n * k + m * k) as u64;
    if operands <= h {
        operands
    } else {
        let mnk = m as u64 * n as u64 * k as u64;
        operands + mnk / (h as f64).sqrt().max(1.0) as u64
    }
}

/// Flops of a Householder QR of an `m×n` matrix (`m ≥ n`):
/// `2mn² − (2/3)n³`.
pub fn qr_flops(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    let k = n.min(m);
    2 * m * k * k - (2 * k * k * k) / 3
}

/// Vertical words of a sequential CAQR of an `m×n` matrix with cache `H`
/// (Lemma III.4): `O(mn)` when `ν ≤ γ√H`, plus the `mn²/√H` term
/// otherwise.
pub fn qr_vert(m: usize, n: usize, h: u64) -> u64 {
    let words = (m * n) as u64;
    if words <= h {
        words
    } else {
        words + (m as u64 * n as u64 * n as u64) / (h as f64).sqrt().max(1.0) as u64
    }
}

/// Flops of applying a compact-WY `Q = I − U·T·Uᵀ` (with `U` of shape
/// `m×k`) to an `m×n` matrix: three GEMMs.
pub fn apply_q_flops(m: usize, k: usize, n: usize) -> u64 {
    gemm_flops(k, m, n) + gemm_flops(k, k, n) + gemm_flops(m, k, n)
}

/// Flops of a non-pivoted LU of an `n×n` matrix: `(2/3)n³`.
pub fn lu_flops(n: usize) -> u64 {
    (2 * (n as u64).pow(3)) / 3
}

/// Flops of a triangular solve with an `n×n` triangle and `k`
/// right-hand sides: `n²k`.
pub fn trsm_flops(n: usize, k: usize) -> u64 {
    (n as u64).pow(2) * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn gemm_vert_small_fits_cache() {
        // 2·3 + 3·4 + 2·4 = 26 words ≤ H → only operand traffic.
        assert_eq!(gemm_vert(2, 3, 4, 1024), 26);
    }

    #[test]
    fn gemm_vert_large_adds_reuse_term() {
        let h = 64;
        let v = gemm_vert(100, 100, 100, h);
        let operands = 3 * 100 * 100;
        assert!(v > operands);
        assert_eq!(v, operands + 1_000_000 / 8);
    }

    #[test]
    fn qr_flops_square_matches_formula() {
        // 2n³ − (2/3)n³ = (4/3)n³ for m = n.
        assert_eq!(qr_flops(9, 9), 2 * 9 * 81 - 2 * 729 / 3);
    }

    #[test]
    fn wide_qr_uses_min_dim() {
        assert_eq!(qr_flops(4, 10), qr_flops(4, 4));
    }
}
