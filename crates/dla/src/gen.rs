//! Reproducible matrix generators.
//!
//! The evaluation strategy (DESIGN.md §2) replaces the paper's production
//! workloads by synthetic symmetric matrices with *prescribed spectra*:
//! `A = Q·diag(λ)·Qᵀ` for a random orthogonal `Q`, which makes every
//! reduction stage of the eigensolver verifiable (the eigenvalues must be
//! preserved exactly, up to rounding, by each orthogonal similarity).

use crate::gemm::{matmul, Trans};
use crate::matrix::Matrix;
use crate::qr::{explicit_q, qr_factor};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Dense `m × n` matrix with i.i.d. entries in `[-1, 1)`.
pub fn random_matrix<R: Rng>(rng: &mut R, m: usize, n: usize) -> Matrix {
    let dist = Uniform::new(-1.0f64, 1.0);
    Matrix::from_fn(m, n, |_, _| dist.sample(rng))
}

/// Random `n × n` orthogonal matrix: the explicit `Q` factor of the QR
/// factorization of a random Gaussian-ish matrix.
pub fn random_orthogonal<R: Rng>(rng: &mut R, n: usize) -> Matrix {
    let a = random_matrix(rng, n, n);
    let f = qr_factor(&a, 8.min(n).max(1));
    explicit_q(&f.u, &f.t, n)
}

/// Symmetric matrix with the prescribed spectrum: `A = Q·diag(λ)·Qᵀ`.
pub fn symmetric_with_spectrum<R: Rng>(rng: &mut R, eigenvalues: &[f64]) -> Matrix {
    let n = eigenvalues.len();
    let q = random_orthogonal(rng, n);
    let mut qd = q.clone();
    for i in 0..n {
        for j in 0..n {
            qd.set(i, j, q.get(i, j) * eigenvalues[j]);
        }
    }
    let mut a = matmul(&qd, Trans::N, &q, Trans::T);
    a.symmetrize();
    a
}

/// Random dense symmetric matrix with entries in `[-1, 1)`.
pub fn random_symmetric<R: Rng>(rng: &mut R, n: usize) -> Matrix {
    let mut a = random_matrix(rng, n, n);
    a.symmetrize();
    a
}

/// Random symmetric matrix of bandwidth exactly `b` (dense storage).
pub fn random_banded<R: Rng>(rng: &mut R, n: usize, b: usize) -> Matrix {
    let dist = Uniform::new(-1.0f64, 1.0);
    let mut a = Matrix::from_fn(n, n, |i, j| {
        if i.abs_diff(j) <= b {
            dist.sample(rng)
        } else {
            0.0
        }
    });
    a.symmetrize();
    // Make the band edge structurally nonzero so bandwidth(b) is exact.
    if b > 0 && n > b {
        for i in b..n {
            a.set(i, i - b, 1.0);
            a.set(i - b, i, 1.0);
        }
    }
    a
}

/// A linearly spaced spectrum in `[lo, hi]`, a convenient well-separated
/// test spectrum.
pub fn linspace_spectrum(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    if n == 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Geometrically graded spectrum: `λᵢ = largest·decayⁱ` (descending in
/// magnitude, spanning `decay^{n−1}` orders of magnitude). Graded
/// spectra stress the small-eigenvalue end of the solver: relative
/// accuracy of the tiny eigenvalues is lost first when a reduction
/// stage leaks error.
pub fn graded_spectrum(n: usize, largest: f64, decay: f64) -> Vec<f64> {
    assert!(decay > 0.0, "decay must be positive");
    let mut lambda = Vec::with_capacity(n);
    let mut v = largest;
    for _ in 0..n {
        lambda.push(v);
        v *= decay;
    }
    lambda.reverse(); // ascending, matching the solver's output order
    lambda
}

/// Spectrum of `clusters` tight groups spread over `[lo, hi]`: each
/// cluster's eigenvalues sit within `±spread` of its center — the
/// near-multiple-eigenvalue stress case (tridiagonal QL and bisection
/// both slow down or mis-order without careful deflation).
pub fn clustered_spectrum(n: usize, clusters: usize, lo: f64, hi: f64, spread: f64) -> Vec<f64> {
    assert!(clusters >= 1 && clusters <= n.max(1), "need 1 ≤ clusters ≤ n");
    let mut lambda = Vec::with_capacity(n);
    for i in 0..n {
        let k = i * clusters / n.max(1); // cluster index, balanced sizes
        let center = if clusters == 1 {
            (lo + hi) / 2.0
        } else {
            lo + (hi - lo) * k as f64 / (clusters - 1) as f64
        };
        // Deterministic offset inside the cluster, symmetric about the
        // center, strictly inside ±spread.
        let j = (i * clusters) % n.max(1);
        let frac = (j as f64 / n.max(1) as f64) - 0.5;
        lambda.push(center + 2.0 * spread * frac);
    }
    lambda.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lambda
}

/// Random symmetric strictly diagonally dominant matrix: off-diagonal
/// entries i.i.d. in `[-1, 1)`, each diagonal set to `dominance` times
/// the row's off-diagonal absolute sum (`dominance > 1` ⇒ positive
/// definite by Gershgorin). Diagonally dominant inputs are the
/// best-conditioned extreme of the gallery — a solver failing here
/// fails everywhere.
pub fn diagonally_dominant<R: Rng>(rng: &mut R, n: usize, dominance: f64) -> Matrix {
    assert!(dominance >= 1.0, "dominance must be ≥ 1");
    let mut a = random_matrix(rng, n, n);
    a.symmetrize();
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
        a.set(i, i, dominance * off.max(1.0));
    }
    a
}

/// Deterministic fingerprint of a matrix's exact bit pattern, for
/// pinning generators against drift: any change to a generator's
/// sampling order, arithmetic, or the underlying RNG stream changes the
/// fingerprint, which golden-cost and conformance baselines depend on.
pub fn fingerprint(a: &Matrix) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            h ^= a.get(i, j).to_bits();
            h = h.wrapping_mul(0x1000_0000_01b3); // FNV prime
        }
    }
    h
}

/// 1D tight-binding ring Hamiltonian with on-site disorder: a real
/// symmetric matrix with hopping `t` between nearest neighbours on a ring
/// of `n` sites and random on-site energies in `[-w/2, w/2]` (the Anderson
/// model). This is the kind of electronic-structure matrix the paper's
/// introduction motivates (Hartree–Fock etc. compute eigenvalues of a
/// sequence of such symmetric operators).
pub fn tight_binding_ring<R: Rng>(rng: &mut R, n: usize, t: f64, disorder: f64) -> Matrix {
    let dist = Uniform::new(-0.5f64, 0.5);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, disorder * dist.sample(rng));
        let j = (i + 1) % n;
        a.set(i, j, -t);
        a.set(j, i, -t);
    }
    a
}

/// Wilkinson's `W_n⁺` matrix: tridiagonal with `d_i = |i − (n−1)/2|`,
/// `e_i = 1` — the classic stress test with pathologically close
/// eigenvalue pairs.
pub fn wilkinson(n: usize) -> Matrix {
    let mid = (n as f64 - 1.0) / 2.0;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, (i as f64 - mid).abs());
        if i + 1 < n {
            a.set(i, i + 1, 1.0);
            a.set(i + 1, i, 1.0);
        }
    }
    a
}

/// The Clement (Kac–Sylvester) matrix, symmetrized: tridiagonal with
/// zero diagonal and `e_i = √((i+1)(n−1−i))`; its spectrum is exactly
/// `{−(n−1), −(n−3), …, n−3, n−1}` — an analytic whole-spectrum check.
pub fn clement(n: usize) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        let e = (((i + 1) * (n - 1 - i)) as f64).sqrt();
        a.set(i, i + 1, e);
        a.set(i + 1, i, e);
    }
    a
}

/// Symmetric banded Toeplitz matrix: constant `coeffs[d]` on diagonal
/// `d` (`coeffs[0]` on the main diagonal). Bandwidth `coeffs.len() − 1`.
pub fn toeplitz_band(n: usize, coeffs: &[f64]) -> Matrix {
    assert!(!coeffs.is_empty());
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j);
        if d < coeffs.len() {
            coeffs[d]
        } else {
            0.0
        }
    })
}

/// 2D Laplacian on an `nx × ny` grid with Dirichlet boundaries
/// (a banded symmetric positive definite matrix of bandwidth `nx`).
pub fn laplacian_2d(nx: usize, ny: usize) -> Matrix {
    let n = nx * ny;
    let mut a = Matrix::zeros(n, n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            a.set(i, i, 4.0);
            if x + 1 < nx {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
            if y + 1 < ny {
                a.set(i, i + nx, -1.0);
                a.set(i + nx, i, -1.0);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(10);
        let q = random_orthogonal(&mut rng, 12);
        let qtq = matmul(&q, Trans::T, &q, Trans::N);
        assert!(qtq.max_diff(&Matrix::identity(12)) < 1e-11);
    }

    #[test]
    fn prescribed_spectrum_has_right_trace() {
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = linspace_spectrum(9, -4.0, 4.0);
        let a = symmetric_with_spectrum(&mut rng, &lambda);
        let trace: f64 = (0..9).map(|i| a.get(i, i)).sum();
        let sum: f64 = lambda.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn prescribed_spectrum_frobenius_matches() {
        let mut rng = StdRng::seed_from_u64(12);
        let lambda = vec![1.0, 2.0, 3.0, 4.0];
        let a = symmetric_with_spectrum(&mut rng, &lambda);
        // ‖A‖_F² = Σ λᵢ² for symmetric A.
        let want: f64 = lambda.iter().map(|l| l * l).sum::<f64>().sqrt();
        assert!((a.norm_fro() - want).abs() < 1e-10);
    }

    #[test]
    fn banded_has_exact_bandwidth() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_banded(&mut rng, 20, 3);
        assert_eq!(a.bandwidth(1e-14), 3);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn tight_binding_is_symmetric_banded_on_ring() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = tight_binding_ring(&mut rng, 16, 1.0, 2.0);
        assert_eq!(a.asymmetry(), 0.0);
        // Ring wrap makes bandwidth n−1 in dense index space.
        assert_eq!(a.bandwidth(1e-14), 15);
    }

    #[test]
    fn clement_spectrum_is_arithmetic() {
        use crate::tridiag::banded_eigenvalues;
        use crate::BandedSym;
        let n = 12;
        let a = clement(n);
        let b = BandedSym::from_dense(&a, 1, 2);
        let ev = banded_eigenvalues(&b);
        for (k, lam) in ev.iter().enumerate() {
            let want = -(n as f64 - 1.0) + 2.0 * k as f64;
            assert!((lam - want).abs() < 1e-9, "λ_{k} = {lam}, want {want}");
        }
    }

    #[test]
    fn wilkinson_has_close_pairs() {
        use crate::tridiag::tridiag_eigenvalues;
        let a = wilkinson(21);
        let d: Vec<f64> = (0..21).map(|i| a.get(i, i)).collect();
        let e: Vec<f64> = (0..20).map(|i| a.get(i + 1, i)).collect();
        let ev = tridiag_eigenvalues(&d, &e);
        // The two largest eigenvalues agree to ~1e-6 but not exactly.
        let gap = ev[20] - ev[19];
        assert!(gap > 0.0 && gap < 1e-5);
    }

    #[test]
    fn toeplitz_band_structure() {
        let a = toeplitz_band(10, &[2.0, -1.0, 0.25]);
        assert_eq!(a.bandwidth(1e-14), 2);
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(a.get(5, 5), 2.0);
        assert_eq!(a.get(5, 4), -1.0);
        assert_eq!(a.get(5, 3), 0.25);
        assert_eq!(a.get(5, 2), 0.0);
    }

    #[test]
    fn graded_spectrum_is_geometric_and_ascending() {
        let lambda = graded_spectrum(8, 1.0, 0.1);
        assert_eq!(lambda.len(), 8);
        for w in lambda.windows(2) {
            assert!(w[0] < w[1]);
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
        assert!((lambda[7] - 1.0).abs() < 1e-15);
        assert!((lambda[0] - 1e-7).abs() < 1e-15);
    }

    #[test]
    fn clustered_spectrum_has_tight_groups() {
        let spread = 1e-6;
        let lambda = clustered_spectrum(12, 3, -3.0, 3.0, spread);
        assert_eq!(lambda.len(), 12);
        for w in lambda.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Every eigenvalue is within spread of one of the 3 centers.
        for l in &lambda {
            let near = [-3.0f64, 0.0, 3.0]
                .iter()
                .any(|c| (l - c).abs() <= spread + 1e-12);
            assert!(near, "λ = {l} not near any cluster center");
        }
        // Each cluster holds a near-multiple group: gaps inside a
        // cluster are ≤ 2·spread, gaps between clusters are ~3.
        let big_gaps = lambda.windows(2).filter(|w| w[1] - w[0] > 1.0).count();
        assert_eq!(big_gaps, 2);
    }

    #[test]
    fn diagonally_dominant_is_gershgorin_definite() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = diagonally_dominant(&mut rng, 16, 1.5);
        assert_eq!(a.asymmetry(), 0.0);
        for i in 0..16 {
            let off: f64 = (0..16).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) > off, "row {i} not strictly dominant");
        }
    }

    /// Pinned fingerprints: the gallery matrices behind golden costs and
    /// the conformance baselines. A generator change (sampling order,
    /// arithmetic, RNG stream) flips the fingerprint and must be a
    /// deliberate re-pin, not silent drift. Re-pin by running with
    /// `UPDATE_GOLDEN=1 cargo test -p ca-dla generator_fingerprints -- --nocapture`.
    #[test]
    fn generator_fingerprints_are_pinned() {
        let fps: Vec<(&str, u64)> = vec![
            ("wilkinson(21)", fingerprint(&wilkinson(21))),
            ("clement(16)", fingerprint(&clement(16))),
            ("graded(16)", {
                let mut rng = StdRng::seed_from_u64(1000);
                let lambda = graded_spectrum(16, 4.0, 0.5);
                fingerprint(&symmetric_with_spectrum(&mut rng, &lambda))
            }),
            ("clustered(16)", {
                let mut rng = StdRng::seed_from_u64(1001);
                let lambda = clustered_spectrum(16, 4, -2.0, 2.0, 1e-7);
                fingerprint(&symmetric_with_spectrum(&mut rng, &lambda))
            }),
            ("diag_dominant(16)", {
                let mut rng = StdRng::seed_from_u64(1002);
                fingerprint(&diagonally_dominant(&mut rng, 16, 2.0))
            }),
            ("tight_binding(16)", {
                let mut rng = StdRng::seed_from_u64(1003);
                fingerprint(&tight_binding_ring(&mut rng, 16, 1.0, 2.0))
            }),
        ];
        if std::env::var("UPDATE_GOLDEN").is_ok() {
            for (name, fp) in &fps {
                println!("(\"{name}\", 0x{fp:016x}),");
            }
            return;
        }
        let pinned: &[(&str, u64)] = &[
            ("wilkinson(21)", 0xa5ba201c58447aff),
            ("clement(16)", 0xad4be3e461c68559),
            ("graded(16)", 0xc24050c44092e638),
            ("clustered(16)", 0x6c010698ecfae7a9),
            ("diag_dominant(16)", 0x4c19aae1202cabed),
            ("tight_binding(16)", 0xb98e6561e35bc9e1),
        ];
        for ((name, got), (_, want)) in fps.iter().zip(pinned) {
            assert_eq!(got, want, "{name}: generator fingerprint drifted");
        }
    }

    #[test]
    fn laplacian_is_spd_like() {
        let a = laplacian_2d(4, 3);
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(a.bandwidth(1e-14), 4);
        // Diagonally dominant ⇒ positive definite.
        for i in 0..12 {
            let off: f64 = (0..12).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) >= off);
        }
    }
}
