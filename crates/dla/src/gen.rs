//! Reproducible matrix generators.
//!
//! The evaluation strategy (DESIGN.md §2) replaces the paper's production
//! workloads by synthetic symmetric matrices with *prescribed spectra*:
//! `A = Q·diag(λ)·Qᵀ` for a random orthogonal `Q`, which makes every
//! reduction stage of the eigensolver verifiable (the eigenvalues must be
//! preserved exactly, up to rounding, by each orthogonal similarity).

use crate::gemm::{matmul, Trans};
use crate::matrix::Matrix;
use crate::qr::{explicit_q, qr_factor};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Dense `m × n` matrix with i.i.d. entries in `[-1, 1)`.
pub fn random_matrix<R: Rng>(rng: &mut R, m: usize, n: usize) -> Matrix {
    let dist = Uniform::new(-1.0f64, 1.0);
    Matrix::from_fn(m, n, |_, _| dist.sample(rng))
}

/// Random `n × n` orthogonal matrix: the explicit `Q` factor of the QR
/// factorization of a random Gaussian-ish matrix.
pub fn random_orthogonal<R: Rng>(rng: &mut R, n: usize) -> Matrix {
    let a = random_matrix(rng, n, n);
    let f = qr_factor(&a, 8.min(n).max(1));
    explicit_q(&f.u, &f.t, n)
}

/// Symmetric matrix with the prescribed spectrum: `A = Q·diag(λ)·Qᵀ`.
pub fn symmetric_with_spectrum<R: Rng>(rng: &mut R, eigenvalues: &[f64]) -> Matrix {
    let n = eigenvalues.len();
    let q = random_orthogonal(rng, n);
    let mut qd = q.clone();
    for i in 0..n {
        for j in 0..n {
            qd.set(i, j, q.get(i, j) * eigenvalues[j]);
        }
    }
    let mut a = matmul(&qd, Trans::N, &q, Trans::T);
    a.symmetrize();
    a
}

/// Random dense symmetric matrix with entries in `[-1, 1)`.
pub fn random_symmetric<R: Rng>(rng: &mut R, n: usize) -> Matrix {
    let mut a = random_matrix(rng, n, n);
    a.symmetrize();
    a
}

/// Random symmetric matrix of bandwidth exactly `b` (dense storage).
pub fn random_banded<R: Rng>(rng: &mut R, n: usize, b: usize) -> Matrix {
    let dist = Uniform::new(-1.0f64, 1.0);
    let mut a = Matrix::from_fn(n, n, |i, j| {
        if i.abs_diff(j) <= b {
            dist.sample(rng)
        } else {
            0.0
        }
    });
    a.symmetrize();
    // Make the band edge structurally nonzero so bandwidth(b) is exact.
    if b > 0 && n > b {
        for i in b..n {
            a.set(i, i - b, 1.0);
            a.set(i - b, i, 1.0);
        }
    }
    a
}

/// A linearly spaced spectrum in `[lo, hi]`, a convenient well-separated
/// test spectrum.
pub fn linspace_spectrum(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    if n == 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// 1D tight-binding ring Hamiltonian with on-site disorder: a real
/// symmetric matrix with hopping `t` between nearest neighbours on a ring
/// of `n` sites and random on-site energies in `[-w/2, w/2]` (the Anderson
/// model). This is the kind of electronic-structure matrix the paper's
/// introduction motivates (Hartree–Fock etc. compute eigenvalues of a
/// sequence of such symmetric operators).
pub fn tight_binding_ring<R: Rng>(rng: &mut R, n: usize, t: f64, disorder: f64) -> Matrix {
    let dist = Uniform::new(-0.5f64, 0.5);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, disorder * dist.sample(rng));
        let j = (i + 1) % n;
        a.set(i, j, -t);
        a.set(j, i, -t);
    }
    a
}

/// Wilkinson's `W_n⁺` matrix: tridiagonal with `d_i = |i − (n−1)/2|`,
/// `e_i = 1` — the classic stress test with pathologically close
/// eigenvalue pairs.
pub fn wilkinson(n: usize) -> Matrix {
    let mid = (n as f64 - 1.0) / 2.0;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, (i as f64 - mid).abs());
        if i + 1 < n {
            a.set(i, i + 1, 1.0);
            a.set(i + 1, i, 1.0);
        }
    }
    a
}

/// The Clement (Kac–Sylvester) matrix, symmetrized: tridiagonal with
/// zero diagonal and `e_i = √((i+1)(n−1−i))`; its spectrum is exactly
/// `{−(n−1), −(n−3), …, n−3, n−1}` — an analytic whole-spectrum check.
pub fn clement(n: usize) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        let e = (((i + 1) * (n - 1 - i)) as f64).sqrt();
        a.set(i, i + 1, e);
        a.set(i + 1, i, e);
    }
    a
}

/// Symmetric banded Toeplitz matrix: constant `coeffs[d]` on diagonal
/// `d` (`coeffs[0]` on the main diagonal). Bandwidth `coeffs.len() − 1`.
pub fn toeplitz_band(n: usize, coeffs: &[f64]) -> Matrix {
    assert!(!coeffs.is_empty());
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j);
        if d < coeffs.len() {
            coeffs[d]
        } else {
            0.0
        }
    })
}

/// 2D Laplacian on an `nx × ny` grid with Dirichlet boundaries
/// (a banded symmetric positive definite matrix of bandwidth `nx`).
pub fn laplacian_2d(nx: usize, ny: usize) -> Matrix {
    let n = nx * ny;
    let mut a = Matrix::zeros(n, n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            a.set(i, i, 4.0);
            if x + 1 < nx {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
            if y + 1 < ny {
                a.set(i, i + nx, -1.0);
                a.set(i + nx, i, -1.0);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(10);
        let q = random_orthogonal(&mut rng, 12);
        let qtq = matmul(&q, Trans::T, &q, Trans::N);
        assert!(qtq.max_diff(&Matrix::identity(12)) < 1e-11);
    }

    #[test]
    fn prescribed_spectrum_has_right_trace() {
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = linspace_spectrum(9, -4.0, 4.0);
        let a = symmetric_with_spectrum(&mut rng, &lambda);
        let trace: f64 = (0..9).map(|i| a.get(i, i)).sum();
        let sum: f64 = lambda.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn prescribed_spectrum_frobenius_matches() {
        let mut rng = StdRng::seed_from_u64(12);
        let lambda = vec![1.0, 2.0, 3.0, 4.0];
        let a = symmetric_with_spectrum(&mut rng, &lambda);
        // ‖A‖_F² = Σ λᵢ² for symmetric A.
        let want: f64 = lambda.iter().map(|l| l * l).sum::<f64>().sqrt();
        assert!((a.norm_fro() - want).abs() < 1e-10);
    }

    #[test]
    fn banded_has_exact_bandwidth() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_banded(&mut rng, 20, 3);
        assert_eq!(a.bandwidth(1e-14), 3);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn tight_binding_is_symmetric_banded_on_ring() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = tight_binding_ring(&mut rng, 16, 1.0, 2.0);
        assert_eq!(a.asymmetry(), 0.0);
        // Ring wrap makes bandwidth n−1 in dense index space.
        assert_eq!(a.bandwidth(1e-14), 15);
    }

    #[test]
    fn clement_spectrum_is_arithmetic() {
        use crate::tridiag::banded_eigenvalues;
        use crate::BandedSym;
        let n = 12;
        let a = clement(n);
        let b = BandedSym::from_dense(&a, 1, 2);
        let ev = banded_eigenvalues(&b);
        for (k, lam) in ev.iter().enumerate() {
            let want = -(n as f64 - 1.0) + 2.0 * k as f64;
            assert!((lam - want).abs() < 1e-9, "λ_{k} = {lam}, want {want}");
        }
    }

    #[test]
    fn wilkinson_has_close_pairs() {
        use crate::tridiag::tridiag_eigenvalues;
        let a = wilkinson(21);
        let d: Vec<f64> = (0..21).map(|i| a.get(i, i)).collect();
        let e: Vec<f64> = (0..20).map(|i| a.get(i + 1, i)).collect();
        let ev = tridiag_eigenvalues(&d, &e);
        // The two largest eigenvalues agree to ~1e-6 but not exactly.
        let gap = ev[20] - ev[19];
        assert!(gap > 0.0 && gap < 1e-5);
    }

    #[test]
    fn toeplitz_band_structure() {
        let a = toeplitz_band(10, &[2.0, -1.0, 0.25]);
        assert_eq!(a.bandwidth(1e-14), 2);
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(a.get(5, 5), 2.0);
        assert_eq!(a.get(5, 4), -1.0);
        assert_eq!(a.get(5, 3), 0.25);
        assert_eq!(a.get(5, 2), 0.0);
    }

    #[test]
    fn laplacian_is_spd_like() {
        let a = laplacian_2d(4, 3);
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(a.bandwidth(1e-14), 4);
        // Diagonally dominant ⇒ positive definite.
        for i in 0..12 {
            let off: f64 = (0..12).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) >= off);
        }
    }
}
