//! Blocked Householder QR with the compact-WY representation
//! `Q = I − U·T·Uᵀ` used throughout the paper (§III.B, §IV).
//!
//! `U` is unit lower-trapezoidal (`m × min(m,n)`, implicit unit diagonal
//! stored explicitly here for simplicity), `T` is upper-triangular. This
//! matches the paper's Householder aggregation: Corollary III.7's
//! reconstruction produces the same `(U, T)` pair, and the two-sided
//! update identity of Eqn. (IV.1) consumes it.

use crate::gemm::{gemm, matmul, Trans};
use crate::matrix::Matrix;

/// The result of a Householder QR factorization: `A = Q·R` with
/// `Q = I − U·T·Uᵀ`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// `m × k` unit lower-trapezoidal Householder vectors, `k = min(m, n)`.
    pub u: Matrix,
    /// `k × k` upper-triangular compact-WY factor.
    pub t: Matrix,
    /// `k × n` upper-triangular (trapezoidal if `m < n`) factor.
    pub r: Matrix,
}

impl QrFactors {
    /// Number of rows of the factored matrix.
    pub fn m(&self) -> usize {
        self.u.rows()
    }

    /// Number of reflectors, `min(m, n)`.
    pub fn k(&self) -> usize {
        self.u.cols()
    }
}

/// Generate a Householder reflector for the vector `x`:
/// returns `(v, tau, beta)` with `v\[0\] = 1` such that
/// `(I − tau·v·vᵀ)·x = beta·e₁`.
pub fn house_gen(x: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = x.len();
    assert!(n > 0);
    let alpha = x[0];
    let sigma2: f64 = x[1..].iter().map(|v| v * v).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma2 == 0.0 {
        // Already in e₁ direction: H = I (tau = 0) keeps beta = alpha.
        return (v, 0.0, alpha);
    }
    let norm = (alpha * alpha + sigma2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let denom = alpha - beta;
    for vi in v[1..].iter_mut() {
        *vi /= denom;
    }
    let tau = (beta - alpha) / beta;
    (v, tau, beta)
}

/// Unblocked Householder QR (LAPACK `geqr2` shape): factors `w` in place,
/// leaving `R` in the upper triangle and the reflector tails below the
/// diagonal; returns the `tau` scalars.
fn geqr2(w: &mut Matrix) -> Vec<f64> {
    let (m, n) = (w.rows(), w.cols());
    let k = m.min(n);
    let mut taus = Vec::with_capacity(k);
    for j in 0..k {
        let x: Vec<f64> = (j..m).map(|i| w.get(i, j)).collect();
        let (v, tau, beta) = house_gen(&x);
        // Apply H = I − tau·v·vᵀ to the trailing columns.
        if tau != 0.0 {
            for c in j + 1..n {
                let mut dot = 0.0;
                for (off, vi) in v.iter().enumerate() {
                    dot += vi * w.get(j + off, c);
                }
                let s = tau * dot;
                for (off, vi) in v.iter().enumerate() {
                    w.add_to(j + off, c, -s * vi);
                }
            }
        }
        w.set(j, j, beta);
        for (off, vi) in v.iter().enumerate().skip(1) {
            w.set(j + off, j, *vi);
        }
        taus.push(tau);
    }
    taus
}

/// Form the upper-triangular `T` of the compact-WY representation from
/// the unit lower-trapezoidal `U` and the `tau` scalars (LAPACK `larft`,
/// forward column-wise).
pub fn form_t(u: &Matrix, taus: &[f64]) -> Matrix {
    let k = u.cols();
    assert_eq!(taus.len(), k);
    let m = u.rows();
    let mut t = Matrix::zeros(k, k);
    for j in 0..k {
        let tau = taus[j];
        t.set(j, j, tau);
        if j > 0 && tau != 0.0 {
            // w = −tau · U[:, 0..j]ᵀ · u_j
            let mut w = vec![0.0; j];
            for i in j..m {
                let uij = u.get(i, j);
                if uij != 0.0 {
                    for (c, wc) in w.iter_mut().enumerate() {
                        *wc += u.get(i, c) * uij;
                    }
                }
            }
            for wc in &mut w {
                *wc *= -tau;
            }
            // T[0..j, j] = T[0..j, 0..j] · w
            for r in 0..j {
                let mut acc = 0.0;
                for (c, wc) in w.iter().enumerate().skip(r) {
                    acc += t.get(r, c) * wc;
                }
                t.set(r, j, acc);
            }
        }
    }
    t
}

/// Blocked Householder QR of `a` with panel width `nb`.
///
/// Returns explicit `(U, T, R)`; the input is not modified. This realizes
/// Lemma III.4's sequential QR; the vertical-traffic charge for running
/// it on a virtual processor lives in [`crate::costs`].
///
/// ```
/// use ca_dla::qr::{qr_factor, explicit_q};
/// use ca_dla::gemm::{matmul, Trans};
/// use ca_dla::Matrix;
///
/// let a = Matrix::from_fn(8, 3, |i, j| ((i * 3 + j) as f64).sin());
/// let f = qr_factor(&a, 2);
/// let q = explicit_q(&f.u, &f.t, 3);
/// assert!(matmul(&q, Trans::N, &f.r, Trans::N).max_diff(&a) < 1e-12);
/// ```
pub fn qr_factor(a: &Matrix, nb: usize) -> QrFactors {
    let (m, n) = (a.rows(), a.cols());
    let k = m.min(n);
    let nb = nb.max(1);
    let mut w = a.clone();
    let mut taus = vec![0.0; k];

    let mut j0 = 0;
    while j0 < k {
        let jb = nb.min(k - j0);
        // Factor the panel rows j0.., cols j0..j0+jb.
        let mut panel = w.block(j0, j0, m - j0, jb);
        let panel_taus = geqr2(&mut panel);
        w.set_block(j0, j0, &panel);
        taus[j0..j0 + jb].copy_from_slice(&panel_taus);

        // Trailing update: C ← Qᵖᵃⁿᵉˡᵀ·C for C = W[j0.., j0+jb..].
        if j0 + jb < n {
            let pu = unit_lower(&panel, jb);
            let pt = form_t(&pu, &panel_taus);
            let mut c = w.block(j0, j0 + jb, m - j0, n - (j0 + jb));
            // C ← C − U·(Tᵀ·(Uᵀ·C))
            let utc = matmul(&pu, Trans::T, &c, Trans::N);
            let ttutc = matmul(&pt, Trans::T, &utc, Trans::N);
            gemm(-1.0, &pu, Trans::N, &ttutc, Trans::N, 1.0, &mut c);
            w.set_block(j0, j0 + jb, &c);
        }
        j0 += jb;
    }

    // Extract U (unit lower-trapezoidal, m×k) and R (k×n upper).
    let mut u = Matrix::zeros(m, k);
    for j in 0..k {
        u.set(j, j, 1.0);
        for i in j + 1..m {
            u.set(i, j, w.get(i, j));
        }
    }
    let mut r = Matrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r.set(i, j, w.get(i, j));
        }
    }
    let t = form_t(&u, &taus);
    QrFactors { u, t, r }
}

/// Extract the unit lower-trapezoidal reflector block of a factored
/// panel (`jb` columns).
fn unit_lower(panel: &Matrix, jb: usize) -> Matrix {
    let m = panel.rows();
    let mut u = Matrix::zeros(m, jb);
    for j in 0..jb {
        u.set(j, j, 1.0);
        for i in j + 1..m {
            u.set(i, j, panel.get(i, j));
        }
    }
    u
}

/// `C ← Qᵀ·C = C − U·(Tᵀ·(Uᵀ·C))`.
pub fn apply_qt(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.rows());
    let utc = matmul(u, Trans::T, c, Trans::N);
    let s = matmul(t, Trans::T, &utc, Trans::N);
    gemm(-1.0, u, Trans::N, &s, Trans::N, 1.0, c);
}

/// `C ← Q·C = C − U·(T·(Uᵀ·C))`.
pub fn apply_q(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.rows());
    let utc = matmul(u, Trans::T, c, Trans::N);
    let s = matmul(t, Trans::N, &utc, Trans::N);
    gemm(-1.0, u, Trans::N, &s, Trans::N, 1.0, c);
}

/// `C ← C·Q = C − ((C·U)·T)·Uᵀ`.
pub fn apply_q_right(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.cols());
    let cu = matmul(c, Trans::N, u, Trans::N);
    let cut = matmul(&cu, Trans::N, t, Trans::N);
    gemm(-1.0, &cut, Trans::N, u, Trans::T, 1.0, c);
}

/// The first `ncols` columns of the explicit `Q` factor (`m × ncols`).
pub fn explicit_q(u: &Matrix, t: &Matrix, ncols: usize) -> Matrix {
    let m = u.rows();
    assert!(ncols <= m);
    let mut q = Matrix::zeros(m, ncols);
    for i in 0..ncols {
        q.set(i, i, 1.0);
    }
    apply_q(u, t, &mut q);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_qr(a: &Matrix, nb: usize, tol: f64) {
        let f = qr_factor(a, nb);
        let k = f.k();
        // R upper-triangular.
        for i in 0..k {
            for j in 0..i.min(f.r.cols()) {
                assert!(
                    f.r.get(i, j).abs() < tol,
                    "R not upper triangular at ({i},{j})"
                );
            }
        }
        // Q orthogonal: (I − UTUᵀ)ᵀ(I − UTUᵀ) = I on the first k columns.
        let q = explicit_q(&f.u, &f.t, k);
        let qtq = matmul(&q, Trans::T, &q, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(k)) < tol,
            "QᵀQ deviates from identity by {}",
            qtq.max_diff(&Matrix::identity(k))
        );
        // A = Q·R.
        let qr = matmul(&q, Trans::N, &f.r, Trans::N);
        assert!(qr.max_diff(a) < tol * a.norm_max().max(1.0), "A ≠ QR");
    }

    #[test]
    fn tall_matrix() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, 40, 8);
        check_qr(&a, 4, 1e-10);
    }

    #[test]
    fn square_matrix() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen::random_matrix(&mut rng, 16, 16);
        check_qr(&a, 5, 1e-10);
    }

    #[test]
    fn wide_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen::random_matrix(&mut rng, 6, 14);
        check_qr(&a, 3, 1e-10);
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_vec(4, 1, vec![3.0, 0.0, 4.0, 0.0]);
        let f = qr_factor(&a, 1);
        assert!((f.r.get(0, 0).abs() - 5.0).abs() < 1e-12);
        check_qr(&a, 1, 1e-12);
    }

    #[test]
    fn already_triangular_input() {
        let a = Matrix::from_fn(5, 5, |i, j| if j >= i { (i + j + 1) as f64 } else { 0.0 });
        check_qr(&a, 2, 1e-10);
    }

    #[test]
    fn zero_column_is_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = gen::random_matrix(&mut rng, 10, 4);
        for i in 0..10 {
            a.set(i, 2, 0.0);
        }
        check_qr(&a, 2, 1e-10);
    }

    #[test]
    fn blocked_matches_unblocked() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gen::random_matrix(&mut rng, 24, 12);
        let f1 = qr_factor(&a, 1);
        let f2 = qr_factor(&a, 5);
        // R is unique up to column signs; with identical reflector sign
        // conventions both paths must agree exactly (same elimination order).
        assert!(f1.r.max_diff(&f2.r) < 1e-10);
        assert!(f1.u.max_diff(&f2.u) < 1e-10);
    }

    #[test]
    fn apply_qt_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = gen::random_matrix(&mut rng, 12, 5);
        let c = gen::random_matrix(&mut rng, 12, 7);
        let f = qr_factor(&a, 3);
        let q = explicit_q(&f.u, &f.t, 12);
        let want = matmul(&q, Trans::T, &c, Trans::N);
        let mut got = c.clone();
        apply_qt(&f.u, &f.t, &mut got);
        assert!(got.max_diff(&want) < 1e-10);
    }

    #[test]
    fn apply_q_right_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = gen::random_matrix(&mut rng, 9, 4);
        let c = gen::random_matrix(&mut rng, 6, 9);
        let f = qr_factor(&a, 2);
        let q = explicit_q(&f.u, &f.t, 9);
        let want = matmul(&c, Trans::N, &q, Trans::N);
        let mut got = c.clone();
        apply_q_right(&f.u, &f.t, &mut got);
        assert!(got.max_diff(&want) < 1e-10);
    }

    #[test]
    fn qt_applied_to_a_gives_r() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = gen::random_matrix(&mut rng, 15, 6);
        let f = qr_factor(&a, 4);
        let mut c = a.clone();
        apply_qt(&f.u, &f.t, &mut c);
        // Top 6×6 of QᵀA is R, bottom is ~0.
        for i in 0..6 {
            for j in 0..6 {
                assert!((c.get(i, j) - f.r.get(i, j)).abs() < 1e-10);
            }
        }
        for i in 6..15 {
            for j in 0..6 {
                assert!(c.get(i, j).abs() < 1e-10);
            }
        }
    }
}
