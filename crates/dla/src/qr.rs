//! Blocked Householder QR with the compact-WY representation
//! `Q = I − U·T·Uᵀ` used throughout the paper (§III.B, §IV).
//!
//! `U` is unit lower-trapezoidal (`m × min(m,n)`, implicit unit diagonal
//! stored explicitly here for simplicity), `T` is upper-triangular. This
//! matches the paper's Householder aggregation: Corollary III.7's
//! reconstruction produces the same `(U, T)` pair, and the two-sided
//! update identity of Eqn. (IV.1) consumes it.

use crate::gemm::{gemm, gemm_view, matmul, Trans};
use crate::matrix::Matrix;
use crate::view::{MatrixView, MatrixViewMut};
use crate::workspace::{with_ws, Workspace};

/// The result of a Householder QR factorization: `A = Q·R` with
/// `Q = I − U·T·Uᵀ`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// `m × k` unit lower-trapezoidal Householder vectors, `k = min(m, n)`.
    pub u: Matrix,
    /// `k × k` upper-triangular compact-WY factor.
    pub t: Matrix,
    /// `k × n` upper-triangular (trapezoidal if `m < n`) factor.
    pub r: Matrix,
}

impl QrFactors {
    /// Number of rows of the factored matrix.
    pub fn m(&self) -> usize {
        self.u.rows()
    }

    /// Number of reflectors, `min(m, n)`.
    pub fn k(&self) -> usize {
        self.u.cols()
    }
}

/// Generate a Householder reflector for the vector `x`:
/// returns `(v, tau, beta)` with `v\[0\] = 1` such that
/// `(I − tau·v·vᵀ)·x = beta·e₁`.
pub fn house_gen(x: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = x.len();
    assert!(n > 0);
    let alpha = x[0];
    let sigma2: f64 = x[1..].iter().map(|v| v * v).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma2 == 0.0 {
        // Already in e₁ direction: H = I (tau = 0) keeps beta = alpha.
        return (v, 0.0, alpha);
    }
    let norm = (alpha * alpha + sigma2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let denom = alpha - beta;
    for vi in v[1..].iter_mut() {
        *vi /= denom;
    }
    let tau = (beta - alpha) / beta;
    (v, tau, beta)
}

/// [`house_gen`] operating in place: `v` holds `x` on entry and the
/// reflector (with `v[0] = 1`) on exit; returns `(tau, beta)`. Bitwise
/// the same arithmetic as [`house_gen`], minus its allocation.
fn house_gen_in_place(v: &mut [f64]) -> (f64, f64) {
    let n = v.len();
    assert!(n > 0);
    let alpha = v[0];
    let sigma2: f64 = v[1..].iter().map(|x| x * x).sum();
    v[0] = 1.0;
    if sigma2 == 0.0 {
        // Already in e₁ direction: H = I (tau = 0) keeps beta = alpha.
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + sigma2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let denom = alpha - beta;
    for vi in v[1..].iter_mut() {
        *vi /= denom;
    }
    let tau = (beta - alpha) / beta;
    (tau, beta)
}

/// `row[c] −= s[c] · vi`, unrolled by 4. Elementwise (no accumulator),
/// so unrolling cannot reassociate anything.
#[inline]
fn axpy_sub(row: &mut [f64], s: &[f64], vi: f64) {
    let mut rc = row.chunks_exact_mut(4);
    let mut sc = s.chunks_exact(4);
    for (r4, s4) in rc.by_ref().zip(sc.by_ref()) {
        r4[0] -= s4[0] * vi;
        r4[1] -= s4[1] * vi;
        r4[2] -= s4[2] * vi;
        r4[3] -= s4[3] * vi;
    }
    for (r, &x) in rc.into_remainder().iter_mut().zip(sc.remainder()) {
        *r -= x * vi;
    }
}

/// `acc[c] += row[c] · vi`, unrolled by 4 (elementwise over `c`; each
/// `acc[c]` still receives its terms in the same caller-defined order).
#[inline]
fn axpy_add(acc: &mut [f64], row: &[f64], vi: f64) {
    let mut ac = acc.chunks_exact_mut(4);
    let mut rc = row.chunks_exact(4);
    for (a4, r4) in ac.by_ref().zip(rc.by_ref()) {
        a4[0] += r4[0] * vi;
        a4[1] += r4[1] * vi;
        a4[2] += r4[2] * vi;
        a4[3] += r4[3] * vi;
    }
    for (a, &x) in ac.into_remainder().iter_mut().zip(rc.remainder()) {
        *a += x * vi;
    }
}

/// Unblocked Householder QR (LAPACK `geqr2` shape) on a strided view:
/// factors `w` in place, leaving `R` in the upper triangle and the
/// reflector tails below the diagonal; writes the `tau` scalars into
/// `taus` (length `min(m, n)`).
///
/// The trailing update is a vectorized *row sweep*: the per-column dot
/// products `s[c] = Σ_off v[off]·W[j+off][c]` are accumulated row by row
/// over contiguous row slices. Each `s[c]` receives its terms in
/// ascending `off` order — exactly the order of the scalar per-column
/// loop it replaces — and the rank-1 update is elementwise, so the
/// result is bitwise identical to the seed kernel.
pub(crate) fn geqr2_view(w: &mut MatrixViewMut, taus: &mut [f64], ws: &mut Workspace) {
    let (m, n) = (w.rows(), w.cols());
    let k = m.min(n);
    assert_eq!(taus.len(), k);
    let mut v = ws.take(m);
    let mut s = ws.take(n);
    for j in 0..k {
        let vj = &mut v[..m - j];
        for (off, slot) in vj.iter_mut().enumerate() {
            *slot = w.get(j + off, j);
        }
        let (tau, beta) = house_gen_in_place(vj);
        // Apply H = I − tau·v·vᵀ to the trailing columns. Columns are
        // independent, so sweeping all dots before all updates performs
        // the same arithmetic as the column-at-a-time loop.
        if tau != 0.0 && j + 1 < n {
            let sw = &mut s[..n - j - 1];
            sw.fill(0.0);
            for (off, &vi) in vj.iter().enumerate() {
                let row = &w.row(j + off)[j + 1..n];
                axpy_add(sw, row, vi);
            }
            for sc in sw.iter_mut() {
                *sc *= tau;
            }
            for (off, &vi) in vj.iter().enumerate() {
                let row = &mut w.row_mut(j + off)[j + 1..n];
                axpy_sub(row, &s[..n - j - 1], vi);
            }
        }
        w.set(j, j, beta);
        for (off, &vi) in vj.iter().enumerate().skip(1) {
            w.set(j + off, j, vi);
        }
        taus[j] = tau;
    }
    ws.put(s);
    ws.put(v);
}

/// Form the upper-triangular `T` of the compact-WY representation from
/// the unit lower-trapezoidal `U` and the `tau` scalars (LAPACK `larft`,
/// forward column-wise).
pub fn form_t(u: &Matrix, taus: &[f64]) -> Matrix {
    let k = u.cols();
    let mut t = Matrix::zeros(k, k);
    with_ws(|ws| form_t_view(&u.view(), taus, &mut t.view_mut(), ws));
    t
}

/// [`form_t`] writing into a caller-provided (zeroed) `k × k` view, with
/// scratch from `ws`. Row-slice accumulation; per-entry term order
/// matches the scalar loops (ascending `c` within ascending `i`), so the
/// result is bitwise identical.
pub(crate) fn form_t_view(u: &MatrixView, taus: &[f64], t: &mut MatrixViewMut, ws: &mut Workspace) {
    let k = u.cols();
    assert_eq!(taus.len(), k);
    assert_eq!((t.rows(), t.cols()), (k, k));
    let m = u.rows();
    let mut w = ws.take(k);
    for j in 0..k {
        let tau = taus[j];
        t.set(j, j, tau);
        if j > 0 && tau != 0.0 {
            // w = −tau · U[:, 0..j]ᵀ · u_j
            let wj = &mut w[..j];
            wj.fill(0.0);
            for i in j..m {
                let uij = u.get(i, j);
                if uij != 0.0 {
                    axpy_add(wj, &u.row(i)[..j], uij);
                }
            }
            for wc in wj.iter_mut() {
                *wc *= -tau;
            }
            // T[0..j, j] = T[0..j, 0..j] · w (single accumulator per
            // entry — same summation order as the scalar kernel).
            for r in 0..j {
                let mut acc = 0.0;
                for (&tv, &wc) in t.row(r)[r..j].iter().zip(&w[r..j]) {
                    acc += tv * wc;
                }
                t.set(r, j, acc);
            }
        }
    }
    ws.put(w);
}

/// Blocked Householder QR of `a` with panel width `nb`.
///
/// Returns explicit `(U, T, R)`; the input is not modified. This realizes
/// Lemma III.4's sequential QR; the vertical-traffic charge for running
/// it on a virtual processor lives in [`crate::costs`].
///
/// ```
/// use ca_dla::qr::{qr_factor, explicit_q};
/// use ca_dla::gemm::{matmul, Trans};
/// use ca_dla::Matrix;
///
/// let a = Matrix::from_fn(8, 3, |i, j| ((i * 3 + j) as f64).sin());
/// let f = qr_factor(&a, 2);
/// let q = explicit_q(&f.u, &f.t, 3);
/// assert!(matmul(&q, Trans::N, &f.r, Trans::N).max_diff(&a) < 1e-12);
/// ```
pub fn qr_factor(a: &Matrix, nb: usize) -> QrFactors {
    let _span = ca_obs::kernel_span("qr.factor");
    let (m, n) = (a.rows(), a.cols());
    let k = m.min(n);
    let mut w = a.clone();
    let mut taus = vec![0.0; k];
    with_ws(|ws| qr_inplace(&mut w.view_mut(), nb, &mut taus, ws));

    // Extract U (unit lower-trapezoidal, m×k) and R (k×n upper).
    let mut u = Matrix::zeros(m, k);
    for j in 0..k {
        u.set(j, j, 1.0);
        for i in j + 1..m {
            u.set(i, j, w.get(i, j));
        }
    }
    let mut r = Matrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r.set(i, j, w.get(i, j));
        }
    }
    let t = form_t(&u, &taus);
    QrFactors { u, t, r }
}

/// Blocked Householder QR of the view `w` **in place** with panel width
/// `nb`: on exit `w` holds `R` in its upper triangle and the reflector
/// tails below the diagonal, with the `tau` scalars in `taus` (length
/// `min(m, n)`). All scratch (reflector panel copy, `T`, the two WY
/// temporaries) comes from `ws` — steady-state calls allocate nothing.
///
/// Panels are factored directly in sub-views of `w` and the trailing
/// update accumulates straight into `w` — the same arithmetic as the
/// seed's copy-out/copy-back structure, minus the copies, so the factors
/// are bitwise identical.
pub(crate) fn qr_inplace(w: &mut MatrixViewMut, nb: usize, taus: &mut [f64], ws: &mut Workspace) {
    let (m, n) = (w.rows(), w.cols());
    let k = m.min(n);
    assert_eq!(taus.len(), k);
    let nb = nb.max(1);

    let mut j0 = 0;
    while j0 < k {
        let jb = nb.min(k - j0);
        let pm = m - j0;
        // Factor the panel rows j0.., cols j0..j0+jb in place.
        {
            let mut panel = w.sub_mut(j0, j0, pm, jb);
            geqr2_view(&mut panel, &mut taus[j0..j0 + jb], ws);
        }

        // Trailing update: C ← Qᵖᵃⁿᵉˡᵀ·C = C − U·(Tᵀ·(Uᵀ·C)) for
        // C = W[j0.., j0+jb..], accumulated in place.
        if j0 + jb < n {
            let nc = n - (j0 + jb);
            let mut pu = ws.take(pm * jb);
            {
                let panel = w.sub(j0, j0, pm, jb);
                for j in 0..jb {
                    pu[j * jb + j] = 1.0;
                    for i in j + 1..pm {
                        pu[i * jb + j] = panel.get(i, j);
                    }
                }
            }
            let mut pt = ws.take(jb * jb);
            form_t_view(
                &MatrixView::from_slice(&pu, pm, jb),
                &taus[j0..j0 + jb],
                &mut MatrixViewMut::from_slice(&mut pt, jb, jb),
                ws,
            );
            let mut utc = ws.take(jb * nc);
            gemm_view(
                1.0,
                &MatrixView::from_slice(&pu, pm, jb),
                Trans::T,
                &w.sub(j0, j0 + jb, pm, nc),
                Trans::N,
                0.0,
                &mut MatrixViewMut::from_slice(&mut utc, jb, nc),
            );
            let mut ttutc = ws.take(jb * nc);
            gemm_view(
                1.0,
                &MatrixView::from_slice(&pt, jb, jb),
                Trans::T,
                &MatrixView::from_slice(&utc, jb, nc),
                Trans::N,
                0.0,
                &mut MatrixViewMut::from_slice(&mut ttutc, jb, nc),
            );
            gemm_view(
                -1.0,
                &MatrixView::from_slice(&pu, pm, jb),
                Trans::N,
                &MatrixView::from_slice(&ttutc, jb, nc),
                Trans::N,
                1.0,
                &mut w.sub_mut(j0, j0 + jb, pm, nc),
            );
            ws.put(ttutc);
            ws.put(utc);
            ws.put(pt);
            ws.put(pu);
        }
        j0 += jb;
    }
}

/// `C ← Qᵀ·C = C − U·(Tᵀ·(Uᵀ·C))`.
pub fn apply_qt(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.rows());
    let utc = matmul(u, Trans::T, c, Trans::N);
    let s = matmul(t, Trans::T, &utc, Trans::N);
    gemm(-1.0, u, Trans::N, &s, Trans::N, 1.0, c);
}

/// `C ← Q·C = C − U·(T·(Uᵀ·C))`.
pub fn apply_q(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.rows());
    let utc = matmul(u, Trans::T, c, Trans::N);
    let s = matmul(t, Trans::N, &utc, Trans::N);
    gemm(-1.0, u, Trans::N, &s, Trans::N, 1.0, c);
}

/// `C ← C·Q = C − ((C·U)·T)·Uᵀ`.
pub fn apply_q_right(u: &Matrix, t: &Matrix, c: &mut Matrix) {
    assert_eq!(u.rows(), c.cols());
    let cu = matmul(c, Trans::N, u, Trans::N);
    let cut = matmul(&cu, Trans::N, t, Trans::N);
    gemm(-1.0, &cut, Trans::N, u, Trans::T, 1.0, c);
}

/// The first `ncols` columns of the explicit `Q` factor (`m × ncols`).
pub fn explicit_q(u: &Matrix, t: &Matrix, ncols: usize) -> Matrix {
    let m = u.rows();
    assert!(ncols <= m);
    let mut q = Matrix::zeros(m, ncols);
    for i in 0..ncols {
        q.set(i, i, 1.0);
    }
    apply_q(u, t, &mut q);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_qr(a: &Matrix, nb: usize, tol: f64) {
        let f = qr_factor(a, nb);
        let k = f.k();
        // R upper-triangular.
        for i in 0..k {
            for j in 0..i.min(f.r.cols()) {
                assert!(
                    f.r.get(i, j).abs() < tol,
                    "R not upper triangular at ({i},{j})"
                );
            }
        }
        // Q orthogonal: (I − UTUᵀ)ᵀ(I − UTUᵀ) = I on the first k columns.
        let q = explicit_q(&f.u, &f.t, k);
        let qtq = matmul(&q, Trans::T, &q, Trans::N);
        assert!(
            qtq.max_diff(&Matrix::identity(k)) < tol,
            "QᵀQ deviates from identity by {}",
            qtq.max_diff(&Matrix::identity(k))
        );
        // A = Q·R.
        let qr = matmul(&q, Trans::N, &f.r, Trans::N);
        assert!(qr.max_diff(a) < tol * a.norm_max().max(1.0), "A ≠ QR");
    }

    #[test]
    fn tall_matrix() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gen::random_matrix(&mut rng, 40, 8);
        check_qr(&a, 4, 1e-10);
    }

    #[test]
    fn square_matrix() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen::random_matrix(&mut rng, 16, 16);
        check_qr(&a, 5, 1e-10);
    }

    #[test]
    fn wide_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen::random_matrix(&mut rng, 6, 14);
        check_qr(&a, 3, 1e-10);
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_vec(4, 1, vec![3.0, 0.0, 4.0, 0.0]);
        let f = qr_factor(&a, 1);
        assert!((f.r.get(0, 0).abs() - 5.0).abs() < 1e-12);
        check_qr(&a, 1, 1e-12);
    }

    #[test]
    fn already_triangular_input() {
        let a = Matrix::from_fn(5, 5, |i, j| if j >= i { (i + j + 1) as f64 } else { 0.0 });
        check_qr(&a, 2, 1e-10);
    }

    #[test]
    fn zero_column_is_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = gen::random_matrix(&mut rng, 10, 4);
        for i in 0..10 {
            a.set(i, 2, 0.0);
        }
        check_qr(&a, 2, 1e-10);
    }

    #[test]
    fn blocked_matches_unblocked() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gen::random_matrix(&mut rng, 24, 12);
        let f1 = qr_factor(&a, 1);
        let f2 = qr_factor(&a, 5);
        // R is unique up to column signs; with identical reflector sign
        // conventions both paths must agree exactly (same elimination order).
        assert!(f1.r.max_diff(&f2.r) < 1e-10);
        assert!(f1.u.max_diff(&f2.u) < 1e-10);
    }

    #[test]
    fn apply_qt_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = gen::random_matrix(&mut rng, 12, 5);
        let c = gen::random_matrix(&mut rng, 12, 7);
        let f = qr_factor(&a, 3);
        let q = explicit_q(&f.u, &f.t, 12);
        let want = matmul(&q, Trans::T, &c, Trans::N);
        let mut got = c.clone();
        apply_qt(&f.u, &f.t, &mut got);
        assert!(got.max_diff(&want) < 1e-10);
    }

    #[test]
    fn apply_q_right_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = gen::random_matrix(&mut rng, 9, 4);
        let c = gen::random_matrix(&mut rng, 6, 9);
        let f = qr_factor(&a, 2);
        let q = explicit_q(&f.u, &f.t, 9);
        let want = matmul(&c, Trans::N, &q, Trans::N);
        let mut got = c.clone();
        apply_q_right(&f.u, &f.t, &mut got);
        assert!(got.max_diff(&want) < 1e-10);
    }

    #[test]
    fn qt_applied_to_a_gives_r() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = gen::random_matrix(&mut rng, 15, 6);
        let f = qr_factor(&a, 4);
        let mut c = a.clone();
        apply_qt(&f.u, &f.t, &mut c);
        // Top 6×6 of QᵀA is R, bottom is ~0.
        for i in 0..6 {
            for j in 0..6 {
                assert!((c.get(i, j) - f.r.get(i, j)).abs() < 1e-10);
            }
        }
        for i in 6..15 {
            for j in 0..6 {
                assert!(c.get(i, j).abs() < 1e-10);
            }
        }
    }
}
