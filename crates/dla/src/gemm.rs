//! General matrix multiplication, `C ← α·op(A)·op(B) + β·C`.
//!
//! The kernel uses an `i-l-j` loop order over row-major data (unit-stride
//! innermost accumulation, auto-vectorizable) and parallelizes over row
//! blocks of `C` with rayon when the output is large enough to amortize
//! task spawning. Transposed operands are materialized once — operand
//! shapes in this code base are panels, so the copy is cheap relative to
//! the multiply.

use crate::matrix::Matrix;
use rayon::prelude::*;
use std::borrow::Cow;

/// Operand orientation for [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

/// Row count threshold above which the kernel parallelizes over rows.
const PAR_ROWS: usize = 128;

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Panics if the operand shapes are inconsistent with `C`.
pub fn gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    let a_eff: Cow<Matrix> = match ta {
        Trans::N => Cow::Borrowed(a),
        Trans::T => Cow::Owned(a.transpose()),
    };
    let b_eff: Cow<Matrix> = match tb {
        Trans::N => Cow::Borrowed(b),
        Trans::T => Cow::Owned(b.transpose()),
    };
    let (m, k) = (a_eff.rows(), a_eff.cols());
    let (k2, n) = (b_eff.rows(), b_eff.cols());
    assert_eq!(k, k2, "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), m, "gemm: output row count disagrees");
    assert_eq!(c.cols(), n, "gemm: output column count disagrees");
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a_eff.data();
    let b_data = b_eff.data();
    let body = |i: usize, c_row: &mut [f64]| {
        if beta == 0.0 {
            c_row.fill(0.0);
        } else if beta != 1.0 {
            for v in c_row.iter_mut() {
                *v *= beta;
            }
        }
        if k == 0 {
            return;
        }
        let a_row = &a_data[i * k..(i + 1) * k];
        for (l, &ail) in a_row.iter().enumerate() {
            let f = alpha * ail;
            if f == 0.0 {
                continue;
            }
            let b_row = &b_data[l * n..(l + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += f * bv;
            }
        }
    };

    if m >= PAR_ROWS {
        c.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        for (i, row) in c.data_mut().chunks_mut(n).enumerate() {
            body(i, row);
        }
    }
}

/// Convenience: allocate and return `op(A)·op(B)`.
pub fn matmul(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans) -> Matrix {
    let m = match ta {
        Trans::N => a.rows(),
        Trans::T => a.cols(),
    };
    let n = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

/// Dense symmetric matrix–vector product `y = A·x` (used by the
/// ScaLAPACK-style baseline's per-column trailing updates).
pub fn symv(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(a.rows(), x.len());
    let n = x.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let row = a.row(i);
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * x[j];
        }
        y[i] = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_nn() {
        let a = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64 * 0.1);
        let b = Matrix::from_fn(5, 6, |i, j| (i as f64) - (j as f64) * 0.5);
        assert!(matmul(&a, Trans::N, &b, Trans::N).max_diff(&naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn matches_naive_transposed() {
        let a = Matrix::from_fn(4, 7, |i, j| ((i + 1) * (j + 2)) as f64 * 0.01);
        let b = Matrix::from_fn(6, 4, |i, j| (i as f64 * 1.5) - j as f64);
        let c = matmul(&a, Trans::T, &b, Trans::T);
        let reference = naive(&a.transpose(), &b.transpose());
        assert!(c.max_diff(&reference) < 1e-12);
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        gemm(2.0, &a, Trans::N, &b, Trans::N, 3.0, &mut c);
        // C = 2A + 3·ones
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), 2.0 * (i + j) as f64 + 3.0);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * j) as f64).sin());
        let c = matmul(&a, Trans::N, &Matrix::identity(5), Trans::N);
        assert!(c.max_diff(&a) < 1e-15);
    }

    #[test]
    fn large_parallel_path_matches() {
        let a = Matrix::from_fn(200, 30, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(30, 40, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        assert!(matmul(&a, Trans::N, &b, Trans::N).max_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn symv_matches_gemm() {
        let mut a = Matrix::from_fn(6, 6, |i, j| ((i * 6 + j) as f64).cos());
        a.symmetrize();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let xm = Matrix::from_vec(6, 1, x.clone());
        let want = matmul(&a, Trans::N, &xm, Trans::N);
        let got = symv(&a, &x);
        for i in 0..6 {
            assert!((got[i] - want.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_inner_dimension_zeroes_output() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::from_fn(3, 4, |_, _| 7.0);
        gemm(1.0, &a, Trans::N, &b, Trans::N, 0.0, &mut c);
        assert_eq!(c.norm_max(), 0.0);
    }
}
