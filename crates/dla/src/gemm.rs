//! General matrix multiplication, `C ← α·op(A)·op(B) + β·C`.
//!
//! The kernel is a three-level cache-blocked (BLIS-style) GEMM over
//! row-major data:
//!
//! * the `n` dimension is split into `NC`-wide panels and the `k`
//!   dimension into `KC`-deep panels; each `KC × NC` panel of `op(B)` is
//!   **packed** once into an `NR`-strip buffer sized for the L2/L3 cache,
//! * the `m` dimension is split into `MC`-tall blocks; each `MC × KC`
//!   block of `op(A)` is packed into an `MR`-strip buffer sized for the
//!   L1 cache,
//! * an `MR × NR` register micro-kernel accumulates over the packed
//!   strips with unit stride and independent accumulators.
//!
//! Transposed operands are handled by the packing routines (the gather
//! happens once per panel), never by materializing `op(A)`/`op(B)`.
//! Row blocks of `C` are distributed over rayon threads — distinct `MC`
//! slabs write disjoint output rows. Small products skip the blocking
//! machinery entirely and use a fused `i-l-j` loop.
//!
//! Every path is generic over row strides: [`gemm_view`] accepts
//! [`MatrixView`] operands and a [`MatrixViewMut`] accumulation target,
//! so the bulge-chase and QR kernels multiply directly into sub-blocks
//! of a larger matrix with no `block`/`set_block` copies. The
//! [`Matrix`]-based [`gemm`] is a thin wrapper over the same core (a
//! full view has `stride == cols`), so its numerics are unchanged.

use crate::matrix::Matrix;
use crate::view::{MatrixView, MatrixViewMut};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Operand orientation for [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

/// Micro-kernel register tile height (rows of `C`).
const MR: usize = 4;
/// Micro-kernel register tile width (columns of `C`).
const NR: usize = 8;
/// Rows of `op(A)` packed per macro-block (L2-resident: `MC·KC` doubles).
const MC: usize = 64;
/// Inner-dimension depth per packed panel.
const KC: usize = 256;
/// Columns of `op(B)` packed per panel (L3-resident: `KC·NC` doubles).
const NC: usize = 2048;

/// Flop threshold (2mnk) below which the blocked path is not worth its
/// packing overhead and a fused loop is used instead.
const SMALL_FLOPS: usize = 1 << 17;

/// Row count threshold above which the small kernel parallelizes.
const PAR_ROWS: usize = 128;

static BLOCKED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable the blocked path at runtime, routing every product
/// through the fused unblocked loop instead — the benchmark hook for
/// before/after comparisons (see `ca-bench`'s `bench_pr1`).
pub fn set_blocked_enabled(on: bool) {
    BLOCKED_ENABLED.store(on, Ordering::Relaxed);
}

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Panics if the operand shapes are inconsistent with `C`.
pub fn gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    gemm_view(alpha, &a.view(), ta, &b.view(), tb, beta, &mut c.view_mut());
}

/// [`gemm`] over strided views: `C ← α·op(A)·op(B) + β·C` accumulated
/// in place into a [`MatrixViewMut`] — the zero-copy entry used by the
/// QR trailing updates and the bulge-chase rank-2 updates.
pub fn gemm_view(
    alpha: f64,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    tb: Trans,
    beta: f64,
    c: &mut MatrixViewMut,
) {
    let (m, n, k) = check_shapes(a, ta, b, tb, c);
    gemm_dispatch(alpha, a, ta, b, tb, beta, c, (m, n, k));
}

/// [`gemm_view`] with the small-vs-blocked kernel choice made as if the
/// product had shape `full_shape = (m, n, k)`.
///
/// Used by callers that shrink a product's output to just the cells they
/// need (the bulge chase's diagonal-overlap update computes only the
/// `nr × nr` corner of the reference path's `nr × nc` rank-2k update)
/// but must keep the full product's kernel selection so each shared
/// output cell sees bitwise the same accumulation as the reference.
/// Per-cell results of both kernels are independent of which *other*
/// columns are present; only the small/blocked decision depends on the
/// total shape, which is what the hint pins down.
#[allow(clippy::too_many_arguments)] // mirrors gemm_view's BLAS-shaped signature + the hint
pub fn gemm_view_hinted(
    alpha: f64,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    tb: Trans,
    beta: f64,
    c: &mut MatrixViewMut,
    full_shape: (usize, usize, usize),
) {
    check_shapes(a, ta, b, tb, c);
    gemm_dispatch(alpha, a, ta, b, tb, beta, c, full_shape);
}

fn check_shapes(
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    tb: Trans,
    c: &MatrixViewMut,
) -> (usize, usize, usize) {
    let (m, k) = match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    };
    let (k2, n) = match tb {
        Trans::N => (b.rows(), b.cols()),
        Trans::T => (b.cols(), b.rows()),
    };
    assert_eq!(k, k2, "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), m, "gemm: output row count disagrees");
    assert_eq!(c.cols(), n, "gemm: output column count disagrees");
    (m, n, k)
}

#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    alpha: f64,
    a: &MatrixView,
    ta: Trans,
    b: &MatrixView,
    tb: Trans,
    beta: f64,
    c: &mut MatrixViewMut,
    decision_shape: (usize, usize, usize),
) {
    let k = match ta {
        Trans::N => a.cols(),
        Trans::T => a.rows(),
    };
    if c.rows() == 0 || c.cols() == 0 {
        return;
    }

    scale(beta, c);
    if alpha == 0.0 || k == 0 {
        return;
    }

    let (dm, dn, dk) = decision_shape;
    if 2 * dm * dn * dk < SMALL_FLOPS || !BLOCKED_ENABLED.load(Ordering::Relaxed) {
        gemm_small(alpha, a, ta, b, tb, c);
    } else {
        gemm_blocked(alpha, a, ta, b, tb, c);
    }
}

/// `C ← β·C`, parallel over rows when large and contiguous.
fn scale(beta: f64, c: &mut MatrixViewMut) {
    if beta == 1.0 {
        return;
    }
    let rows = c.rows();
    let n = c.cols().max(1);
    let stride = c.stride();
    let body = |row: &mut [f64]| {
        if beta == 0.0 {
            row.fill(0.0);
        } else {
            for v in row.iter_mut() {
                *v *= beta;
            }
        }
    };
    if stride == n {
        let len = rows * n;
        let data = &mut c.data_mut()[..len];
        if rows >= PAR_ROWS {
            data.par_chunks_mut(n).for_each(body);
        } else {
            data.chunks_mut(n).for_each(body);
        }
    } else {
        for i in 0..rows {
            body(c.row_mut(i));
        }
    }
}

/// Element `op(A)[i][l]` resolver data: (data, leading dim, transposed).
struct Operand<'a> {
    data: &'a [f64],
    ld: usize,
    t: bool,
}

impl<'a> Operand<'a> {
    fn new(view: &MatrixView<'a>, tr: Trans) -> Self {
        Self {
            data: view.data(),
            ld: view.stride(),
            t: matches!(tr, Trans::T),
        }
    }

    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> f64 {
        if self.t {
            self.data[j * self.ld + i]
        } else {
            self.data[i * self.ld + j]
        }
    }
}

/// Fused `i-l-j` kernel for small products (`C` pre-scaled by β):
/// unit-stride accumulation over `C` rows, operand transposes read in
/// place.
fn gemm_small(alpha: f64, a: &MatrixView, ta: Trans, b: &MatrixView, tb: Trans, c: &mut MatrixViewMut) {
    let (m, n) = (c.rows(), c.cols());
    let cs = c.stride();
    let k = match ta {
        Trans::N => a.cols(),
        Trans::T => a.rows(),
    };
    let av = Operand::new(a, ta);
    let bv = Operand::new(b, tb);
    let data = c.data_mut();
    for i in 0..m {
        let c_row = &mut data[i * cs..i * cs + n];
        for l in 0..k {
            let f = alpha * av.get(i, l);
            if f == 0.0 {
                continue;
            }
            if bv.t {
                for (j, cv) in c_row.iter_mut().enumerate() {
                    *cv += f * bv.data[j * bv.ld + l];
                }
            } else {
                let b_row = &bv.data[l * bv.ld..l * bv.ld + n];
                for (cv, &bb) in c_row.iter_mut().zip(b_row) {
                    *cv += f * bb;
                }
            }
        }
    }
}

/// Pack the `kb × nb` panel of `op(B)` starting at `(pc, jc)` into
/// `NR`-wide column strips: strip `t` holds `kb` rows of `NR` contiguous
/// values (zero-padded past `nb`).
fn pack_b(buf: &mut [f64], bv: &Operand, pc: usize, jc: usize, kb: usize, nb: usize) {
    let strips = nb.div_ceil(NR);
    for t in 0..strips {
        let j0 = jc + t * NR;
        let nr_eff = NR.min(jc + nb - j0);
        let strip = &mut buf[t * kb * NR..(t + 1) * kb * NR];
        for (l, row) in strip.chunks_exact_mut(NR).enumerate() {
            for (cc, slot) in row.iter_mut().enumerate() {
                *slot = if cc < nr_eff {
                    bv.get(pc + l, j0 + cc)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack the `mb × kb` block of `op(A)` starting at `(i0, pc)` into
/// `MR`-tall row strips: strip `s` holds `kb` columns of `MR` contiguous
/// values (zero-padded past `mb`).
fn pack_a(buf: &mut [f64], av: &Operand, i0: usize, pc: usize, mb: usize, kb: usize) {
    let strips = mb.div_ceil(MR);
    for s in 0..strips {
        let r0 = i0 + s * MR;
        let mr_eff = MR.min(i0 + mb - r0);
        let strip = &mut buf[s * kb * MR..(s + 1) * kb * MR];
        for (l, col) in strip.chunks_exact_mut(MR).enumerate() {
            for (rr, slot) in col.iter_mut().enumerate() {
                *slot = if rr < mr_eff {
                    av.get(r0 + rr, pc + l)
                } else {
                    0.0
                };
            }
        }
    }
}

/// The `MR × NR` register micro-kernel: `acc += Ap·Bp` over `kb` packed
/// steps. The fixed-size array refs let the compiler keep the whole
/// accumulator tile in registers with no bounds checks.
#[inline(always)]
fn micro_kernel(kb: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (avec, bvec) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kb) {
        let avec: &[f64; MR] = avec.try_into().unwrap();
        let bvec: &[f64; NR] = bvec.try_into().unwrap();
        for r in 0..MR {
            let ar = avec[r];
            for cc in 0..NR {
                acc[r][cc] += ar * bvec[cc];
            }
        }
    }
}

/// [`micro_kernel`] compiled with 256-bit vectors (AVX2). The
/// arithmetic is the same statement sequence — separate multiply and
/// add (Rust never contracts to FMA), and each vector lane is a
/// *distinct* element of `C`, so every `C` element sees the identical
/// rounding sequence as the portable kernel: results are bitwise
/// equal. Selected at runtime by [`simd_kernel_enabled`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_kernel_avx2(kb: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (avec, bvec) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kb) {
        let avec: &[f64; MR] = avec.try_into().unwrap();
        let bvec: &[f64; NR] = bvec.try_into().unwrap();
        for r in 0..MR {
            let ar = avec[r];
            for cc in 0..NR {
                acc[r][cc] += ar * bvec[cc];
            }
        }
    }
}

/// True when the lookahead engine is on and the host supports the wide
/// micro-kernel. Part of the `CA_LOOKAHEAD` engine (like the zero-copy
/// carma/streaming internals): the barrier leg keeps the portable
/// kernel so engine-off timings stay representative of the seed path,
/// while the engine-on leg runs the bitwise-identical AVX2 tile.
#[cfg(target_arch = "x86_64")]
fn simd_kernel_enabled() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    ca_obs::knobs::lookahead() && *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}


/// The three-level blocked path (`C` pre-scaled by β). Works on strided
/// `C`: row indexing uses the view stride, and each `MC`-row slab still
/// covers disjoint output rows (`cols ≤ stride`, so slab boundaries at
/// multiples of `MC·stride` never split a row's live columns).
fn gemm_blocked(alpha: f64, a: &MatrixView, ta: Trans, b: &MatrixView, tb: Trans, c: &mut MatrixViewMut) {
    let (m, n) = (c.rows(), c.cols());
    let cs = c.stride();
    let k = match ta {
        Trans::N => a.cols(),
        Trans::T => a.rows(),
    };
    let av = Operand::new(a, ta);
    let bv = Operand::new(b, tb);

    let kc = KC.min(k);
    let nb_max = NC.min(n).div_ceil(NR) * NR;
    let mut bpack = vec![0.0f64; kc * nb_max];
    #[cfg(target_arch = "x86_64")]
    let wide = simd_kernel_enabled();

    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            pack_b(&mut bpack, &bv, pc, jc, kb, nb);
            let bpack = &bpack;
            let av = &av;

            // Each MC-row slab of C is owned by exactly one task.
            let do_slab = |blk: usize, slab: &mut [f64]| {
                let i0 = blk * MC;
                // The final slab may end at its last row's `n`-th column
                // rather than a full stride, hence the ceiling division.
                let mb = slab.len().div_ceil(cs);
                let mut apack = vec![0.0f64; mb.div_ceil(MR) * MR * kb];
                pack_a(&mut apack, av, i0, pc, mb, kb);
                for s in 0..mb.div_ceil(MR) {
                    let mr_eff = MR.min(mb - s * MR);
                    let pa = &apack[s * kb * MR..(s + 1) * kb * MR];
                    for t in 0..nb.div_ceil(NR) {
                        let nr_eff = NR.min(nb - t * NR);
                        let pb = &bpack[t * kb * NR..(t + 1) * kb * NR];
                        let mut acc = [[0.0f64; NR]; MR];
                        #[cfg(target_arch = "x86_64")]
                        if wide {
                            // SAFETY: `wide` implies AVX2 was detected.
                            unsafe { micro_kernel_avx2(kb, pa, pb, &mut acc) };
                        } else {
                            micro_kernel(kb, pa, pb, &mut acc);
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        micro_kernel(kb, pa, pb, &mut acc);
                        let col0 = jc + t * NR;
                        for r in 0..mr_eff {
                            let row = &mut slab[(s * MR + r) * cs + col0..][..nr_eff];
                            for (cv, &x) in row.iter_mut().zip(&acc[r][..nr_eff]) {
                                *cv += alpha * x;
                            }
                        }
                    }
                }
            };

            let live = (m - 1) * cs + n;
            let data = &mut c.data_mut()[..live];
            if m > MC {
                data.par_chunks_mut(MC * cs)
                    .enumerate()
                    .for_each(|(blk, slab)| do_slab(blk, slab));
            } else {
                do_slab(0, data);
            }
        }
    }
}

/// Convenience: allocate and return `op(A)·op(B)`.
pub fn matmul(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans) -> Matrix {
    let _span = ca_obs::kernel_span("gemm.matmul");
    let m = match ta {
        Trans::N => a.rows(),
        Trans::T => a.cols(),
    };
    let n = match tb {
        Trans::N => b.cols(),
        Trans::T => b.rows(),
    };
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

/// Dense symmetric matrix–vector product `y = A·x` (used by the
/// ScaLAPACK-style baseline's per-column trailing updates). Each row's
/// dot product runs over slices with four independent accumulators;
/// rows are distributed over rayon threads when large.
pub fn symv(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(a.rows(), x.len());
    let n = x.len();
    let data = a.data();
    let dot_row = |i: usize| -> f64 {
        let row = &data[i * n..(i + 1) * n];
        let mut acc = [0.0f64; 4];
        for (r4, x4) in row.chunks_exact(4).zip(x.chunks_exact(4)) {
            acc[0] += r4[0] * x4[0];
            acc[1] += r4[1] * x4[1];
            acc[2] += r4[2] * x4[2];
            acc[3] += r4[3] * x4[3];
        }
        let tail = row
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(x.chunks_exact(4).remainder())
            .map(|(&r, &xx)| r * xx)
            .sum::<f64>();
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    };
    let mut y = vec![0.0; n];
    if n >= PAR_ROWS {
        y.par_iter_mut()
            .enumerate()
            .for_each(|(i, yi)| *yi = dot_row(i));
    } else {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot_row(i);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_nn() {
        let a = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64 * 0.1);
        let b = Matrix::from_fn(5, 6, |i, j| (i as f64) - (j as f64) * 0.5);
        assert!(matmul(&a, Trans::N, &b, Trans::N).max_diff(&naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn matches_naive_transposed() {
        let a = Matrix::from_fn(4, 7, |i, j| ((i + 1) * (j + 2)) as f64 * 0.01);
        let b = Matrix::from_fn(6, 4, |i, j| (i as f64 * 1.5) - j as f64);
        let c = matmul(&a, Trans::T, &b, Trans::T);
        let reference = naive(&a.transpose(), &b.transpose());
        assert!(c.max_diff(&reference) < 1e-12);
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        gemm(2.0, &a, Trans::N, &b, Trans::N, 3.0, &mut c);
        // C = 2A + 3·ones
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), 2.0 * (i + j) as f64 + 3.0);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * j) as f64).sin());
        let c = matmul(&a, Trans::N, &Matrix::identity(5), Trans::N);
        assert!(c.max_diff(&a) < 1e-15);
    }

    #[test]
    fn large_parallel_path_matches() {
        let a = Matrix::from_fn(200, 30, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(30, 40, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        assert!(matmul(&a, Trans::N, &b, Trans::N).max_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn blocked_path_matches_naive_all_orientations() {
        // Odd sizes exercise every packing edge (partial MR/NR strips,
        // partial KC panel) and cross the blocked-path threshold.
        let (m, k, n) = (131, 67, 93);
        let gen_a = |r: usize, c: usize| {
            Matrix::from_fn(r, c, |i, j| ((i * 37 + j * 11) % 19) as f64 * 0.25 - 2.0)
        };
        let gen_b = |r: usize, c: usize| {
            Matrix::from_fn(r, c, |i, j| ((i * 13 + j * 29) % 23) as f64 * 0.125 - 1.0)
        };
        for (ta, tb) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let a = match ta {
                Trans::N => gen_a(m, k),
                Trans::T => gen_a(k, m),
            };
            let b = match tb {
                Trans::N => gen_b(k, n),
                Trans::T => gen_b(n, k),
            };
            let a_eff = match ta {
                Trans::N => a.clone(),
                Trans::T => a.transpose(),
            };
            let b_eff = match tb {
                Trans::N => b.clone(),
                Trans::T => b.transpose(),
            };
            let want = naive(&a_eff, &b_eff);
            let got = matmul(&a, ta, &b, tb);
            assert!(
                got.max_diff(&want) < 1e-10,
                "ta={ta:?} tb={tb:?}: {}",
                got.max_diff(&want)
            );
        }
    }

    #[test]
    fn blocked_path_alpha_beta() {
        let a = Matrix::from_fn(150, 80, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(80, 120, |i, j| ((3 * i + j) % 5) as f64 - 2.0);
        let c0 = Matrix::from_fn(150, 120, |i, j| ((i * j) % 11) as f64 * 0.5);
        let mut c = c0.clone();
        gemm(-1.5, &a, Trans::N, &b, Trans::N, 0.25, &mut c);
        let mut want = c0;
        want.scale(0.25);
        want.axpy(-1.5, &naive(&a, &b));
        assert!(c.max_diff(&want) < 1e-10);
    }

    #[test]
    fn deep_inner_dimension_multiple_kc_panels() {
        // k > KC exercises the pc-loop accumulation across packed panels.
        let a = Matrix::from_fn(40, 600, |i, j| ((i * 3 + j) % 9) as f64 * 0.1 - 0.4);
        let b = Matrix::from_fn(600, 35, |i, j| ((i + j * 5) % 8) as f64 * 0.2 - 0.7);
        assert!(matmul(&a, Trans::N, &b, Trans::N).max_diff(&naive(&a, &b)) < 1e-9);
    }

    #[test]
    fn symv_matches_gemm() {
        let mut a = Matrix::from_fn(6, 6, |i, j| ((i * 6 + j) as f64).cos());
        a.symmetrize();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let xm = Matrix::from_vec(6, 1, x.clone());
        let want = matmul(&a, Trans::N, &xm, Trans::N);
        let got = symv(&a, &x);
        for i in 0..6 {
            assert!((got[i] - want.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn symv_large_parallel_path() {
        let n = 200;
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 17) as f64 * 0.1 - 0.8);
        a.symmetrize();
        let x: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let xm = Matrix::from_vec(n, 1, x.clone());
        let want = matmul(&a, Trans::N, &xm, Trans::N);
        let got = symv(&a, &x);
        for i in 0..n {
            assert!((got[i] - want.get(i, 0)).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inner_dimension_zeroes_output() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::from_fn(3, 4, |_, _| 7.0);
        gemm(1.0, &a, Trans::N, &b, Trans::N, 0.0, &mut c);
        assert_eq!(c.norm_max(), 0.0);
    }
}
