//! Runtime tuning knobs for the sequential eigensolve kernels.
//!
//! Two schedule parameters control the band → tridiagonal → eigenvalue
//! finale (`tridiag::banded_eigenvalues` and the solver's vectors path):
//!
//! * the **halving floor** — the bandwidth below which bandwidth-halving
//!   chase sweeps (fat rank-`b/2` block reflectors, GEMM-rich) stop and
//!   the remaining reduction runs as one fused rank-1 sweep
//!   ([`crate::bulge::sweep_to_tridiagonal`]); and
//! * the **divide-and-conquer leaf size** — the subproblem size below
//!   which [`crate::dnc`] falls back to the implicit-shift QL solver.
//!
//! Both default to values picked by the stage-time bench on the
//! reference host and can be overridden per process with the
//! `CA_HALVE_FLOOR` / `CA_DNC_LEAF` environment variables, or per run
//! with the setters (the bench harness toggles them to time both
//! engines in one process). `CA_DNC=0` disables divide-and-conquer
//! entirely, restoring the QL finale — the "before" leg of the
//! stage-time comparison.
//!
//! Reads are lock-free atomics; the env variables are consulted once,
//! on first read, through the shared [`ca_obs::knobs`] parser (so a
//! malformed value like `CA_DNC=fast` warns on stderr instead of being
//! silently ignored).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default bandwidth at which halving sweeps hand over to the fused
/// rank-1 sweep. The fused sweep's contiguous slab kernel runs near
/// memory bandwidth, so on the reference host the direct sweep beats
/// any halving schedule for every bandwidth the solver produces
/// (stage-time bench, n = 512: floor 128 ≈ 36 ms vs floor 64 ≈ 48 ms
/// vs legacy halve-to-8 ≈ 117 ms) — the default floor therefore sits
/// above the pipeline's intermediate bandwidths, i.e. no halvings.
pub const DEFAULT_HALVE_FLOOR: usize = 128;

/// Default D&C leaf size: below this the QL solver's `O(n²)` rotations
/// beat the merge machinery's constant factors.
pub const DEFAULT_DNC_LEAF: usize = 40;

static HALVE_FLOOR: AtomicUsize = AtomicUsize::new(0); // 0 = uninitialised
static DNC_LEAF: AtomicUsize = AtomicUsize::new(0);
static DNC_ENABLED: AtomicBool = AtomicBool::new(true);
static DNC_INIT: OnceLock<()> = OnceLock::new();

fn init() {
    DNC_INIT.get_or_init(|| {
        let floor = ca_obs::knobs::usize_env("CA_HALVE_FLOOR").unwrap_or(DEFAULT_HALVE_FLOOR);
        HALVE_FLOOR.store(floor.max(1), Ordering::Relaxed);
        let leaf = ca_obs::knobs::usize_env("CA_DNC_LEAF").unwrap_or(DEFAULT_DNC_LEAF);
        DNC_LEAF.store(leaf.max(2), Ordering::Relaxed);
        if let Some(v) = ca_obs::knobs::usize_env("CA_DNC") {
            DNC_ENABLED.store(v != 0, Ordering::Relaxed);
        }
    });
}

/// Bandwidth at which halving sweeps stop and the fused rank-1 sweep
/// finishes the reduction (env `CA_HALVE_FLOOR`).
pub fn halve_floor() -> usize {
    init();
    HALVE_FLOOR.load(Ordering::Relaxed)
}

/// Override the halving floor for this process (≥ 1).
pub fn set_halve_floor(floor: usize) {
    init();
    HALVE_FLOOR.store(floor.max(1), Ordering::Relaxed);
}

/// Subproblem size below which divide-and-conquer falls back to QL
/// (env `CA_DNC_LEAF`).
pub fn dnc_leaf() -> usize {
    init();
    DNC_LEAF.load(Ordering::Relaxed)
}

/// Override the D&C leaf size for this process (≥ 2).
pub fn set_dnc_leaf(leaf: usize) {
    init();
    DNC_LEAF.store(leaf.max(2), Ordering::Relaxed);
}

/// Whether the divide-and-conquer engine (and with it the fused rank-1
/// sweep schedule) is enabled (env `CA_DNC`, default on). Off restores
/// the legacy halve-to-8 + generic-chase + QL finale byte for byte.
pub fn dnc_enabled() -> bool {
    init();
    DNC_ENABLED.load(Ordering::Relaxed)
}

/// Toggle the divide-and-conquer engine for this process.
pub fn set_dnc_enabled(on: bool) {
    init();
    DNC_ENABLED.store(on, Ordering::Relaxed);
}

/// True when the shared `CA_SERIAL` knob is truthy
/// (`1`/`true`/`yes`/`on` — see [`ca_obs::knobs::serial`]): recursive
/// splits and secular root solves run in deterministic serial order
/// instead of over rayon workers. The parallel order is bit-identical
/// anyway (subproblems are independent and merges deterministic); the
/// hatch exists so the serial-executor CI lane exercises one code path
/// end to end. This is the same knob read the BSP executor uses, so the
/// two subsystems can never disagree about what `CA_SERIAL=yes` means.
pub fn serial() -> bool {
    ca_obs::knobs::serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults_and_roundtrip() {
        let f0 = halve_floor();
        let l0 = dnc_leaf();
        assert!(f0 >= 1);
        assert!(l0 >= 2);
        set_halve_floor(16);
        assert_eq!(halve_floor(), 16);
        set_halve_floor(f0);
        set_dnc_leaf(8);
        assert_eq!(dnc_leaf(), 8);
        set_dnc_leaf(l0);
        let on = dnc_enabled();
        set_dnc_enabled(!on);
        assert_eq!(dnc_enabled(), !on);
        set_dnc_enabled(on);
    }
}
