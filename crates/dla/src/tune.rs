//! Runtime tuning knobs for the sequential eigensolve kernels.
//!
//! Two schedule parameters control the band → tridiagonal → eigenvalue
//! finale (`tridiag::banded_eigenvalues` and the solver's vectors path):
//!
//! * the **halving floor** — the bandwidth below which bandwidth-halving
//!   chase sweeps (fat rank-`b/2` block reflectors, GEMM-rich) stop and
//!   the remaining reduction runs as one fused rank-1 sweep
//!   ([`crate::bulge::sweep_to_tridiagonal`]); and
//! * the **divide-and-conquer leaf size** — the subproblem size below
//!   which [`crate::dnc`] falls back to the implicit-shift QL solver.
//!
//! Both default to values picked by the stage-time bench on the
//! reference host and can be overridden per process with the
//! `CA_HALVE_FLOOR` / `CA_DNC_LEAF` environment variables, or per run
//! with the setters (the bench harness toggles them to time both
//! engines in one process). `CA_DNC=0` disables divide-and-conquer
//! entirely, restoring the QL finale — the "before" leg of the
//! stage-time comparison.
//!
//! Reads are lock-free atomics; the env variables are consulted once,
//! on first read, through the shared [`ca_obs::knobs`] parser (so a
//! malformed value like `CA_DNC=fast` warns on stderr instead of being
//! silently ignored).
//!
//! ## Snapshots and per-scope overrides
//!
//! The process-global setters above are a footgun for anything that
//! runs more than one solve per process: a `set_dnc_enabled` flip (or a
//! test toggling knobs) midway through a batch would split the batch's
//! configuration — some jobs on one engine, some on the other — and the
//! solver itself samples `dnc_enabled()` several times per solve, so a
//! flip could even split *one solve* across engines. [`KnobSnapshot`]
//! freezes the engine knobs at one instant and [`with_knobs`] pins them
//! for a scope via a thread-local override that every knob read
//! consults first. The multi-tenant service (`ca-service`) captures one
//! snapshot at construction and wraps every job it runs in
//! [`with_knobs`], so global knob churn cannot leak into an in-flight
//! batch (pinned by `tests/serial_knob.rs`).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default bandwidth at which halving sweeps hand over to the fused
/// rank-1 sweep. The fused sweep's contiguous slab kernel runs near
/// memory bandwidth, so on the reference host the direct sweep beats
/// any halving schedule for every bandwidth the solver produces
/// (stage-time bench, n = 512: floor 128 ≈ 36 ms vs floor 64 ≈ 48 ms
/// vs legacy halve-to-8 ≈ 117 ms) — the default floor therefore sits
/// above the pipeline's intermediate bandwidths, i.e. no halvings.
pub const DEFAULT_HALVE_FLOOR: usize = 128;

/// Default D&C leaf size: below this the QL solver's `O(n²)` rotations
/// beat the merge machinery's constant factors.
pub const DEFAULT_DNC_LEAF: usize = 40;

static HALVE_FLOOR: AtomicUsize = AtomicUsize::new(0); // 0 = uninitialised
static DNC_LEAF: AtomicUsize = AtomicUsize::new(0);
static DNC_ENABLED: AtomicBool = AtomicBool::new(true);
static DNC_INIT: OnceLock<()> = OnceLock::new();

thread_local! {
    /// Active [`with_knobs`] override for this thread, if any. Engine
    /// knob reads consult this before the process globals, so a scope
    /// that pinned a snapshot is immune to concurrent `set_*` calls.
    static KNOB_OVERRIDE: Cell<Option<KnobSnapshot>> = const { Cell::new(None) };
}

/// A frozen copy of every engine-selection knob, captured at one
/// instant. Two uses:
///
/// * **reporting** — a service or bench harness records the exact
///   configuration a run executed under;
/// * **pinning** — [`with_knobs`] makes the snapshot the authoritative
///   source for all knob reads in a scope, so process-global setters
///   (or another tenant's configuration) cannot change an in-flight
///   solve's engine choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSnapshot {
    /// Divide-and-conquer finale enabled (see [`dnc_enabled`]).
    pub dnc_enabled: bool,
    /// D&C → QL leaf crossover (see [`dnc_leaf`]).
    pub dnc_leaf: usize,
    /// Bandwidth-halving floor (see [`halve_floor`]).
    pub halve_floor: usize,
    /// The shared `CA_SERIAL` knob at capture time. Informational: the
    /// env value is cached process-wide on first read and cannot change
    /// afterwards, so this field records (rather than controls) whether
    /// the process dispatches serially. [`with_knobs`] does *not*
    /// override serial dispatch — serial and parallel runs are
    /// bit-identical by invariant, and letting a thread-local flip it
    /// would reintroduce the split-subsystem bug the unified parser
    /// fixed.
    pub serial: bool,
}

impl KnobSnapshot {
    /// Capture the knobs as currently visible to this thread (an active
    /// [`with_knobs`] override wins over the process globals, so nested
    /// captures are consistent).
    pub fn capture() -> Self {
        Self {
            dnc_enabled: dnc_enabled(),
            dnc_leaf: dnc_leaf(),
            halve_floor: halve_floor(),
            serial: serial(),
        }
    }
}

/// Run `f` with every engine knob read on this thread pinned to `snap`,
/// restoring the previous override (if any) afterwards — nestable and
/// panic-safe. Parallel regions inside `f` are unaffected where they
/// read knobs from other threads, which is safe today because every
/// engine-selection read (`dnc_enabled`, `dnc_leaf`, `halve_floor`)
/// happens on the thread that entered the solver; spawned workers only
/// consult the process-cached `CA_SERIAL`.
pub fn with_knobs<R>(snap: KnobSnapshot, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KnobSnapshot>);
    impl Drop for Restore {
        fn drop(&mut self) {
            KNOB_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(KNOB_OVERRIDE.with(|c| c.replace(Some(snap))));
    f()
}

fn init() {
    DNC_INIT.get_or_init(|| {
        let floor = ca_obs::knobs::usize_env("CA_HALVE_FLOOR").unwrap_or(DEFAULT_HALVE_FLOOR);
        HALVE_FLOOR.store(floor.max(1), Ordering::Relaxed);
        let leaf = ca_obs::knobs::usize_env("CA_DNC_LEAF").unwrap_or(DEFAULT_DNC_LEAF);
        DNC_LEAF.store(leaf.max(2), Ordering::Relaxed);
        if let Some(v) = ca_obs::knobs::usize_env("CA_DNC") {
            DNC_ENABLED.store(v != 0, Ordering::Relaxed);
        }
    });
}

/// Bandwidth at which halving sweeps stop and the fused rank-1 sweep
/// finishes the reduction (env `CA_HALVE_FLOOR`).
pub fn halve_floor() -> usize {
    if let Some(k) = KNOB_OVERRIDE.with(Cell::get) {
        return k.halve_floor;
    }
    init();
    HALVE_FLOOR.load(Ordering::Relaxed)
}

/// Override the halving floor for this process (≥ 1).
pub fn set_halve_floor(floor: usize) {
    init();
    HALVE_FLOOR.store(floor.max(1), Ordering::Relaxed);
}

/// Subproblem size below which divide-and-conquer falls back to QL
/// (env `CA_DNC_LEAF`).
pub fn dnc_leaf() -> usize {
    if let Some(k) = KNOB_OVERRIDE.with(Cell::get) {
        return k.dnc_leaf;
    }
    init();
    DNC_LEAF.load(Ordering::Relaxed)
}

/// Override the D&C leaf size for this process (≥ 2).
pub fn set_dnc_leaf(leaf: usize) {
    init();
    DNC_LEAF.store(leaf.max(2), Ordering::Relaxed);
}

/// Whether the divide-and-conquer engine (and with it the fused rank-1
/// sweep schedule) is enabled (env `CA_DNC`, default on). Off restores
/// the legacy halve-to-8 + generic-chase + QL finale byte for byte.
pub fn dnc_enabled() -> bool {
    if let Some(k) = KNOB_OVERRIDE.with(Cell::get) {
        return k.dnc_enabled;
    }
    init();
    DNC_ENABLED.load(Ordering::Relaxed)
}

/// Toggle the divide-and-conquer engine for this process.
pub fn set_dnc_enabled(on: bool) {
    init();
    DNC_ENABLED.store(on, Ordering::Relaxed);
}

/// True when the shared `CA_SERIAL` knob is truthy
/// (`1`/`true`/`yes`/`on` — see [`ca_obs::knobs::serial`]): recursive
/// splits and secular root solves run in deterministic serial order
/// instead of over rayon workers. The parallel order is bit-identical
/// anyway (subproblems are independent and merges deterministic); the
/// hatch exists so the serial-executor CI lane exercises one code path
/// end to end. This is the same knob read the BSP executor uses, so the
/// two subsystems can never disagree about what `CA_SERIAL=yes` means.
pub fn serial() -> bool {
    ca_obs::knobs::serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults_and_roundtrip() {
        let f0 = halve_floor();
        let l0 = dnc_leaf();
        assert!(f0 >= 1);
        assert!(l0 >= 2);
        set_halve_floor(16);
        assert_eq!(halve_floor(), 16);
        set_halve_floor(f0);
        set_dnc_leaf(8);
        assert_eq!(dnc_leaf(), 8);
        set_dnc_leaf(l0);
        let on = dnc_enabled();
        set_dnc_enabled(!on);
        assert_eq!(dnc_enabled(), !on);
        set_dnc_enabled(on);
    }

    #[test]
    fn snapshot_override_pins_reads_and_restores() {
        let base = KnobSnapshot::capture();
        let pinned = KnobSnapshot {
            dnc_enabled: !base.dnc_enabled,
            dnc_leaf: base.dnc_leaf + 11,
            halve_floor: base.halve_floor + 7,
            serial: base.serial,
        };
        with_knobs(pinned, || {
            assert_eq!(dnc_enabled(), pinned.dnc_enabled);
            assert_eq!(dnc_leaf(), pinned.dnc_leaf);
            assert_eq!(halve_floor(), pinned.halve_floor);
            // Capture inside the scope sees the override.
            assert_eq!(KnobSnapshot::capture(), pinned);
            // Nested override wins, then restores the outer one.
            let inner = KnobSnapshot { dnc_leaf: 3, ..pinned };
            with_knobs(inner, || assert_eq!(dnc_leaf(), 3));
            assert_eq!(dnc_leaf(), pinned.dnc_leaf);
        });
        assert_eq!(KnobSnapshot::capture(), base);
    }

    #[test]
    fn global_setters_cannot_leak_into_a_pinned_scope() {
        let base = KnobSnapshot::capture();
        with_knobs(base, || {
            // A concurrent tenant (here: this thread, for determinism)
            // flips the process-global knob mid-scope; the pinned scope
            // must keep seeing its snapshot.
            set_dnc_enabled(!base.dnc_enabled);
            assert_eq!(dnc_enabled(), base.dnc_enabled);
            set_dnc_enabled(base.dnc_enabled);
        });
    }
}
