//! Sturm-sequence bisection for symmetric tridiagonal eigenvalues.
//!
//! An independent eigensolver used to cross-check the implicit-QL solver
//! in [`crate::tridiag`] (DESIGN.md §7): the number of sign agreements in
//! the Sturm sequence of `T − x·I` counts eigenvalues below `x`, which
//! both validates individual eigenvalues and allows verifying that a band
//! reduction preserved the *entire* spectrum (not just its moments).
//!
//! Bisection is embarrassingly parallel over eigenvalue indices — each
//! `k`-th eigenvalue's probe sequence depends only on `(d, e, k)` — so
//! [`bisection_eigenvalues`] and [`banded_bisection_eigenvalues`] fan
//! the indices out over rayon workers. Results are **bit-deterministic**
//! and identical to the sequential loop regardless of thread count: no
//! floating-point operation crosses an index boundary.

use rayon::prelude::*;

/// Below this many eigenvalues the thread fan-out costs more than it
/// saves; run the plain sequential loop.
const PAR_EIGS: usize = 32;

/// Number of eigenvalues of the tridiagonal `(d, e)` strictly less
/// than `x`.
pub fn count_below(d: &[f64], e: &[f64], x: f64) -> usize {
    let n = d.len();
    assert_eq!(e.len(), n.saturating_sub(1));
    let mut count = 0;
    let mut q = 1.0f64;
    for i in 0..n {
        let e2 = if i == 0 { 0.0 } else { e[i - 1] * e[i - 1] };
        q = d[i] - x - if q != 0.0 { e2 / q } else { e2 / f64::MIN_POSITIVE.sqrt() };
        if q < 0.0 {
            count += 1;
        }
        if q == 0.0 {
            // Treat exact zero as a tiny negative perturbation to keep
            // the recurrence moving (standard safeguard).
            q = -f64::EPSILON * (d[i].abs() + if i + 1 < n { e[i].abs() } else { 0.0 }).max(1.0);
            count += 1;
        }
    }
    count
}

/// Gershgorin interval enclosing the whole spectrum of `(d, e)`.
pub fn gershgorin_bounds(d: &[f64], e: &[f64]) -> (f64, f64) {
    let n = d.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = (if i > 0 { e[i - 1].abs() } else { 0.0 })
            + (if i + 1 < n { e[i].abs() } else { 0.0 });
        lo = lo.min(d[i] - r);
        hi = hi.max(d[i] + r);
    }
    (lo, hi)
}

/// The `k`-th smallest eigenvalue (0-based) via bisection to absolute
/// tolerance `tol`.
pub fn kth_eigenvalue(d: &[f64], e: &[f64], k: usize, tol: f64) -> f64 {
    let n = d.len();
    assert!(k < n);
    let (mut lo, mut hi) = gershgorin_bounds(d, e);
    // Widen marginally so the endpoints strictly bracket.
    let pad = 1e-12 * (hi - lo).abs().max(1.0);
    lo -= pad;
    hi += pad;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // floating-point resolution reached
        }
        if count_below(d, e, mid) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// All eigenvalues in ascending order via bisection, parallel over
/// eigenvalue indices (bit-identical to the sequential per-`k` loop).
pub fn bisection_eigenvalues(d: &[f64], e: &[f64], tol: f64) -> Vec<f64> {
    let n = d.len();
    if n < PAR_EIGS {
        (0..n).map(|k| kth_eigenvalue(d, e, k, tol)).collect()
    } else {
        (0..n).into_par_iter().map(|k| kth_eigenvalue(d, e, k, tol)).collect()
    }
}

/// Number of eigenvalues of a symmetric *banded* matrix strictly less
/// than `x`, via the inertia of the banded `LDLᵀ` factorization of
/// `B − x·I` (Sylvester's law; `O(n·b²)` work, no tridiagonalization).
///
/// This gives an eigensolver-independent check of every banded
/// intermediate the reduction ladder produces.
pub fn count_below_banded(b: &crate::BandedSym, x: f64) -> usize {
    let n = b.n();
    let bw = b.bandwidth().max(b.measured_bandwidth(0.0));
    if bw == 0 {
        return (0..n).filter(|&i| b.get(i, i) < x).count();
    }
    let scale = b.norm_fro().max(1.0);
    let mut work = vec![0.0f64; n * (bw + 1)];
    count_below_banded_into(b, x, bw, scale, &mut work)
}

/// [`count_below_banded`] with the bandwidth, pivot scale, and the
/// `n·(bw+1)` scratch buffer supplied by the caller — so a bisection
/// loop probes `O(log 1/tol)` shifts with one allocation instead of one
/// per probe. Arithmetic is identical to the per-probe path.
fn count_below_banded_into(
    b: &crate::BandedSym,
    x: f64,
    bw: usize,
    scale: f64,
    work: &mut [f64],
) -> usize {
    let n = b.n();
    let w = bw + 1;
    debug_assert_eq!(work.len(), n * w);
    // Banded LDLᵀ without pivoting, with a tiny-pivot safeguard (the
    // bisection caller only needs the negative count to be right within
    // the probe tolerance). Column-major lower storage, flattened:
    // entry (i, j) with j ≤ i ≤ j + bw lives at work[j·(bw+1) + (i−j)].
    for j in 0..n {
        let reach = n.min(j + w);
        let col = &mut work[j * w..j * w + w];
        for i in j..reach {
            col[i - j] = b.get(i, j);
        }
        for i in reach..j + w {
            col[i - j] = 0.0;
        }
        col[0] -= x;
    }
    let mut negatives = 0;
    for k in 0..n {
        let mut dk = work[k * w];
        if dk == 0.0 {
            dk = -f64::EPSILON * scale;
        }
        if dk < 0.0 {
            negatives += 1;
        }
        // Eliminate column k from the trailing band.
        let reach = n.min(k + w);
        for i in k + 1..reach {
            let lik = work[k * w + (i - k)] / dk;
            if lik == 0.0 {
                continue;
            }
            for j2 in i..reach {
                work[i * w + (j2 - i)] -= lik * work[k * w + (j2 - k)];
            }
        }
    }
    negatives
}

/// All eigenvalues of a symmetric banded matrix via bisection on the
/// banded inertia count (no tridiagonalization).
pub fn banded_bisection_eigenvalues(b: &crate::BandedSym, tol: f64) -> Vec<f64> {
    let n = b.n();
    let (glo, ghi) = banded_gershgorin_bounds(b);
    // Hoisted per-probe invariants: bandwidth, pivot scale (value-
    // identical — the matrix does not change between probes).
    let bw = b.bandwidth().max(b.measured_bandwidth(0.0));
    let scale = b.norm_fro().max(1.0);
    let one = |k: usize| banded_kth_in_bounds(b, k, tol, glo, ghi, bw, scale);
    if n < PAR_EIGS {
        (0..n).map(one).collect()
    } else {
        (0..n).into_par_iter().map(one).collect()
    }
}

/// The `k`-th smallest eigenvalue (0-based) of a symmetric banded
/// matrix via bisection on the banded inertia count.
pub fn banded_kth_eigenvalue(b: &crate::BandedSym, k: usize, tol: f64) -> f64 {
    let (glo, ghi) = banded_gershgorin_bounds(b);
    let bw = b.bandwidth().max(b.measured_bandwidth(0.0));
    let scale = b.norm_fro().max(1.0);
    banded_kth_in_bounds(b, k, tol, glo, ghi, bw, scale)
}

/// Padded Gershgorin-style spectrum bounds from row sums of the band.
fn banded_gershgorin_bounds(b: &crate::BandedSym) -> (f64, f64) {
    let n = b.n();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut r = 0.0;
        for j in 0..n {
            if i != j && i.abs_diff(j) <= b.capacity() {
                r += b.get(i, j).abs();
            }
        }
        lo = lo.min(b.get(i, i) - r);
        hi = hi.max(b.get(i, i) + r);
    }
    let pad = 1e-12 * (hi - lo).abs().max(1.0);
    (lo - pad, hi + pad)
}

/// Bisect for the `k`-th eigenvalue inside precomputed bounds, reusing
/// one scratch buffer for every probe.
fn banded_kth_in_bounds(
    b: &crate::BandedSym,
    k: usize,
    tol: f64,
    glo: f64,
    ghi: f64,
    bw: usize,
    scale: f64,
) -> f64 {
    let n = b.n();
    if bw == 0 {
        // Diagonal shortcut matches count_below_banded's.
        let (mut lo, mut hi) = (glo, ghi);
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if (0..n).filter(|&i| b.get(i, i) < mid).count() > k {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        return 0.5 * (lo + hi);
    }
    let mut work = vec![0.0f64; n * (bw + 1)];
    let (mut lo, mut hi) = (glo, ghi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if count_below_banded_into(b, mid, bw, scale, &mut work) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::tridiag_eigenvalues;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_are_monotone_and_bounded() {
        let d = vec![2.0; 10];
        let e = vec![-1.0; 9];
        let (lo, hi) = gershgorin_bounds(&d, &e);
        assert_eq!(count_below(&d, &e, lo - 1.0), 0);
        assert_eq!(count_below(&d, &e, hi + 1.0), 10);
        let mut prev = 0;
        let mut x = lo;
        while x <= hi {
            let c = count_below(&d, &e, x);
            assert!(c >= prev);
            prev = c;
            x += 0.25;
        }
    }

    #[test]
    fn bisection_matches_ql_on_laplacian() {
        let n = 17;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let ql = tridiag_eigenvalues(&d, &e);
        let bi = bisection_eigenvalues(&d, &e, 1e-12);
        for (a, b) in ql.iter().zip(&bi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn bisection_matches_ql_on_random_tridiagonals() {
        let mut rng = StdRng::seed_from_u64(60);
        for trial in 0..5 {
            let n = 8 + trial * 7;
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let ql = tridiag_eigenvalues(&d, &e);
            let bi = bisection_eigenvalues(&d, &e, 1e-11);
            for (a, b) in ql.iter().zip(&bi) {
                assert!((a - b).abs() < 1e-8, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        let mut rng = StdRng::seed_from_u64(61);
        let n = 12;
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let (lo, hi) = gershgorin_bounds(&d, &e);
        for lam in tridiag_eigenvalues(&d, &e) {
            assert!(lam >= lo - 1e-12 && lam <= hi + 1e-12);
        }
    }

    #[test]
    fn kth_eigenvalue_interlaces() {
        let d = vec![1.0, 2.0, 3.0, 4.0];
        let e = vec![0.5, 0.5, 0.5];
        let evs: Vec<f64> = (0..4).map(|k| kth_eigenvalue(&d, &e, k, 1e-12)).collect();
        for w in evs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn banded_inertia_matches_tridiagonal_counts() {
        use crate::gen;
        use crate::BandedSym;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(62);
        let n = 20;
        for bw in [1usize, 3, 5] {
            let dense = gen::random_banded(&mut rng, n, bw);
            let b = BandedSym::from_dense(&dense, bw, bw);
            let reference = crate::tridiag::banded_eigenvalues(&b);
            for probe in [-2.0, -0.7, 0.0, 0.4, 1.8] {
                let count = count_below_banded(&b, probe);
                let expected = reference.iter().filter(|l| **l < probe).count();
                assert_eq!(count, expected, "bw={bw}, probe={probe}");
            }
        }
    }

    #[test]
    fn banded_bisection_matches_ql_path() {
        use crate::gen;
        use crate::BandedSym;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(63);
        let n = 16;
        let dense = gen::random_banded(&mut rng, n, 4);
        let b = BandedSym::from_dense(&dense, 4, 4);
        let ql = crate::tridiag::banded_eigenvalues(&b);
        let bi = banded_bisection_eigenvalues(&b, 1e-11);
        for (x, y) in ql.iter().zip(&bi) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn banded_inertia_on_diagonal_matrix() {
        use crate::BandedSym;
        let mut b = BandedSym::zeros(5, 1, 1);
        for (i, v) in [3.0, -1.0, 0.5, -2.0, 4.0].iter().enumerate() {
            b.set(i, i, *v);
        }
        assert_eq!(count_below_banded(&b, 0.0), 2);
        assert_eq!(count_below_banded(&b, 10.0), 5);
        assert_eq!(count_below_banded(&b, -10.0), 0);
    }

    #[test]
    fn zero_offdiagonal_gives_diagonal() {
        let d = vec![5.0, -3.0, 1.0];
        let e = vec![0.0, 0.0];
        let bi = bisection_eigenvalues(&d, &e, 1e-12);
        assert!((bi[0] + 3.0).abs() < 1e-10);
        assert!((bi[1] - 1.0).abs() < 1e-10);
        assert!((bi[2] - 5.0).abs() < 1e-10);
    }
}
